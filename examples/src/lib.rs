//! Shared helpers for the examples live here if needed.
