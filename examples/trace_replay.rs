//! Trace interchange: export the synthetic workload to SWF (the Parallel
//! Workloads Archive format), parse it back, and replay it through the
//! simulator's fault world — the workflow for running *real* archive traces
//! against the calibrated Blue Waters failure model.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use bw_sim::{MemoryOutput, SimConfig, Simulation};
use bw_workload::{swf, WorkloadConfig, WorkloadGenerator};
use logdiver::{LogCollection, LogDiver};
use logdiver_types::{NodeType, SimDuration};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a 3-day workload and export it as SWF.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let mut generator = WorkloadGenerator::new(WorkloadConfig::scaled(32), &mut rng)?;
    let jobs = generator.generate(SimDuration::from_days(3), &mut rng);
    let trace = swf::export_trace("blue-waters/32", 840, &jobs);
    println!(
        "exported {} jobs as SWF ({} bytes)",
        jobs.len(),
        trace.len()
    );

    // 2. Parse it back, as one would parse an archive trace.
    let parsed = swf::parse_trace(&trace)?;
    let summary = swf::summarize(&parsed).expect("non-empty trace");
    println!(
        "parsed trace: {} jobs over {:.1} days; mean {:.1} procs (max {}), mean run {:.0} s",
        summary.jobs,
        summary.span_secs as f64 / 86_400.0,
        summary.mean_procs,
        summary.max_procs,
        summary.mean_run_secs,
    );

    // 3. Rebuild job specs from the SWF rows and replay them through the
    //    fault world (class assignment: everything XE for simplicity —
    //    archive traces carry no class column).
    let replay_jobs: Vec<_> = parsed
        .iter()
        .enumerate()
        .map(|(i, j)| swf::to_job_spec(j, NodeType::Xe, 5_000_000 + i as u64))
        .collect();
    let config = SimConfig::scaled(32, 4).with_seed(7);
    let mut raw = MemoryOutput::new();
    let report = Simulation::new(config)?
        .with_job_trace(replay_jobs)
        .run(&mut raw);
    println!(
        "\nreplay: {} jobs re-ran against the calibrated fault model ({:.0} node-hours, {} faults injected)",
        report.jobs_submitted, report.node_hours, report.faults_injected
    );

    // 4. And the replayed logs go through LogDiver like any field data.
    let mut logs = LogCollection::new();
    logs.syslog = raw.syslog;
    logs.hwerr = raw.hwerr;
    logs.alps = raw.alps;
    logs.torque = raw.torque;
    logs.netwatch = raw.netwatch;
    let analysis = LogDiver::new().analyze(&logs);
    println!(
        "LogDiver on the replay: {} runs, {:.3}% system-failed",
        analysis.metrics.total_runs,
        analysis.metrics.system_failure_fraction * 100.0
    );
    Ok(())
}
