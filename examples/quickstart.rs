//! Quickstart: simulate a week of production on a small machine, run
//! LogDiver over the raw logs, and print the headline tables.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bw_sim::{MemoryOutput, SimConfig, Simulation};
use logdiver::{report, LogCollection, LogDiver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate: a 1/32-scale Blue Waters for 7 production days.
    //    (The simulator stands in for the machine; in a real deployment the
    //    logs below are collected from the site's syslog/ALPS/Torque.)
    let config = SimConfig::scaled(32, 7).with_seed(2013);
    let sim = Simulation::new(config)?;
    println!(
        "simulating {} ({} XE + {} XK nodes) for 7 days…",
        sim.machine().name(),
        sim.machine().count_of(logdiver_types::NodeType::Xe),
        sim.machine().count_of(logdiver_types::NodeType::Xk),
    );
    let mut raw = MemoryOutput::new();
    let sim_report = sim.run(&mut raw);
    println!(
        "  {} jobs, {} application runs, {:.0} node-hours, {} faults injected\n",
        sim_report.jobs_submitted,
        sim_report.apps_completed,
        sim_report.node_hours,
        sim_report.faults_injected,
    );

    // 2. Hand LogDiver the raw log lines — nothing else.
    let mut logs = LogCollection::new();
    logs.syslog = raw.syslog;
    logs.hwerr = raw.hwerr;
    logs.alps = raw.alps;
    logs.torque = raw.torque;
    logs.netwatch = raw.netwatch;

    // 3. Analyze and report.
    let analysis = LogDiver::new().analyze(&logs);
    println!("{}", report::outcome_table(&analysis.metrics));
    println!();
    println!("{}", report::cause_table(&analysis.metrics));
    println!();
    println!("{}", report::pipeline_table(&analysis.stats));
    Ok(())
}
