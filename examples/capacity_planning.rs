//! Lesson (i): system problems waste disproportionate machine capacity —
//! 1.53 % of runs but ~9 % of node-hours on Blue Waters — and what that
//! means in energy and allocation terms.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use bw_sim::{MemoryOutput, SimConfig, Simulation};
use logdiver::{report, LogCollection, LogDiver};

/// Blue Waters drew ~10 MW at 13.1 PF; per compute node that is roughly
/// 300 W of IT load plus cooling overhead.
const WATTS_PER_NODE: f64 = 360.0;
/// A typical industrial electricity price, $/kWh.
const DOLLARS_PER_KWH: f64 = 0.08;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = SimConfig::scaled(16, 60).with_seed(518);
    for class in &mut config.workload.classes {
        class.capability_fraction *= 8.0;
    }
    println!("simulating 60 days at 1/16 scale…");
    let mut raw = MemoryOutput::new();
    Simulation::new(config)?.run(&mut raw);

    let mut logs = LogCollection::new();
    logs.syslog = raw.syslog;
    logs.hwerr = raw.hwerr;
    logs.alps = raw.alps;
    logs.torque = raw.torque;
    logs.netwatch = raw.netwatch;
    let m = LogDiver::new().analyze(&logs).metrics;

    println!("{}\n", report::outcome_table(&m));
    println!("{}\n", report::cause_table(&m));

    let lost_nh: f64 = m.causes.iter().map(|c| c.lost_node_hours).sum();
    let lost_kwh = lost_nh * WATTS_PER_NODE / 1_000.0;
    println!("capacity wasted on system-failed runs:");
    println!("  {lost_nh:.0} node-hours over {:.0} days", m.measured_days);
    println!(
        "  = {:.2}% of delivered node-hours (paper: ~9% on the full machine)",
        m.failed_node_hours_fraction * 100.0
    );
    println!(
        "  ≈ {lost_kwh:.0} kWh ≈ ${:.0} in electricity",
        lost_kwh * DOLLARS_PER_KWH
    );

    // Scale the waste to the full machine and the full 518-day period.
    let scale = 16.0 * (518.0 / m.measured_days.max(1.0));
    println!(
        "\nextrapolated to the full machine over 518 days:\n  ≈ {:.1} M node-hours, ≈ {:.1} GWh, ≈ ${:.1} M in electricity",
        lost_nh * scale / 1.0e6,
        lost_kwh * scale / 1.0e6,
        lost_kwh * scale * DOLLARS_PER_KWH / 1.0e6,
    );
    println!("\n(the point of lesson (i): resilience is an energy-cost problem,\n not just an availability problem)");
    Ok(())
}
