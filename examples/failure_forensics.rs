//! Per-incident forensics: the view LogDiver gives an analyst for one
//! failed application — its placement, its death, and the error events the
//! tool blames.
//!
//! ```sh
//! cargo run --release --example failure_forensics
//! ```

use bw_sim::{MemoryOutput, SimConfig, Simulation};
use logdiver::{LogCollection, LogDiver};
use logdiver_types::ExitClass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SimConfig::scaled(24, 14).with_seed(99);
    let mut raw = MemoryOutput::new();
    Simulation::new(config)?.run(&mut raw);

    let mut logs = LogCollection::new();
    logs.syslog = raw.syslog;
    logs.hwerr = raw.hwerr;
    logs.alps = raw.alps;
    logs.torque = raw.torque;
    logs.netwatch = raw.netwatch;
    let analysis = LogDiver::new().analyze(&logs);

    // Pick the system-failed runs with evidence, largest first.
    let mut suspects: Vec<_> = analysis
        .runs
        .iter()
        .filter(|r| r.class.is_system_failure() && !r.matched_events.is_empty())
        .collect();
    suspects.sort_by_key(|r| std::cmp::Reverse(r.run.width));

    let Some(case) = suspects.first() else {
        println!("no attributable system failures in this window — rerun with another seed");
        return Ok(());
    };

    println!("=== incident report: apid {} ===", case.run.apid);
    println!("  user       : {}", case.run.user);
    println!("  job        : {}", case.run.job);
    println!(
        "  class      : {} × {} nodes",
        case.run.node_type, case.run.width
    );
    println!(
        "  placement  : first nid {}",
        case.run
            .nodes
            .first()
            .map(|n| n.to_string())
            .unwrap_or_else(|| "?".into())
    );
    println!("  launched   : {}", case.run.start);
    println!(
        "  died       : {}  (ran {})",
        case.run.end,
        case.run.runtime()
    );
    println!("  verdict    : {}", case.class);
    println!("  lost work  : {:.1} node-hours", case.run.node_hours());
    println!("\n  blamed error events:");
    for id in &case.matched_events {
        if let Some(ev) = analysis.events.iter().find(|e| e.id == *id) {
            println!(
                "    [{} – {}] {:>7}  {} entries, scope {}, categories {:?}",
                ev.start,
                ev.end,
                ev.severity.label(),
                ev.entry_count,
                if ev.system_scope { "machine" } else { "blade" },
                ev.categories.iter().map(|c| c.token()).collect::<Vec<_>>(),
            );
        }
    }

    // How common was this verdict?
    let same: usize = analysis
        .runs
        .iter()
        .filter(|r| r.class == case.class)
        .count();
    println!("\n  {} runs share this verdict in the window", same);
    let unexplained = analysis
        .runs
        .iter()
        .filter(|r| {
            matches!(r.class, ExitClass::SystemFailure(c) if c == logdiver_types::FailureCause::Undetermined)
        })
        .count();
    println!(
        "  {} system failures had no explaining event at all",
        unexplained
    );
    Ok(())
}
