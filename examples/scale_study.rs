//! The headline result (figures F1/F2): application failure probability vs
//! scale, with the dramatic jump at full machine width.
//!
//! Runs a 1/16-scale machine with boosted capability-run *frequency* (the
//! per-width failure law is calibrated to the paper's anchors and is
//! unaffected by how often capability jobs arrive), then prints both
//! curves. Expect the top bucket to sit near 0.162 (XE) / 0.129 (XK) and
//! the mid-anchor bucket near 0.008 / 0.02.
//!
//! ```sh
//! cargo run --release --example scale_study
//! ```

use bw_sim::{MemoryOutput, SimConfig, Simulation};
use logdiver::{report, LogCollection, LogDiver};
use logdiver_types::NodeType;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = SimConfig::scaled(16, 60).with_seed(7);
    for class in &mut config.workload.classes {
        class.capability_fraction *= 8.0;
    }
    let sim = Simulation::new(config)?;
    let solved = sim.config().faults.clone();
    println!(
        "calibrated wide-kill laws: XE q_max={:.3} γ={:.2}; XK q_max={:.3} γ={:.2}; launch p={:.4}",
        solved.wide_kill_xe.q_max,
        solved.wide_kill_xe.gamma,
        solved.wide_kill_xk.q_max,
        solved.wide_kill_xk.gamma,
        solved.launch_failure_prob,
    );
    println!("simulating 60 days…");
    let mut raw = MemoryOutput::new();
    sim.run(&mut raw);

    let mut logs = LogCollection::new();
    logs.syslog = raw.syslog;
    logs.hwerr = raw.hwerr;
    logs.alps = raw.alps;
    logs.torque = raw.torque;
    logs.netwatch = raw.netwatch;
    let analysis = LogDiver::new().analyze(&logs);

    for curve in &analysis.metrics.scale_curves {
        println!("\n{}", report::scale_table(curve));
        let full = curve.buckets.last();
        let anchor = match curve.node_type {
            NodeType::Xk => 0.129,
            _ => 0.162,
        };
        if let Some(full) = full {
            println!(
                "paper anchor at full scale: {anchor:.3}; measured {:.3} over {} runs",
                full.probability, full.runs
            );
        }
    }
    Ok(())
}
