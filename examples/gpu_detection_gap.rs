//! Lesson (iii): hybrid-node resiliency is impaired by inadequate error
//! detection — and an ablation showing what hardened GPU instrumentation
//! would change.
//!
//! Runs the same fault sequence twice (same seed): once with the measured
//! period's detection coverage and once with a hypothetical hardened GPU
//! stack, then compares how many system failures the tool can explain.
//!
//! ```sh
//! cargo run --release --example gpu_detection_gap
//! ```

use bw_faults::DetectionModel;
use bw_sim::{MemoryOutput, SimConfig, Simulation};
use logdiver::{report, LogCollection, LogDiver, MetricSet};
use logdiver_types::NodeType;

fn run_with(detection: DetectionModel) -> Result<MetricSet, Box<dyn std::error::Error>> {
    // Mechanism demo: node-scoped fault rates are boosted far above the
    // calibrated priors so a 2-week, 1/32-scale window contains enough GPU
    // faults to measure coverage (see DESIGN.md §5 on scaling).
    let mut config = SimConfig::scaled(32, 14)
        .with_seed(4224)
        .without_calibration();
    config.detection = detection;
    config.faults.gpu_fault_per_node_hour = 2.0e-2;
    config.faults.xk_node_crash_per_node_hour = 1.0e-3;
    config.faults.xe_node_crash_per_node_hour = 1.0e-3;
    for class in &mut config.workload.classes {
        if class.node_type == NodeType::Xk {
            class.jobs_per_hour *= 4.0;
        }
    }
    let mut raw = MemoryOutput::new();
    Simulation::new(config)?.run(&mut raw);
    let mut logs = LogCollection::new();
    logs.syslog = raw.syslog;
    logs.hwerr = raw.hwerr;
    logs.alps = raw.alps;
    logs.torque = raw.torque;
    logs.netwatch = raw.netwatch;
    Ok(LogDiver::new().analyze(&logs).metrics)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("— measured-period detection coverage —");
    let baseline = run_with(DetectionModel::blue_waters())?;
    println!("{}", report::detection_table(&baseline));

    println!("\n— ablation: hardened GPU instrumentation —");
    let hardened = run_with(DetectionModel::hardened_gpu())?;
    println!("{}", report::detection_table(&hardened));

    let get = |m: &MetricSet, ty: NodeType| {
        m.detection
            .iter()
            .find(|d| d.node_type == ty)
            .map(|d| d.fraction_undetermined)
            .unwrap_or(0.0)
    };
    println!(
        "\nXK unexplained-failure fraction: {:.1}% → {:.1}% with hardened GPU detection",
        get(&baseline, NodeType::Xk) * 100.0,
        get(&hardened, NodeType::Xk) * 100.0,
    );
    println!(
        "XE stays at {:.1}% → {:.1}% (its instrumentation was already adequate)",
        get(&baseline, NodeType::Xe) * 100.0,
        get(&hardened, NodeType::Xe) * 100.0,
    );
    Ok(())
}
