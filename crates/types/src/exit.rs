//! Application exit information and outcome classification.
//!
//! The launcher (ALPS) records, for each application run, an exit code and
//! the signal that terminated it (if any) — that raw record is [`ExitStatus`].
//! LogDiver's classification stage turns an [`ExitStatus`] plus correlated
//! error events into an [`ExitClass`]: the paper's unit of accounting
//! ("1.53 % of applications fail due to system problems").

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::category::Subsystem;

/// Raw termination record of an application run, as the launcher sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ExitStatus {
    /// Process exit code (0 = clean), meaningless when `signal` is set.
    pub code: i32,
    /// Fatal signal number, if the application died on a signal.
    pub signal: Option<i32>,
    /// True when the launcher itself observed the loss of one or more of the
    /// application's nodes (Cray's "node failed" claim in `apsys` records).
    pub node_failed: bool,
}

impl ExitStatus {
    /// A clean, successful exit.
    pub const SUCCESS: ExitStatus = ExitStatus {
        code: 0,
        signal: None,
        node_failed: false,
    };

    /// Builds a plain exit with the given code.
    pub const fn with_code(code: i32) -> Self {
        ExitStatus {
            code,
            signal: None,
            node_failed: false,
        }
    }

    /// Builds a signal death.
    pub const fn with_signal(signal: i32) -> Self {
        ExitStatus {
            code: 128 + signal,
            signal: Some(signal),
            node_failed: false,
        }
    }

    /// Marks the status as involving a node loss observed by the launcher.
    pub const fn and_node_failed(mut self) -> Self {
        self.node_failed = true;
        self
    }

    /// True when the run terminated cleanly.
    pub const fn is_clean(self) -> bool {
        self.code == 0 && self.signal.is_none() && !self.node_failed
    }
}

impl fmt::Display for ExitStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.signal {
            Some(sig) => write!(f, "signal {sig}")?,
            None => write!(f, "exit {}", self.code)?,
        }
        if self.node_failed {
            write!(f, " (node failed)")?;
        }
        Ok(())
    }
}

/// Why a run failed for a *system* reason — the coarse cause the paper's
/// breakdown tables use. Mirrors [`Subsystem`] plus an "undetermined" bucket
/// for failures the logs cannot explain (crucial for lesson iii: hybrid
/// nodes lack detection, so their failures often land here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FailureCause {
    /// Gemini interconnect failure.
    Interconnect,
    /// Lustre filesystem failure.
    Filesystem,
    /// Node hardware failure (board, voltage, heartbeat loss).
    NodeHardware,
    /// Memory subsystem failure (uncorrectable error, MCE).
    Memory,
    /// GPU failure on a hybrid node.
    Gpu,
    /// System-software failure (kernel panic, node hang).
    SystemSoftware,
    /// Launcher/placement infrastructure failure.
    Launcher,
    /// The run was killed by the system but no detected error explains it.
    Undetermined,
}

impl FailureCause {
    /// All causes in report order.
    pub const ALL: [FailureCause; 8] = [
        FailureCause::Interconnect,
        FailureCause::Filesystem,
        FailureCause::NodeHardware,
        FailureCause::Memory,
        FailureCause::Gpu,
        FailureCause::SystemSoftware,
        FailureCause::Launcher,
        FailureCause::Undetermined,
    ];

    /// Human-readable name for tables.
    pub const fn name(self) -> &'static str {
        match self {
            FailureCause::Interconnect => "Interconnect",
            FailureCause::Filesystem => "Filesystem",
            FailureCause::NodeHardware => "Node hardware",
            FailureCause::Memory => "Memory/MCE",
            FailureCause::Gpu => "GPU",
            FailureCause::SystemSoftware => "System software",
            FailureCause::Launcher => "Launcher",
            FailureCause::Undetermined => "Undetermined",
        }
    }
}

impl From<Subsystem> for FailureCause {
    fn from(sub: Subsystem) -> Self {
        match sub {
            Subsystem::Interconnect => FailureCause::Interconnect,
            Subsystem::Filesystem => FailureCause::Filesystem,
            Subsystem::NodeHardware => FailureCause::NodeHardware,
            Subsystem::Memory => FailureCause::Memory,
            Subsystem::Gpu => FailureCause::Gpu,
            Subsystem::SystemSoftware => FailureCause::SystemSoftware,
            Subsystem::Launcher => FailureCause::Launcher,
        }
    }
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a run failed for a *user* reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UserFailureKind {
    /// Segmentation fault (SIGSEGV) or bus error (SIGBUS) in the application.
    Segfault,
    /// The application aborted itself (SIGABRT, assertion failure).
    Abort,
    /// Application exceeded its memory allocation and was OOM-killed.
    OutOfMemory,
    /// The application returned a nonzero exit code.
    NonzeroExit,
    /// The user (or the user's script) cancelled the run (SIGTERM/SIGKILL
    /// without node failure or walltime involvement).
    Cancelled,
}

impl UserFailureKind {
    /// All kinds in report order.
    pub const ALL: [UserFailureKind; 5] = [
        UserFailureKind::Segfault,
        UserFailureKind::Abort,
        UserFailureKind::OutOfMemory,
        UserFailureKind::NonzeroExit,
        UserFailureKind::Cancelled,
    ];

    /// Human-readable name for tables.
    pub const fn name(self) -> &'static str {
        match self {
            UserFailureKind::Segfault => "Segfault",
            UserFailureKind::Abort => "Abort",
            UserFailureKind::OutOfMemory => "Out of memory",
            UserFailureKind::NonzeroExit => "Nonzero exit",
            UserFailureKind::Cancelled => "Cancelled",
        }
    }
}

impl fmt::Display for UserFailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// LogDiver's final verdict on one application run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ExitClass {
    /// The run completed successfully.
    Success,
    /// The run was killed by a system problem with the given cause.
    SystemFailure(FailureCause),
    /// The run failed for a reason attributable to the user/application.
    UserFailure(UserFailureKind),
    /// The run hit its requested walltime and was killed by the scheduler.
    WalltimeExceeded,
    /// The records are insufficient to classify the run.
    Unknown,
}

impl ExitClass {
    /// True for any system-caused failure.
    pub const fn is_system_failure(self) -> bool {
        matches!(self, ExitClass::SystemFailure(_))
    }

    /// True for any user-caused failure.
    pub const fn is_user_failure(self) -> bool {
        matches!(self, ExitClass::UserFailure(_))
    }

    /// True when the run did not complete successfully (any failure bucket).
    pub const fn is_failure(self) -> bool {
        !matches!(self, ExitClass::Success)
    }

    /// Coarse label used as a table row key.
    pub const fn bucket_name(self) -> &'static str {
        match self {
            ExitClass::Success => "Success",
            ExitClass::SystemFailure(_) => "System failure",
            ExitClass::UserFailure(_) => "User failure",
            ExitClass::WalltimeExceeded => "Walltime exceeded",
            ExitClass::Unknown => "Unknown",
        }
    }
}

impl fmt::Display for ExitClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitClass::SystemFailure(cause) => write!(f, "System failure ({cause})"),
            ExitClass::UserFailure(kind) => write!(f, "User failure ({kind})"),
            other => f.write_str(other.bucket_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_is_clean() {
        assert!(ExitStatus::SUCCESS.is_clean());
        assert!(!ExitStatus::with_code(1).is_clean());
        assert!(!ExitStatus::with_signal(11).is_clean());
        assert!(!ExitStatus::SUCCESS.and_node_failed().is_clean());
    }

    #[test]
    fn signal_exit_sets_conventional_code() {
        let s = ExitStatus::with_signal(9);
        assert_eq!(s.code, 137);
        assert_eq!(s.signal, Some(9));
    }

    #[test]
    fn exit_status_display() {
        assert_eq!(ExitStatus::with_code(3).to_string(), "exit 3");
        assert_eq!(ExitStatus::with_signal(11).to_string(), "signal 11");
        assert_eq!(
            ExitStatus::with_signal(9).and_node_failed().to_string(),
            "signal 9 (node failed)"
        );
    }

    #[test]
    fn class_predicates() {
        assert!(ExitClass::SystemFailure(FailureCause::Gpu).is_system_failure());
        assert!(ExitClass::SystemFailure(FailureCause::Gpu).is_failure());
        assert!(ExitClass::UserFailure(UserFailureKind::Abort).is_user_failure());
        assert!(!ExitClass::Success.is_failure());
        assert!(ExitClass::WalltimeExceeded.is_failure());
        assert!(ExitClass::Unknown.is_failure());
    }

    #[test]
    fn subsystem_maps_onto_cause() {
        assert_eq!(FailureCause::from(Subsystem::Gpu), FailureCause::Gpu);
        assert_eq!(
            FailureCause::from(Subsystem::Interconnect),
            FailureCause::Interconnect
        );
        // Every subsystem maps to a non-Undetermined cause.
        for sub in Subsystem::ALL {
            assert_ne!(FailureCause::from(sub), FailureCause::Undetermined);
        }
    }

    #[test]
    fn display_strings_are_informative() {
        let c = ExitClass::SystemFailure(FailureCause::Interconnect);
        assert_eq!(c.to_string(), "System failure (Interconnect)");
        assert_eq!(c.bucket_name(), "System failure");
        let u = ExitClass::UserFailure(UserFailureKind::Segfault);
        assert_eq!(u.to_string(), "User failure (Segfault)");
    }
}
