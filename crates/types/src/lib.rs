//! # logdiver-types
//!
//! Shared vocabulary for the LogDiver field-study toolkit — the common types
//! used by the machine model ([`bw-topology`]), the log formats ([`craylog`]),
//! the workload and fault generators, the simulator and the LogDiver analysis
//! pipeline itself.
//!
//! The crate is deliberately dependency-light: everything here is plain data
//! with value semantics, so every other crate in the workspace can exchange
//! these types without coupling.
//!
//! ## Contents
//!
//! - [`ids`] — strongly-typed identifiers ([`NodeId`], [`JobId`], [`AppId`],
//!   [`UserId`]) following the newtype pattern (C-NEWTYPE).
//! - [`time`] — [`Timestamp`] / [`SimDuration`] with civil-date formatting and
//!   parsing (no external time crate).
//! - [`node`] — node kinds of a Cray hybrid machine ([`NodeType`]).
//! - [`category`] — the error taxonomy ([`ErrorCategory`], [`Subsystem`],
//!   [`Severity`]) shared by fault injection, log emission and log filtering.
//! - [`exit`] — application exit information ([`ExitStatus`]) and the outcome
//!   classification ([`ExitClass`], [`FailureCause`], [`UserFailureKind`]).
//! - [`nodeset`] — [`NodeSet`], a compact bitmap over node ids used for the
//!   spatial joins at the heart of LogDiver.
//! - [`intern`] — [`Sym`], a global string interner for hot repeated log
//!   fields (hostnames, tags, commands, queues).
//! - [`fsio`] — the narrow [`fsio::Fs`] filesystem seam behind every
//!   checkpoint read/write, so fault-injecting filesystems can stand in
//!   for the real one in tests.
//! - [`protocol`] — the serve↔client wire-protocol code catalog: every
//!   `ERR code=<kebab>` value as a named constant, with the client
//!   disposition each code demands, cross-checked by `logdiver lint`'s
//!   protocol-contract verifier.
//!
//! ## Example
//!
//! ```
//! use logdiver_types::{NodeId, NodeSet, Timestamp};
//!
//! let mut set = NodeSet::new();
//! set.insert(NodeId::new(12));
//! set.insert(NodeId::new(4000));
//! assert_eq!(set.len(), 2);
//!
//! let t = Timestamp::from_ymd_hms(2013, 3, 28, 12, 30, 0);
//! assert_eq!(t.to_string(), "2013-03-28 12:30:00");
//! ```
//!
//! [`bw-topology`]: https://example.com/logdiver-repro
//! [`craylog`]: https://example.com/logdiver-repro
//! [`NodeId`]: ids::NodeId
//! [`JobId`]: ids::JobId
//! [`AppId`]: ids::AppId
//! [`UserId`]: ids::UserId
//! [`Timestamp`]: time::Timestamp
//! [`SimDuration`]: time::SimDuration
//! [`NodeType`]: node::NodeType
//! [`ErrorCategory`]: category::ErrorCategory
//! [`Subsystem`]: category::Subsystem
//! [`Severity`]: category::Severity
//! [`ExitStatus`]: exit::ExitStatus
//! [`ExitClass`]: exit::ExitClass
//! [`FailureCause`]: exit::FailureCause
//! [`UserFailureKind`]: exit::UserFailureKind
//! [`NodeSet`]: nodeset::NodeSet
//! [`Sym`]: intern::Sym

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod category;
pub mod error;
pub mod exit;
pub mod fsio;
pub mod ids;
pub mod intern;
pub mod node;
pub mod nodeset;
pub mod protocol;
pub mod time;

pub use category::{ErrorCategory, Severity, Subsystem};
pub use error::TypesError;
pub use exit::{ExitClass, ExitStatus, FailureCause, UserFailureKind};
pub use fsio::{Fs, RealFs};
pub use ids::{AppId, CabinetId, JobId, NodeId, UserId};
pub use intern::Sym;
pub use node::NodeType;
pub use nodeset::NodeSet;
pub use time::{LazyTimestamp, SimDuration, Timestamp};
