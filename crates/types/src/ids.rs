//! Strongly-typed identifiers.
//!
//! Every entity in the study — a compute node, a batch job, an application
//! run (an `aprun` instance, identified on a real Cray by its *apid*), a user
//! — gets its own newtype so they can never be confused (C-NEWTYPE).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a compute or service node.
///
/// On a Cray this is the *nid* — the number in hostnames such as `nid04008`.
///
/// ```
/// use logdiver_types::NodeId;
/// let nid = NodeId::new(4008);
/// assert_eq!(nid.to_string(), "nid04008");
/// assert_eq!(NodeId::parse_hostname("nid04008"), Some(nid));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw nid number.
    pub const fn new(nid: u32) -> Self {
        NodeId(nid)
    }

    /// Returns the raw nid number.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Returns the canonical hostname (`nidNNNNN`, zero padded to 5 digits).
    pub fn hostname(self) -> String {
        format!("nid{:05}", self.0)
    }

    /// Parses a hostname of the form `nidNNNNN`.
    ///
    /// Returns `None` when the string does not follow the convention.
    pub fn parse_hostname(s: &str) -> Option<Self> {
        let digits = s.strip_prefix("nid")?;
        if digits.is_empty() || digits.len() > 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse::<u32>().ok().map(NodeId)
    }

    /// [`NodeId::parse_hostname`] over raw bytes — the zero-copy parse
    /// path. Accepts exactly the same inputs (the convention is pure
    /// ASCII, so no UTF-8 decoding is ever needed).
    pub fn parse_hostname_bytes(b: &[u8]) -> Option<Self> {
        let digits = b.strip_prefix(b"nid")?;
        if digits.is_empty() || digits.len() > 8 {
            return None;
        }
        let mut nid: u32 = 0;
        for &d in digits {
            if !d.is_ascii_digit() {
                return None;
            }
            nid = nid * 10 + (d - b'0') as u32;
        }
        Some(NodeId(nid))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nid{:05}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(nid: u32) -> Self {
        NodeId(nid)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

/// Identifier of a batch job (Torque/Moab job id).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct JobId(u64);

impl JobId {
    /// Creates a job id.
    pub const fn new(id: u64) -> Self {
        JobId(id)
    }

    /// Returns the raw id.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Torque writes job ids as `<seq>.<server>`; we use a fixed server name.
        write!(f, "{}.bw", self.0)
    }
}

impl From<u64> for JobId {
    fn from(id: u64) -> Self {
        JobId(id)
    }
}

/// Identifier of an application run — one `aprun` launch inside a job.
///
/// Mirrors the ALPS *apid*. A job may launch many applications; the paper's
/// unit of analysis is the application run, not the job.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct AppId(u64);

impl AppId {
    /// Creates an application id.
    pub const fn new(id: u64) -> Self {
        AppId(id)
    }

    /// Returns the raw apid.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for AppId {
    fn from(id: u64) -> Self {
        AppId(id)
    }
}

/// Anonymized user identifier.
///
/// Field data is anonymized before analysis (as in the paper); users are
/// numbered and rendered as `u0421`-style tokens.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct UserId(u32);

impl UserId {
    /// Creates a user id.
    pub const fn new(id: u32) -> Self {
        UserId(id)
    }

    /// Returns the raw id.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{:04}", self.0)
    }
}

impl From<u32> for UserId {
    fn from(id: u32) -> Self {
        UserId(id)
    }
}

/// Identifier of a cabinet in the machine room, addressed as `cX-Y`
/// (column/row), mirroring Cray cabinet naming.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CabinetId {
    /// Column of the cabinet on the machine-room floor.
    pub column: u16,
    /// Row of the cabinet on the machine-room floor.
    pub row: u16,
}

impl CabinetId {
    /// Creates a cabinet id from floor coordinates.
    pub const fn new(column: u16, row: u16) -> Self {
        CabinetId { column, row }
    }
}

impl fmt::Display for CabinetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}-{}", self.column, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_hostname_round_trip() {
        for nid in [0u32, 1, 99, 4008, 26863, 99999] {
            let id = NodeId::new(nid);
            assert_eq!(NodeId::parse_hostname(&id.hostname()), Some(id));
        }
    }

    #[test]
    fn node_id_display_matches_hostname() {
        let id = NodeId::new(7);
        assert_eq!(id.to_string(), id.hostname());
        assert_eq!(id.to_string(), "nid00007");
    }

    #[test]
    fn node_id_parse_rejects_garbage() {
        assert_eq!(NodeId::parse_hostname(""), None);
        assert_eq!(NodeId::parse_hostname("nid"), None);
        assert_eq!(NodeId::parse_hostname("nid12ab"), None);
        assert_eq!(NodeId::parse_hostname("node00012"), None);
        assert_eq!(NodeId::parse_hostname("nid999999999"), None);
    }

    #[test]
    fn node_id_byte_parse_matches_str_parse() {
        for s in [
            "",
            "nid",
            "nid0",
            "nid04008",
            "nid99999999",
            "nid999999999",
            "nid12ab",
            "node00012",
            "nidÿ12",
            "nid+1",
        ] {
            assert_eq!(
                NodeId::parse_hostname_bytes(s.as_bytes()),
                NodeId::parse_hostname(s),
                "disagreement on {s:?}"
            );
        }
        assert_eq!(NodeId::parse_hostname_bytes(b"nid\xFF\xFE"), None);
    }

    #[test]
    fn job_id_display_uses_server_suffix() {
        assert_eq!(JobId::new(123456).to_string(), "123456.bw");
    }

    #[test]
    fn user_id_display_is_anonymized_token() {
        assert_eq!(UserId::new(421).to_string(), "u0421");
    }

    #[test]
    fn cabinet_id_display() {
        assert_eq!(CabinetId::new(12, 3).to_string(), "c12-3");
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(NodeId::new(3) < NodeId::new(4));
        assert!(AppId::new(10) > AppId::new(9));
        assert!(JobId::new(1) < JobId::new(2));
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(u32::from(NodeId::from(17u32)), 17);
        assert_eq!(AppId::from(99u64).value(), 99);
    }
}
