//! Global string interning for hot, highly repeated log fields.
//!
//! The craylog parsers see the same few strings millions of times —
//! hostnames (`nid04008`), subsystem tags (`kernel`, `lustre`), executable
//! names, queue names. Allocating a fresh `String` per field per line is
//! the dominant allocation cost of a 518-day batch parse. [`Sym`] replaces
//! those fields with a `u32` handle into a process-wide table: interning a
//! string that was seen before is a hash lookup with no allocation, and
//! equality between interned fields is a single integer compare.
//!
//! The table is append-only and process-global; interned strings are leaked
//! once and live for the program's lifetime. That is the right trade here:
//! the universe of hot strings is small and bounded (≈30 k hostnames, tens
//! of tags, hundreds of commands), while the line volume is unbounded.
//! Interning is sharded, so parallel parse workers interning concurrently
//! contend only when they hash to the same shard.
//!
//! ```
//! use logdiver_types::Sym;
//!
//! let a = Sym::intern("nid04008");
//! let b = Sym::intern("nid04008");
//! assert_eq!(a, b); // u32 compare, no string walk
//! assert_eq!(a.as_str(), "nid04008");
//! assert_eq!(a, "nid04008"); // convenient in tests
//! ```

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, RandomState};
use std::sync::{Mutex, OnceLock, RwLock};

use serde::{DeError, Deserialize, Serialize, Value};

/// Number of lock shards in the intern map. Power of two; enough that 8
/// parse workers rarely collide on a shard.
const SHARDS: usize = 32;

/// The process-wide interner backing [`Sym`].
struct Interner {
    /// string → id, sharded by string hash.
    shards: Vec<Mutex<HashMap<&'static str, u32>>>,
    /// id → string. Append-only; readers take the read lock briefly.
    table: RwLock<Vec<&'static str>>,
    hasher: RandomState,
}

fn global() -> &'static Interner {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(|| Interner {
        shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        table: RwLock::new(Vec::new()),
        hasher: RandomState::new(),
    })
}

/// An interned string: a `u32` handle into the global intern table.
///
/// `Copy`, 4 bytes, and compares/hashes as an integer. Two `Sym`s are equal
/// exactly when the strings they intern are equal. Use
/// [`Sym::intern`] to obtain one and [`Sym::as_str`] to read it back;
/// `Display` renders the underlying string, so formatting code does not
/// change when a field becomes a `Sym`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Interns `s`, returning its stable handle. The first intern of a
    /// string allocates (and leaks) one copy; every later intern of an
    /// equal string is allocation-free.
    pub fn intern(s: &str) -> Sym {
        let interner = global();
        let hash = interner.hasher.hash_one(s);
        let shard = &interner.shards[(hash as usize) % SHARDS];
        // lint: allow(no-panic) poisoning requires a panic in another interning thread; propagating it is the designed response
        let mut map = shard.lock().expect("intern shard poisoned");
        if let Some(&id) = map.get(s) {
            return Sym(id);
        }
        // New string: leak one copy, append it to the id table. The shard
        // lock is still held, so an equal string racing in another thread
        // (it hashes to this same shard) cannot double-insert.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        // lint: allow(no-panic) poisoning requires a panic in another interning thread; propagating it is the designed response
        let mut table = interner.table.write().expect("intern table poisoned");
        // lint: allow(no-panic) overflow needs 2^32 distinct strings; the corpus vocabulary is bounded far below that
        let id = u32::try_from(table.len()).expect("intern table overflow");
        table.push(leaked);
        drop(table);
        map.insert(leaked, id);
        Sym(id)
    }

    /// Interns a field straight from raw log bytes: the zero-copy parser
    /// fast path. Validates UTF-8 in place (no `String` is ever built) and
    /// then takes the same sharded hash lookup as [`Sym::intern`] — a hit
    /// touches no allocator at all. Returns `None` for invalid UTF-8,
    /// which callers treat as a parse rejection.
    pub fn resolve_bytes(bytes: &[u8]) -> Option<Sym> {
        let s = std::str::from_utf8(bytes).ok()?;
        Some(Sym::intern(s))
    }

    /// The interned string. Lives for the program's lifetime.
    pub fn as_str(self) -> &'static str {
        let table = global().table.read().expect("intern table poisoned");
        table[self.0 as usize]
    }

    /// The raw handle value. Stable within one process run only — ids are
    /// assigned in first-intern order, so they must never be persisted.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::intern(&s)
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<Sym> for str {
    fn eq(&self, other: &Sym) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.as_str()
    }
}

// Serialized as the plain string (ids are process-local), so records with
// interned fields keep their JSON shape; deserializing re-interns.
impl Serialize for Sym {
    fn serialize_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for Sym {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(Sym::intern)
            .ok_or_else(|| DeError::custom("expected string for Sym"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_strings_intern_to_equal_syms() {
        let a = Sym::intern("kernel");
        let b = Sym::intern("kernel");
        let c = Sym::intern("lustre");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "kernel");
        assert_eq!(a.to_string(), "kernel");
    }

    #[test]
    fn str_comparisons_work_both_ways() {
        let s = Sym::intern("nid00042");
        assert_eq!(s, "nid00042");
        assert_eq!("nid00042", s);
        assert!(s != "nid00043");
        assert_eq!(format!("{s:?}"), "\"nid00042\"");
    }

    #[test]
    fn resolve_bytes_matches_intern_and_rejects_bad_utf8() {
        let a = Sym::intern("lustre");
        assert_eq!(Sym::resolve_bytes(b"lustre"), Some(a));
        assert_eq!(Sym::resolve_bytes("κρίσιμο".as_bytes()).unwrap(), "κρίσιμο");
        assert_eq!(Sym::resolve_bytes(b"\xFF\xFEbad"), None);
        assert_eq!(Sym::resolve_bytes(b""), Some(Sym::intern("")));
    }

    #[test]
    fn from_impls_intern() {
        let a: Sym = "namd2".into();
        let b: Sym = String::from("namd2").into();
        assert_eq!(a, b);
    }

    #[test]
    fn serde_round_trips_as_string() {
        let s = Sym::intern("normal");
        let v = s.serialize_value();
        assert_eq!(v.as_str(), Some("normal"));
        let back = Sym::deserialize_value(&v).unwrap();
        assert_eq!(back, s);
        assert!(Sym::deserialize_value(&Value::Int(3)).is_err());
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..1000)
                        .map(|i| Sym::intern(&format!("host{:04}", (i + t) % 257)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (t, syms) in results.iter().enumerate() {
            for (i, s) in syms.iter().enumerate() {
                assert_eq!(
                    s.as_str(),
                    format!("host{:04}", (i + t) % 257),
                    "thread {t} item {i}"
                );
            }
        }
    }
}
