//! Compact sets of node ids.
//!
//! LogDiver's central join — "which error events touched which application
//! runs?" — intersects node sets millions of times, so we store them as
//! bitmaps (one bit per nid) with a cached population count. The universe is
//! grown on demand; Blue Waters has < 2^15 nids, so a set costs a few KiB at
//! most.

use std::fmt;
use std::iter::FromIterator;

use serde::{Deserialize, Serialize};

use crate::ids::NodeId;

const WORD_BITS: usize = 64;

/// A set of [`NodeId`]s backed by a bitmap.
///
/// ```
/// use logdiver_types::{NodeId, NodeSet};
///
/// let a: NodeSet = [1u32, 2, 3, 100].into_iter().map(NodeId::new).collect();
/// let b: NodeSet = [3u32, 100, 200].into_iter().map(NodeId::new).collect();
/// assert!(a.intersects(&b));
/// assert_eq!(a.intersection_count(&b), 2);
/// assert_eq!(a.to_string(), "nid[1-3,100]");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        NodeSet::default()
    }

    /// Creates an empty set pre-sized for nids `< capacity`.
    pub fn with_capacity(capacity: u32) -> Self {
        NodeSet {
            words: vec![0; (capacity as usize).div_ceil(WORD_BITS)],
            len: 0,
        }
    }

    /// Creates the set `{first, first+1, ..., last}` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `first > last`.
    pub fn from_range(first: NodeId, last: NodeId) -> Self {
        assert!(first <= last, "range start after end");
        let mut set = NodeSet::with_capacity(last.value() + 1);
        for nid in first.value()..=last.value() {
            set.insert(NodeId::new(nid));
        }
        set
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a node; returns true if it was newly inserted.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let (w, b) = (
            node.value() as usize / WORD_BITS,
            node.value() as usize % WORD_BITS,
        );
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes a node; returns true if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let (w, b) = (
            node.value() as usize / WORD_BITS,
            node.value() as usize % WORD_BITS,
        );
        if w >= self.words.len() {
            return false;
        }
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            self.words[w] &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Membership test.
    pub fn contains(&self, node: NodeId) -> bool {
        let (w, b) = (
            node.value() as usize / WORD_BITS,
            node.value() as usize % WORD_BITS,
        );
        self.words
            .get(w)
            .is_some_and(|word| word & (1u64 << b) != 0)
    }

    /// Removes all nodes, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// True when the two sets share at least one node (early-exits).
    pub fn intersects(&self, other: &NodeSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Number of nodes in the intersection.
    pub fn intersection_count(&self, other: &NodeSet) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &NodeSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
        self.recount();
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        for (i, a) in self.words.iter_mut().enumerate() {
            *a &= other.words.get(i).copied().unwrap_or(0);
        }
        self.recount();
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &NodeSet) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
        self.recount();
    }

    /// True when every node of `self` is in `other`.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        self.words.iter().enumerate().all(|(i, a)| {
            let b = other.words.get(i).copied().unwrap_or(0);
            a & !b == 0
        })
    }

    /// Iterates the nids in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterates maximal runs of consecutive nids as `(first, last)` pairs
    /// (inclusive) — the basis of the `cnl`-style compressed rendering.
    pub fn ranges(&self) -> Ranges<'_> {
        Ranges {
            inner: self.iter(),
            pending: None,
        }
    }

    /// The smallest nid in the set, if any.
    pub fn first(&self) -> Option<NodeId> {
        self.iter().next()
    }

    fn recount(&mut self) {
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }
}

/// Iterator over the nids of a [`NodeSet`] in ascending order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a NodeSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros();
                self.current &= self.current - 1;
                return Some(NodeId::new((self.word_idx * WORD_BITS) as u32 + bit));
            }
            self.word_idx += 1;
            self.current = *self.set.words.get(self.word_idx)?;
        }
    }
}

/// Iterator over maximal consecutive runs of a [`NodeSet`].
#[derive(Debug, Clone)]
pub struct Ranges<'a> {
    inner: Iter<'a>,
    pending: Option<(u32, u32)>,
}

impl Iterator for Ranges<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        loop {
            match (self.pending, self.inner.next()) {
                (None, None) => return None,
                (None, Some(n)) => self.pending = Some((n.value(), n.value())),
                (Some((first, last)), Some(n)) if n.value() == last + 1 => {
                    self.pending = Some((first, last + 1));
                }
                (Some((first, last)), Some(n)) => {
                    self.pending = Some((n.value(), n.value()));
                    return Some((NodeId::new(first), NodeId::new(last)));
                }
                (Some((first, last)), None) => {
                    self.pending = None;
                    return Some((NodeId::new(first), NodeId::new(last)));
                }
            }
        }
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut set = NodeSet::new();
        set.extend(iter);
        set
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for n in iter {
            self.insert(n);
        }
    }
}

impl fmt::Display for NodeSet {
    /// Renders as `nid[1-3,100]`, the compressed-node-list convention.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("nid[]");
        }
        f.write_str("nid[")?;
        for (i, (first, last)) in self.ranges().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            if first == last {
                write!(f, "{}", first.value())?;
            } else {
                write!(f, "{}-{}", first.value(), last.value())?;
            }
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn set_of(nids: &[u32]) -> NodeSet {
        nids.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new();
        assert!(s.insert(NodeId::new(5)));
        assert!(!s.insert(NodeId::new(5)));
        assert!(s.contains(NodeId::new(5)));
        assert!(!s.contains(NodeId::new(6)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(NodeId::new(5)));
        assert!(!s.remove(NodeId::new(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn range_constructor() {
        let s = NodeSet::from_range(NodeId::new(10), NodeId::new(14));
        assert_eq!(s.len(), 5);
        assert!(s.contains(NodeId::new(10)) && s.contains(NodeId::new(14)));
        assert!(!s.contains(NodeId::new(15)));
    }

    #[test]
    #[should_panic(expected = "range start after end")]
    fn range_constructor_rejects_inverted() {
        let _ = NodeSet::from_range(NodeId::new(5), NodeId::new(4));
    }

    #[test]
    fn display_compresses_runs() {
        assert_eq!(set_of(&[]).to_string(), "nid[]");
        assert_eq!(set_of(&[7]).to_string(), "nid[7]");
        assert_eq!(set_of(&[1, 2, 3, 100]).to_string(), "nid[1-3,100]");
        assert_eq!(set_of(&[0, 2, 3, 4, 9, 10]).to_string(), "nid[0,2-4,9-10]");
    }

    #[test]
    fn set_algebra_basics() {
        let mut a = set_of(&[1, 2, 3, 64, 65]);
        let b = set_of(&[3, 64, 200]);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_count(&b), 2);
        a.intersect_with(&b);
        assert_eq!(a, set_of(&[3, 64]));

        let mut u = set_of(&[1]);
        u.union_with(&set_of(&[1000]));
        assert_eq!(u.len(), 2);
        assert!(u.contains(NodeId::new(1000)));

        let mut d = set_of(&[1, 2, 3]);
        d.difference_with(&set_of(&[2]));
        assert_eq!(d, set_of(&[1, 3]));

        assert!(set_of(&[1, 3]).is_subset(&set_of(&[1, 2, 3])));
        assert!(!set_of(&[1, 4]).is_subset(&set_of(&[1, 2, 3])));
        assert!(set_of(&[]).is_subset(&set_of(&[])));
    }

    #[test]
    fn iter_is_sorted_across_word_boundaries() {
        let s = set_of(&[63, 64, 65, 127, 128, 300]);
        let v: Vec<u32> = s.iter().map(|n| n.value()).collect();
        assert_eq!(v, vec![63, 64, 65, 127, 128, 300]);
    }

    #[test]
    fn clear_keeps_nothing() {
        let mut s = set_of(&[1, 99, 1000]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    proptest! {
        #[test]
        fn matches_btreeset_model(ops in proptest::collection::vec((0u32..2000, any::<bool>()), 0..200)) {
            let mut set = NodeSet::new();
            let mut model = BTreeSet::new();
            for (nid, add) in ops {
                if add {
                    prop_assert_eq!(set.insert(NodeId::new(nid)), model.insert(nid));
                } else {
                    prop_assert_eq!(set.remove(NodeId::new(nid)), model.remove(&nid));
                }
            }
            prop_assert_eq!(set.len(), model.len());
            let got: Vec<u32> = set.iter().map(|n| n.value()).collect();
            let want: Vec<u32> = model.into_iter().collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn intersection_matches_model(a in proptest::collection::btree_set(0u32..512, 0..64),
                                      b in proptest::collection::btree_set(0u32..512, 0..64)) {
            let sa: NodeSet = a.iter().copied().map(NodeId::new).collect();
            let sb: NodeSet = b.iter().copied().map(NodeId::new).collect();
            let expected: BTreeSet<u32> = a.intersection(&b).copied().collect();
            prop_assert_eq!(sa.intersection_count(&sb), expected.len());
            prop_assert_eq!(sa.intersects(&sb), !expected.is_empty());
            let mut inter = sa.clone();
            inter.intersect_with(&sb);
            let got: BTreeSet<u32> = inter.iter().map(|n| n.value()).collect();
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn ranges_cover_exactly_the_members(a in proptest::collection::btree_set(0u32..300, 0..80)) {
            let s: NodeSet = a.iter().copied().map(NodeId::new).collect();
            let mut covered = BTreeSet::new();
            let mut last_end: Option<u32> = None;
            for (first, last) in s.ranges() {
                prop_assert!(first <= last);
                // Ranges are maximal: separated by at least one gap.
                if let Some(pe) = last_end {
                    prop_assert!(first.value() > pe + 1);
                }
                last_end = Some(last.value());
                for nid in first.value()..=last.value() {
                    covered.insert(nid);
                }
            }
            prop_assert_eq!(covered, a);
        }
    }
}
