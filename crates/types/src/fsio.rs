//! A narrow filesystem seam for durable state.
//!
//! Everything the checkpoint layer needs from a filesystem fits in seven
//! operations — read a file, write-and-sync a file, rename, remove,
//! create a directory, list a directory, probe existence. [`Fs`] names
//! exactly that surface so the production path ([`RealFs`], plain
//! `std::fs`) and the fault-injection path (`bw-faults`' seeded chaos
//! filesystem) are interchangeable: `logdiver-stream` writes checkpoints
//! through it, `logdiver-serve` replicates them through it, and the chaos
//! tests drive both through a filesystem that tears writes, runs out of
//! space, and rots bytes at rest — deterministically, from a seed.
//!
//! The trait lives in `logdiver-types` (the dependency-light root of the
//! workspace) so both the writers (`stream`, `serve`) and the fault
//! injector (`bw-faults`) can see it without coupling to each other.

use std::io;
use std::path::{Path, PathBuf};

/// The filesystem operations durable state is allowed to use.
///
/// Contract notes:
///
/// * [`Fs::write`] creates-or-truncates, writes all bytes, and syncs them
///   to stable storage before returning `Ok` — callers get atomicity by
///   writing a temp sibling and then [`Fs::rename`]-ing over the target.
/// * [`Fs::list`] returns the *file names* (not paths) of plain files
///   directly under `dir`, sorted, so replica scans are deterministic.
/// * Errors are plain [`io::Error`]s; injected faults use the matching
///   [`io::ErrorKind`] (`StorageFull` for ENOSPC, `TimedOut` for stalled
///   I/O, …) so production error handling is exercised unchanged.
pub trait Fs: std::fmt::Debug + Send + Sync {
    /// Reads the entire file at `path`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotFound`] when absent; any other I/O failure.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates (or truncates) `path`, writes `bytes`, and syncs to stable
    /// storage.
    ///
    /// # Errors
    ///
    /// Any create/write/sync failure. A failed write may leave a partial
    /// file behind — which is why durable writers go through a temp
    /// sibling plus [`Fs::rename`].
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` to `to` (same directory in practice).
    ///
    /// # Errors
    ///
    /// Any rename failure, including `from` being absent.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotFound`] when absent; any other I/O failure.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Creates `dir` and any missing parents.
    ///
    /// # Errors
    ///
    /// Any failure other than the directory already existing.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// The sorted file names (not paths) of plain files directly under
    /// `dir`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotFound`] when the directory is absent; any
    /// other I/O failure.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;

    /// Whether anything exists at `path`.
    fn exists(&self, path: &Path) -> bool;
}

/// The production [`Fs`]: plain `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl Fs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut file = std::fs::File::create(path)?;
        file.write_all(bytes)?;
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// The temp-sibling path used for atomic writes: `<path>.tmp`.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    PathBuf::from(tmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_fs_round_trips_and_lists_sorted() {
        let dir = std::env::temp_dir().join(format!("logdiver-fsio-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = RealFs;
        fs.create_dir_all(&dir).unwrap();
        fs.write(&dir.join("b.txt"), b"bee").unwrap();
        fs.write(&dir.join("a.txt"), b"ay").unwrap();
        assert_eq!(fs.read(&dir.join("a.txt")).unwrap(), b"ay");
        assert_eq!(fs.list(&dir).unwrap(), vec!["a.txt", "b.txt"]);
        fs.rename(&dir.join("a.txt"), &dir.join("c.txt")).unwrap();
        assert!(!fs.exists(&dir.join("a.txt")));
        assert!(fs.exists(&dir.join("c.txt")));
        fs.remove_file(&dir.join("c.txt")).unwrap();
        assert_eq!(
            fs.read(&dir.join("c.txt")).unwrap_err().kind(),
            std::io::ErrorKind::NotFound
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tmp_sibling_appends_suffix() {
        assert_eq!(
            tmp_sibling(Path::new("/x/t.ckpt")),
            PathBuf::from("/x/t.ckpt.tmp")
        );
    }
}
