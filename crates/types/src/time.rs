//! Time handling for the field study.
//!
//! The study spans 518 production days; log lines carry wall-clock
//! timestamps. We represent instants as seconds since the Unix epoch
//! ([`Timestamp`]) and spans as signed seconds ([`SimDuration`]), and provide
//! civil-date formatting/parsing (`YYYY-MM-DD HH:MM:SS`) without pulling in
//! an external time crate — the proleptic-Gregorian conversions below are the
//! classic *days-from-civil* / *civil-from-days* algorithms.
//!
//! **Logical clock contract:** [`Timestamp`] values only ever come from the
//! data (parsed log lines) or from arithmetic on such values — never from
//! the host clock. This module is inside the `checkpoint-state-clock`
//! guard of `logdiver lint`: a `SystemTime`/`Instant` appearing here (or in
//! any checkpointable state) breaks resume determinism and fails CI.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::TypesError;

/// An instant in time: seconds since the Unix epoch (UTC).
///
/// ```
/// use logdiver_types::Timestamp;
/// let t = Timestamp::from_ymd_hms(2013, 3, 28, 0, 0, 0);
/// assert_eq!(t.to_string(), "2013-03-28 00:00:00");
/// let u: Timestamp = "2013-03-28 00:00:00".parse()?;
/// assert_eq!(t, u);
/// # Ok::<(), logdiver_types::TypesError>(())
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(i64);

/// A span of time in seconds. May be negative (difference of two instants).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(i64);

/// Days from civil date, proleptic Gregorian calendar.
///
/// Returns the number of days since 1970-01-01. Valid for the whole i32 year
/// range we care about.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // [0, 11], Mar=0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Civil date from days since 1970-01-01 (inverse of [`days_from_civil`]).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

impl Timestamp {
    /// The conventional start of the measured production period
    /// (Blue Waters entered full production in late March 2013).
    pub const PRODUCTION_EPOCH: Timestamp = Timestamp(1_364_342_400); // 2013-03-27 00:00:00 UTC

    /// Creates a timestamp from raw seconds since the Unix epoch.
    pub const fn from_unix(secs: i64) -> Self {
        Timestamp(secs)
    }

    /// Returns seconds since the Unix epoch.
    pub const fn as_unix(self) -> i64 {
        self.0
    }

    /// Builds a timestamp from a civil date and time of day (UTC).
    ///
    /// # Panics
    ///
    /// Panics if `month`, `day`, `hour`, `min` or `sec` are out of range.
    pub fn from_ymd_hms(year: i64, month: u32, day: u32, hour: u32, min: u32, sec: u32) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!((1..=31).contains(&day), "day out of range: {day}");
        assert!(
            hour < 24 && min < 60 && sec < 60,
            "time of day out of range"
        );
        let days = days_from_civil(year, month, day);
        Timestamp(days * 86_400 + hour as i64 * 3_600 + min as i64 * 60 + sec as i64)
    }

    /// Decomposes the timestamp into `(year, month, day, hour, min, sec)` UTC.
    pub fn to_ymd_hms(self) -> (i64, u32, u32, u32, u32, u32) {
        let days = self.0.div_euclid(86_400);
        let secs = self.0.rem_euclid(86_400);
        let (y, m, d) = civil_from_days(days);
        (
            y,
            m,
            d,
            (secs / 3_600) as u32,
            ((secs % 3_600) / 60) as u32,
            (secs % 60) as u32,
        )
    }

    /// Number of whole days since [`Timestamp::PRODUCTION_EPOCH`].
    ///
    /// Negative before production start.
    pub fn production_day(self) -> i64 {
        (self.0 - Self::PRODUCTION_EPOCH.0).div_euclid(86_400)
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> Self {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// Parses `YYYY-MM-DD HH:MM:SS` directly from bytes.
    ///
    /// Accepts exactly the same inputs as the [`FromStr`] grammar (the
    /// canonical fixed-width form takes a branch-light fast path; anything
    /// else — leading `+`, extra zeros, variable widths — falls back to
    /// the loose parser), but never allocates and never inspects the
    /// input as UTF-8 on the fast path.
    pub fn parse_bytes(b: &[u8]) -> Option<Timestamp> {
        LazyTimestamp::validate(b).map(LazyTimestamp::decode)
    }

    /// Absolute difference between two instants.
    pub fn abs_diff(self, other: Timestamp) -> SimDuration {
        SimDuration((self.0 - other.0).abs())
    }
}

/// A timestamp whose bytes have been *validated* but whose epoch value may
/// not have been computed yet.
///
/// The zero-copy parsers validate the timestamp field eagerly (a record
/// with a torn or garbage timestamp must be rejected up front, before any
/// other field is trusted) but defer the civil-date → epoch arithmetic
/// until the record is known to survive downstream validation. For the
/// canonical fixed-width form this stores the six decoded fields; inputs
/// that only the loose [`FromStr`] grammar accepts (leading `+`, extra
/// zeros, variable widths) are decoded eagerly on the slow path so both
/// representations agree with `str::parse::<Timestamp>` byte-for-byte.
///
/// This is a transient parse-time value: it deliberately implements
/// neither `PartialEq` nor serde, so it cannot leak into checkpointable
/// state — compare or store [`LazyTimestamp::decode`] results instead.
#[derive(Debug, Clone, Copy)]
pub enum LazyTimestamp {
    /// Canonical `YYYY-MM-DD HH:MM:SS`: fields range-checked, epoch
    /// arithmetic deferred.
    Fields {
        /// Four-digit year.
        year: u16,
        /// Month, `1..=12`.
        month: u8,
        /// Day of month, `1..=31`.
        day: u8,
        /// Hour, `0..24`.
        hour: u8,
        /// Minute, `0..60`.
        min: u8,
        /// Second, `0..60`.
        sec: u8,
    },
    /// A non-canonical form the loose grammar accepts; decoded eagerly.
    Decoded(Timestamp),
}

impl LazyTimestamp {
    /// Validates timestamp bytes without computing the epoch value.
    ///
    /// Returns `None` exactly when `str::parse::<Timestamp>` would fail on
    /// the same (UTF-8) bytes.
    pub fn validate(b: &[u8]) -> Option<LazyTimestamp> {
        if let Some(t) = canonical_fields(b) {
            return Some(t);
        }
        // Slow path: whatever the loose split-based grammar accepts
        // (`+2013-3-28 1:02:3` and friends). Decode now — laziness only
        // pays on the canonical form, which is all real logs emit.
        let s = std::str::from_utf8(b).ok()?;
        s.parse::<Timestamp>().ok().map(LazyTimestamp::Decoded)
    }

    /// Computes the epoch value (the deferred half of parsing).
    pub fn decode(self) -> Timestamp {
        match self {
            LazyTimestamp::Fields {
                year,
                month,
                day,
                hour,
                min,
                sec,
            } => {
                let days = days_from_civil(year as i64, month as u32, day as u32);
                Timestamp(days * 86_400 + hour as i64 * 3_600 + min as i64 * 60 + sec as i64)
            }
            LazyTimestamp::Decoded(t) => t,
        }
    }
}

/// The canonical fixed-width fast path: exactly 19 bytes, digits and
/// separators at fixed positions, same range checks as the loose grammar.
fn canonical_fields(b: &[u8]) -> Option<LazyTimestamp> {
    if b.len() != 19 {
        return None;
    }
    if b[4] != b'-' || b[7] != b'-' || b[10] != b' ' || b[13] != b':' || b[16] != b':' {
        return None;
    }
    let two = |i: usize| -> Option<u16> {
        let (hi, lo) = (b[i].wrapping_sub(b'0'), b[i + 1].wrapping_sub(b'0'));
        if hi < 10 && lo < 10 {
            Some(hi as u16 * 10 + lo as u16)
        } else {
            None
        }
    };
    let year = two(0)? * 100 + two(2)?;
    let month = two(5)? as u8;
    let day = two(8)? as u8;
    let hour = two(11)? as u8;
    let min = two(14)? as u8;
    let sec = two(17)? as u8;
    if !(1..=12).contains(&month)
        || !(1..=31).contains(&day)
        || hour >= 24
        || min >= 60
        || sec >= 60
    {
        return None;
    }
    Some(LazyTimestamp::Fields {
        year,
        month,
        day,
        hour,
        min,
        sec,
    })
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d, h, mi, s) = self.to_ymd_hms();
        write!(f, "{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02}")
    }
}

impl FromStr for Timestamp {
    type Err = TypesError;

    /// Parses `YYYY-MM-DD HH:MM:SS` (the format used across our log sources).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || TypesError::BadTimestamp(s.to_string());
        let (date, tod) = s.split_once(' ').ok_or_else(bad)?;
        let mut dit = date.split('-');
        let y: i64 = dit.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let mo: u32 = dit.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let d: u32 = dit.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if dit.next().is_some() {
            return Err(bad());
        }
        let mut tit = tod.split(':');
        let h: u32 = tit.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let mi: u32 = tit.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let sec: u32 = tit.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if tit.next().is_some() {
            return Err(bad());
        }
        if !(1..=12).contains(&mo) || !(1..=31).contains(&d) || h >= 24 || mi >= 60 || sec >= 60 {
            return Err(bad());
        }
        Ok(Timestamp::from_ymd_hms(y, mo, d, h, mi, sec))
    }
}

impl Add<SimDuration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: SimDuration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for Timestamp {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: SimDuration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = SimDuration;
    fn sub(self, rhs: Timestamp) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: i64) -> Self {
        SimDuration(secs)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: i64) -> Self {
        SimDuration(mins * 60)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: i64) -> Self {
        SimDuration(hours * 3_600)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(days: i64) -> Self {
        SimDuration(days * 86_400)
    }

    /// Creates a duration from fractional hours, rounding to whole seconds.
    pub fn from_hours_f64(hours: f64) -> Self {
        SimDuration((hours * 3_600.0).round() as i64)
    }

    /// The duration in seconds.
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// The duration in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600.0
    }

    /// The duration in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }

    /// True when the duration is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Absolute value.
    pub const fn abs(self) -> Self {
        SimDuration(self.0.abs())
    }

    /// Clamps the duration into `[lo, hi]`.
    pub fn clamp(self, lo: SimDuration, hi: SimDuration) -> Self {
        SimDuration(self.0.clamp(lo.0, hi.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0.abs();
        let sign = if self.0 < 0 { "-" } else { "" };
        let (h, m, s) = (total / 3_600, (total % 3_600) / 60, total % 60);
        write!(f, "{sign}{h:02}:{m:02}:{s:02}")
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        let t = Timestamp::from_ymd_hms(1970, 1, 1, 0, 0, 0);
        assert_eq!(t.as_unix(), 0);
    }

    #[test]
    fn known_date_round_trips() {
        // 2013-03-27 00:00:00 UTC == 1364342400 (production epoch).
        let t = Timestamp::from_ymd_hms(2013, 3, 27, 0, 0, 0);
        assert_eq!(t, Timestamp::PRODUCTION_EPOCH);
        assert_eq!(t.to_ymd_hms(), (2013, 3, 27, 0, 0, 0));
    }

    #[test]
    fn leap_year_handling() {
        let feb29 = Timestamp::from_ymd_hms(2016, 2, 29, 12, 0, 0);
        assert_eq!(feb29.to_ymd_hms(), (2016, 2, 29, 12, 0, 0));
        let mar1 = feb29 + SimDuration::from_hours(12);
        assert_eq!(mar1.to_ymd_hms(), (2016, 3, 1, 0, 0, 0));
    }

    /// Unix-seconds range whose displayed years stay in 0001..=9999 — the
    /// window the four-digit `YYYY-MM-DD HH:MM:SS` format can represent.
    const MIN_FOUR_DIGIT_UNIX: i64 = -62_135_596_800; // 0001-01-01 00:00:00
    const MAX_FOUR_DIGIT_UNIX: i64 = 253_402_300_799; // 9999-12-31 23:59:59

    #[test]
    fn display_and_parse_round_trip_at_boundaries() {
        for secs in [
            MIN_FOUR_DIGIT_UNIX,
            -86_400,
            -1,
            0,
            1,
            1_364_342_400,
            1_400_000_123,
            MAX_FOUR_DIGIT_UNIX,
        ] {
            let t = Timestamp::from_unix(secs);
            let s = t.to_string();
            assert_eq!(s.len(), 19, "fixed-width format violated by {s:?}");
            let back: Timestamp = s.parse().unwrap();
            assert_eq!(back, t, "round trip failed for {s}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]

        /// Any representable second displays as exactly 19 characters and
        /// parses back to the same instant.
        #[test]
        fn display_and_parse_round_trip_everywhere(
            secs in MIN_FOUR_DIGIT_UNIX..MAX_FOUR_DIGIT_UNIX + 1,
        ) {
            let t = Timestamp::from_unix(secs);
            let shown = t.to_string();
            proptest::prop_assert_eq!(shown.len(), 19);
            let back: Timestamp = shown.parse().unwrap();
            proptest::prop_assert_eq!(back, t);
        }

        /// Round trips survive adversarial clock skew, and the textual path
        /// agrees with the `to_ymd_hms`/`from_ymd_hms` field path.
        #[test]
        fn skewed_timestamps_round_trip(
            base in MIN_FOUR_DIGIT_UNIX + 500_000..MAX_FOUR_DIGIT_UNIX - 500_000,
            skew in -400_000i64..400_000,
        ) {
            let t = Timestamp::from_unix(base) + SimDuration::from_secs(skew);
            let back: Timestamp = t.to_string().parse().unwrap();
            proptest::prop_assert_eq!(back, t);
            let (y, mo, d, h, mi, s) = t.to_ymd_hms();
            proptest::prop_assert_eq!(Timestamp::from_ymd_hms(y, mo, d, h, mi, s), t);
        }
    }

    #[test]
    fn parse_bytes_agrees_with_from_str() {
        // Canonical, loose-but-accepted, and rejected forms all agree.
        for s in [
            "2013-03-28 12:30:00",
            "0001-01-01 00:00:00",
            "9999-12-31 23:59:59",
            "+2013-3-28 1:2:3",
            "02013-03-28 12:30:00",
            "2013-003-28 12:30:00",
            "2013-13-28 12:30:00",
            "2013-03-28 24:00:00",
            "2013-03-28 12:30:0",
            "2013-03-28 12:30:000",
            "2013-03-28T12:30:00",
            "2013-03-28",
            "",
            "garbage here 1234567",
        ] {
            let via_str = s.parse::<Timestamp>().ok();
            let via_bytes = Timestamp::parse_bytes(s.as_bytes());
            assert_eq!(via_bytes, via_str, "disagreement on {s:?}");
        }
        // Invalid UTF-8 is rejected, never a panic.
        assert_eq!(Timestamp::parse_bytes(b"2013-03-28 12:30:\xFF\xFE"), None);
    }

    #[test]
    fn lazy_timestamp_defers_canonical_decode() {
        let lazy = LazyTimestamp::validate(b"2013-03-28 12:30:05").unwrap();
        assert!(matches!(lazy, LazyTimestamp::Fields { .. }));
        assert_eq!(
            lazy.decode(),
            Timestamp::from_ymd_hms(2013, 3, 28, 12, 30, 5)
        );
        let eager = LazyTimestamp::validate(b"+2013-3-28 1:2:3").unwrap();
        assert!(matches!(eager, LazyTimestamp::Decoded(_)));
        assert_eq!(
            eager.decode(),
            Timestamp::from_ymd_hms(2013, 3, 28, 1, 2, 3)
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]

        /// The byte parser is extensionally equal to the str parser on
        /// arbitrary input, printable or not.
        #[test]
        fn parse_bytes_matches_from_str_on_arbitrary_input(s in "\\PC{0,30}") {
            proptest::prop_assert_eq!(
                Timestamp::parse_bytes(s.as_bytes()),
                s.parse::<Timestamp>().ok()
            );
        }

        /// Every representable second's display form takes the lazy fast
        /// path and decodes to the same instant.
        #[test]
        fn canonical_display_takes_fast_path(
            secs in MIN_FOUR_DIGIT_UNIX..MAX_FOUR_DIGIT_UNIX + 1,
        ) {
            let t = Timestamp::from_unix(secs);
            let shown = t.to_string();
            let lazy = LazyTimestamp::validate(shown.as_bytes()).unwrap();
            proptest::prop_assert!(matches!(lazy, LazyTimestamp::Fields { .. }));
            proptest::prop_assert_eq!(lazy.decode(), t);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("2013-03-27".parse::<Timestamp>().is_err());
        assert!("2013/03/27 00:00:00".parse::<Timestamp>().is_err());
        assert!("2013-13-27 00:00:00".parse::<Timestamp>().is_err());
        assert!("2013-03-27 25:00:00".parse::<Timestamp>().is_err());
        assert!("2013-03-27 00:00:00:00".parse::<Timestamp>().is_err());
        assert!("garbage".parse::<Timestamp>().is_err());
    }

    #[test]
    fn production_day_counts_from_epoch() {
        let t =
            Timestamp::PRODUCTION_EPOCH + SimDuration::from_days(517) + SimDuration::from_hours(23);
        assert_eq!(t.production_day(), 517);
        let before = Timestamp::PRODUCTION_EPOCH - SimDuration::from_secs(1);
        assert_eq!(before.production_day(), -1);
    }

    #[test]
    fn duration_arithmetic_and_display() {
        let d = SimDuration::from_hours(2) + SimDuration::from_mins(3) + SimDuration::from_secs(4);
        assert_eq!(d.to_string(), "02:03:04");
        assert_eq!((SimDuration::ZERO - d).to_string(), "-02:03:04");
        assert!((SimDuration::ZERO - d).is_negative());
        assert_eq!((SimDuration::ZERO - d).abs(), d);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_hours_f64(1.5).as_secs(), 5_400);
        assert!((SimDuration::from_secs(5_400).as_hours_f64() - 1.5).abs() < 1e-12);
        assert!((SimDuration::from_days(2).as_days_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn timestamp_subtraction_gives_duration() {
        let a = Timestamp::from_ymd_hms(2013, 3, 27, 0, 0, 0);
        let b = Timestamp::from_ymd_hms(2013, 3, 28, 6, 0, 0);
        assert_eq!(b - a, SimDuration::from_hours(30));
        assert_eq!(a.abs_diff(b), SimDuration::from_hours(30));
    }

    #[test]
    fn civil_conversion_exhaustive_span() {
        // Round-trip every day across several years including leap years.
        let start = days_from_civil(2012, 1, 1);
        let end = days_from_civil(2016, 12, 31);
        let mut prev = None;
        for z in start..=end {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
            if let Some(p) = prev {
                assert_eq!(z, p + 1);
            }
            prev = Some(z);
        }
    }
}
