//! The error taxonomy.
//!
//! Every raw log entry that survives LogDiver's filtering stage is assigned
//! an [`ErrorCategory`]. Categories roll up into [`Subsystem`]s (the level at
//! which the paper reports failure-cause breakdowns) and carry a [`Severity`]
//! that drives coalescing and attribution decisions.
//!
//! The taxonomy mirrors the error classes visible in a Cray XE/XK system's
//! logs: machine-check exceptions and memory errors on the nodes, Gemini
//! interconnect link/routing events, Lustre filesystem events, GPU errors on
//! hybrid nodes, kernel/software failures, and ALPS launcher errors.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Coarse subsystem a category belongs to; the granularity of the paper's
/// failure-cause breakdown tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Subsystem {
    /// Gemini high-speed network: links, lanes, routing.
    Interconnect,
    /// Lustre parallel filesystem: OSTs, MDS, client evictions.
    Filesystem,
    /// Node hardware other than memory: voltage, blade controller, heartbeat.
    NodeHardware,
    /// Memory subsystem: correctable/uncorrectable DIMM errors, MCEs.
    Memory,
    /// GPU on hybrid (XK) nodes.
    Gpu,
    /// System software: kernel panics, node hangs.
    SystemSoftware,
    /// Application launcher (ALPS) and placement infrastructure.
    Launcher,
}

impl Subsystem {
    /// All subsystems in report order.
    pub const ALL: [Subsystem; 7] = [
        Subsystem::Interconnect,
        Subsystem::Filesystem,
        Subsystem::NodeHardware,
        Subsystem::Memory,
        Subsystem::Gpu,
        Subsystem::SystemSoftware,
        Subsystem::Launcher,
    ];

    /// Human-readable name used in tables.
    pub const fn name(self) -> &'static str {
        match self {
            Subsystem::Interconnect => "Interconnect (Gemini)",
            Subsystem::Filesystem => "Filesystem (Lustre)",
            Subsystem::NodeHardware => "Node hardware",
            Subsystem::Memory => "Memory/MCE",
            Subsystem::Gpu => "GPU (hybrid)",
            Subsystem::SystemSoftware => "System software",
            Subsystem::Launcher => "Launcher (ALPS)",
        }
    }
}

impl fmt::Display for Subsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How serious a single log entry of a category is.
///
/// Ordering matters: `Info < Warning < Error < Critical < Fatal`; the
/// severity of a coalesced event is the maximum over its members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational; never causes failures by itself.
    Info,
    /// Suspicious but usually recoverable (e.g. correctable memory error).
    Warning,
    /// An error that can degrade or kill work on the affected scope.
    Error,
    /// An error that almost certainly kills work on the affected scope.
    Critical,
    /// Scope is lost (node dead, OST offline).
    Fatal,
}

impl Severity {
    /// Short uppercase label as it appears in syslog-like records.
    pub const fn label(self) -> &'static str {
        match self {
            Severity::Info => "INFO",
            Severity::Warning => "WARN",
            Severity::Error => "ERROR",
            Severity::Critical => "CRIT",
            Severity::Fatal => "FATAL",
        }
    }

    /// Parses the label produced by [`Severity::label`].
    pub fn parse_label(s: &str) -> Option<Self> {
        match s {
            "INFO" => Some(Severity::Info),
            "WARN" => Some(Severity::Warning),
            "ERROR" => Some(Severity::Error),
            "CRIT" => Some(Severity::Critical),
            "FATAL" => Some(Severity::Fatal),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The spatial scope an error of a given category affects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ErrorScope {
    /// A single node.
    Node,
    /// A blade (4 nodes sharing a mezzanine and Gemini ASICs).
    Blade,
    /// A whole cabinet (e.g. power distribution).
    Cabinet,
    /// Machine-wide (e.g. torus reroute, Lustre outage).
    System,
}

/// Fine-grained error category assigned to filtered log entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ErrorCategory {
    /// Machine-check exception reported by the processor.
    MachineCheckException,
    /// Flood of correctable DIMM errors (warning sign, not fatal).
    MemoryCorrectable,
    /// Uncorrectable DIMM error; kills the node's workload.
    MemoryUncorrectable,
    /// Gemini HSN link failed (LCB down); triggers reroute.
    GeminiLinkFailure,
    /// Gemini link lane degraded (running at reduced width).
    GeminiLaneDegrade,
    /// System-wide route reconfiguration (failover quiesce).
    GeminiRouteReconfig,
    /// Node stopped responding to heartbeats; declared dead.
    NodeHeartbeatFault,
    /// Blade controller (L0) failure; takes out the blade.
    BladeControllerFailure,
    /// Voltage-regulator fault on the node board.
    VoltageFault,
    /// Kernel panic on a compute node.
    KernelPanic,
    /// Node alive but hung/unresponsive (software wedge).
    NodeHang,
    /// Lustre object storage target failure/unmount.
    LustreOstFailure,
    /// Lustre metadata server failover.
    LustreMdsFailover,
    /// Lustre client eviction on a compute node.
    LustreClientEviction,
    /// GPU double-bit (uncorrectable) ECC error.
    GpuDoubleBitError,
    /// GPU fell off the bus / Xid bus error.
    GpuBusError,
    /// GPU memory page retirement (correctable pressure).
    GpuPageRetirement,
    /// ALPS failed to launch or tear down an application.
    AlpsLaunchFailure,
    /// Warm-swap / maintenance notice for a blade.
    MaintenanceNotice,
}

impl ErrorCategory {
    /// All categories, in a stable report order.
    pub const ALL: [ErrorCategory; 19] = [
        ErrorCategory::MachineCheckException,
        ErrorCategory::MemoryCorrectable,
        ErrorCategory::MemoryUncorrectable,
        ErrorCategory::GeminiLinkFailure,
        ErrorCategory::GeminiLaneDegrade,
        ErrorCategory::GeminiRouteReconfig,
        ErrorCategory::NodeHeartbeatFault,
        ErrorCategory::BladeControllerFailure,
        ErrorCategory::VoltageFault,
        ErrorCategory::KernelPanic,
        ErrorCategory::NodeHang,
        ErrorCategory::LustreOstFailure,
        ErrorCategory::LustreMdsFailover,
        ErrorCategory::LustreClientEviction,
        ErrorCategory::GpuDoubleBitError,
        ErrorCategory::GpuBusError,
        ErrorCategory::GpuPageRetirement,
        ErrorCategory::AlpsLaunchFailure,
        ErrorCategory::MaintenanceNotice,
    ];

    /// The subsystem this category rolls up into.
    pub const fn subsystem(self) -> Subsystem {
        use ErrorCategory::*;
        match self {
            MachineCheckException | MemoryCorrectable | MemoryUncorrectable => Subsystem::Memory,
            GeminiLinkFailure | GeminiLaneDegrade | GeminiRouteReconfig => Subsystem::Interconnect,
            NodeHeartbeatFault | BladeControllerFailure | VoltageFault | MaintenanceNotice => {
                Subsystem::NodeHardware
            }
            KernelPanic | NodeHang => Subsystem::SystemSoftware,
            LustreOstFailure | LustreMdsFailover | LustreClientEviction => Subsystem::Filesystem,
            GpuDoubleBitError | GpuBusError | GpuPageRetirement => Subsystem::Gpu,
            AlpsLaunchFailure => Subsystem::Launcher,
        }
    }

    /// Default severity of an entry of this category.
    pub const fn severity(self) -> Severity {
        use ErrorCategory::*;
        match self {
            MemoryCorrectable | GeminiLaneDegrade | GpuPageRetirement => Severity::Warning,
            MaintenanceNotice => Severity::Info,
            LustreClientEviction | GeminiRouteReconfig | LustreMdsFailover => Severity::Error,
            MachineCheckException | GeminiLinkFailure | AlpsLaunchFailure | NodeHang => {
                Severity::Critical
            }
            MemoryUncorrectable
            | NodeHeartbeatFault
            | BladeControllerFailure
            | VoltageFault
            | KernelPanic
            | LustreOstFailure
            | GpuDoubleBitError
            | GpuBusError => Severity::Fatal,
        }
    }

    /// Spatial scope typically affected by an error of this category.
    pub const fn scope(self) -> ErrorScope {
        use ErrorCategory::*;
        match self {
            GeminiRouteReconfig | LustreOstFailure | LustreMdsFailover => ErrorScope::System,
            BladeControllerFailure | GeminiLinkFailure | GeminiLaneDegrade => ErrorScope::Blade,
            _ => ErrorScope::Node,
        }
    }

    /// True when an error of this category can, by itself, terminate an
    /// application running on the affected scope.
    pub const fn is_application_lethal(self) -> bool {
        matches!(self.severity(), Severity::Critical | Severity::Fatal)
            && !matches!(self, ErrorCategory::MaintenanceNotice)
    }

    /// True for categories that only occur on GPU-carrying (XK) nodes.
    pub const fn is_gpu_specific(self) -> bool {
        matches!(self.subsystem(), Subsystem::Gpu)
    }

    /// Stable machine-readable token (used in log templates and reports).
    pub const fn token(self) -> &'static str {
        use ErrorCategory::*;
        match self {
            MachineCheckException => "MCE",
            MemoryCorrectable => "MEM_CE",
            MemoryUncorrectable => "MEM_UE",
            GeminiLinkFailure => "HSN_LINK",
            GeminiLaneDegrade => "HSN_LANE",
            GeminiRouteReconfig => "HSN_REROUTE",
            NodeHeartbeatFault => "NODE_DEAD",
            BladeControllerFailure => "L0_FAIL",
            VoltageFault => "VRM_FAULT",
            KernelPanic => "KPANIC",
            NodeHang => "NODE_HANG",
            LustreOstFailure => "LFS_OST",
            LustreMdsFailover => "LFS_MDS",
            LustreClientEviction => "LFS_EVICT",
            GpuDoubleBitError => "GPU_DBE",
            GpuBusError => "GPU_BUS",
            GpuPageRetirement => "GPU_PGRET",
            AlpsLaunchFailure => "ALPS_LAUNCH",
            MaintenanceNotice => "MAINT",
        }
    }

    /// Parses the token produced by [`ErrorCategory::token`].
    pub fn parse_token(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.token() == s)
    }
}

impl fmt::Display for ErrorCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in ErrorCategory::ALL {
            assert!(seen.insert(c.token()), "duplicate token {}", c.token());
            assert_eq!(ErrorCategory::parse_token(c.token()), Some(c));
        }
        assert_eq!(ErrorCategory::parse_token("BOGUS"), None);
    }

    #[test]
    fn severity_labels_round_trip() {
        for s in [
            Severity::Info,
            Severity::Warning,
            Severity::Error,
            Severity::Critical,
            Severity::Fatal,
        ] {
            assert_eq!(Severity::parse_label(s.label()), Some(s));
        }
    }

    #[test]
    fn severity_ordering_is_meaningful() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert!(Severity::Error < Severity::Critical);
        assert!(Severity::Critical < Severity::Fatal);
    }

    #[test]
    fn gpu_categories_belong_to_gpu_subsystem() {
        for c in ErrorCategory::ALL {
            assert_eq!(c.is_gpu_specific(), c.subsystem() == Subsystem::Gpu);
        }
    }

    #[test]
    fn lethality_follows_severity() {
        assert!(ErrorCategory::MemoryUncorrectable.is_application_lethal());
        assert!(ErrorCategory::GpuDoubleBitError.is_application_lethal());
        assert!(!ErrorCategory::MemoryCorrectable.is_application_lethal());
        assert!(!ErrorCategory::MaintenanceNotice.is_application_lethal());
        assert!(!ErrorCategory::GpuPageRetirement.is_application_lethal());
    }

    #[test]
    fn system_scope_categories() {
        assert_eq!(
            ErrorCategory::GeminiRouteReconfig.scope(),
            ErrorScope::System
        );
        assert_eq!(ErrorCategory::LustreOstFailure.scope(), ErrorScope::System);
        assert_eq!(ErrorCategory::KernelPanic.scope(), ErrorScope::Node);
        assert_eq!(
            ErrorCategory::BladeControllerFailure.scope(),
            ErrorScope::Blade
        );
    }

    #[test]
    fn every_subsystem_has_a_category() {
        for sub in Subsystem::ALL {
            assert!(
                ErrorCategory::ALL.iter().any(|c| c.subsystem() == sub),
                "no category for {sub}"
            );
        }
    }
}
