//! Error type for fallible operations in this crate.

use std::error::Error;
use std::fmt;

/// Errors returned by parsing/validation functions in `logdiver-types`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypesError {
    /// A timestamp string did not match `YYYY-MM-DD HH:MM:SS`.
    BadTimestamp(String),
    /// A node-id was outside the universe of a [`crate::NodeSet`].
    NodeOutOfRange {
        /// The offending nid.
        nid: u32,
        /// The exclusive upper bound of the universe.
        universe: u32,
    },
}

impl fmt::Display for TypesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypesError::BadTimestamp(s) => write!(f, "invalid timestamp syntax: {s:?}"),
            TypesError::NodeOutOfRange { nid, universe } => {
                write!(f, "node id {nid} outside universe of {universe} nodes")
            }
        }
    }
}

impl Error for TypesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = TypesError::BadTimestamp("xyz".into());
        assert!(e.to_string().starts_with("invalid timestamp"));
        let e = TypesError::NodeOutOfRange {
            nid: 9,
            universe: 4,
        };
        assert_eq!(e.to_string(), "node id 9 outside universe of 4 nodes");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TypesError>();
    }
}
