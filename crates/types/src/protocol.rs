//! The serve↔client wire-protocol code catalog.
//!
//! Every machine-readable `ERR code=<kebab>` value the daemon can put on
//! the wire is declared here exactly once, as a named constant plus a
//! [`CATALOG`] entry carrying its required client [`Disposition`]. Both
//! sides of the wire compile against these constants — the serve emit
//! sites (`logdiver-serve`) and the push client's `Session` matcher
//! (`logdiver-push`) — so adding a response code without deciding how
//! clients must react is a compile-visible, lint-visible event instead
//! of a silent drift between two piles of string literals.
//!
//! `logdiver lint`'s protocol-contract verifier closes the loop: it
//! cross-checks this catalog against the actual serve emit sites, the
//! client match arms, and the DESIGN.md grammar, and reports
//! `unhandled-code` / `phantom-code` / `undocumented-code` findings with
//! `file:line` witnesses on both sides (DESIGN.md §19).

/// What a well-behaved push client must do when a response carries this
/// code.
///
/// The disposition is part of the protocol contract, not advice: the
/// lint's `unhandled-code` rule requires an explicit client match arm
/// for every code whose disposition is *not* [`Disposition::Fatal`],
/// because those are exactly the codes where "give up on the session"
/// is the wrong answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Back off for the server's `retry-ms` hint, then retry the same
    /// request on the same connection.
    RetryHint,
    /// Adopt the server's `expected=` cursor and resume pushing from it;
    /// the index-idempotent protocol makes the replay safe.
    HealCursor,
    /// Stop pushing this (tenant, source) stream permanently; the server
    /// has rejected the record itself, so replaying it can never succeed.
    AbandonSource,
    /// Count the rejection against a bounded fault budget and retry;
    /// give up only when the budget is exhausted.
    RetryBounded,
    /// Drop the connection and reconnect fresh (re-`HELLO`, resume from
    /// the server's cursors); the server has evicted this connection,
    /// not this client.
    Reconnect,
    /// The request itself was malformed or unrecoverable; failing the
    /// session is correct, so the client's catch-all arm suffices.
    Fatal,
}

/// One row of the [`CATALOG`]: a code's constant name, wire value, and
/// required client disposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeSpec {
    /// The Rust identifier of the constant (e.g. `"OVERLOAD"`).
    pub ident: &'static str,
    /// The kebab-case value on the wire (e.g. `"overload"`).
    pub value: &'static str,
    /// What a client must do on receipt.
    pub disposition: Disposition,
}

macro_rules! codes {
    ($($(#[$doc:meta])* $ident:ident = $value:literal => $disp:ident;)*) => {
        $(
            $(#[$doc])*
            pub const $ident: &str = $value;
        )*

        /// Every protocol code, in wire-grammar order. This is the single
        /// source of truth the lint's protocol-contract verifier checks
        /// serve emit sites, client match arms, and DESIGN.md against.
        pub const CATALOG: &[CodeSpec] = &[
            $(
                CodeSpec {
                    ident: stringify!($ident),
                    value: $value,
                    disposition: Disposition::$disp,
                },
            )*
        ];
    };
}

codes! {
    // ---- request-shape errors (proto.rs parser) -----------------------
    /// The first token of the request is not a known verb.
    BAD_VERB = "bad-verb" => Fatal;
    /// A required argument is missing.
    MISSING_ARG = "missing-arg" => Fatal;
    /// The verb got more arguments than it takes.
    EXTRA_ARG = "extra-arg" => Fatal;
    /// The `<source>` token is not one of the five log names.
    BAD_SOURCE = "bad-source" => Fatal;
    /// The `<index>` token is not a non-negative integer.
    BAD_INDEX = "bad-index" => Fatal;
    /// The tenant name is empty, too long, dot-prefixed, or has
    /// characters outside `[A-Za-z0-9._-]`.
    BAD_TENANT_NAME = "bad-tenant-name" => Fatal;
    /// A `HELLO` option token is not of the form `key=value`.
    BAD_OPTION = "bad-option" => Fatal;

    // ---- framing errors (connection feed) -----------------------------
    /// A request line exceeded the frame limit; the connection is poisoned
    /// to the next newline.
    LINE_TOO_LONG = "line-too-long" => AbandonSource;
    /// The request bytes are not valid UTF-8.
    BAD_UTF8 = "bad-utf8" => Fatal;

    // ---- tenant configuration (HELLO) ---------------------------------
    /// A `HELLO` option key is not in the per-tenant config vocabulary,
    /// or its value does not parse.
    UNKNOWN_OPTION = "unknown-option" => Fatal;
    /// A `HELLO` option conflicts with an existing tenant's configuration.
    CONFIG_CONFLICT = "config-conflict" => Fatal;
    /// The named tenant does not exist (control verbs only; `HELLO` and
    /// `PUSH` auto-create).
    UNKNOWN_TENANT = "unknown-tenant" => Fatal;

    // ---- push admission ------------------------------------------------
    /// The push index skipped ahead of the accepted cursor; the response
    /// carries `expected=<n>` for the client to resume from.
    GAP = "gap" => HealCursor;
    /// The tenant is over its per-tenant memory quota.
    OVER_QUOTA = "over-quota" => RetryBounded;
    /// The fleet is over the global memory budget and this tenant is
    /// above its fair share.
    OVER_BUDGET = "over-budget" => RetryBounded;
    /// Pressure-based admission control is shedding pushes; the response
    /// carries a `retry-ms` hint.
    OVERLOAD = "overload" => RetryHint;
    /// The daemon is draining for a rolling restart; retry against the
    /// replacement after the `retry-ms` hint.
    DRAINING = "draining" => RetryHint;

    // ---- connection lifecycle ------------------------------------------
    /// The connection missed its write deadline (slowloris eviction); the
    /// server is about to close it. Reconnect and resume from cursors.
    SLOW_CLIENT = "slow-client" => Reconnect;

    // ---- durability (CHECKPOINT / SNAPSHOT) ----------------------------
    /// Checkpointing is disabled: the daemon has no tenants dir.
    NO_CHECKPOINT_DIR = "no-checkpoint-dir" => Fatal;
    /// A checkpoint write failed on every replica.
    IO = "io" => Fatal;
    /// Snapshot/checkpoint serialization failed.
    SERIALIZE = "serialize" => Fatal;
}

/// Looks `value` up in the [`CATALOG`].
pub fn spec(value: &str) -> Option<&'static CodeSpec> {
    CATALOG.iter().find(|c| c.value == value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_values_are_unique_kebab_case() {
        let mut seen = std::collections::HashSet::new();
        for c in CATALOG {
            assert!(seen.insert(c.value), "duplicate code value {}", c.value);
            assert!(
                c.value
                    .chars()
                    .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '-'),
                "code {} is not kebab-case",
                c.value
            );
            assert!(!c.value.starts_with('-') && !c.value.ends_with('-'));
        }
    }

    #[test]
    fn idents_match_values() {
        for c in CATALOG {
            assert_eq!(
                c.ident.to_ascii_lowercase().replace('_', "-"),
                c.value,
                "constant {} does not spell its value {}",
                c.ident,
                c.value
            );
        }
    }

    #[test]
    fn spec_lookup() {
        assert_eq!(
            spec("overload").unwrap().disposition,
            Disposition::RetryHint
        );
        assert_eq!(spec("gap").unwrap().disposition, Disposition::HealCursor);
        assert_eq!(
            spec(SLOW_CLIENT).unwrap().disposition,
            Disposition::Reconnect
        );
        assert!(spec("no-such-code").is_none());
    }

    #[test]
    fn constants_usable_in_match_patterns() {
        // The emit/handle sites match on these constants; keep them
        // pattern-compatible (plain `&'static str` consts).
        let code = "draining";
        let hit = matches!(code, DRAINING | OVERLOAD);
        assert!(hit);
    }
}
