//! Node kinds of a Cray hybrid machine.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The kind of a node in the machine.
///
/// Blue Waters mixes three kinds:
///
/// - **XE** — dual-socket AMD Interlagos CPU nodes (the bulk of the machine),
/// - **XK** — hybrid nodes pairing one Interlagos socket with an NVIDIA
///   Kepler K20X GPU,
/// - **Service** — login/MOM/LNET/boot nodes that do not run applications.
///
/// The paper's lessons distinguish XE from XK resilience, so the node type is
/// threaded through the whole analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeType {
    /// CPU-only compute node (Cray XE6).
    Xe,
    /// CPU+GPU hybrid compute node (Cray XK7).
    Xk,
    /// Service node (login, MOM, LNET router, boot, SDB).
    Service,
}

impl NodeType {
    /// All node types, in declaration order.
    pub const ALL: [NodeType; 3] = [NodeType::Xe, NodeType::Xk, NodeType::Service];

    /// True for node types that execute user applications.
    pub const fn is_compute(self) -> bool {
        matches!(self, NodeType::Xe | NodeType::Xk)
    }

    /// True for hybrid (GPU-carrying) nodes.
    pub const fn has_gpu(self) -> bool {
        matches!(self, NodeType::Xk)
    }

    /// Short label used in logs and reports.
    pub const fn label(self) -> &'static str {
        match self {
            NodeType::Xe => "XE",
            NodeType::Xk => "XK",
            NodeType::Service => "SVC",
        }
    }

    /// Parses the short label produced by [`NodeType::label`].
    pub fn parse_label(s: &str) -> Option<Self> {
        match s {
            "XE" => Some(NodeType::Xe),
            "XK" => Some(NodeType::Xk),
            "SVC" => Some(NodeType::Service),
            _ => None,
        }
    }
}

impl fmt::Display for NodeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for nt in NodeType::ALL {
            assert_eq!(NodeType::parse_label(nt.label()), Some(nt));
        }
        assert_eq!(NodeType::parse_label("GPU"), None);
    }

    #[test]
    fn compute_and_gpu_predicates() {
        assert!(NodeType::Xe.is_compute());
        assert!(NodeType::Xk.is_compute());
        assert!(!NodeType::Service.is_compute());
        assert!(NodeType::Xk.has_gpu());
        assert!(!NodeType::Xe.has_gpu());
    }
}
