//! Job-level analysis: the batch-job view of the same data.
//!
//! The paper's unit of analysis is the application run, but operators buy
//! and schedule *jobs*. One job launches several applications back-to-back,
//! so job-level failure rates exceed application-level ones (a job fails if
//! *any* of its runs does), and a job's verdict is the worst verdict among
//! its runs. This stage folds classified runs back into jobs.

use std::collections::HashMap;

use logdiver_types::{ExitClass, JobId};
use serde::{Deserialize, Serialize};

use crate::classify::ClassifiedRun;

/// Severity ordering of verdicts for the "worst outcome wins" fold.
fn verdict_rank(class: &ExitClass) -> u8 {
    match class {
        ExitClass::SystemFailure(_) => 4,
        ExitClass::UserFailure(_) => 3,
        ExitClass::WalltimeExceeded => 2,
        ExitClass::Unknown => 1,
        ExitClass::Success => 0,
    }
}

/// One job's aggregate view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job.
    pub job: JobId,
    /// Application runs the job launched.
    pub app_runs: u64,
    /// Node-hours across its runs.
    pub node_hours: f64,
    /// The worst verdict among its runs.
    pub verdict: ExitClass,
}

/// The job-level report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// Jobs seen (with at least one application run).
    pub jobs: u64,
    /// Mean application runs per job.
    pub apps_per_job: f64,
    /// Fraction of jobs whose worst verdict is a system failure.
    pub job_system_failure_fraction: f64,
    /// Fraction of application runs that are system failures (for the
    /// side-by-side comparison).
    pub app_system_failure_fraction: f64,
    /// Per-job outcomes (sorted by job id).
    pub outcomes: Vec<JobOutcome>,
}

/// Folds classified runs into the job-level report.
pub fn analyze_jobs(runs: &[ClassifiedRun]) -> JobReport {
    let mut by_job: HashMap<u64, JobOutcome> = HashMap::new();
    let mut app_system = 0u64;
    for r in runs {
        if r.class.is_system_failure() {
            app_system += 1;
        }
        let entry = by_job.entry(r.run.job.value()).or_insert(JobOutcome {
            job: r.run.job,
            app_runs: 0,
            node_hours: 0.0,
            verdict: ExitClass::Success,
        });
        entry.app_runs += 1;
        entry.node_hours += r.run.node_hours();
        if verdict_rank(&r.class) > verdict_rank(&entry.verdict) {
            entry.verdict = r.class;
        }
    }
    let mut outcomes: Vec<JobOutcome> = by_job.into_values().collect();
    outcomes.sort_by_key(|o| o.job);
    let jobs = outcomes.len() as u64;
    let job_system = outcomes
        .iter()
        .filter(|o| o.verdict.is_system_failure())
        .count() as u64;
    let total_apps: u64 = outcomes.iter().map(|o| o.app_runs).sum();
    JobReport {
        jobs,
        apps_per_job: if jobs > 0 {
            total_apps as f64 / jobs as f64
        } else {
            0.0
        },
        job_system_failure_fraction: if jobs > 0 {
            job_system as f64 / jobs as f64
        } else {
            0.0
        },
        app_system_failure_fraction: if runs.is_empty() {
            0.0
        } else {
            app_system as f64 / runs.len() as f64
        },
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::RangeSet;
    use crate::workload::{AppRun, Termination};
    use logdiver_types::{
        AppId, ExitStatus, FailureCause, NodeSet, NodeType, SimDuration, Timestamp,
        UserFailureKind, UserId,
    };

    fn run_in_job(apid: u64, job: u64, class: ExitClass) -> ClassifiedRun {
        ClassifiedRun {
            run: AppRun {
                apid: AppId::new(apid),
                job: JobId::new(job),
                user: UserId::new(0),
                node_type: NodeType::Xe,
                width: 2,
                nodes: RangeSet::from_node_set(&NodeSet::new()),
                start: Timestamp::PRODUCTION_EPOCH,
                end: Timestamp::PRODUCTION_EPOCH + SimDuration::from_hours(1),
                termination: Termination::Exited(ExitStatus::SUCCESS),
            },
            class,
            matched_events: Vec::new(),
            confidence: crate::classify::AttributionConfidence::Full,
        }
    }

    #[test]
    fn worst_verdict_wins() {
        let runs = vec![
            run_in_job(1, 1, ExitClass::Success),
            run_in_job(2, 1, ExitClass::UserFailure(UserFailureKind::Abort)),
            run_in_job(3, 1, ExitClass::SystemFailure(FailureCause::Memory)),
            run_in_job(4, 2, ExitClass::Success),
            run_in_job(5, 2, ExitClass::WalltimeExceeded),
        ];
        let report = analyze_jobs(&runs);
        assert_eq!(report.jobs, 2);
        assert!((report.apps_per_job - 2.5).abs() < 1e-12);
        let j1 = report
            .outcomes
            .iter()
            .find(|o| o.job == JobId::new(1))
            .unwrap();
        assert_eq!(j1.verdict, ExitClass::SystemFailure(FailureCause::Memory));
        assert_eq!(j1.app_runs, 3);
        let j2 = report
            .outcomes
            .iter()
            .find(|o| o.job == JobId::new(2))
            .unwrap();
        assert_eq!(j2.verdict, ExitClass::WalltimeExceeded);
    }

    #[test]
    fn job_rate_exceeds_app_rate() {
        // 10 jobs × 4 apps; one app per job fails by the system.
        let mut runs = Vec::new();
        let mut apid = 0;
        for job in 0..10u64 {
            for k in 0..4 {
                apid += 1;
                let class = if k == 0 {
                    ExitClass::SystemFailure(FailureCause::Interconnect)
                } else {
                    ExitClass::Success
                };
                runs.push(run_in_job(apid, job, class));
            }
        }
        let report = analyze_jobs(&runs);
        assert!((report.app_system_failure_fraction - 0.25).abs() < 1e-12);
        assert!((report.job_system_failure_fraction - 1.0).abs() < 1e-12);
        assert!(report.job_system_failure_fraction > report.app_system_failure_fraction);
    }

    #[test]
    fn empty_input() {
        let report = analyze_jobs(&[]);
        assert_eq!(report.jobs, 0);
        assert_eq!(report.job_system_failure_fraction, 0.0);
    }
}
