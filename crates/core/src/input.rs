//! Input: the raw log collection.
//!
//! LogDiver reads *lines*, nothing else — either handed over in memory or
//! loaded from a directory using the conventional file names the collection
//! tooling produces (`messages.log`, `hwerr.log`, `apsys.log`,
//! `torque.log`, `netwatch.log`).

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use crate::error::LogDiverError;

/// Raw log lines, one vector per source.
#[derive(Debug, Clone, Default)]
pub struct LogCollection {
    /// Consolidated syslog.
    pub syslog: Vec<String>,
    /// Hardware error log.
    pub hwerr: Vec<String>,
    /// ALPS `apsys` log.
    pub alps: Vec<String>,
    /// Torque accounting log.
    pub torque: Vec<String>,
    /// HSN netwatch log.
    pub netwatch: Vec<String>,
}

impl LogCollection {
    /// Creates an empty collection.
    pub fn new() -> Self {
        LogCollection::default()
    }

    /// Total lines across sources.
    pub fn total_lines(&self) -> usize {
        self.syslog.len()
            + self.hwerr.len()
            + self.alps.len()
            + self.torque.len()
            + self.netwatch.len()
    }

    /// True when every source is empty.
    pub fn is_empty(&self) -> bool {
        self.total_lines() == 0
    }

    /// Loads a collection from a directory of conventionally named files.
    /// Missing individual files are allowed (some sites lack a source);
    /// a directory with *no* recognizable file is an error.
    ///
    /// # Errors
    ///
    /// [`LogDiverError::Io`] on read failures,
    /// [`LogDiverError::NoInput`] when nothing was found.
    pub fn from_dir(dir: impl AsRef<Path>) -> Result<Self, LogDiverError> {
        let dir = dir.as_ref();
        let read = |name: &str| -> Result<Vec<String>, LogDiverError> {
            let path = dir.join(name);
            if !path.exists() {
                return Ok(Vec::new());
            }
            let file = File::open(&path).map_err(|source| LogDiverError::Io {
                path: path.display().to_string(),
                source,
            })?;
            let mut lines = Vec::new();
            for line in BufReader::new(file).lines() {
                lines.push(line.map_err(|source| LogDiverError::Io {
                    path: path.display().to_string(),
                    source,
                })?);
            }
            Ok(lines)
        };
        let collection = LogCollection {
            syslog: read("messages.log")?,
            hwerr: read("hwerr.log")?,
            alps: read("apsys.log")?,
            torque: read("torque.log")?,
            netwatch: read("netwatch.log")?,
        };
        if collection.is_empty() {
            return Err(LogDiverError::NoInput {
                path: dir.display().to_string(),
            });
        }
        Ok(collection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_collection() {
        let c = LogCollection::new();
        assert!(c.is_empty());
        assert_eq!(c.total_lines(), 0);
    }

    #[test]
    fn from_dir_round_trip() {
        let dir = std::env::temp_dir().join(format!("logdiver-input-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("apsys.log"), "line1\nline2\n").unwrap();
        std::fs::write(dir.join("messages.log"), "syslog line\n").unwrap();
        let c = LogCollection::from_dir(&dir).unwrap();
        assert_eq!(c.alps, vec!["line1", "line2"]);
        assert_eq!(c.syslog, vec!["syslog line"]);
        assert!(c.torque.is_empty(), "missing files are tolerated");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn from_dir_requires_something() {
        let dir = std::env::temp_dir().join(format!("logdiver-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            LogCollection::from_dir(&dir),
            Err(LogDiverError::NoInput { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
