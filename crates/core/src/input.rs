//! Input: the raw log collection and the zero-copy input arena.
//!
//! LogDiver reads *lines*, nothing else — either handed over in memory
//! ([`LogCollection`]), or loaded whole into an owned byte arena
//! ([`LogArena`]) that the zero-copy parse stage borrows slices from,
//! using the conventional file names the collection tooling produces
//! (`messages.log`, `hwerr.log`, `apsys.log`, `torque.log`,
//! `netwatch.log`).
//!
//! The arena loads through the [`Fs`] seam, so the fault-injection
//! filesystem can drive the batch pipeline exactly like the durable-state
//! writers. Unlike the line-by-line readers, arena blocks are raw bytes:
//! encoding damage in one line stays in that line (it is counted and
//! quarantined by offset) instead of aborting the whole read.

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use logdiver_types::{Fs, RealFs};

use crate::error::LogDiverError;

/// The conventional per-source file names, in canonical source order
/// (`[syslog, hwerr, alps, torque, netwatch]`).
pub const SOURCE_FILES: [&str; 5] = [
    "messages.log",
    "hwerr.log",
    "apsys.log",
    "torque.log",
    "netwatch.log",
];

/// Raw log lines, one vector per source.
#[derive(Debug, Clone, Default)]
pub struct LogCollection {
    /// Consolidated syslog.
    pub syslog: Vec<String>,
    /// Hardware error log.
    pub hwerr: Vec<String>,
    /// ALPS `apsys` log.
    pub alps: Vec<String>,
    /// Torque accounting log.
    pub torque: Vec<String>,
    /// HSN netwatch log.
    pub netwatch: Vec<String>,
}

impl LogCollection {
    /// Creates an empty collection.
    pub fn new() -> Self {
        LogCollection::default()
    }

    /// Total lines across sources.
    pub fn total_lines(&self) -> usize {
        self.syslog.len()
            + self.hwerr.len()
            + self.alps.len()
            + self.torque.len()
            + self.netwatch.len()
    }

    /// True when every source is empty.
    pub fn is_empty(&self) -> bool {
        self.total_lines() == 0
    }

    /// Loads a collection from a directory of conventionally named files.
    /// Missing individual files are allowed (some sites lack a source);
    /// a directory with *no* recognizable file is an error.
    ///
    /// # Errors
    ///
    /// [`LogDiverError::Io`] on read failures,
    /// [`LogDiverError::NoInput`] when nothing was found.
    pub fn from_dir(dir: impl AsRef<Path>) -> Result<Self, LogDiverError> {
        let dir = dir.as_ref();
        let read = |name: &str| -> Result<Vec<String>, LogDiverError> {
            let path = dir.join(name);
            if !path.exists() {
                return Ok(Vec::new());
            }
            let file = File::open(&path).map_err(|source| LogDiverError::Io {
                path: path.display().to_string(),
                source,
            })?;
            let mut lines = Vec::new();
            for line in BufReader::new(file).lines() {
                lines.push(line.map_err(|source| LogDiverError::Io {
                    path: path.display().to_string(),
                    source,
                })?);
            }
            Ok(lines)
        };
        let collection = LogCollection {
            syslog: read("messages.log")?,
            hwerr: read("hwerr.log")?,
            alps: read("apsys.log")?,
            torque: read("torque.log")?,
            netwatch: read("netwatch.log")?,
        };
        if collection.is_empty() {
            return Err(LogDiverError::NoInput {
                path: dir.display().to_string(),
            });
        }
        Ok(collection)
    }
}

/// Owned byte blocks, one per source — the backing store of the zero-copy
/// parse stage. Records parsed from an arena borrow their field slices
/// from these blocks; the arena must therefore outlive the
/// [`crate::parse::ParsedColumns`] built over it (the borrow checker
/// enforces exactly that).
#[derive(Debug, Clone, Default)]
pub struct LogArena {
    blocks: [Vec<u8>; 5],
}

impl LogArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        LogArena::default()
    }

    /// Loads every conventional file under `dir` through the production
    /// filesystem. Missing individual files are allowed; a directory with
    /// *no* recognizable file is an error.
    ///
    /// # Errors
    ///
    /// [`LogDiverError::Io`] on read failures, [`LogDiverError::NoInput`]
    /// when nothing was found.
    pub fn from_dir(dir: impl AsRef<Path>) -> Result<Self, LogDiverError> {
        Self::from_dir_fs(&RealFs, dir.as_ref())
    }

    /// Loads every conventional file under `dir` through an [`Fs`]
    /// implementation — the seam the disk-fault injection tests drive.
    ///
    /// # Errors
    ///
    /// Same as [`LogArena::from_dir`].
    pub fn from_dir_fs(fs: &dyn Fs, dir: &Path) -> Result<Self, LogDiverError> {
        let mut arena = LogArena::default();
        for (i, name) in SOURCE_FILES.iter().enumerate() {
            let path = dir.join(name);
            if !fs.exists(&path) {
                continue;
            }
            arena.blocks[i] = fs.read(&path).map_err(|source| LogDiverError::Io {
                path: path.display().to_string(),
                source,
            })?;
        }
        if arena.is_empty() {
            return Err(LogDiverError::NoInput {
                path: dir.display().to_string(),
            });
        }
        Ok(arena)
    }

    /// Builds an arena from an in-memory collection by joining each
    /// source's lines with `\n` — for tests and callers that already hold
    /// a [`LogCollection`] but want the arena code path.
    pub fn from_collection(logs: &LogCollection) -> Self {
        let join = |lines: &[String]| {
            let mut block = Vec::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
            for line in lines {
                block.extend_from_slice(line.as_bytes());
                block.push(b'\n');
            }
            block
        };
        LogArena {
            blocks: [
                join(&logs.syslog),
                join(&logs.hwerr),
                join(&logs.alps),
                join(&logs.torque),
                join(&logs.netwatch),
            ],
        }
    }

    /// The raw byte block for source `i` (canonical source order).
    pub fn block(&self, i: usize) -> &[u8] {
        &self.blocks[i]
    }

    /// Iterates source `i`'s lines as `(byte_offset, line)` pairs.
    pub fn lines(&self, i: usize) -> ByteLines<'_> {
        ByteLines {
            block: &self.blocks[i],
            pos: 0,
        }
    }

    /// Total bytes across all blocks.
    pub fn total_bytes(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// True when every block is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(Vec::is_empty)
    }
}

/// An iterator over the lines of a byte block, yielding each line's byte
/// offset alongside its contents.
///
/// Line splitting matches [`BufRead::lines`] exactly: lines end at `\n`,
/// a single trailing `\r` is stripped only when the `\n` was there to cut
/// (so a lone `\r` at end-of-file is kept), and a trailing newline does
/// not produce a final empty line.
#[derive(Debug, Clone)]
pub struct ByteLines<'a> {
    block: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for ByteLines<'a> {
    type Item = (u64, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.block.len() {
            return None;
        }
        let start = self.pos;
        let rest = &self.block[start..];
        let line = match craylog::scan::find_byte(rest, b'\n') {
            Some(nl) => {
                self.pos = start + nl + 1;
                let cut = &rest[..nl];
                cut.strip_suffix(b"\r").unwrap_or(cut)
            }
            None => {
                self.pos = self.block.len();
                rest
            }
        };
        Some((start as u64, line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_collection() {
        let c = LogCollection::new();
        assert!(c.is_empty());
        assert_eq!(c.total_lines(), 0);
    }

    #[test]
    fn from_dir_round_trip() {
        let dir = std::env::temp_dir().join(format!("logdiver-input-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("apsys.log"), "line1\nline2\n").unwrap();
        std::fs::write(dir.join("messages.log"), "syslog line\n").unwrap();
        let c = LogCollection::from_dir(&dir).unwrap();
        assert_eq!(c.alps, vec!["line1", "line2"]);
        assert_eq!(c.syslog, vec!["syslog line"]);
        assert!(c.torque.is_empty(), "missing files are tolerated");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn from_dir_requires_something() {
        let dir = std::env::temp_dir().join(format!("logdiver-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            LogCollection::from_dir(&dir),
            Err(LogDiverError::NoInput { .. })
        ));
        assert!(matches!(
            LogArena::from_dir(&dir),
            Err(LogDiverError::NoInput { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// ByteLines must split exactly like `BufRead::lines`: `\r\n` strips
    /// both, a lone `\r` at EOF survives, and a trailing newline yields no
    /// empty final line.
    #[test]
    fn byte_lines_match_bufread_lines() {
        let cases: [&[u8]; 7] = [
            b"a\nb\nc\n",
            b"a\nb\nc",
            b"a\r\nb\r\n",
            b"a\r",
            b"\n\n",
            b"",
            b"one line only",
        ];
        for block in cases {
            let mut arena = LogArena::new();
            arena.blocks[0] = block.to_vec();
            let got: Vec<Vec<u8>> = arena.lines(0).map(|(_, l)| l.to_vec()).collect();
            let want: Vec<Vec<u8>> = BufReader::new(block)
                .lines()
                .map(|l| l.unwrap().into_bytes())
                .collect();
            assert_eq!(got, want, "block {block:?}");
        }
    }

    #[test]
    fn byte_lines_report_offsets() {
        let mut arena = LogArena::new();
        arena.blocks[2] = b"first\nsecond\n".to_vec();
        let lines: Vec<(u64, &[u8])> = arena.lines(2).collect();
        assert_eq!(
            lines,
            vec![(0, b"first".as_slice()), (6, b"second".as_slice())]
        );
        assert_eq!(&arena.block(2)[6..6 + 6], b"second");
    }

    #[test]
    fn arena_from_collection_round_trips_lines() {
        let mut logs = LogCollection::new();
        logs.syslog.push("line one".into());
        logs.syslog.push("line two".into());
        logs.torque.push("t".into());
        let arena = LogArena::from_collection(&logs);
        let syslog: Vec<&[u8]> = arena.lines(0).map(|(_, l)| l).collect();
        assert_eq!(syslog, vec![b"line one".as_slice(), b"line two".as_slice()]);
        assert_eq!(arena.lines(3).count(), 1);
        assert_eq!(arena.lines(1).count(), 0);
        assert!(!arena.is_empty());
        assert_eq!(arena.total_bytes(), 18 + 2);
    }

    #[test]
    fn arena_from_dir_loads_via_fs_seam() {
        let dir = std::env::temp_dir().join(format!("logdiver-arena-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("apsys.log"), b"alps line\n").unwrap();
        // Invalid UTF-8 must load fine: the arena is raw bytes.
        std::fs::write(dir.join("messages.log"), b"sys \xff line\n").unwrap();
        let arena = LogArena::from_dir(&dir).unwrap();
        assert_eq!(arena.lines(2).next().unwrap().1, b"alps line");
        assert_eq!(arena.lines(0).next().unwrap().1, b"sys \xff line");
        assert!(arena.lines(3).next().is_none(), "missing files tolerated");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
