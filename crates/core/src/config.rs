//! Analysis configuration: the knobs of the pipeline.

use logdiver_types::SimDuration;
use serde::{Deserialize, Serialize};

/// Tunables of the LogDiver pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogDiverConfig {
    /// Coalescing gap: two filtered entries of the same spatial group merge
    /// into one error event when separated by at most this much.
    pub coalesce_gap: SimDuration,
    /// How long before an application's death a node-scoped error event may
    /// start and still be blamed (covers reporting latency).
    pub attribution_lead: SimDuration,
    /// How long after an error event ends an application death may occur
    /// and still be attributed to it.
    pub attribution_lag: SimDuration,
    /// Tolerance when checking a signal-15 death against the job's
    /// requested walltime.
    pub walltime_tolerance: SimDuration,
}

impl Default for LogDiverConfig {
    fn default() -> Self {
        LogDiverConfig {
            coalesce_gap: SimDuration::from_secs(300),
            attribution_lead: SimDuration::from_secs(120),
            attribution_lag: SimDuration::from_secs(120),
            walltime_tolerance: SimDuration::from_secs(90),
        }
    }
}

impl LogDiverConfig {
    /// Validation (all windows must be non-negative).
    pub fn validate(&self) -> Result<(), String> {
        for (name, d) in [
            ("coalesce_gap", self.coalesce_gap),
            ("attribution_lead", self.attribution_lead),
            ("attribution_lag", self.attribution_lag),
            ("walltime_tolerance", self.walltime_tolerance),
        ] {
            if d.is_negative() {
                return Err(format!("window {name} is negative"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        LogDiverConfig::default().validate().unwrap();
    }

    #[test]
    fn negative_window_rejected() {
        let c = LogDiverConfig {
            coalesce_gap: SimDuration::from_secs(-1),
            ..LogDiverConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
