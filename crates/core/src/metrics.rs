//! Stage 7: metric computation — the numbers behind every table and figure.
//!
//! Everything here consumes only classified runs and coalesced events (no
//! simulator internals). The experiment ids (T2, F1, …) refer to
//! DESIGN.md §4.

use hpc_stats::survival::SurvivalObservation;
use hpc_stats::{wilson_interval, Ecdf, Exponential, KaplanMeier, Weibull};
use logdiver_types::{ExitClass, FailureCause, NodeType, UserFailureKind};
use serde::{Deserialize, Serialize};

use crate::classify::ClassifiedRun;
use crate::coalesce::ErrorEvent;
use crate::precursor::{analyze_precursors, PrecursorReport, DEFAULT_LOOKBACK};
use crate::temporal::{analyze_temporal, TemporalReport};
use crate::workload::Termination;

/// One row of the application-outcome table (T2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutcomeRow {
    /// Outcome bucket label.
    pub label: String,
    /// Number of runs.
    pub runs: u64,
    /// Share of all runs.
    pub pct_runs: f64,
    /// Node-hours consumed by these runs.
    pub node_hours: f64,
    /// Share of all node-hours.
    pub pct_node_hours: f64,
}

/// One row of the system-cause breakdown (T3) with lost work (F4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CauseRow {
    /// The failure cause.
    pub cause: FailureCause,
    /// System-failed runs attributed to it.
    pub runs: u64,
    /// Share of all system failures.
    pub pct_of_system: f64,
    /// Node-hours consumed by runs it killed (lost work).
    pub lost_node_hours: f64,
}

/// One scale bucket of a failure-probability curve (F1/F2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleBucket {
    /// Smallest width in the bucket (inclusive).
    pub lo: u32,
    /// Largest width in the bucket (inclusive).
    pub hi: u32,
    /// Executing runs in the bucket.
    pub runs: u64,
    /// System failures among them.
    pub failures: u64,
    /// Failure probability estimate.
    pub probability: f64,
    /// 95 % Wilson interval.
    pub ci: (f64, f64),
}

/// A failure-probability-vs-scale curve for one node class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleCurve {
    /// Node class.
    pub node_type: NodeType,
    /// Buckets in ascending width order.
    pub buckets: Vec<ScaleBucket>,
    /// The subset of runs at *exactly* the largest observed width — the
    /// abstract's anchors quote this point ("at 22,640 nodes"), which the
    /// top bucket dilutes with smaller capability widths.
    pub exact_full: Option<ScaleBucket>,
}

impl ScaleCurve {
    /// The bucket containing width `w`, if any.
    pub fn bucket_containing(&self, w: u32) -> Option<&ScaleBucket> {
        self.buckets.iter().find(|b| b.lo <= w && w <= b.hi)
    }
}

/// One MTTI row (F3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MttiRow {
    /// Node class.
    pub node_type: NodeType,
    /// Bucket bounds (inclusive widths).
    pub lo: u32,
    /// Upper bound.
    pub hi: u32,
    /// Executing runs.
    pub runs: u64,
    /// System interrupts observed.
    pub interrupts: u64,
    /// Total exposure (wall-clock hours summed over runs).
    pub exposure_hours: f64,
    /// Mean time to interrupt (exposure / interrupts), when any occurred.
    pub mtti_hours: Option<f64>,
    /// Kaplan–Meier median time-to-interrupt, when the curve crosses 0.5.
    pub km_median_hours: Option<f64>,
}

/// Detection-coverage row (T4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionRow {
    /// Node class.
    pub node_type: NodeType,
    /// System failures of executing runs on this class.
    pub system_failures: u64,
    /// Of those, failures no error event explains (cause undetermined).
    pub undetermined: u64,
    /// `undetermined / system_failures`.
    pub fraction_undetermined: f64,
}

/// Fit of system-event interarrival times (F6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterarrivalFit {
    /// Machine-scope lethal events used.
    pub events: u64,
    /// Exponential MLE rate (events/hour).
    pub exp_rate_per_hour: f64,
    /// Weibull MLE shape.
    pub weibull_shape: f64,
    /// Weibull MLE scale (hours).
    pub weibull_scale: f64,
    /// Kolmogorov–Smirnov distance of the exponential fit.
    pub ks_exponential: f64,
    /// Kolmogorov–Smirnov distance of the Weibull fit.
    pub ks_weibull: f64,
}

/// The full metric set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSet {
    /// Application runs analyzed.
    pub total_runs: u64,
    /// Node-hours consumed by them.
    pub total_node_hours: f64,
    /// Span of the measured period in days.
    pub measured_days: f64,
    /// T2 rows.
    pub outcomes: Vec<OutcomeRow>,
    /// Headline: fraction of runs failed by system problems.
    pub system_failure_fraction: f64,
    /// Headline: share of node-hours consumed by system-failed runs.
    pub failed_node_hours_fraction: f64,
    /// T3/F4 rows.
    pub causes: Vec<CauseRow>,
    /// F1 (XE) and F2 (XK) curves.
    pub scale_curves: Vec<ScaleCurve>,
    /// F3 rows.
    pub mtti: Vec<MttiRow>,
    /// T4 rows.
    pub detection: Vec<DetectionRow>,
    /// F6 fit (when enough machine-scope events exist).
    pub interarrival: Option<InterarrivalFit>,
    /// F5: size-CDF plot points per class `(width, F)`.
    pub size_cdf: Vec<(NodeType, Vec<(f64, f64)>)>,
    /// F5: duration-CDF plot points per class `(hours, F)`.
    pub duration_cdf: Vec<(NodeType, Vec<(f64, f64)>)>,
    /// F7: precursor analysis over lethal node-scoped events.
    pub precursors: PrecursorReport,
    /// F8: temporal dispersion of failures and events.
    pub temporal: TemporalReport,
}

/// The paper-shaped scale buckets for a class on the full machine (anchor
/// buckets included: XE 9–12 k ≈ "10,000 nodes", 18–22.6 k ≈ "full scale";
/// XK 1.8–2.2 k and 3.5–4.2 k).
pub fn paper_buckets(ty: NodeType) -> Vec<(u32, u32)> {
    match ty {
        NodeType::Xk => buckets_for(ty, 4_224),
        _ => buckets_for(ty, 22_640),
    }
}

/// Scale buckets adapted to the class's largest observed width.
///
/// The top three buckets sit at fixed *fractions* of the class size (the
/// paper's mid-anchor, the gap, and "full scale"), so the same curve shape
/// is measurable on geometry-scaled machines; below them, absolute
/// power-of-4 buckets cover the small-app mass. On the real class sizes the
/// fraction buckets reproduce the paper's absolute edges exactly.
pub fn buckets_for(ty: NodeType, max_width: u32) -> Vec<(u32, u32)> {
    // Fractions chosen so that on the full machine the edges land on
    // 9,000/12,000/18,000 (XE, N = 22,640) and 1,800/2,200/3,500 (XK,
    // N = 4,224).
    let (f_mid_lo, f_mid_hi, f_full_lo) = match ty {
        NodeType::Xk => (1_800.0 / 4_224.0, 2_200.0 / 4_224.0, 3_500.0 / 4_224.0),
        _ => (9_000.0 / 22_640.0, 12_000.0 / 22_640.0, 18_000.0 / 22_640.0),
    };
    let w = max_width.max(8);
    let mid_lo = ((f_mid_lo * w as f64).round() as u32).max(2);
    let mid_hi = ((f_mid_hi * w as f64).round() as u32).max(mid_lo);
    let full_lo = ((f_full_lo * w as f64).round() as u32).max(mid_hi + 1);
    let mut buckets: Vec<(u32, u32)> = Vec::new();
    let mut prev_hi = 0u32;
    for (lo, hi) in [
        (1u32, 1u32),
        (2, 4),
        (5, 16),
        (17, 64),
        (65, 256),
        (257, 1_024),
        (1_025, 4_096),
        (4_097, 16_384),
    ] {
        if lo >= mid_lo {
            break;
        }
        let hi = hi.min(mid_lo - 1);
        if hi >= lo {
            buckets.push((lo, hi));
            prev_hi = hi;
        }
    }
    if prev_hi + 1 < mid_lo {
        buckets.push((prev_hi + 1, mid_lo - 1));
    }
    buckets.push((mid_lo, mid_hi));
    if mid_hi + 1 < full_lo {
        buckets.push((mid_hi + 1, full_lo - 1));
    }
    if full_lo <= w {
        buckets.push((full_lo, w));
    }
    buckets
}

/// True for runs that actually executed (launch failures and record-less
/// runs are excluded from the scale curves and MTTI — see EXPERIMENTS.md).
fn is_executing(run: &ClassifiedRun) -> bool {
    matches!(run.run.termination, Termination::Exited(_))
}

/// Computes the full metric set.
pub fn compute(runs: &[ClassifiedRun], events: &[ErrorEvent]) -> MetricSet {
    let total_runs = runs.len() as u64;
    let total_node_hours: f64 = runs.iter().map(|r| r.run.node_hours()).sum();
    let (t_min, t_max) = runs.iter().fold((i64::MAX, i64::MIN), |(lo, hi), r| {
        (lo.min(r.run.start.as_unix()), hi.max(r.run.end.as_unix()))
    });
    let measured_days = if total_runs == 0 {
        0.0
    } else {
        (t_max - t_min) as f64 / 86_400.0
    };

    // ---- T2: outcomes ----------------------------------------------------
    let mut outcome_acc: Vec<(String, u64, f64)> = Vec::new();
    let bump = |label: String, nh: f64, acc: &mut Vec<(String, u64, f64)>| match acc
        .iter_mut()
        .find(|(l, _, _)| *l == label)
    {
        Some(row) => {
            row.1 += 1;
            row.2 += nh;
        }
        None => acc.push((label, 1, nh)),
    };
    for r in runs {
        bump(
            r.class.bucket_name().to_string(),
            r.run.node_hours(),
            &mut outcome_acc,
        );
    }
    outcome_acc.sort_by_key(|row| std::cmp::Reverse(row.1));
    let outcomes: Vec<OutcomeRow> = outcome_acc
        .into_iter()
        .map(|(label, n, nh)| OutcomeRow {
            label,
            runs: n,
            pct_runs: if total_runs > 0 {
                n as f64 / total_runs as f64
            } else {
                0.0
            },
            node_hours: nh,
            pct_node_hours: if total_node_hours > 0.0 {
                nh / total_node_hours
            } else {
                0.0
            },
        })
        .collect();

    let system_failed: Vec<&ClassifiedRun> = runs
        .iter()
        .filter(|r| r.class.is_system_failure())
        .collect();
    let system_failure_fraction = if total_runs > 0 {
        system_failed.len() as f64 / total_runs as f64
    } else {
        0.0
    };
    let failed_nh: f64 = system_failed.iter().map(|r| r.run.node_hours()).sum();
    let failed_node_hours_fraction = if total_node_hours > 0.0 {
        failed_nh / total_node_hours
    } else {
        0.0
    };

    // ---- T3/F4: causes ---------------------------------------------------
    let mut causes: Vec<CauseRow> = FailureCause::ALL
        .iter()
        .map(|&cause| CauseRow {
            cause,
            runs: 0,
            pct_of_system: 0.0,
            lost_node_hours: 0.0,
        })
        .collect();
    for r in &system_failed {
        if let ExitClass::SystemFailure(cause) = r.class {
            let row = causes
                .iter_mut()
                .find(|c| c.cause == cause)
                // lint: allow(no-panic) causes was just built with one row per FailureCause variant, so the find always hits
                .expect("all causes present");
            row.runs += 1;
            row.lost_node_hours += r.run.node_hours();
        }
    }
    let n_sys = system_failed.len() as f64;
    for row in &mut causes {
        row.pct_of_system = if n_sys > 0.0 {
            row.runs as f64 / n_sys
        } else {
            0.0
        };
    }

    // ---- F1/F2: scale curves, F3: MTTI, T4: detection ---------------------
    let mut scale_curves = Vec::new();
    let mut mtti = Vec::new();
    let mut detection = Vec::new();
    for ty in [NodeType::Xe, NodeType::Xk] {
        let class_runs: Vec<&ClassifiedRun> = runs
            .iter()
            .filter(|r| r.run.node_type == ty && is_executing(r))
            .collect();
        let class_max = class_runs.iter().map(|r| r.run.width).max().unwrap_or(0);
        let mut buckets = Vec::new();
        for (lo, hi) in buckets_for(ty, class_max) {
            let in_bucket: Vec<&&ClassifiedRun> = class_runs
                .iter()
                .filter(|r| (lo..=hi).contains(&r.run.width))
                .collect();
            let n = in_bucket.len() as u64;
            let failures = in_bucket
                .iter()
                .filter(|r| r.class.is_system_failure())
                .count() as u64;
            let (probability, ci) = match wilson_interval(failures, n.max(1), 0.95) {
                Ok(e) if n > 0 => (e.p_hat, (e.lo, e.hi)),
                _ => (0.0, (0.0, 0.0)),
            };
            buckets.push(ScaleBucket {
                lo,
                hi,
                runs: n,
                failures,
                probability,
                ci,
            });

            // F3 per bucket.
            let exposure: f64 = in_bucket
                .iter()
                .map(|r| r.run.runtime().as_hours_f64().max(0.0))
                .sum();
            let km = {
                let obs: Vec<SurvivalObservation> = in_bucket
                    .iter()
                    .map(|r| SurvivalObservation {
                        time: r.run.runtime().as_hours_f64().max(0.0),
                        event: r.class.is_system_failure(),
                    })
                    .collect();
                KaplanMeier::fit(&obs).ok()
            };
            mtti.push(MttiRow {
                node_type: ty,
                lo,
                hi,
                runs: n,
                interrupts: failures,
                exposure_hours: exposure,
                mtti_hours: (failures > 0).then(|| exposure / failures as f64),
                km_median_hours: km.as_ref().and_then(KaplanMeier::median),
            });
        }
        let exact_full = (class_max > 0).then(|| {
            let at_full: Vec<&&ClassifiedRun> = class_runs
                .iter()
                .filter(|r| r.run.width == class_max)
                .collect();
            let n = at_full.len() as u64;
            let failures = at_full
                .iter()
                .filter(|r| r.class.is_system_failure())
                .count() as u64;
            let (probability, ci) = match wilson_interval(failures, n.max(1), 0.95) {
                Ok(e) if n > 0 => (e.p_hat, (e.lo, e.hi)),
                _ => (0.0, (0.0, 0.0)),
            };
            ScaleBucket {
                lo: class_max,
                hi: class_max,
                runs: n,
                failures,
                probability,
                ci,
            }
        });
        scale_curves.push(ScaleCurve {
            node_type: ty,
            buckets,
            exact_full,
        });

        // T4 (all runs of the class, launch failures excluded: the launcher
        // reports those itself, so they say nothing about detection).
        let sys: Vec<&&ClassifiedRun> = class_runs
            .iter()
            .filter(|r| r.class.is_system_failure())
            .collect();
        let undet = sys
            .iter()
            .filter(|r| r.class == ExitClass::SystemFailure(FailureCause::Undetermined))
            .count() as u64;
        detection.push(DetectionRow {
            node_type: ty,
            system_failures: sys.len() as u64,
            undetermined: undet,
            fraction_undetermined: if sys.is_empty() {
                0.0
            } else {
                undet as f64 / sys.len() as f64
            },
        });
    }

    // ---- F6: interarrival fit ---------------------------------------------
    let mut wide_times: Vec<i64> = events
        .iter()
        .filter(|e| e.system_scope && e.is_lethal())
        .map(|e| e.start.as_unix())
        .collect();
    wide_times.sort_unstable();
    let gaps: Vec<f64> = wide_times
        .windows(2)
        .map(|w| ((w[1] - w[0]) as f64 / 3_600.0).max(1e-6))
        .collect();
    let interarrival = if gaps.len() >= 8 {
        let exp = Exponential::fit_mle(&gaps).ok();
        let wei = Weibull::fit_mle(&gaps).ok();
        match (exp, wei, Ecdf::from_sample(gaps.clone()).ok()) {
            (Some(exp), Some(wei), Some(ecdf)) => Some(InterarrivalFit {
                events: wide_times.len() as u64,
                exp_rate_per_hour: exp.rate(),
                weibull_shape: wei.shape(),
                weibull_scale: wei.scale(),
                ks_exponential: ecdf.ks_statistic(|x| hpc_stats::dist::Distribution::cdf(&exp, x)),
                ks_weibull: ecdf.ks_statistic(|x| hpc_stats::dist::Distribution::cdf(&wei, x)),
            }),
            _ => None,
        }
    } else {
        None
    };

    // ---- F5: workload CDFs -------------------------------------------------
    let mut size_cdf = Vec::new();
    let mut duration_cdf = Vec::new();
    for ty in [NodeType::Xe, NodeType::Xk] {
        let widths: Vec<f64> = runs
            .iter()
            .filter(|r| r.run.node_type == ty)
            .map(|r| r.run.width as f64)
            .collect();
        if let Ok(e) = Ecdf::from_sample(widths) {
            size_cdf.push((ty, e.plot_points(60)));
        }
        let durations: Vec<f64> = runs
            .iter()
            .filter(|r| r.run.node_type == ty && is_executing(r))
            .map(|r| r.run.runtime().as_hours_f64().max(0.0))
            .collect();
        if let Ok(e) = Ecdf::from_sample(durations) {
            duration_cdf.push((ty, e.plot_points(60)));
        }
    }

    MetricSet {
        total_runs,
        total_node_hours,
        measured_days,
        outcomes,
        system_failure_fraction,
        failed_node_hours_fraction,
        causes,
        scale_curves,
        mtti,
        detection,
        interarrival,
        size_cdf,
        duration_cdf,
        precursors: analyze_precursors(events, DEFAULT_LOOKBACK),
        temporal: analyze_temporal(runs, events),
    }
}

/// Breaks user failures down by kind (extension of T2 used in the report).
pub fn user_failure_breakdown(runs: &[ClassifiedRun]) -> Vec<(UserFailureKind, u64)> {
    let mut rows: Vec<(UserFailureKind, u64)> =
        UserFailureKind::ALL.iter().map(|&k| (k, 0)).collect();
    for r in runs {
        if let ExitClass::UserFailure(kind) = r.class {
            rows.iter_mut()
                .find(|(k, _)| *k == kind)
                .expect("all kinds present")
                .1 += 1;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::RangeSet;
    use crate::workload::AppRun;
    use logdiver_types::{
        AppId, ExitStatus, JobId, NodeId, NodeSet, SimDuration, Timestamp, UserId,
    };

    fn t(secs: i64) -> Timestamp {
        Timestamp::PRODUCTION_EPOCH + SimDuration::from_secs(secs)
    }

    fn made_run(
        apid: u64,
        ty: NodeType,
        width: u32,
        hours: i64,
        class: ExitClass,
    ) -> ClassifiedRun {
        let set: NodeSet = (0..width.min(8)).map(NodeId::new).collect();
        let termination = match class {
            ExitClass::SystemFailure(FailureCause::Launcher) => Termination::LaunchFailed,
            ExitClass::Unknown => Termination::Missing,
            ExitClass::Success => Termination::Exited(ExitStatus::SUCCESS),
            _ => Termination::Exited(ExitStatus::with_signal(9)),
        };
        ClassifiedRun {
            run: AppRun {
                apid: AppId::new(apid),
                job: JobId::new(apid),
                user: UserId::new(0),
                node_type: ty,
                width,
                nodes: RangeSet::from_node_set(&set),
                start: t(0),
                end: t(hours * 3_600),
                termination,
            },
            class,
            matched_events: Vec::new(),
            confidence: crate::classify::AttributionConfidence::Full,
        }
    }

    #[test]
    fn outcome_shares_sum_to_one() {
        let runs = vec![
            made_run(1, NodeType::Xe, 1, 1, ExitClass::Success),
            made_run(2, NodeType::Xe, 1, 1, ExitClass::Success),
            made_run(
                3,
                NodeType::Xe,
                100,
                2,
                ExitClass::SystemFailure(FailureCause::Memory),
            ),
            made_run(
                4,
                NodeType::Xk,
                1,
                1,
                ExitClass::UserFailure(UserFailureKind::Abort),
            ),
        ];
        let m = compute(&runs, &[]);
        assert_eq!(m.total_runs, 4);
        let pct: f64 = m.outcomes.iter().map(|o| o.pct_runs).sum();
        assert!((pct - 1.0).abs() < 1e-9);
        let nh: f64 = m.outcomes.iter().map(|o| o.node_hours).sum();
        assert!((nh - m.total_node_hours).abs() < 1e-9);
        assert!((m.system_failure_fraction - 0.25).abs() < 1e-12);
        // The 200 node-hour failure dominates the 3 small runs.
        assert!(m.failed_node_hours_fraction > 0.9);
    }

    #[test]
    fn causes_partition_system_failures() {
        let runs = vec![
            made_run(
                1,
                NodeType::Xe,
                4,
                1,
                ExitClass::SystemFailure(FailureCause::Memory),
            ),
            made_run(
                2,
                NodeType::Xe,
                4,
                1,
                ExitClass::SystemFailure(FailureCause::Memory),
            ),
            made_run(
                3,
                NodeType::Xe,
                4,
                1,
                ExitClass::SystemFailure(FailureCause::Interconnect),
            ),
            made_run(4, NodeType::Xe, 4, 1, ExitClass::Success),
        ];
        let m = compute(&runs, &[]);
        let total: u64 = m.causes.iter().map(|c| c.runs).sum();
        assert_eq!(total, 3);
        let mem = m
            .causes
            .iter()
            .find(|c| c.cause == FailureCause::Memory)
            .unwrap();
        assert_eq!(mem.runs, 2);
        assert!((mem.pct_of_system - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn scale_curve_buckets_count_failures() {
        let mut runs = Vec::new();
        for i in 0..100 {
            runs.push(made_run(i, NodeType::Xe, 20_000, 1, ExitClass::Success));
        }
        for i in 100..120 {
            runs.push(made_run(
                i,
                NodeType::Xe,
                20_000,
                1,
                ExitClass::SystemFailure(FailureCause::Interconnect),
            ));
        }
        // Launch failures must not enter the curve.
        runs.push(made_run(
            999,
            NodeType::Xe,
            20_000,
            0,
            ExitClass::SystemFailure(FailureCause::Launcher),
        ));
        let m = compute(&runs, &[]);
        let xe = m
            .scale_curves
            .iter()
            .find(|c| c.node_type == NodeType::Xe)
            .unwrap();
        let bucket = xe.bucket_containing(20_000).unwrap();
        assert_eq!(bucket.runs, 120);
        assert_eq!(bucket.failures, 20);
        assert!((bucket.probability - 20.0 / 120.0).abs() < 1e-12);
        assert!(bucket.ci.0 < bucket.probability && bucket.probability < bucket.ci.1);
    }

    #[test]
    fn mtti_is_exposure_over_interrupts() {
        let runs = vec![
            made_run(1, NodeType::Xe, 1, 10, ExitClass::Success),
            made_run(2, NodeType::Xe, 1, 10, ExitClass::Success),
            made_run(
                3,
                NodeType::Xe,
                1,
                10,
                ExitClass::SystemFailure(FailureCause::Memory),
            ),
        ];
        let m = compute(&runs, &[]);
        let row = m
            .mtti
            .iter()
            .find(|r| r.node_type == NodeType::Xe && r.lo == 1 && r.runs > 0)
            .unwrap();
        assert_eq!(row.interrupts, 1);
        assert!((row.exposure_hours - 30.0).abs() < 1e-9);
        assert!((row.mtti_hours.unwrap() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn detection_rows_catch_undetermined() {
        let runs = vec![
            made_run(
                1,
                NodeType::Xk,
                4,
                1,
                ExitClass::SystemFailure(FailureCause::Undetermined),
            ),
            made_run(
                2,
                NodeType::Xk,
                4,
                1,
                ExitClass::SystemFailure(FailureCause::Gpu),
            ),
            made_run(
                3,
                NodeType::Xe,
                4,
                1,
                ExitClass::SystemFailure(FailureCause::Memory),
            ),
        ];
        let m = compute(&runs, &[]);
        let xk = m
            .detection
            .iter()
            .find(|d| d.node_type == NodeType::Xk)
            .unwrap();
        assert_eq!(xk.system_failures, 2);
        assert_eq!(xk.undetermined, 1);
        assert!((xk.fraction_undetermined - 0.5).abs() < 1e-12);
        let xe = m
            .detection
            .iter()
            .find(|d| d.node_type == NodeType::Xe)
            .unwrap();
        assert_eq!(xe.fraction_undetermined, 0.0);
    }

    #[test]
    fn interarrival_fit_appears_with_enough_events() {
        use logdiver_types::{ErrorCategory, Severity};
        let events: Vec<ErrorEvent> = (0..20)
            .map(|i| ErrorEvent {
                id: i,
                // ~hourly with deterministic jitter so the gaps are not all
                // identical (a degenerate sample has no Weibull MLE).
                start: t(i as i64 * 3_600 + (i as i64 % 5) * 240),
                end: t(i as i64 * 3_600 + (i as i64 % 5) * 240 + 60),
                categories: vec![ErrorCategory::GeminiLinkFailure],
                severity: Severity::Critical,
                nodes: Vec::new(),
                system_scope: true,
                entry_count: 1,
            })
            .collect();
        let runs = vec![made_run(1, NodeType::Xe, 1, 1, ExitClass::Success)];
        let m = compute(&runs, &events);
        let fit = m.interarrival.unwrap();
        assert_eq!(fit.events, 20);
        // Near-hourly gaps: exponential MTBF ≈ mean gap; the spacing is far
        // more regular than exponential, so the Weibull shape is large and
        // its fit at least as good.
        assert!((1.0 / fit.exp_rate_per_hour - 1.0).abs() < 0.3, "{fit:?}");
        assert!(fit.weibull_shape > 1.5, "{fit:?}");
        assert!(fit.ks_exponential > 0.0 && fit.ks_weibull > 0.0, "{fit:?}");
    }

    #[test]
    fn paper_buckets_reproduce_absolute_edges() {
        let xe = paper_buckets(NodeType::Xe);
        assert!(xe.contains(&(9_000, 12_000)), "{xe:?}");
        assert!(xe.contains(&(18_000, 22_640)), "{xe:?}");
        let xk = paper_buckets(NodeType::Xk);
        assert!(xk.contains(&(1_800, 2_200)), "{xk:?}");
        assert!(xk.contains(&(3_500, 4_224)), "{xk:?}");
    }

    #[test]
    fn buckets_partition_without_overlap_at_any_scale() {
        for max in [8u32, 50, 354, 1_416, 4_224, 22_640, 30_000] {
            for ty in [NodeType::Xe, NodeType::Xk] {
                let b = buckets_for(ty, max);
                assert!(!b.is_empty());
                assert_eq!(b[0].0, 1, "{ty} {max}: {b:?}");
                assert_eq!(b.last().unwrap().1, max.max(8), "{ty} {max}: {b:?}");
                for w in b.windows(2) {
                    assert_eq!(w[0].1 + 1, w[1].0, "{ty} {max}: {b:?}");
                }
            }
        }
    }

    #[test]
    fn empty_input_is_all_zeroes() {
        let m = compute(&[], &[]);
        assert_eq!(m.total_runs, 0);
        assert_eq!(m.system_failure_fraction, 0.0);
        assert!(m.outcomes.is_empty());
        assert!(m.interarrival.is_none());
    }

    #[test]
    fn user_breakdown_counts_kinds() {
        let runs = vec![
            made_run(
                1,
                NodeType::Xe,
                1,
                1,
                ExitClass::UserFailure(UserFailureKind::Segfault),
            ),
            made_run(
                2,
                NodeType::Xe,
                1,
                1,
                ExitClass::UserFailure(UserFailureKind::Segfault),
            ),
            made_run(
                3,
                NodeType::Xe,
                1,
                1,
                ExitClass::UserFailure(UserFailureKind::Abort),
            ),
        ];
        let rows = user_failure_breakdown(&runs);
        assert_eq!(
            rows.iter()
                .find(|(k, _)| *k == UserFailureKind::Segfault)
                .unwrap()
                .1,
            2
        );
        assert_eq!(
            rows.iter()
                .find(|(k, _)| *k == UserFailureKind::Abort)
                .unwrap()
                .1,
            1
        );
    }
}
