//! Error type for the analysis pipeline.

use std::error::Error;
use std::fmt;

/// Errors surfaced by LogDiver's fallible entry points (I/O-backed input).
#[derive(Debug)]
pub enum LogDiverError {
    /// A log directory/file could not be read.
    Io {
        /// What was being read.
        path: String,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The input directory is missing every expected log file.
    NoInput {
        /// The directory inspected.
        path: String,
    },
}

impl fmt::Display for LogDiverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogDiverError::Io { path, source } => write!(f, "cannot read {path}: {source}"),
            LogDiverError::NoInput { path } => {
                write!(f, "no recognizable log files under {path}")
            }
        }
    }
}

impl Error for LogDiverError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LogDiverError::Io { source, .. } => Some(source),
            LogDiverError::NoInput { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LogDiverError::NoInput {
            path: "/tmp/x".into(),
        };
        assert!(e.to_string().contains("/tmp/x"));
        assert!(e.source().is_none());
        let e = LogDiverError::Io {
            path: "f".into(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert!(e.source().is_some());
    }
}
