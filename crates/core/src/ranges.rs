//! Compact node-range sets.
//!
//! The full field study holds ~5 M application placements in memory at
//! once. A bitmap [`logdiver_types::NodeSet`] costs up to ~3.5 KiB per
//! placement on a 27k-node machine; since scheduler placements are
//! contiguous-ish, a sorted run-length representation is 10–100× smaller
//! and still answers the only two questions the matcher asks: *does this
//! placement contain nid X?* and *does it intersect this (small) node
//! list?*

use logdiver_types::{NodeId, NodeSet};
use serde::{Deserialize, Serialize};

/// A set of nids stored as sorted, disjoint, inclusive ranges.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RangeSet {
    runs: Vec<(u32, u32)>,
    len: u32,
}

impl RangeSet {
    /// Builds from a [`NodeSet`] (which yields maximal sorted runs).
    pub fn from_node_set(set: &NodeSet) -> Self {
        let runs: Vec<(u32, u32)> = set.ranges().map(|(a, b)| (a.value(), b.value())).collect();
        let len = runs.iter().map(|(a, b)| b - a + 1).sum();
        RangeSet { runs, len }
    }

    /// Number of nids.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test (binary search over runs).
    pub fn contains(&self, nid: NodeId) -> bool {
        let v = nid.value();
        self.runs
            .binary_search_by(|&(a, b)| {
                if v < a {
                    std::cmp::Ordering::Greater
                } else if v > b {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// True when any of `nids` is contained.
    pub fn intersects_any(&self, nids: &[NodeId]) -> bool {
        nids.iter().any(|&n| self.contains(n))
    }

    /// The smallest nid, if any.
    pub fn first(&self) -> Option<NodeId> {
        self.runs.first().map(|&(a, _)| NodeId::new(a))
    }

    /// Iterates all nids (ascending).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.runs
            .iter()
            .flat_map(|&(a, b)| (a..=b).map(NodeId::new))
    }

    /// The sorted runs themselves.
    pub fn runs(&self) -> &[(u32, u32)] {
        &self.runs
    }
}

impl From<&NodeSet> for RangeSet {
    fn from(set: &NodeSet) -> Self {
        RangeSet::from_node_set(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set_of(nids: &[u32]) -> NodeSet {
        nids.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn contains_and_len() {
        let rs = RangeSet::from_node_set(&set_of(&[1, 2, 3, 100, 102]));
        assert_eq!(rs.len(), 5);
        assert!(rs.contains(NodeId::new(2)));
        assert!(rs.contains(NodeId::new(100)));
        assert!(!rs.contains(NodeId::new(101)));
        assert!(!rs.contains(NodeId::new(0)));
        assert_eq!(rs.first(), Some(NodeId::new(1)));
        assert_eq!(rs.runs(), &[(1, 3), (100, 100), (102, 102)]);
    }

    #[test]
    fn empty_set() {
        let rs = RangeSet::from_node_set(&NodeSet::new());
        assert!(rs.is_empty());
        assert!(!rs.contains(NodeId::new(0)));
        assert_eq!(rs.first(), None);
    }

    #[test]
    fn intersects_any_small_list() {
        let rs = RangeSet::from_node_set(&set_of(&[10, 11, 12, 13]));
        assert!(rs.intersects_any(&[NodeId::new(13), NodeId::new(99)]));
        assert!(!rs.intersects_any(&[NodeId::new(9), NodeId::new(14)]));
        assert!(!rs.intersects_any(&[]));
    }

    proptest! {
        #[test]
        fn matches_bitmap_semantics(nids in proptest::collection::btree_set(0u32..2_000, 0..100),
                                    probe in 0u32..2_100) {
            let set: NodeSet = nids.iter().copied().map(NodeId::new).collect();
            let rs = RangeSet::from_node_set(&set);
            prop_assert_eq!(rs.len() as usize, nids.len());
            prop_assert_eq!(rs.contains(NodeId::new(probe)), nids.contains(&probe));
            let back: Vec<u32> = rs.iter().map(|n| n.value()).collect();
            let expect: Vec<u32> = nids.iter().copied().collect();
            prop_assert_eq!(back, expect);
        }
    }
}
