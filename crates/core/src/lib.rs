//! # logdiver
//!
//! The paper's primary contribution: a tool that measures the resilience of
//! HPC *applications* (not just the system) by jointly analyzing workload
//! logs (Torque accounting, ALPS `apsys`) and error logs (syslog, hardware
//! error log, netwatch) from a Cray XE/XK machine.
//!
//! ## Pipeline
//!
//! ```text
//!  raw log files
//!    │  parse      — typed records per source, corrupt lines counted    [input, parse]
//!    │  filter     — template matching: error category or discard       [filter]
//!    │  coalesce   — spatial-temporal tupling into error events         [coalesce]
//!    │  reconstruct— application runs from ALPS ⋈ Torque                [workload]
//!    │  match      — events ⋈ runs by time overlap + node intersection  [matcher]
//!    │  classify   — per-run verdict: success / user / system / …       [classify]
//!    ▼  metrics    — the paper's tables and figures                     [metrics, report]
//! ```
//!
//! The one-call entry point is [`LogDiver::analyze`]:
//!
//! ```
//! use logdiver::{LogCollection, LogDiver};
//!
//! let mut logs = LogCollection::new();
//! logs.alps.push("2013-03-28 12:30:00 apsys PLACED apid=7 batch=1.bw user=u0001 \
//!                 cmd=a.out type=XE width=2 nodelist=nid[0-1]".to_string());
//! logs.alps.push("2013-03-28 13:30:00 apsys EXIT apid=7 code=0 signal=none \
//!                 node_failed=no runtime=3600".to_string());
//! let analysis = LogDiver::new().analyze(&logs);
//! assert_eq!(analysis.runs.len(), 1);
//! assert!(analysis.runs[0].class.is_failure() == false);
//! ```
//!
//! ## Honesty constraints
//!
//! The filter's pattern table ([`filter::PatternTable`]) is written against
//! the *message text* found in the logs, independently of the emitting
//! code (`craylog::templates`) — the tool must work from what the machine
//! actually prints, exactly as the real LogDiver had to. No module in this
//! crate reads simulator ground truth.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod checkpoint;
pub mod classify;
pub mod coalesce;
pub mod config;
pub mod coverage;
pub mod error;
pub mod exec;
pub mod filter;
pub mod input;
pub mod jobs;
pub mod matcher;
pub mod metrics;
pub mod parse;
pub mod pipeline;
pub mod precursor;
pub mod ranges;
pub mod report;
pub mod temporal;
pub mod users;
pub mod workload;

pub use classify::{AttributionConfidence, ClassifiedRun};
pub use coalesce::{Coalescer, ErrorEvent};
pub use config::LogDiverConfig;
pub use coverage::{CoverageConfig, CoverageGap, CoverageMap};
pub use error::LogDiverError;
pub use input::LogCollection;
pub use jobs::JobReport;
pub use matcher::{EventLookup, MatchIndex};
pub use metrics::MetricSet;
pub use pipeline::{Analysis, LogDiver, PipelineStats, StageTimings};
pub use precursor::PrecursorReport;
pub use temporal::TemporalReport;
pub use users::UserReport;
pub use workload::AppRun;
pub use workload::RunReconstructor;
