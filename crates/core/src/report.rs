//! Rendering metric sets as report tables (and CSV for plotting).
//!
//! These renderers produce the rows the paper's tables/figures report; the
//! bench harnesses print them, and EXPERIMENTS.md embeds them.

use std::fmt::Write as _;

use logdiver_types::NodeType;

use crate::metrics::{MetricSet, ScaleCurve};
use crate::pipeline::PipelineStats;

fn hline(widths: &[usize]) -> String {
    let mut s = String::from("+");
    for w in widths {
        s.push_str(&"-".repeat(w + 2));
        s.push('+');
    }
    s
}

fn row(widths: &[usize], cells: &[String]) -> String {
    let mut s = String::from("|");
    for (w, c) in widths.iter().zip(cells) {
        let _ = write!(s, " {c:<w$} |");
    }
    s
}

/// Generic fixed-width table renderer.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&hline(&widths));
    out.push('\n');
    out.push_str(&row(
        &widths,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&hline(&widths));
    out.push('\n');
    for r in rows {
        out.push_str(&row(&widths, r));
        out.push('\n');
    }
    out.push_str(&hline(&widths));
    out
}

/// T2: application outcome breakdown.
pub fn outcome_table(m: &MetricSet) -> String {
    let rows: Vec<Vec<String>> = m
        .outcomes
        .iter()
        .map(|o| {
            vec![
                o.label.clone(),
                o.runs.to_string(),
                format!("{:.3}%", o.pct_runs * 100.0),
                format!("{:.0}", o.node_hours),
                format!("{:.2}%", o.pct_node_hours * 100.0),
            ]
        })
        .collect();
    format!(
        "T2 — Application outcomes ({} runs, {:.0} node-hours, {:.0} days)\n{}\nsystem-failure fraction: {:.3}% of runs; failed runs consumed {:.2}% of node-hours",
        m.total_runs,
        m.total_node_hours,
        m.measured_days,
        render_table(&["outcome", "runs", "% runs", "node-hours", "% node-hours"], &rows),
        m.system_failure_fraction * 100.0,
        m.failed_node_hours_fraction * 100.0,
    )
}

/// T3/F4: system-failure causes with lost work.
pub fn cause_table(m: &MetricSet) -> String {
    let rows: Vec<Vec<String>> = m
        .causes
        .iter()
        .filter(|c| c.runs > 0)
        .map(|c| {
            vec![
                c.cause.to_string(),
                c.runs.to_string(),
                format!("{:.1}%", c.pct_of_system * 100.0),
                format!("{:.0}", c.lost_node_hours),
            ]
        })
        .collect();
    format!(
        "T3 — System-failure causes (F4: lost node-hours)\n{}",
        render_table(
            &["cause", "failed runs", "% of system", "lost node-hours"],
            &rows
        )
    )
}

/// F1/F2: one scale curve.
pub fn scale_table(curve: &ScaleCurve) -> String {
    let fig = if curve.node_type == NodeType::Xk {
        "F2"
    } else {
        "F1"
    };
    let rows: Vec<Vec<String>> = curve
        .buckets
        .iter()
        .filter(|b| b.runs > 0)
        .map(|b| {
            vec![
                format!("{}–{}", b.lo, b.hi),
                b.runs.to_string(),
                b.failures.to_string(),
                format!("{:.4}", b.probability),
                format!("[{:.4}, {:.4}]", b.ci.0, b.ci.1),
            ]
        })
        .collect();
    let exact = match &curve.exact_full {
        Some(b) if b.runs > 0 => format!(
            "\nat exactly {} nodes: P = {:.4} [{:.4}, {:.4}] over {} runs ({} failures)",
            b.lo, b.probability, b.ci.0, b.ci.1, b.runs, b.failures
        ),
        _ => String::new(),
    };
    format!(
        "{fig} — {} failure probability vs application scale\n{}{exact}",
        curve.node_type,
        render_table(
            &["nodes", "runs", "failures", "P(fail|system)", "95% CI"],
            &rows
        )
    )
}

/// F3: MTTI per scale bucket.
pub fn mtti_table(m: &MetricSet) -> String {
    let rows: Vec<Vec<String>> = m
        .mtti
        .iter()
        .filter(|r| r.runs > 0)
        .map(|r| {
            vec![
                r.node_type.to_string(),
                format!("{}–{}", r.lo, r.hi),
                r.runs.to_string(),
                r.interrupts.to_string(),
                format!("{:.0}", r.exposure_hours),
                r.mtti_hours.map_or("—".into(), |v| format!("{v:.1}")),
                r.km_median_hours.map_or("—".into(), |v| format!("{v:.1}")),
            ]
        })
        .collect();
    format!(
        "F3 — Mean time to (system) interrupt by scale\n{}",
        render_table(
            &[
                "class",
                "nodes",
                "runs",
                "interrupts",
                "exposure h",
                "MTTI h",
                "KM median h"
            ],
            &rows
        )
    )
}

/// T4: detection coverage.
pub fn detection_table(m: &MetricSet) -> String {
    let rows: Vec<Vec<String>> = m
        .detection
        .iter()
        .map(|d| {
            vec![
                d.node_type.to_string(),
                d.system_failures.to_string(),
                d.undetermined.to_string(),
                format!("{:.1}%", d.fraction_undetermined * 100.0),
            ]
        })
        .collect();
    format!(
        "T4 — Error-detection gap (system failures with no explaining error event)\n{}",
        render_table(
            &["class", "system failures", "undetermined", "% undetermined"],
            &rows
        )
    )
}

/// T5: pipeline effectiveness.
pub fn pipeline_table(s: &PipelineStats) -> String {
    let names = ["syslog", "hwerr", "alps", "torque", "netwatch"];
    let mut rows: Vec<Vec<String>> = names
        .iter()
        .zip(s.parse.iter())
        .map(|(n, c)| vec![n.to_string(), c.total.to_string(), c.bad.to_string()])
        .collect();
    rows.push(vec![
        "TOTAL".into(),
        s.parse.iter().map(|c| c.total).sum::<u64>().to_string(),
        s.parse.iter().map(|c| c.bad).sum::<u64>().to_string(),
    ]);
    format!(
        "T5 — Pipeline effectiveness\n{}\nsyslog kept: {} of {} ({:.2}% discarded as chatter)\nfiltered entries: {} → events: {} (coalescing ×{:.1}); lethal events: {}",
        render_table(&["source", "lines", "corrupt"], &rows),
        s.filter.syslog_kept,
        s.filter.syslog_examined,
        s.filter.syslog_discard_ratio() * 100.0,
        s.entries,
        s.events,
        s.coalescing_ratio(),
        s.lethal_events,
    )
}

/// F6: interarrival fit summary.
pub fn interarrival_summary(m: &MetricSet) -> String {
    match &m.interarrival {
        None => "F6 — too few machine-scope events for an interarrival fit".to_string(),
        Some(f) => format!(
            "F6 — Machine-scope lethal event interarrivals ({} events)\n  exponential: rate {:.4}/h (MTBF {:.1} h), KS = {:.3}\n  Weibull:     shape {:.2}, scale {:.1} h, KS = {:.3}",
            f.events,
            f.exp_rate_per_hour,
            1.0 / f.exp_rate_per_hour.max(1e-12),
            f.ks_exponential,
            f.weibull_shape,
            f.weibull_scale,
            f.ks_weibull,
        ),
    }
}

/// F5: workload CDF summary (quartiles per class).
pub fn workload_summary(m: &MetricSet) -> String {
    let mut out = String::from("F5 — Workload distributions (CDF quartile summary)\n");
    for (ty, pts) in &m.size_cdf {
        if let Some(q) = quartiles(pts) {
            let _ = writeln!(
                out,
                "  {ty} size nodes:      p25 {:.0}, median {:.0}, p75 {:.0}, max {:.0}",
                q.0, q.1, q.2, q.3
            );
        }
    }
    for (ty, pts) in &m.duration_cdf {
        if let Some(q) = quartiles(pts) {
            let _ = writeln!(
                out,
                "  {ty} duration hours:  p25 {:.2}, median {:.2}, p75 {:.2}, max {:.1}",
                q.0, q.1, q.2, q.3
            );
        }
    }
    out
}

fn quartiles(points: &[(f64, f64)]) -> Option<(f64, f64, f64, f64)> {
    if points.is_empty() {
        return None;
    }
    let at = |p: f64| {
        points
            .iter()
            .find(|&&(_, f)| f >= p)
            .map(|&(x, _)| x)
            // lint: allow(no-panic) the is_empty early return above guarantees a last element
            .unwrap_or(points.last().expect("non-empty").0)
    };
    Some((
        at(0.25),
        at(0.5),
        at(0.75),
        // lint: allow(no-panic) the is_empty early return above guarantees a last element
        points.last().expect("non-empty").0,
    ))
}

/// A2: checkpoint advice derived from measured MTTI.
pub fn checkpoint_table(m: &MetricSet, delta_hours: f64, restart_hours: f64) -> String {
    let advice = crate::checkpoint::advise(m, delta_hours, restart_hours);
    let rows: Vec<Vec<String>> = advice
        .iter()
        .map(|a| {
            vec![
                a.node_type.to_string(),
                format!("{}–{}", a.lo, a.hi),
                format!("{:.1}", a.mtti_hours),
                format!("{:.2}", a.optimal_interval_hours),
                format!("{:.1}%", a.waste_at_optimum * 100.0),
            ]
        })
        .collect();
    format!(
        "A2 — Checkpoint economics (δ = {:.0} min write, {:.0} min restart; Daly optimum)
{}",
        delta_hours * 60.0,
        restart_hours * 60.0,
        render_table(
            &[
                "class",
                "nodes",
                "MTTI h",
                "optimal interval h",
                "min waste"
            ],
            &rows
        )
    )
}

/// F7: precursor summary.
pub fn precursor_table(m: &MetricSet) -> String {
    let p = &m.precursors;
    let mut rows: Vec<Vec<String>> = p
        .by_category
        .iter()
        .map(|r| {
            vec![
                r.category.token().to_string(),
                r.events.to_string(),
                r.with_precursor.to_string(),
                if r.events > 0 {
                    format!("{:.1}%", r.with_precursor as f64 / r.events as f64 * 100.0)
                } else {
                    "—".into()
                },
            ]
        })
        .collect();
    rows.sort_by(|a, b| b[1].len().cmp(&a[1].len()).then(b[1].cmp(&a[1])));
    format!(
        "F7 — Failure precursors (warning events on the same blade, lookback {})
{}
precursor coverage: {}/{} lethal events ({:.1}%); median lead time {}",
        p.lookback,
        render_table(
            &["lethal category", "events", "with precursor", "coverage"],
            &rows
        ),
        p.with_precursor,
        p.lethal_events,
        p.fraction() * 100.0,
        p.median_lead_hours()
            .map_or("—".to_string(), |h| format!("{h:.2} h")),
    )
}

/// F8: temporal dispersion summary.
pub fn temporal_summary(m: &MetricSet) -> String {
    let t = &m.temporal;
    format!(
        "F8 — Temporal dispersion over {} days
  system failures/day : mean {:.2}, max {}, Fano {:.2}, quiet days {}
  wide events/day     : mean {:.2}, max {}, Fano {:.2}
  terminations/day    : mean {:.0}, max {}
  (Fano 1 ≈ Poisson; ≫ 1 = bursty)",
        t.days,
        t.system_failures.mean,
        t.system_failures.max,
        t.system_failures.fano,
        t.system_failures.quiet_days(),
        t.wide_events.mean,
        t.wide_events.max,
        t.wide_events.fano,
        t.terminations.mean,
        t.terminations.max,
    ) + &match t.system_failures.lag1_autocorrelation() {
        Some(acf) => format!(
            "\n  failure clustering  : lag-1 ACF {:.2}, longest bad streak {} days",
            acf,
            t.system_failures.longest_bad_streak()
        ),
        None => String::new(),
    }
}

/// The whole report.
pub fn full_report(m: &MetricSet, stats: &PipelineStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}\n", outcome_table(m));
    let _ = writeln!(out, "{}\n", cause_table(m));
    for curve in &m.scale_curves {
        let _ = writeln!(out, "{}\n", scale_table(curve));
    }
    let _ = writeln!(out, "{}\n", mtti_table(m));
    let _ = writeln!(out, "{}\n", detection_table(m));
    let _ = writeln!(out, "{}\n", interarrival_summary(m));
    let _ = writeln!(out, "{}\n", precursor_table(m));
    let _ = writeln!(out, "{}\n", temporal_summary(m));
    let _ = writeln!(out, "{}", workload_summary(m));
    let _ = writeln!(out, "{}", pipeline_table(stats));
    out
}

/// CSV export of a scale curve (for external plotting).
pub fn scale_curve_csv(curve: &ScaleCurve) -> String {
    let mut out = String::from("lo,hi,runs,failures,probability,ci_lo,ci_hi\n");
    for b in &curve.buckets {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.6},{:.6},{:.6}",
            b.lo, b.hi, b.runs, b.failures, b.probability, b.ci.0, b.ci.1
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::compute;

    #[test]
    fn tables_render_without_panicking_on_empty() {
        let m = compute(&[], &[]);
        let stats = PipelineStats::default();
        let report = full_report(&m, &stats);
        assert!(report.contains("T2"));
        assert!(report.contains("T4"));
        assert!(report.contains("F7"));
        assert!(report.contains("F8"));
        assert!(report.contains("F6"));
        assert!(report.contains("T5"));
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["a", "long header"],
            &[
                vec!["x".into(), "y".into()],
                vec!["wide cell".into(), "z".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines.len() >= 5);
        let lens: std::collections::HashSet<usize> = lines.iter().map(|l| l.len()).collect();
        assert_eq!(lens.len(), 1, "all lines same width:\n{t}");
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        use crate::metrics::{ScaleBucket, ScaleCurve};
        use logdiver_types::NodeType;
        let curve = ScaleCurve {
            node_type: NodeType::Xe,
            exact_full: None,
            buckets: vec![ScaleBucket {
                lo: 1,
                hi: 4,
                runs: 10,
                failures: 1,
                probability: 0.1,
                ci: (0.01, 0.4),
            }],
        };
        let csv = scale_curve_csv(&curve);
        assert!(csv.starts_with("lo,hi,"));
        assert!(csv.contains("1,4,10,1,0.100000"));
    }
}
