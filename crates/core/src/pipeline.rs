//! The end-to-end pipeline: one call from raw lines to metrics.
//!
//! Both front doors ([`LogDiver::analyze`], [`LogDiver::analyze_dir`]) run
//! the **columnar zero-copy path**: lines are tagged with provenance
//! ([`crate::parse::TaggedLines`]), parsed into borrowed columns
//! ([`ParsedColumns`]), and classified before anything materializes
//! ([`filter_columns`]). The record-based path
//! ([`LogDiver::analyze_parsed`]) remains for callers that already hold a
//! [`ParsedLogs`]; both produce identical analyses — a parity the tests
//! pin.

use serde::{Deserialize, Serialize};

use std::collections::HashMap;
use std::time::Instant;

use crate::classify::{classify_runs_threads, ClassifiedRun};
use crate::coalesce::{Coalescer, ErrorEvent};
use crate::config::LogDiverConfig;
use crate::coverage::{qualify_runs, CoverageConfig, CoverageGap, CoverageMap};
use crate::error::LogDiverError;
use crate::filter::{
    filter_columns, filter_logs_threads, EntrySource, FilterStats, FilteredEntry, PatternTable,
};
use crate::input::{LogArena, LogCollection};
use crate::matcher::MatchIndex;
use crate::metrics::{compute, MetricSet};
use crate::parse::{
    arena_lines, collection_lines, parse_columns_threads, ParseCounts, ParsedColumns, ParsedLogs,
    QuarantinedLine,
};
use crate::workload::{reconstruct, reconstruct_records, AppRun, JobInfo, WorkloadStats};

/// Per-stage accounting (experiment T5: pipeline effectiveness).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Parse accounting `[syslog, hwerr, alps, torque, netwatch]`.
    pub parse: [ParseCounts; 5],
    /// Filter accounting.
    pub filter: FilterStats,
    /// Reconstruction accounting.
    pub workload: WorkloadStats,
    /// Filtered entries that entered coalescing.
    pub entries: u64,
    /// Exact-duplicate entries collapsed by the coalescer (replays).
    pub duplicates: u64,
    /// Error events after coalescing.
    pub events: u64,
    /// Of those, lethal events.
    pub lethal_events: u64,
}

impl PipelineStats {
    /// Compression from filtered entries to events.
    pub fn coalescing_ratio(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.entries as f64 / self.events as f64
        }
    }
}

/// Wall-clock seconds spent in each pipeline stage, for `--timings` and the
/// pipeline bench. Kept outside [`Analysis`] so identical inputs keep
/// producing identical analyses.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct StageTimings {
    /// Raw lines → typed records.
    pub parse_secs: f64,
    /// Records → categorized entries (includes the sort).
    pub filter_secs: f64,
    /// Per-source liveness observation.
    pub coverage_secs: f64,
    /// Entries → error events.
    pub coalesce_secs: f64,
    /// ALPS ⋈ Torque → runs.
    pub reconstruct_secs: f64,
    /// Run classification (index build + decision tree + coverage pass).
    pub classify_secs: f64,
    /// Metric computation.
    pub metrics_secs: f64,
    /// End-to-end, including glue not attributed above.
    pub total_secs: f64,
}

/// The result of an analysis.
#[derive(Debug)]
pub struct Analysis {
    /// Every reconstructed run with its verdict.
    pub runs: Vec<ClassifiedRun>,
    /// Coalesced error events (sorted by start).
    pub events: Vec<ErrorEvent>,
    /// All computed metrics.
    pub metrics: MetricSet,
    /// Per-stage accounting.
    pub stats: PipelineStats,
    /// Detected per-source coverage gaps (silent outages). Runs whose
    /// attribution window overlaps one carry a degraded
    /// [`crate::classify::AttributionConfidence`].
    pub coverage: Vec<CoverageGap>,
}

/// The single wall-clock read site for stage timing telemetry.
///
/// Timings are observability only — they never feed the analysis, so the
/// determinism contract (`--threads N` byte-identical to serial) is
/// untouched. Centralized here so the workspace linter's wall-clock rule
/// has exactly one annotated exception in this module.
fn stage_clock() -> Instant {
    Instant::now() // lint: allow(wall-clock) stage-timing telemetry only; StageTimings never feeds Analysis
}

/// The LogDiver tool.
///
/// ```
/// use logdiver::{LogDiver, LogCollection};
/// let analysis = LogDiver::new().analyze(&LogCollection::new());
/// assert_eq!(analysis.runs.len(), 0);
/// ```
#[derive(Debug)]
pub struct LogDiver {
    config: LogDiverConfig,
    table: PatternTable,
    threads: usize,
}

impl Default for LogDiver {
    fn default() -> Self {
        LogDiver {
            config: LogDiverConfig::default(),
            table: PatternTable::default(),
            threads: 1,
        }
    }
}

impl LogDiver {
    /// Creates the tool with default windows and the curated pattern table.
    pub fn new() -> Self {
        LogDiver::default()
    }

    /// Overrides the pipeline configuration.
    pub fn with_config(mut self, config: LogDiverConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the pattern table.
    pub fn with_patterns(mut self, table: PatternTable) -> Self {
        self.table = table;
        self
    }

    /// Sets the worker-thread count for the parallel stages (parse, filter,
    /// classify). `0` and `1` both mean serial. The analysis produced is
    /// identical for every thread count — parallel stages are
    /// order-preserving maps with deterministic merges (see DESIGN.md §13).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configuration in effect.
    pub fn config(&self) -> &LogDiverConfig {
        &self.config
    }

    /// The worker-thread count in effect.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs the whole pipeline on a log collection.
    pub fn analyze(&self, logs: &LogCollection) -> Analysis {
        self.analyze_timed(logs).0
    }

    /// Runs the whole pipeline on a log collection, also reporting
    /// per-stage wall-clock timings.
    pub fn analyze_timed(&self, logs: &LogCollection) -> (Analysis, StageTimings) {
        let started = stage_clock();
        let parse_started = stage_clock();
        let sources = collection_lines(logs);
        let cols = parse_columns_threads(&sources, self.threads);
        let parse_secs = parse_started.elapsed().as_secs_f64();
        self.finish_columns_timed(&cols, parse_secs, started)
    }

    /// Runs the pipeline on a log directory by loading the conventional
    /// files into a [`LogArena`] and parsing zero-copy over it.
    ///
    /// Unlike the retired line-by-line reader, a line that is not valid
    /// UTF-8 is *counted and quarantined*, not a fatal I/O error — the
    /// whole block is raw bytes until a parser proves each line's fields.
    ///
    /// # Errors
    ///
    /// Propagates I/O and empty-directory errors from
    /// [`LogArena::from_dir`].
    pub fn analyze_dir(&self, dir: impl AsRef<std::path::Path>) -> Result<Analysis, LogDiverError> {
        Ok(self.analyze_dir_timed(dir)?.0)
    }

    /// Runs the pipeline on a log directory, also reporting per-stage
    /// wall-clock timings.
    ///
    /// # Errors
    ///
    /// Same as [`LogDiver::analyze_dir`].
    pub fn analyze_dir_timed(
        &self,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<(Analysis, StageTimings), LogDiverError> {
        let arena = LogArena::from_dir(dir)?;
        let (analysis, timings, _) = self.analyze_arena_timed(&arena);
        Ok((analysis, timings))
    }

    /// Runs the pipeline over a loaded arena, also returning every
    /// rejected line's provenance — the offsets `--quarantine-out` slices
    /// back out of the arena (no rejected text is copied anywhere on this
    /// path).
    pub fn analyze_arena_timed(
        &self,
        arena: &LogArena,
    ) -> (Analysis, StageTimings, Vec<QuarantinedLine>) {
        let started = stage_clock();
        let parse_started = stage_clock();
        let sources = arena_lines(arena);
        let mut cols = parse_columns_threads(&sources, self.threads);
        let parse_secs = parse_started.elapsed().as_secs_f64();
        let quarantine = std::mem::take(&mut cols.quarantine);
        let (analysis, timings) = self.finish_columns_timed(&cols, parse_secs, started);
        (analysis, timings, quarantine)
    }

    /// Runs the pipeline stages downstream of parsing.
    pub fn analyze_parsed(&self, parsed: ParsedLogs) -> Analysis {
        self.finish_timed(parsed, 0.0, stage_clock()).0
    }

    /// The columnar back half: filter-before-materialize, then the shared
    /// tail. Field-for-field equivalent to [`LogDiver::finish_timed`] on
    /// the corresponding [`ParsedLogs`].
    fn finish_columns_timed(
        &self,
        cols: &ParsedColumns<'_>,
        parse_secs: f64,
        started: Instant,
    ) -> (Analysis, StageTimings) {
        let mut timings = StageTimings {
            parse_secs,
            ..StageTimings::default()
        };

        let stage = stage_clock();
        let (entries, filter_stats) = filter_columns(cols, &self.table, self.threads);
        timings.filter_secs = stage.elapsed().as_secs_f64();

        // Coverage watches every parsed record — kept *and* discarded:
        // operational chatter is what proves a source alive.
        let stage = stage_clock();
        let mut coverage = CoverageMap::new(CoverageConfig::default());
        for &ts in &cols.syslog.times {
            coverage.observe(EntrySource::Syslog, ts);
        }
        for h in &cols.hwerr {
            coverage.observe(EntrySource::HwErr, h.timestamp);
        }
        for rec in &cols.netwatch {
            coverage.observe(EntrySource::Netwatch, rec.timestamp);
        }
        timings.coverage_secs = stage.elapsed().as_secs_f64();

        let stage = stage_clock();
        let (runs, jobs, workload_stats) = reconstruct_records(&cols.alps, &cols.torque);
        timings.reconstruct_secs = stage.elapsed().as_secs_f64();

        self.conclude(
            timings,
            started,
            cols.counts,
            entries,
            filter_stats,
            coverage,
            runs,
            jobs,
            workload_stats,
        )
    }

    fn finish_timed(
        &self,
        parsed: ParsedLogs,
        parse_secs: f64,
        started: Instant,
    ) -> (Analysis, StageTimings) {
        let mut timings = StageTimings {
            parse_secs,
            ..StageTimings::default()
        };

        let stage = stage_clock();
        let (entries, filter_stats) = filter_logs_threads(&parsed, &self.table, self.threads);
        timings.filter_secs = stage.elapsed().as_secs_f64();

        // Coverage watches every parsed record — kept *and* discarded:
        // operational chatter is what proves a source alive.
        let stage = stage_clock();
        let mut coverage = CoverageMap::new(CoverageConfig::default());
        for rec in &parsed.syslog {
            coverage.observe(EntrySource::Syslog, rec.timestamp);
        }
        for rec in &parsed.hwerr {
            coverage.observe(EntrySource::HwErr, rec.timestamp);
        }
        for rec in &parsed.netwatch {
            coverage.observe(EntrySource::Netwatch, rec.timestamp);
        }
        timings.coverage_secs = stage.elapsed().as_secs_f64();

        let stage = stage_clock();
        let (runs, jobs, workload_stats) = reconstruct(&parsed);
        timings.reconstruct_secs = stage.elapsed().as_secs_f64();

        self.conclude(
            timings,
            started,
            parsed.counts,
            entries,
            filter_stats,
            coverage,
            runs,
            jobs,
            workload_stats,
        )
    }

    /// The shared pipeline tail — coalesce, classify, qualify, metrics —
    /// identical for the columnar and record paths.
    #[allow(clippy::too_many_arguments)]
    fn conclude(
        &self,
        mut timings: StageTimings,
        started: Instant,
        counts: [ParseCounts; 5],
        entries: Vec<FilteredEntry>,
        filter_stats: FilterStats,
        coverage: CoverageMap,
        runs: Vec<AppRun>,
        jobs: HashMap<u64, JobInfo>,
        workload_stats: WorkloadStats,
    ) -> (Analysis, StageTimings) {
        let stage = stage_clock();
        let mut coalescer = Coalescer::new(self.config.coalesce_gap);
        for e in &entries {
            coalescer.push(e);
        }
        let duplicates = coalescer.duplicates();
        let events = coalescer.finish();
        timings.coalesce_secs = stage.elapsed().as_secs_f64();

        let lethal_events = events.iter().filter(|e| e.is_lethal()).count() as u64;
        let stats = PipelineStats {
            parse: counts,
            filter: filter_stats,
            workload: workload_stats,
            entries: entries.len() as u64,
            duplicates,
            events: events.len() as u64,
            lethal_events,
        };

        let stage = stage_clock();
        // Coalescer output is start-ordered, so the index build skips its
        // fallback sort (see MatchIndex::new).
        debug_assert!(events.is_sorted_by_key(|e| e.start));
        let index = MatchIndex::new(events);
        let mut classified = classify_runs_threads(runs, &jobs, &index, &self.config, self.threads);
        let gaps = coverage.gaps();
        qualify_runs(&mut classified, &gaps, &self.config);
        timings.classify_secs = stage.elapsed().as_secs_f64();

        let stage = stage_clock();
        let metrics = compute(&classified, index.events());
        timings.metrics_secs = stage.elapsed().as_secs_f64();

        timings.total_secs = started.elapsed().as_secs_f64();
        let analysis = Analysis {
            runs: classified,
            events: index.events().to_vec(),
            metrics,
            stats,
            coverage: gaps,
        };
        (analysis, timings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdiver_types::{ExitClass, FailureCause};

    /// A miniature hand-written field scenario covering the whole pipeline:
    /// noise to discard, a node crash killing one app, a healthy app, and a
    /// launch failure.
    fn scenario() -> LogCollection {
        let mut logs = LogCollection::new();
        logs.torque.extend([
            "2013-03-28 10:00:00;S;1.bw;user=u0001 queue=normal nodes=4 walltime=86400".to_string(),
            "2013-03-28 10:00:00;S;2.bw;user=u0002 queue=small nodes=1 walltime=86400".to_string(),
        ]);
        logs.alps.extend([
            "2013-03-28 10:00:05 apsys PLACED apid=100 batch=1.bw user=u0001 cmd=namd2 type=XE width=4 nodelist=nid[0-3]".to_string(),
            "2013-03-28 10:00:06 apsys PLACED apid=200 batch=2.bw user=u0002 cmd=vasp type=XE width=1 nodelist=nid[100]".to_string(),
            // apid 100 dies when nid 2 crashes at 12:00:00.
            "2013-03-28 12:00:05 apsys EXIT apid=100 code=137 signal=9 node_failed=yes runtime=7200".to_string(),
            // apid 200 completes.
            "2013-03-28 13:00:06 apsys EXIT apid=200 code=0 signal=none node_failed=no runtime=10800".to_string(),
            // apid 300 never launches.
            "2013-03-28 14:00:00 apsys PLACED apid=300 batch=2.bw user=u0002 cmd=vasp type=XE width=1 nodelist=nid[101]".to_string(),
            "2013-03-28 14:00:03 apsys LAUNCHERR apid=300 reason=placement failed: node unavailable".to_string(),
        ]);
        logs.syslog.extend([
            // Noise before, during, after.
            "2013-03-28 09:59:00 nid00050 ntpd: time slew +0.012s".to_string(),
            "2013-03-28 12:00:00 nid00002 kernel: Machine Check Exception: bank 4 status 0xb200".to_string(),
            "2013-03-28 12:00:31 smw xtnmd: node heartbeat fault: no response in 60s, declaring node dead".to_string(),
            "2013-03-28 15:00:00 nid00051 sshd: Accepted publickey for user port 2222".to_string(),
        ]);
        logs.hwerr.extend([
            "2013-03-28 12:00:01|c0-0c0s0n2|MCE|CRIT|bank=4".to_string(),
            "2013-03-28 12:00:31|c0-0c0s0n2|NODE_DEAD|FATAL|".to_string(),
        ]);
        logs
    }

    #[test]
    fn end_to_end_on_handwritten_scenario() {
        let analysis = LogDiver::new().analyze(&scenario());
        assert_eq!(analysis.runs.len(), 3);

        let by_apid = |apid: u64| {
            analysis
                .runs
                .iter()
                .find(|r| r.run.apid.value() == apid)
                .unwrap()
        };
        assert_eq!(
            by_apid(100).class,
            ExitClass::SystemFailure(FailureCause::Memory)
        );
        assert!(!by_apid(100).matched_events.is_empty());
        assert_eq!(by_apid(200).class, ExitClass::Success);
        assert_eq!(
            by_apid(300).class,
            ExitClass::SystemFailure(FailureCause::Launcher)
        );

        // The MCE syslog + hwerr + heartbeat lines coalesce around nid 2.
        assert!(analysis.stats.events >= 1);
        assert!(analysis.stats.lethal_events >= 1);
        assert_eq!(analysis.stats.filter.syslog_examined, 4);
        assert_eq!(analysis.stats.filter.syslog_kept, 2);

        // Metrics line up with the classification.
        assert_eq!(analysis.metrics.total_runs, 3);
        assert!((analysis.metrics.system_failure_fraction - 2.0 / 3.0).abs() < 1e-9);
        let mem = analysis
            .metrics
            .causes
            .iter()
            .find(|c| c.cause == FailureCause::Memory)
            .unwrap();
        assert_eq!(mem.runs, 1);
        assert!((mem.lost_node_hours - 8.0).abs() < 1e-9);
    }

    #[test]
    fn analyze_is_deterministic() {
        let a = LogDiver::new().analyze(&scenario());
        let b = LogDiver::new().analyze(&scenario());
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.events, b.events);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn empty_logs_yield_empty_analysis() {
        let a = LogDiver::new().analyze(&LogCollection::new());
        assert!(a.runs.is_empty());
        assert!(a.events.is_empty());
        assert_eq!(a.stats.coalescing_ratio(), 0.0);
    }

    #[test]
    fn duplicate_replay_does_not_inflate_events() {
        let clean = LogDiver::new().analyze(&scenario());
        let mut logs = scenario();
        // A syslog relay reconnect replays the error lines verbatim.
        let replayed: Vec<String> = logs.syslog.clone();
        logs.syslog.extend(replayed);
        let doubled = LogDiver::new().analyze(&logs);
        assert_eq!(doubled.events, clean.events, "replay must be idempotent");
        assert_eq!(doubled.runs, clean.runs);
        assert!(doubled.stats.duplicates >= 2);
        assert_eq!(clean.stats.duplicates, 0);
    }

    #[test]
    fn outage_overlapping_death_degrades_the_verdict() {
        use crate::classify::AttributionConfidence;
        use logdiver_types::Timestamp;

        let mut logs = LogCollection::new();
        // Steady chatter proves syslog alive once a minute for 10 hours —
        // except a silent outage between hours 4 and 6.
        let t0 = Timestamp::from_ymd_hms(2013, 3, 28, 0, 0, 0);
        for m in 0..600 {
            let ts = t0 + logdiver_types::SimDuration::from_mins(m);
            if !(240..360).contains(&m) {
                logs.syslog
                    .push(format!("{ts} nid00050 ntpd: time slew +0.012s"));
            }
        }
        // Two identical node-failed deaths with no explaining evidence:
        // one inside the outage (hour 5), one after it (hour 8).
        logs.alps.extend([
            format!("{} apsys PLACED apid=1 batch=1.bw user=u0001 cmd=a.out type=XE width=2 nodelist=nid[0-1]", t0),
            format!("{} apsys EXIT apid=1 code=137 signal=9 node_failed=yes runtime=18000",
                t0 + logdiver_types::SimDuration::from_hours(5)),
            format!("{} apsys PLACED apid=2 batch=1.bw user=u0001 cmd=a.out type=XE width=2 nodelist=nid[4-5]", t0),
            format!("{} apsys EXIT apid=2 code=137 signal=9 node_failed=yes runtime=28800",
                t0 + logdiver_types::SimDuration::from_hours(8)),
        ]);
        let analysis = LogDiver::new().analyze(&logs);
        assert_eq!(analysis.coverage.len(), 1, "{:?}", analysis.coverage);
        let by_apid = |apid: u64| {
            analysis
                .runs
                .iter()
                .find(|r| r.run.apid.value() == apid)
                .unwrap()
        };
        assert_eq!(
            by_apid(1).class,
            ExitClass::SystemFailure(FailureCause::Undetermined)
        );
        assert_eq!(by_apid(1).confidence, AttributionConfidence::Degraded);
        assert_eq!(
            by_apid(2).class,
            ExitClass::SystemFailure(FailureCause::Undetermined)
        );
        assert_eq!(by_apid(2).confidence, AttributionConfidence::Full);
    }

    /// The columnar front door and the record-based compat path must
    /// produce identical analyses — entries, events, metrics, stats, the
    /// lot — on the same input, for any thread count.
    #[test]
    fn columnar_and_record_paths_agree() {
        let mut logs = scenario();
        logs.syslog.push("¡corrupted±line···".to_string());
        logs.syslog.push(String::new());
        for threads in [1, 3] {
            let diver = LogDiver::new().with_threads(threads);
            let columnar = diver.analyze(&logs);
            let parsed = crate::parse::parse_collection_threads(&logs, threads);
            let record = diver.analyze_parsed(parsed);
            assert_eq!(columnar.runs, record.runs, "threads={threads}");
            assert_eq!(columnar.events, record.events);
            assert_eq!(columnar.metrics, record.metrics);
            assert_eq!(columnar.stats, record.stats);
            assert_eq!(columnar.coverage, record.coverage);
        }
    }

    /// The arena door agrees with the collection door and surfaces
    /// rejected-line provenance.
    #[test]
    fn arena_path_agrees_and_reports_quarantine() {
        let mut logs = scenario();
        logs.syslog.push("¡corrupted±line···".to_string());
        let diver = LogDiver::new();
        let want = diver.analyze(&logs);
        let arena = crate::input::LogArena::from_collection(&logs);
        let (got, _, quarantine) = diver.analyze_arena_timed(&arena);
        assert_eq!(got.runs, want.runs);
        assert_eq!(got.stats, want.stats);
        assert_eq!(quarantine.len(), 1);
        assert_eq!(quarantine[0].source, 0);
    }

    #[test]
    fn corrupt_lines_are_counted_not_fatal() {
        let mut logs = scenario();
        logs.syslog.push("¡corrupted±line···".to_string());
        logs.alps.push("2013-03-28 garbage".to_string());
        let a = LogDiver::new().analyze(&logs);
        assert_eq!(a.runs.len(), 3, "analysis unchanged by corruption");
        assert!(a.stats.parse[0].bad >= 1);
        assert!(a.stats.parse[2].bad >= 1);
    }
}
