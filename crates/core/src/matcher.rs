//! Stage 5: matching error events to application deaths.
//!
//! For a run that terminated abnormally, the question is: *was there an
//! error event that plausibly explains the death?* An event qualifies when
//! it overlaps the **death window** `[end − lead, end + lag]` in time and
//! either is machine-scope or touches one of the run's nodes.
//!
//! Events are indexed by start time; because coalesced events are bounded
//! in span, a binary search plus a short backward scan answers each query
//! in `O(log E + k)`.

use logdiver_types::{SimDuration, Timestamp};

use crate::coalesce::ErrorEvent;
use crate::ranges::RangeSet;

/// What the classifier needs from an event table: window queries and id
/// lookups. Implemented by the batch [`MatchIndex`] and by the streaming
/// engine's live index, so classification is one code path with two
/// drivers.
pub trait EventLookup {
    /// Event ids whose `[start, end]` overlaps `[death − lead, death + lag]`
    /// and which touch the run spatially, in (start, id) order.
    fn matches_for(
        &self,
        death: Timestamp,
        nodes: &RangeSet,
        lead: SimDuration,
        lag: SimDuration,
    ) -> Vec<u32>;

    /// Looks up an event by id.
    fn by_id(&self, id: u32) -> Option<&ErrorEvent>;
}

/// Time-indexed event table.
#[derive(Debug)]
pub struct MatchIndex {
    events: Vec<ErrorEvent>,
    max_span: SimDuration,
}

impl MatchIndex {
    /// Builds the index (events must be the output of
    /// [`crate::coalesce::coalesce`], which is start-ordered).
    pub fn new(mut events: Vec<ErrorEvent>) -> Self {
        // The coalescer already emits start-ordered events, so the common
        // caller skips the sort entirely; unordered external input still
        // gets sorted as a fallback.
        if !events.is_sorted_by_key(|e| e.start) {
            events.sort_by_key(|e| e.start);
        }
        debug_assert!(events.is_sorted_by_key(|e| e.start));
        let max_span = events
            .iter()
            .map(ErrorEvent::span)
            .max()
            .unwrap_or(SimDuration::ZERO);
        MatchIndex { events, max_span }
    }

    /// The indexed events (sorted by start).
    pub fn events(&self) -> &[ErrorEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are indexed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Event ids whose `[start, end]` overlaps `[death − lead, death + lag]`
    /// and which touch the run spatially (machine scope, or node
    /// intersection with `nodes`).
    pub fn matches_for(
        &self,
        death: Timestamp,
        nodes: &RangeSet,
        lead: SimDuration,
        lag: SimDuration,
    ) -> Vec<u32> {
        let win_lo = death - lead;
        let win_hi = death + lag;
        // Events starting after win_hi cannot overlap; events starting
        // before win_lo − max_span cannot reach win_lo.
        let scan_lo = win_lo - self.max_span;
        let first = self.events.partition_point(|e| e.start < scan_lo);
        let mut out = Vec::new();
        for e in &self.events[first..] {
            if e.start > win_hi {
                break;
            }
            if e.end < win_lo {
                continue;
            }
            let spatial = e.system_scope || nodes.intersects_any(&e.nodes);
            if spatial {
                out.push(e.id);
            }
        }
        out
    }

    /// Looks up an event by id.
    pub fn by_id(&self, id: u32) -> Option<&ErrorEvent> {
        // ids are dense coalesce indices but the table was re-sorted; a
        // linear probe at the id position usually hits, fall back to scan.
        self.events
            .get(id as usize)
            .filter(|e| e.id == id)
            .or_else(|| self.events.iter().find(|e| e.id == id))
    }
}

impl EventLookup for MatchIndex {
    fn matches_for(
        &self,
        death: Timestamp,
        nodes: &RangeSet,
        lead: SimDuration,
        lag: SimDuration,
    ) -> Vec<u32> {
        MatchIndex::matches_for(self, death, nodes, lead, lag)
    }

    fn by_id(&self, id: u32) -> Option<&ErrorEvent> {
        MatchIndex::by_id(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdiver_types::{ErrorCategory, NodeId, NodeSet, Severity};

    fn t(secs: i64) -> Timestamp {
        Timestamp::PRODUCTION_EPOCH + SimDuration::from_secs(secs)
    }

    fn event(id: u32, start: i64, end: i64, nodes: &[u32], system: bool) -> ErrorEvent {
        ErrorEvent {
            id,
            start: t(start),
            end: t(end),
            categories: vec![ErrorCategory::MemoryUncorrectable],
            severity: Severity::Fatal,
            nodes: nodes.iter().copied().map(NodeId::new).collect(),
            system_scope: system,
            entry_count: 1,
        }
    }

    fn ranges(nids: &[u32]) -> RangeSet {
        let set: NodeSet = nids.iter().copied().map(NodeId::new).collect();
        RangeSet::from_node_set(&set)
    }

    #[test]
    fn node_intersection_required_for_local_events() {
        let idx = MatchIndex::new(vec![
            event(0, 100, 130, &[4], false),
            event(1, 100, 130, &[9], false),
        ]);
        let lead = SimDuration::from_secs(60);
        let lag = SimDuration::from_secs(60);
        let m = idx.matches_for(t(120), &ranges(&[4, 5]), lead, lag);
        assert_eq!(m, vec![0]);
    }

    #[test]
    fn system_scope_matches_without_nodes() {
        let idx = MatchIndex::new(vec![event(0, 100, 150, &[], true)]);
        let m = idx.matches_for(
            t(160),
            &ranges(&[7_000]),
            SimDuration::from_secs(60),
            SimDuration::from_secs(60),
        );
        assert_eq!(m, vec![0]);
    }

    #[test]
    fn time_window_is_respected() {
        let idx = MatchIndex::new(vec![event(0, 100, 110, &[4], false)]);
        let lead = SimDuration::from_secs(30);
        let lag = SimDuration::from_secs(30);
        // Death long after the event: no match.
        assert!(idx.matches_for(t(500), &ranges(&[4]), lead, lag).is_empty());
        // Death right after: match (event end within lead of death).
        assert_eq!(idx.matches_for(t(130), &ranges(&[4]), lead, lag), vec![0]);
        // Death slightly before the event starts (within lag): match.
        assert_eq!(idx.matches_for(t(80), &ranges(&[4]), lead, lag), vec![0]);
        // Death way before: no match.
        assert!(idx.matches_for(t(0), &ranges(&[4]), lead, lag).is_empty());
    }

    #[test]
    fn long_spanning_event_is_found() {
        // An event spanning [0, 1000] must match a death at 900 even though
        // its start is far before the window.
        let idx = MatchIndex::new(vec![
            event(0, 0, 1_000, &[4], false),
            event(1, 850, 860, &[9], false),
        ]);
        let m = idx.matches_for(
            t(900),
            &ranges(&[4]),
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
        );
        assert_eq!(m, vec![0]);
    }

    #[test]
    fn by_id_finds_events_after_sorting() {
        let idx = MatchIndex::new(vec![
            event(1, 200, 210, &[0], false),
            event(0, 10, 20, &[4], false),
        ]);
        assert_eq!(idx.by_id(1).unwrap().start, t(200));
        assert_eq!(idx.by_id(0).unwrap().start, t(10));
        assert!(idx.by_id(7).is_none());
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
    }
}
