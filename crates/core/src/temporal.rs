//! Temporal analysis: how failures and error events spread over the
//! measured period.
//!
//! Field studies always ask whether trouble is steady or bursty — burstiness
//! changes everything downstream (maintenance scheduling, the independence
//! assumptions behind checkpoint models, whether a bad week dominates the
//! year). This stage bins system failures and machine-scope events by
//! production day and measures dispersion (Fano factor: variance/mean of
//! daily counts — 1 for a Poisson process, ≫ 1 for bursty processes).

use logdiver_types::Timestamp;
use serde::{Deserialize, Serialize};

use crate::classify::ClassifiedRun;
use crate::coalesce::ErrorEvent;

/// Daily-binned series with dispersion statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailySeries {
    /// Count per production day (index 0 = first day observed).
    pub counts: Vec<u64>,
    /// Mean daily count.
    pub mean: f64,
    /// Maximum daily count.
    pub max: u64,
    /// Fano factor (variance / mean); 0 when the series is empty or flat 0.
    pub fano: f64,
}

impl DailySeries {
    /// Lag-1 autocorrelation of the daily counts (`None` for degenerate
    /// series): positive values mean bad days cluster.
    pub fn lag1_autocorrelation(&self) -> Option<f64> {
        let xs: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        hpc_stats::autocorrelation(&xs, 1).ok()
    }

    /// Longest streak of days above the mean daily count.
    pub fn longest_bad_streak(&self) -> usize {
        let xs: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        hpc_stats::longest_run_above_mean(&xs)
    }

    fn from_days(day_indices: impl Iterator<Item = i64>, n_days: usize) -> Self {
        let mut counts = vec![0u64; n_days.max(1)];
        for d in day_indices {
            if d >= 0 && (d as usize) < counts.len() {
                counts[d as usize] += 1;
            }
        }
        let n = counts.len() as f64;
        let mean = counts.iter().sum::<u64>() as f64 / n;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        DailySeries {
            max: counts.iter().copied().max().unwrap_or(0),
            fano: if mean > 0.0 { var / mean } else { 0.0 },
            mean,
            counts,
        }
    }

    /// Number of days with zero occurrences.
    pub fn quiet_days(&self) -> usize {
        self.counts.iter().filter(|&&c| c == 0).count()
    }
}

/// The temporal report (experiment F8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalReport {
    /// Days covered (from the first run's start).
    pub days: usize,
    /// System-failed application runs per day.
    pub system_failures: DailySeries,
    /// Machine-scope lethal events per day.
    pub wide_events: DailySeries,
    /// All application terminations per day (workload rhythm baseline).
    pub terminations: DailySeries,
}

/// Computes the temporal report.
pub fn analyze_temporal(runs: &[ClassifiedRun], events: &[ErrorEvent]) -> TemporalReport {
    let t0 = runs
        .iter()
        .map(|r| r.run.start)
        .chain(events.iter().map(|e| e.start))
        .min()
        .unwrap_or(Timestamp::PRODUCTION_EPOCH);
    let t1 = runs
        .iter()
        .map(|r| r.run.end)
        .chain(events.iter().map(|e| e.end))
        .max()
        .unwrap_or(t0);
    let day_of = |t: Timestamp| (t - t0).as_secs().div_euclid(86_400);
    let n_days = (day_of(t1) + 1).max(1) as usize;
    TemporalReport {
        days: n_days,
        system_failures: DailySeries::from_days(
            runs.iter()
                .filter(|r| r.class.is_system_failure())
                .map(|r| day_of(r.run.end)),
            n_days,
        ),
        wide_events: DailySeries::from_days(
            events
                .iter()
                .filter(|e| e.system_scope && e.is_lethal())
                .map(|e| day_of(e.start)),
            n_days,
        ),
        terminations: DailySeries::from_days(runs.iter().map(|r| day_of(r.run.end)), n_days),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::RangeSet;
    use crate::workload::{AppRun, Termination};
    use logdiver_types::{
        AppId, ExitClass, ExitStatus, FailureCause, JobId, NodeSet, NodeType, SimDuration,
        Timestamp, UserId,
    };

    fn run_on_day(apid: u64, day: i64, system: bool) -> ClassifiedRun {
        let t = Timestamp::PRODUCTION_EPOCH + SimDuration::from_days(day);
        ClassifiedRun {
            run: AppRun {
                apid: AppId::new(apid),
                job: JobId::new(apid),
                user: UserId::new(0),
                node_type: NodeType::Xe,
                width: 1,
                nodes: RangeSet::from_node_set(&NodeSet::new()),
                start: t,
                end: t + SimDuration::from_hours(1),
                termination: Termination::Exited(if system {
                    ExitStatus::with_signal(9)
                } else {
                    ExitStatus::SUCCESS
                }),
            },
            class: if system {
                ExitClass::SystemFailure(FailureCause::Memory)
            } else {
                ExitClass::Success
            },
            matched_events: Vec::new(),
            confidence: crate::classify::AttributionConfidence::Full,
        }
    }

    #[test]
    fn daily_binning_counts_correctly() {
        let runs = vec![
            run_on_day(1, 0, true),
            run_on_day(2, 0, true),
            run_on_day(3, 2, true),
            run_on_day(4, 1, false),
        ];
        let report = analyze_temporal(&runs, &[]);
        assert_eq!(report.days, 3);
        assert_eq!(report.system_failures.counts, vec![2, 0, 1]);
        assert_eq!(report.system_failures.max, 2);
        assert_eq!(report.system_failures.quiet_days(), 1);
        assert_eq!(report.terminations.counts, vec![2, 1, 1]);
    }

    #[test]
    fn flat_series_has_fano_below_one() {
        // One failure every day: variance 0 → Fano 0 (sub-Poisson).
        let runs: Vec<_> = (0..30).map(|d| run_on_day(d as u64, d, true)).collect();
        let report = analyze_temporal(&runs, &[]);
        assert!((report.system_failures.mean - 1.0).abs() < 1e-12);
        assert_eq!(report.system_failures.fano, 0.0);
    }

    #[test]
    fn bursty_series_has_high_fano() {
        // 30 failures on one day, nothing for 29 days.
        let mut runs: Vec<_> = (0..30).map(|i| run_on_day(i as u64, 0, true)).collect();
        runs.push(run_on_day(999, 29, false)); // extend the window
        let report = analyze_temporal(&runs, &[]);
        assert_eq!(report.days, 30);
        assert!(
            report.system_failures.fano > 10.0,
            "{}",
            report.system_failures.fano
        );
    }

    #[test]
    fn autocorrelation_surfaces_clustering() {
        // Failures clustered in the first half of the window.
        let mut runs = Vec::new();
        let mut apid = 0;
        for d in 0..10 {
            for _ in 0..8 {
                apid += 1;
                runs.push(run_on_day(apid, d, true));
            }
        }
        for d in 10..20 {
            apid += 1;
            runs.push(run_on_day(apid, d, false));
        }
        let report = analyze_temporal(&runs, &[]);
        let acf = report.system_failures.lag1_autocorrelation().unwrap();
        assert!(acf > 0.5, "clustered failures should autocorrelate: {acf}");
        assert!(report.system_failures.longest_bad_streak() >= 10);
    }

    #[test]
    fn empty_input_is_safe() {
        let report = analyze_temporal(&[], &[]);
        assert_eq!(report.days, 1);
        assert_eq!(report.system_failures.mean, 0.0);
        assert_eq!(report.system_failures.fano, 0.0);
    }
}
