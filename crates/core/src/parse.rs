//! Stage 1: parsing raw lines into typed records.
//!
//! Field data always contains corruption — truncated lines, interleaved
//! writes, encoding damage. Every source is parsed line by line; failures
//! are *counted per source* and never abort the analysis.

use std::io::BufRead;
use std::path::Path;

use craylog::alps::AlpsRecord;
use craylog::hwerr::HwErrRecord;
use craylog::netwatch::NetwatchRecord;
use craylog::syslog::SyslogRecord;
use craylog::torque::TorqueRecord;
use serde::{Deserialize, Serialize};

use crate::error::LogDiverError;
use crate::input::LogCollection;

/// Per-source line accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ParseCounts {
    /// Lines seen.
    pub total: u64,
    /// Lines that failed to parse.
    pub bad: u64,
}

impl ParseCounts {
    /// Lines successfully parsed.
    pub fn good(&self) -> u64 {
        self.total - self.bad
    }
}

/// Everything stage 1 produces.
#[derive(Debug, Default)]
pub struct ParsedLogs {
    /// Parsed syslog records.
    pub syslog: Vec<SyslogRecord>,
    /// Parsed hardware-error records.
    pub hwerr: Vec<HwErrRecord>,
    /// Parsed ALPS records.
    pub alps: Vec<AlpsRecord>,
    /// Parsed Torque records.
    pub torque: Vec<TorqueRecord>,
    /// Parsed netwatch records.
    pub netwatch: Vec<NetwatchRecord>,
    /// Accounting per source: `[syslog, hwerr, alps, torque, netwatch]`.
    pub counts: [ParseCounts; 5],
}

impl ParsedLogs {
    /// Total corrupt lines across sources.
    pub fn total_bad(&self) -> u64 {
        self.counts.iter().map(|c| c.bad).sum()
    }
}

/// Parses one raw line with the stage-1 counting rules: every line bumps
/// `total`; blank and unparseable lines bump `bad` and yield `None`. The
/// batch paths and the streaming engine's parse workers all route through
/// this so corrupt-line accounting can never drift between drivers.
pub fn parse_counted<T>(
    line: &str,
    counts: &mut ParseCounts,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Option<T> {
    counts.total += 1;
    if line.trim().is_empty() {
        counts.bad += 1;
        return None;
    }
    match parse(line) {
        Some(rec) => Some(rec),
        None => {
            counts.bad += 1;
            None
        }
    }
}

fn parse_all<T>(
    lines: &[String],
    counts: &mut ParseCounts,
    parse: impl Fn(&str) -> Option<T>,
) -> Vec<T> {
    let mut out = Vec::with_capacity(lines.len());
    for line in lines {
        out.extend(parse_counted(line, counts, &parse));
    }
    out
}

/// Parses a whole collection.
pub fn parse_collection(logs: &LogCollection) -> ParsedLogs {
    let mut parsed = ParsedLogs::default();
    parsed.syslog = parse_all(&logs.syslog, &mut parsed.counts[0], |l| {
        SyslogRecord::parse(l).ok()
    });
    parsed.hwerr = parse_all(&logs.hwerr, &mut parsed.counts[1], |l| {
        HwErrRecord::parse(l).ok()
    });
    parsed.alps = parse_all(&logs.alps, &mut parsed.counts[2], |l| {
        AlpsRecord::parse(l).ok()
    });
    parsed.torque = parse_all(&logs.torque, &mut parsed.counts[3], |l| {
        TorqueRecord::parse(l).ok()
    });
    parsed.netwatch = parse_all(&logs.netwatch, &mut parsed.counts[4], |l| {
        NetwatchRecord::parse(l).ok()
    });
    parsed
}

fn parse_file<T>(
    path: &Path,
    counts: &mut ParseCounts,
    out: &mut Vec<T>,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<(), LogDiverError> {
    if !path.exists() {
        return Ok(());
    }
    let file = std::fs::File::open(path).map_err(|source| LogDiverError::Io {
        path: path.display().to_string(),
        source,
    })?;
    for line in std::io::BufReader::new(file).lines() {
        let line = line.map_err(|source| LogDiverError::Io {
            path: path.display().to_string(),
            source,
        })?;
        out.extend(parse_counted(&line, counts, &parse));
    }
    Ok(())
}

/// Parses a log directory *streaming*: lines go straight from the reader
/// into typed records without ever materializing the raw text — the memory
/// profile a full 518-day analysis needs (raw logs are gigabytes; parsed
/// records are a fraction of that).
///
/// # Errors
///
/// [`LogDiverError::Io`] on read failures, [`LogDiverError::NoInput`] when
/// no recognizable file exists under `dir`.
pub fn parse_dir(dir: impl AsRef<Path>) -> Result<ParsedLogs, LogDiverError> {
    let dir = dir.as_ref();
    let mut parsed = ParsedLogs::default();
    parse_file(
        &dir.join("messages.log"),
        &mut parsed.counts[0],
        &mut parsed.syslog,
        |l| SyslogRecord::parse(l).ok(),
    )?;
    parse_file(
        &dir.join("hwerr.log"),
        &mut parsed.counts[1],
        &mut parsed.hwerr,
        |l| HwErrRecord::parse(l).ok(),
    )?;
    parse_file(
        &dir.join("apsys.log"),
        &mut parsed.counts[2],
        &mut parsed.alps,
        |l| AlpsRecord::parse(l).ok(),
    )?;
    parse_file(
        &dir.join("torque.log"),
        &mut parsed.counts[3],
        &mut parsed.torque,
        |l| TorqueRecord::parse(l).ok(),
    )?;
    parse_file(
        &dir.join("netwatch.log"),
        &mut parsed.counts[4],
        &mut parsed.netwatch,
        |l| NetwatchRecord::parse(l).ok(),
    )?;
    if parsed.counts.iter().all(|c| c.total == 0) {
        return Err(LogDiverError::NoInput {
            path: dir.display().to_string(),
        });
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_good_and_bad() {
        let mut logs = LogCollection::new();
        logs.syslog
            .push("2013-03-28 12:30:00 nid00001 kernel: ok line".into());
        logs.syslog.push("garbage".into());
        logs.syslog.push("".into());
        logs.alps.push(
            "2013-03-28 12:30:00 apsys EXIT apid=1 code=0 signal=none node_failed=no runtime=60"
                .into(),
        );
        let parsed = parse_collection(&logs);
        assert_eq!(parsed.syslog.len(), 1);
        assert_eq!(parsed.counts[0].total, 3);
        assert_eq!(parsed.counts[0].bad, 2);
        assert_eq!(parsed.counts[0].good(), 1);
        assert_eq!(parsed.alps.len(), 1);
        assert_eq!(parsed.total_bad(), 2);
    }

    #[test]
    fn parse_dir_streams_and_matches_in_memory_path() {
        let dir = std::env::temp_dir().join(format!("logdiver-parse-dir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("messages.log"),
            "2013-03-28 12:30:00 nid00001 kernel: ok line
garbage
",
        )
        .unwrap();
        std::fs::write(
            dir.join("apsys.log"),
            "2013-03-28 12:30:00 apsys EXIT apid=1 code=0 signal=none node_failed=no runtime=60
",
        )
        .unwrap();
        let streamed = parse_dir(&dir).unwrap();
        let in_memory = {
            let logs = crate::input::LogCollection::from_dir(&dir).unwrap();
            parse_collection(&logs)
        };
        assert_eq!(streamed.syslog, in_memory.syslog);
        assert_eq!(streamed.alps, in_memory.alps);
        assert_eq!(streamed.counts, in_memory.counts);
        std::fs::remove_dir_all(&dir).unwrap();

        assert!(matches!(
            parse_dir("/definitely/not/here"),
            Err(LogDiverError::NoInput { .. })
        ));
    }

    #[test]
    fn corrupt_lines_do_not_abort() {
        let mut logs = LogCollection::new();
        for i in 0..100 {
            logs.hwerr.push(format!("corrupt record {i}"));
        }
        let parsed = parse_collection(&logs);
        assert_eq!(parsed.hwerr.len(), 0);
        assert_eq!(parsed.counts[1].bad, 100);
    }
}
