//! Stage 1: parsing raw lines into typed records.
//!
//! Field data always contains corruption — truncated lines, interleaved
//! writes, encoding damage. Every source is parsed line by line; failures
//! are *counted per source* and never abort the analysis.
//!
//! ## The columnar hot path
//!
//! The pipeline's throughput path is [`parse_columns_threads`]: each
//! source is scanned with the zero-copy byte parsers and lands in
//! [`ParsedColumns`], which *borrows* its high-volume fields (syslog host
//! and message slices) from the input instead of materializing records.
//! The filter stage classifies those borrowed slices directly, so the
//! overwhelming majority of lines — operational chatter — never cause a
//! single allocation. Rejected lines are recorded by provenance
//! ([`QuarantinedLine`]: source + byte offset), not by cloning their text.
//!
//! The record-materializing API ([`ParsedLogs`], [`parse_collection`],
//! [`parse_dir`]) remains for callers that need standalone owned records.

use std::io::BufRead;
use std::path::Path;

use craylog::alps::AlpsRecord;
use craylog::hwerr::{HwErrRecord, RawHwErr};
use craylog::netwatch::NetwatchRecord;
use craylog::syslog::{RawSyslog, SyslogRecord};
use craylog::torque::TorqueRecord;
use logdiver_types::{ErrorCategory, NodeId, Severity, Timestamp};
use serde::{Deserialize, Serialize};

use crate::error::LogDiverError;
use crate::input::{LogArena, LogCollection};

/// Per-source line accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ParseCounts {
    /// Lines seen.
    pub total: u64,
    /// Lines that failed to parse.
    pub bad: u64,
}

impl ParseCounts {
    /// Lines successfully parsed.
    pub fn good(&self) -> u64 {
        self.total - self.bad
    }
}

/// Everything stage 1 produces.
#[derive(Debug, Default)]
pub struct ParsedLogs {
    /// Parsed syslog records.
    pub syslog: Vec<SyslogRecord>,
    /// Parsed hardware-error records.
    pub hwerr: Vec<HwErrRecord>,
    /// Parsed ALPS records.
    pub alps: Vec<AlpsRecord>,
    /// Parsed Torque records.
    pub torque: Vec<TorqueRecord>,
    /// Parsed netwatch records.
    pub netwatch: Vec<NetwatchRecord>,
    /// Accounting per source: `[syslog, hwerr, alps, torque, netwatch]`.
    pub counts: [ParseCounts; 5],
}

impl ParsedLogs {
    /// Total corrupt lines across sources.
    pub fn total_bad(&self) -> u64 {
        self.counts.iter().map(|c| c.bad).sum()
    }
}

/// Parses one raw line with the stage-1 counting rules: every line bumps
/// `total`; blank and unparseable lines bump `bad` and yield `None`. The
/// batch paths and the streaming engine's parse workers all route through
/// this so corrupt-line accounting can never drift between drivers.
pub fn parse_counted<T>(
    line: &str,
    counts: &mut ParseCounts,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Option<T> {
    counts.total += 1;
    if line.trim().is_empty() {
        counts.bad += 1;
        return None;
    }
    match parse(line) {
        Some(rec) => Some(rec),
        None => {
            counts.bad += 1;
            None
        }
    }
}

fn parse_all<T>(
    lines: &[String],
    counts: &mut ParseCounts,
    parse: impl Fn(&str) -> Option<T>,
) -> Vec<T> {
    let mut out = Vec::with_capacity(lines.len());
    for line in lines {
        out.extend(parse_counted(line, counts, &parse));
    }
    out
}

/// Aim for several chunks per worker so stealing can even out corrupt-line
/// hotspots, but never chunks so small that dispatch dominates.
const MIN_CHUNK_LINES: usize = 1024;

/// Parses one source's lines across `threads` workers. Chunk results are
/// concatenated in chunk order (= line order) and the per-chunk counts are
/// summed, so the output is identical to the serial scan.
fn parse_lines_par<T: Send>(
    lines: &[String],
    threads: usize,
    parse: impl Fn(&str) -> Option<T> + Sync,
) -> (Vec<T>, ParseCounts) {
    let mut counts = ParseCounts::default();
    if threads <= 1 || lines.len() < 2 * MIN_CHUNK_LINES {
        let out = parse_all(lines, &mut counts, parse);
        return (out, counts);
    }
    let chunk_len = (lines.len() / (threads * 4)).max(MIN_CHUNK_LINES);
    let chunks: Vec<&[String]> = lines.chunks(chunk_len).collect();
    let results = crate::exec::par_map(threads, chunks, |chunk| {
        let mut c = ParseCounts::default();
        let recs = parse_all(chunk, &mut c, &parse);
        (recs, c)
    });
    let mut out = Vec::with_capacity(lines.len());
    for (recs, c) in results {
        out.extend(recs);
        counts.total += c.total;
        counts.bad += c.bad;
    }
    (out, counts)
}

/// Parses a whole collection.
pub fn parse_collection(logs: &LogCollection) -> ParsedLogs {
    parse_collection_threads(logs, 1)
}

/// Parses a whole collection across `threads` workers, producing exactly
/// what [`parse_collection`] produces.
pub fn parse_collection_threads(logs: &LogCollection, threads: usize) -> ParsedLogs {
    let mut parsed = ParsedLogs::default();
    (parsed.syslog, parsed.counts[0]) =
        parse_lines_par(&logs.syslog, threads, |l| SyslogRecord::parse(l).ok());
    (parsed.hwerr, parsed.counts[1]) =
        parse_lines_par(&logs.hwerr, threads, |l| HwErrRecord::parse(l).ok());
    (parsed.alps, parsed.counts[2]) =
        parse_lines_par(&logs.alps, threads, |l| AlpsRecord::parse(l).ok());
    (parsed.torque, parsed.counts[3]) =
        parse_lines_par(&logs.torque, threads, |l| TorqueRecord::parse(l).ok());
    (parsed.netwatch, parsed.counts[4]) =
        parse_lines_par(&logs.netwatch, threads, |l| NetwatchRecord::parse(l).ok());
    parsed
}

fn parse_file<T>(
    path: &Path,
    counts: &mut ParseCounts,
    out: &mut Vec<T>,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<(), LogDiverError> {
    if !path.exists() {
        return Ok(());
    }
    let file = std::fs::File::open(path).map_err(|source| LogDiverError::Io {
        // lint: allow(hot-path-alloc) I/O-error construction, once per failed file, never per record
        path: path.display().to_string(),
        source,
    })?;
    for line in std::io::BufReader::new(file).lines() {
        let line = line.map_err(|source| LogDiverError::Io {
            // lint: allow(hot-path-alloc) I/O-error construction, once per failed file, never per record
            path: path.display().to_string(),
            source,
        })?;
        out.extend(parse_counted(&line, counts, &parse));
    }
    Ok(())
}

/// Parses a log directory *streaming*: lines go straight from the reader
/// into typed records without ever materializing the raw text — the memory
/// profile a full 518-day analysis needs (raw logs are gigabytes; parsed
/// records are a fraction of that).
///
/// # Errors
///
/// [`LogDiverError::Io`] on read failures, [`LogDiverError::NoInput`] when
/// no recognizable file exists under `dir`.
pub fn parse_dir(dir: impl AsRef<Path>) -> Result<ParsedLogs, LogDiverError> {
    parse_dir_threads(dir, 1)
}

/// How many lines of raw text travel to a parse worker at a time. Bounds
/// in-flight raw text: at most `threads × 2` chunks exist unparsed.
const FILE_CHUNK_LINES: usize = 4096;

/// Parses a log directory across `threads` workers, producing exactly what
/// [`parse_dir`] produces.
///
/// The reader stays sequential (one pass per file); chunks of raw lines fan
/// out to workers over a bounded channel and the typed results are merged
/// in chunk order, so memory stays bounded and output order is the file
/// order.
///
/// # Errors
///
/// Same as [`parse_dir`].
pub fn parse_dir_threads(
    dir: impl AsRef<Path>,
    threads: usize,
) -> Result<ParsedLogs, LogDiverError> {
    let dir = dir.as_ref();
    let mut parsed = ParsedLogs::default();
    parse_file_par(
        &dir.join("messages.log"),
        threads,
        &mut parsed.counts[0],
        &mut parsed.syslog,
        |l| SyslogRecord::parse(l).ok(),
    )?;
    parse_file_par(
        &dir.join("hwerr.log"),
        threads,
        &mut parsed.counts[1],
        &mut parsed.hwerr,
        |l| HwErrRecord::parse(l).ok(),
    )?;
    parse_file_par(
        &dir.join("apsys.log"),
        threads,
        &mut parsed.counts[2],
        &mut parsed.alps,
        |l| AlpsRecord::parse(l).ok(),
    )?;
    parse_file_par(
        &dir.join("torque.log"),
        threads,
        &mut parsed.counts[3],
        &mut parsed.torque,
        |l| TorqueRecord::parse(l).ok(),
    )?;
    parse_file_par(
        &dir.join("netwatch.log"),
        threads,
        &mut parsed.counts[4],
        &mut parsed.netwatch,
        |l| NetwatchRecord::parse(l).ok(),
    )?;
    if parsed.counts.iter().all(|c| c.total == 0) {
        return Err(LogDiverError::NoInput {
            // lint: allow(hot-path-alloc) I/O-error construction, once per failed file, never per record
            path: dir.display().to_string(),
        });
    }
    Ok(parsed)
}

fn parse_file_par<T: Send>(
    path: &Path,
    threads: usize,
    counts: &mut ParseCounts,
    out: &mut Vec<T>,
    parse: impl Fn(&str) -> Option<T> + Sync,
) -> Result<(), LogDiverError> {
    if threads <= 1 {
        return parse_file(path, counts, out, parse);
    }
    if !path.exists() {
        return Ok(());
    }
    let io_err = |source: std::io::Error| LogDiverError::Io {
        // lint: allow(hot-path-alloc) I/O-error construction, once per failed file, never per record
        path: path.display().to_string(),
        source,
    };
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut lines = std::io::BufReader::new(file).lines();
    let source = move || -> Result<Option<Vec<String>>, LogDiverError> {
        let mut chunk = Vec::with_capacity(FILE_CHUNK_LINES);
        for line in lines.by_ref().take(FILE_CHUNK_LINES) {
            chunk.push(line.map_err(io_err)?);
        }
        Ok(if chunk.is_empty() { None } else { Some(chunk) })
    };
    let results = crate::exec::par_map_stream(threads, source, |chunk: Vec<String>| {
        let mut c = ParseCounts::default();
        let recs = parse_all(&chunk, &mut c, &parse);
        (recs, c)
    })?;
    for (recs, c) in results {
        out.extend(recs);
        counts.total += c.total;
        counts.bad += c.bad;
    }
    Ok(())
}

/// One rejected raw line, identified by provenance — no text is cloned on
/// the hot path. Drivers that persist quarantined lines (`--quarantine-out`)
/// slice the input back out by offset and render it lossily at output time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinedLine {
    /// Index into the canonical source order
    /// (`[syslog, hwerr, alps, torque, netwatch]`).
    pub source: u8,
    /// Byte offset of the line start within its source block (arena
    /// inputs) or the 0-based line index (in-memory collections).
    pub offset: u64,
    /// Line length in bytes.
    pub len: u32,
    /// Why the parser rejected it.
    pub reason: &'static str,
}

/// The syslog stream in columnar form: one decoded timestamp plus borrowed
/// host and message slices per parsed record, in record order. The filter
/// stage classifies `messages[i]` and resolves `hosts[i]` to a node only
/// for the few records it keeps.
#[derive(Debug, Default)]
pub struct SyslogColumns<'a> {
    /// Record timestamps (decoded eagerly: the coverage tracker observes
    /// every record, kept or discarded).
    pub times: Vec<Timestamp>,
    /// Reporting-host bytes, borrowed from the input.
    pub hosts: Vec<&'a [u8]>,
    /// Free-text message bytes, borrowed from the input.
    pub messages: Vec<&'a [u8]>,
}

impl SyslogColumns<'_> {
    /// Number of parsed records.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no records parsed.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

/// One parsed hardware-error record, reduced to what the downstream
/// stages consume (the free-text detail is never needed by the pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwErrParsed {
    /// Event time.
    pub timestamp: Timestamp,
    /// Reporting node, resolved from the physical location code.
    pub node: NodeId,
    /// Error category.
    pub category: ErrorCategory,
    /// Severity as recorded by the hardware supervisory system.
    pub severity: Severity,
}

/// Everything the columnar parse stage produces. Borrows from the input
/// (arena blocks or collection lines); the low-volume structured sources
/// are owned records, as before.
#[derive(Debug, Default)]
pub struct ParsedColumns<'a> {
    /// Columnar syslog (the volume).
    pub syslog: SyslogColumns<'a>,
    /// Parsed hardware-error records.
    pub hwerr: Vec<HwErrParsed>,
    /// Parsed ALPS records.
    pub alps: Vec<AlpsRecord>,
    /// Parsed Torque records.
    pub torque: Vec<TorqueRecord>,
    /// Parsed netwatch records.
    pub netwatch: Vec<NetwatchRecord>,
    /// Accounting per source: `[syslog, hwerr, alps, torque, netwatch]`.
    pub counts: [ParseCounts; 5],
    /// Every rejected line, by provenance, grouped by source in canonical
    /// order (within a source: input order, for any thread count).
    pub quarantine: Vec<QuarantinedLine>,
}

/// One source's raw lines tagged with their provenance offsets — what
/// [`parse_columns_threads`] consumes.
pub type TaggedLines<'a> = Vec<(u64, &'a [u8])>;

/// Tags a collection's lines with their line indices.
pub fn collection_lines(logs: &LogCollection) -> [TaggedLines<'_>; 5] {
    fn tag(lines: &[String]) -> TaggedLines<'_> {
        lines
            .iter()
            .enumerate()
            .map(|(i, l)| (i as u64, l.as_bytes()))
            .collect()
    }
    [
        tag(&logs.syslog),
        tag(&logs.hwerr),
        tag(&logs.alps),
        tag(&logs.torque),
        tag(&logs.netwatch),
    ]
}

/// Splits an arena's blocks into offset-tagged lines.
pub fn arena_lines(arena: &LogArena) -> [TaggedLines<'_>; 5] {
    std::array::from_fn(|i| arena.lines(i).collect())
}

/// Blank lines count as corrupt, exactly as [`parse_counted`] treats them.
/// Byte-level equivalent of `str::trim().is_empty()` for ASCII whitespace;
/// lines blank only under Unicode whitespace fail their parser instead —
/// either way they are counted bad.
fn is_blank(line: &[u8]) -> bool {
    line.iter().all(u8::is_ascii_whitespace)
}

/// Runs `f` over chunks of `lines`, in parallel when the input is large
/// enough, returning the per-chunk results in chunk order (= line order).
fn par_over_chunks<'a, R: Send>(
    lines: &'a [(u64, &'a [u8])],
    threads: usize,
    f: impl Fn(&'a [(u64, &'a [u8])]) -> R + Sync,
) -> Vec<R> {
    if threads <= 1 || lines.len() < 2 * MIN_CHUNK_LINES {
        return vec![f(lines)];
    }
    let chunk_len = (lines.len() / (threads * 4)).max(MIN_CHUNK_LINES);
    let chunks: Vec<&[(u64, &[u8])]> = lines.chunks(chunk_len).collect();
    crate::exec::par_map(threads, chunks, f)
}

/// Per-chunk accumulator for one structured (non-syslog) source.
struct SourceChunk<T> {
    recs: Vec<T>,
    counts: ParseCounts,
    quarantine: Vec<QuarantinedLine>,
}

/// Parses one structured source's lines across `threads` workers with a
/// byte-level parser, collecting rejects by provenance.
fn parse_source_columns<'a, T: Send>(
    lines: &'a [(u64, &'a [u8])],
    source: u8,
    threads: usize,
    parse: impl Fn(&'a [u8]) -> Result<T, &'static str> + Sync,
) -> (Vec<T>, ParseCounts, Vec<QuarantinedLine>) {
    let parts = par_over_chunks(lines, threads, |chunk| {
        let mut acc = SourceChunk {
            recs: Vec::with_capacity(chunk.len()),
            counts: ParseCounts::default(),
            quarantine: Vec::new(),
        };
        for &(offset, line) in chunk {
            acc.counts.total += 1;
            let verdict = if is_blank(line) {
                Err("blank line")
            } else {
                parse(line)
            };
            match verdict {
                Ok(rec) => acc.recs.push(rec),
                Err(reason) => {
                    acc.counts.bad += 1;
                    acc.quarantine.push(QuarantinedLine {
                        source,
                        offset,
                        len: line.len() as u32,
                        reason,
                    });
                }
            }
        }
        acc
    });
    let mut recs = Vec::with_capacity(lines.len());
    let mut counts = ParseCounts::default();
    let mut quarantine = Vec::new();
    for part in parts {
        recs.extend(part.recs);
        counts.total += part.counts.total;
        counts.bad += part.counts.bad;
        quarantine.extend(part.quarantine);
    }
    (recs, counts, quarantine)
}

/// Parses the syslog stream into columns across `threads` workers.
fn parse_syslog_columns<'a>(
    lines: &'a [(u64, &'a [u8])],
    threads: usize,
) -> (SyslogColumns<'a>, ParseCounts, Vec<QuarantinedLine>) {
    struct Chunk<'a> {
        cols: SyslogColumns<'a>,
        counts: ParseCounts,
        quarantine: Vec<QuarantinedLine>,
    }
    let parts = par_over_chunks(lines, threads, |chunk| {
        let mut acc = Chunk {
            cols: SyslogColumns {
                times: Vec::with_capacity(chunk.len()),
                hosts: Vec::with_capacity(chunk.len()),
                messages: Vec::with_capacity(chunk.len()),
            },
            counts: ParseCounts::default(),
            quarantine: Vec::new(),
        };
        for &(offset, line) in chunk {
            acc.counts.total += 1;
            let verdict = if is_blank(line) {
                Err("blank line")
            } else {
                RawSyslog::parse_bytes(line).map_err(|f| f.reason())
            };
            match verdict {
                Ok(raw) => {
                    acc.cols.times.push(raw.timestamp.decode());
                    acc.cols.hosts.push(raw.host);
                    acc.cols.messages.push(raw.message);
                }
                Err(reason) => {
                    acc.counts.bad += 1;
                    acc.quarantine.push(QuarantinedLine {
                        source: 0,
                        offset,
                        len: line.len() as u32,
                        reason,
                    });
                }
            }
        }
        acc
    });
    let mut cols = SyslogColumns::default();
    let mut counts = ParseCounts::default();
    let mut quarantine = Vec::new();
    for part in parts {
        cols.times.extend(part.cols.times);
        cols.hosts.extend(part.cols.hosts);
        cols.messages.extend(part.cols.messages);
        counts.total += part.counts.total;
        counts.bad += part.counts.bad;
        quarantine.extend(part.quarantine);
    }
    (cols, counts, quarantine)
}

/// Parses all five sources into columnar form — the zero-copy hot path.
/// Chunk results are concatenated in chunk order, so for every `threads`
/// the output is byte-identical to the serial scan.
pub fn parse_columns_threads<'a>(
    sources: &'a [TaggedLines<'a>; 5],
    threads: usize,
) -> ParsedColumns<'a> {
    let mut out = ParsedColumns::default();
    let (syslog, counts, quarantine) = parse_syslog_columns(&sources[0], threads);
    out.syslog = syslog;
    out.counts[0] = counts;
    out.quarantine = quarantine;

    let (hwerr, counts, quarantine) = parse_source_columns(&sources[1], 1, threads, |line| {
        RawHwErr::parse_bytes(line)
            .map(|raw| HwErrParsed {
                timestamp: raw.timestamp.decode(),
                node: raw.location.to_nid(),
                category: raw.category,
                severity: raw.severity,
            })
            .map_err(|f| f.reason())
    });
    out.hwerr = hwerr;
    out.counts[1] = counts;
    out.quarantine.extend(quarantine);

    let (alps, counts, quarantine) = parse_source_columns(&sources[2], 2, threads, |line| {
        AlpsRecord::parse_bytes(line).map_err(|f| f.reason())
    });
    out.alps = alps;
    out.counts[2] = counts;
    out.quarantine.extend(quarantine);

    let (torque, counts, quarantine) = parse_source_columns(&sources[3], 3, threads, |line| {
        TorqueRecord::parse_bytes(line).map_err(|f| f.reason())
    });
    out.torque = torque;
    out.counts[3] = counts;
    out.quarantine.extend(quarantine);

    let (netwatch, counts, quarantine) = parse_source_columns(&sources[4], 4, threads, |line| {
        NetwatchRecord::parse_bytes(line).map_err(|f| f.reason())
    });
    out.netwatch = netwatch;
    out.counts[4] = counts;
    out.quarantine.extend(quarantine);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_good_and_bad() {
        let mut logs = LogCollection::new();
        logs.syslog
            .push("2013-03-28 12:30:00 nid00001 kernel: ok line".into());
        logs.syslog.push("garbage".into());
        logs.syslog.push("".into());
        logs.alps.push(
            "2013-03-28 12:30:00 apsys EXIT apid=1 code=0 signal=none node_failed=no runtime=60"
                .into(),
        );
        let parsed = parse_collection(&logs);
        assert_eq!(parsed.syslog.len(), 1);
        assert_eq!(parsed.counts[0].total, 3);
        assert_eq!(parsed.counts[0].bad, 2);
        assert_eq!(parsed.counts[0].good(), 1);
        assert_eq!(parsed.alps.len(), 1);
        assert_eq!(parsed.total_bad(), 2);
    }

    #[test]
    fn parse_dir_streams_and_matches_in_memory_path() {
        let dir = std::env::temp_dir().join(format!("logdiver-parse-dir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("messages.log"),
            "2013-03-28 12:30:00 nid00001 kernel: ok line
garbage
",
        )
        .unwrap();
        std::fs::write(
            dir.join("apsys.log"),
            "2013-03-28 12:30:00 apsys EXIT apid=1 code=0 signal=none node_failed=no runtime=60
",
        )
        .unwrap();
        let streamed = parse_dir(&dir).unwrap();
        let in_memory = {
            let logs = crate::input::LogCollection::from_dir(&dir).unwrap();
            parse_collection(&logs)
        };
        assert_eq!(streamed.syslog, in_memory.syslog);
        assert_eq!(streamed.alps, in_memory.alps);
        assert_eq!(streamed.counts, in_memory.counts);
        std::fs::remove_dir_all(&dir).unwrap();

        assert!(matches!(
            parse_dir("/definitely/not/here"),
            Err(LogDiverError::NoInput { .. })
        ));
    }

    #[test]
    fn corrupt_lines_do_not_abort() {
        let mut logs = LogCollection::new();
        for i in 0..100 {
            logs.hwerr.push(format!("corrupt record {i}"));
        }
        let parsed = parse_collection(&logs);
        assert_eq!(parsed.hwerr.len(), 0);
        assert_eq!(parsed.counts[1].bad, 100);
    }

    fn mixed_logs() -> LogCollection {
        let mut logs = LogCollection::new();
        logs.syslog.extend([
            "2013-03-28 12:30:00 nid00001 kernel: ok line".to_string(),
            "garbage".to_string(),
            String::new(),
            "2013-03-28 12:30:02 smw xtnmd: heartbeat ok".to_string(),
        ]);
        logs.hwerr
            .push("2013-03-28 12:30:02|c0-0c0s1n0|MEM_UE|FATAL|dimm=1".to_string());
        logs.alps.push(
            "2013-03-28 12:30:00 apsys EXIT apid=1 code=0 signal=none node_failed=no runtime=60"
                .to_string(),
        );
        logs.torque.push(
            "2013-03-28 12:00:00;S;98765.bw;user=u0421 queue=normal nodes=4096 walltime=86400"
                .to_string(),
        );
        logs.netwatch
            .push("2013-03-28 12:30:12 netwatch REROUTE_START affected=41472".to_string());
        logs
    }

    /// The columnar path must agree with the record path field-for-field:
    /// same counts, same timestamps, same host/message boundaries.
    #[test]
    fn columns_match_record_parse() {
        let logs = mixed_logs();
        let parsed = parse_collection(&logs);
        let sources = collection_lines(&logs);
        let cols = parse_columns_threads(&sources, 1);

        assert_eq!(cols.counts, parsed.counts);
        assert_eq!(cols.syslog.len(), parsed.syslog.len());
        for (i, rec) in parsed.syslog.iter().enumerate() {
            assert_eq!(cols.syslog.times[i], rec.timestamp);
            assert_eq!(cols.syslog.hosts[i], rec.host.as_str().as_bytes());
            assert_eq!(cols.syslog.messages[i], rec.message.as_bytes());
        }
        assert_eq!(cols.hwerr.len(), parsed.hwerr.len());
        for (h, rec) in cols.hwerr.iter().zip(&parsed.hwerr) {
            assert_eq!(h.timestamp, rec.timestamp);
            assert_eq!(h.node, rec.location.to_nid());
            assert_eq!(h.category, rec.category);
            assert_eq!(h.severity, rec.severity);
        }
        assert_eq!(cols.alps, parsed.alps);
        assert_eq!(cols.torque, parsed.torque);
        assert_eq!(cols.netwatch, parsed.netwatch);
    }

    #[test]
    fn columns_are_thread_count_invariant() {
        let mut logs = LogCollection::new();
        for i in 0..5000 {
            if i % 7 == 0 {
                logs.syslog.push(format!("torn line {i}"));
            } else {
                logs.syslog.push(format!(
                    "2013-03-28 12:30:{:02} nid{:05} ntpd: slew",
                    i % 60,
                    i % 99
                ));
            }
        }
        let sources = collection_lines(&logs);
        let serial = parse_columns_threads(&sources, 1);
        let par = parse_columns_threads(&sources, 4);
        assert_eq!(serial.syslog.times, par.syslog.times);
        assert_eq!(serial.syslog.hosts, par.syslog.hosts);
        assert_eq!(serial.syslog.messages, par.syslog.messages);
        assert_eq!(serial.counts, par.counts);
        assert_eq!(serial.quarantine, par.quarantine);
    }

    /// Quarantine records carry provenance, not text: slicing the arena
    /// back out by offset recovers the rejected line, lossily renderable.
    #[test]
    fn quarantine_offsets_recover_the_rejected_lines() {
        let mut logs = LogCollection::new();
        logs.syslog
            .push("2013-03-28 12:30:00 nid00001 kernel: ok".to_string());
        logs.syslog.push("¡corrupted±line···".to_string());
        let arena = LogArena::from_collection(&logs);
        let sources = arena_lines(&arena);
        let cols = parse_columns_threads(&sources, 1);
        assert_eq!(cols.quarantine.len(), 1);
        let q = cols.quarantine[0];
        assert_eq!(q.source, 0);
        let raw = &arena.block(0)[q.offset as usize..q.offset as usize + q.len as usize];
        assert_eq!(String::from_utf8_lossy(raw), "¡corrupted±line···");
        assert!(!q.reason.is_empty());
    }

    /// The arena path admits encoding damage the record path cannot even
    /// represent: a torn multi-byte sequence is quarantined by offset,
    /// while intact lines around it parse normally.
    #[test]
    fn arena_parse_survives_invalid_utf8() {
        // A block with a bare 0xFF cannot exist as a String collection;
        // load it through the directory surface instead.
        let block: &[u8] = b"2013-03-28 12:30:00 nid00001 kernel: before\n\
                             2013-03-28 12:30:01 nid00002 kernel: torn \xff byte\n";
        let dir = std::env::temp_dir().join(format!("logdiver-rawutf8-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("messages.log"), block).unwrap();
        let arena = LogArena::from_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        let sources = arena_lines(&arena);
        let cols = parse_columns_threads(&sources, 1);
        // Both lines parse: syslog fields are raw bytes until a consumer
        // needs text, and classification operates on bytes.
        assert_eq!(cols.syslog.len(), 2);
        assert_eq!(cols.counts[0].bad, 0);
        assert_eq!(cols.syslog.messages[1], b"torn \xff byte".as_slice());
    }
}
