//! Stage 1: parsing raw lines into typed records.
//!
//! Field data always contains corruption — truncated lines, interleaved
//! writes, encoding damage. Every source is parsed line by line; failures
//! are *counted per source* and never abort the analysis.

use std::io::BufRead;
use std::path::Path;

use craylog::alps::AlpsRecord;
use craylog::hwerr::HwErrRecord;
use craylog::netwatch::NetwatchRecord;
use craylog::syslog::SyslogRecord;
use craylog::torque::TorqueRecord;
use serde::{Deserialize, Serialize};

use crate::error::LogDiverError;
use crate::input::LogCollection;

/// Per-source line accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ParseCounts {
    /// Lines seen.
    pub total: u64,
    /// Lines that failed to parse.
    pub bad: u64,
}

impl ParseCounts {
    /// Lines successfully parsed.
    pub fn good(&self) -> u64 {
        self.total - self.bad
    }
}

/// Everything stage 1 produces.
#[derive(Debug, Default)]
pub struct ParsedLogs {
    /// Parsed syslog records.
    pub syslog: Vec<SyslogRecord>,
    /// Parsed hardware-error records.
    pub hwerr: Vec<HwErrRecord>,
    /// Parsed ALPS records.
    pub alps: Vec<AlpsRecord>,
    /// Parsed Torque records.
    pub torque: Vec<TorqueRecord>,
    /// Parsed netwatch records.
    pub netwatch: Vec<NetwatchRecord>,
    /// Accounting per source: `[syslog, hwerr, alps, torque, netwatch]`.
    pub counts: [ParseCounts; 5],
}

impl ParsedLogs {
    /// Total corrupt lines across sources.
    pub fn total_bad(&self) -> u64 {
        self.counts.iter().map(|c| c.bad).sum()
    }
}

/// Parses one raw line with the stage-1 counting rules: every line bumps
/// `total`; blank and unparseable lines bump `bad` and yield `None`. The
/// batch paths and the streaming engine's parse workers all route through
/// this so corrupt-line accounting can never drift between drivers.
pub fn parse_counted<T>(
    line: &str,
    counts: &mut ParseCounts,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Option<T> {
    counts.total += 1;
    if line.trim().is_empty() {
        counts.bad += 1;
        return None;
    }
    match parse(line) {
        Some(rec) => Some(rec),
        None => {
            counts.bad += 1;
            None
        }
    }
}

fn parse_all<T>(
    lines: &[String],
    counts: &mut ParseCounts,
    parse: impl Fn(&str) -> Option<T>,
) -> Vec<T> {
    let mut out = Vec::with_capacity(lines.len());
    for line in lines {
        out.extend(parse_counted(line, counts, &parse));
    }
    out
}

/// Aim for several chunks per worker so stealing can even out corrupt-line
/// hotspots, but never chunks so small that dispatch dominates.
const MIN_CHUNK_LINES: usize = 1024;

/// Parses one source's lines across `threads` workers. Chunk results are
/// concatenated in chunk order (= line order) and the per-chunk counts are
/// summed, so the output is identical to the serial scan.
fn parse_lines_par<T: Send>(
    lines: &[String],
    threads: usize,
    parse: impl Fn(&str) -> Option<T> + Sync,
) -> (Vec<T>, ParseCounts) {
    let mut counts = ParseCounts::default();
    if threads <= 1 || lines.len() < 2 * MIN_CHUNK_LINES {
        let out = parse_all(lines, &mut counts, parse);
        return (out, counts);
    }
    let chunk_len = (lines.len() / (threads * 4)).max(MIN_CHUNK_LINES);
    let chunks: Vec<&[String]> = lines.chunks(chunk_len).collect();
    let results = crate::exec::par_map(threads, chunks, |chunk| {
        let mut c = ParseCounts::default();
        let recs = parse_all(chunk, &mut c, &parse);
        (recs, c)
    });
    let mut out = Vec::with_capacity(lines.len());
    for (recs, c) in results {
        out.extend(recs);
        counts.total += c.total;
        counts.bad += c.bad;
    }
    (out, counts)
}

/// Parses a whole collection.
pub fn parse_collection(logs: &LogCollection) -> ParsedLogs {
    parse_collection_threads(logs, 1)
}

/// Parses a whole collection across `threads` workers, producing exactly
/// what [`parse_collection`] produces.
pub fn parse_collection_threads(logs: &LogCollection, threads: usize) -> ParsedLogs {
    let mut parsed = ParsedLogs::default();
    (parsed.syslog, parsed.counts[0]) =
        parse_lines_par(&logs.syslog, threads, |l| SyslogRecord::parse(l).ok());
    (parsed.hwerr, parsed.counts[1]) =
        parse_lines_par(&logs.hwerr, threads, |l| HwErrRecord::parse(l).ok());
    (parsed.alps, parsed.counts[2]) =
        parse_lines_par(&logs.alps, threads, |l| AlpsRecord::parse(l).ok());
    (parsed.torque, parsed.counts[3]) =
        parse_lines_par(&logs.torque, threads, |l| TorqueRecord::parse(l).ok());
    (parsed.netwatch, parsed.counts[4]) =
        parse_lines_par(&logs.netwatch, threads, |l| NetwatchRecord::parse(l).ok());
    parsed
}

fn parse_file<T>(
    path: &Path,
    counts: &mut ParseCounts,
    out: &mut Vec<T>,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<(), LogDiverError> {
    if !path.exists() {
        return Ok(());
    }
    let file = std::fs::File::open(path).map_err(|source| LogDiverError::Io {
        path: path.display().to_string(),
        source,
    })?;
    for line in std::io::BufReader::new(file).lines() {
        let line = line.map_err(|source| LogDiverError::Io {
            path: path.display().to_string(),
            source,
        })?;
        out.extend(parse_counted(&line, counts, &parse));
    }
    Ok(())
}

/// Parses a log directory *streaming*: lines go straight from the reader
/// into typed records without ever materializing the raw text — the memory
/// profile a full 518-day analysis needs (raw logs are gigabytes; parsed
/// records are a fraction of that).
///
/// # Errors
///
/// [`LogDiverError::Io`] on read failures, [`LogDiverError::NoInput`] when
/// no recognizable file exists under `dir`.
pub fn parse_dir(dir: impl AsRef<Path>) -> Result<ParsedLogs, LogDiverError> {
    parse_dir_threads(dir, 1)
}

/// How many lines of raw text travel to a parse worker at a time. Bounds
/// in-flight raw text: at most `threads × 2` chunks exist unparsed.
const FILE_CHUNK_LINES: usize = 4096;

/// Parses a log directory across `threads` workers, producing exactly what
/// [`parse_dir`] produces.
///
/// The reader stays sequential (one pass per file); chunks of raw lines fan
/// out to workers over a bounded channel and the typed results are merged
/// in chunk order, so memory stays bounded and output order is the file
/// order.
///
/// # Errors
///
/// Same as [`parse_dir`].
pub fn parse_dir_threads(
    dir: impl AsRef<Path>,
    threads: usize,
) -> Result<ParsedLogs, LogDiverError> {
    let dir = dir.as_ref();
    let mut parsed = ParsedLogs::default();
    parse_file_par(
        &dir.join("messages.log"),
        threads,
        &mut parsed.counts[0],
        &mut parsed.syslog,
        |l| SyslogRecord::parse(l).ok(),
    )?;
    parse_file_par(
        &dir.join("hwerr.log"),
        threads,
        &mut parsed.counts[1],
        &mut parsed.hwerr,
        |l| HwErrRecord::parse(l).ok(),
    )?;
    parse_file_par(
        &dir.join("apsys.log"),
        threads,
        &mut parsed.counts[2],
        &mut parsed.alps,
        |l| AlpsRecord::parse(l).ok(),
    )?;
    parse_file_par(
        &dir.join("torque.log"),
        threads,
        &mut parsed.counts[3],
        &mut parsed.torque,
        |l| TorqueRecord::parse(l).ok(),
    )?;
    parse_file_par(
        &dir.join("netwatch.log"),
        threads,
        &mut parsed.counts[4],
        &mut parsed.netwatch,
        |l| NetwatchRecord::parse(l).ok(),
    )?;
    if parsed.counts.iter().all(|c| c.total == 0) {
        return Err(LogDiverError::NoInput {
            path: dir.display().to_string(),
        });
    }
    Ok(parsed)
}

fn parse_file_par<T: Send>(
    path: &Path,
    threads: usize,
    counts: &mut ParseCounts,
    out: &mut Vec<T>,
    parse: impl Fn(&str) -> Option<T> + Sync,
) -> Result<(), LogDiverError> {
    if threads <= 1 {
        return parse_file(path, counts, out, parse);
    }
    if !path.exists() {
        return Ok(());
    }
    let io_err = |source: std::io::Error| LogDiverError::Io {
        path: path.display().to_string(),
        source,
    };
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut lines = std::io::BufReader::new(file).lines();
    let source = move || -> Result<Option<Vec<String>>, LogDiverError> {
        let mut chunk = Vec::with_capacity(FILE_CHUNK_LINES);
        for line in lines.by_ref().take(FILE_CHUNK_LINES) {
            chunk.push(line.map_err(io_err)?);
        }
        Ok(if chunk.is_empty() { None } else { Some(chunk) })
    };
    let results = crate::exec::par_map_stream(threads, source, |chunk: Vec<String>| {
        let mut c = ParseCounts::default();
        let recs = parse_all(&chunk, &mut c, &parse);
        (recs, c)
    })?;
    for (recs, c) in results {
        out.extend(recs);
        counts.total += c.total;
        counts.bad += c.bad;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_good_and_bad() {
        let mut logs = LogCollection::new();
        logs.syslog
            .push("2013-03-28 12:30:00 nid00001 kernel: ok line".into());
        logs.syslog.push("garbage".into());
        logs.syslog.push("".into());
        logs.alps.push(
            "2013-03-28 12:30:00 apsys EXIT apid=1 code=0 signal=none node_failed=no runtime=60"
                .into(),
        );
        let parsed = parse_collection(&logs);
        assert_eq!(parsed.syslog.len(), 1);
        assert_eq!(parsed.counts[0].total, 3);
        assert_eq!(parsed.counts[0].bad, 2);
        assert_eq!(parsed.counts[0].good(), 1);
        assert_eq!(parsed.alps.len(), 1);
        assert_eq!(parsed.total_bad(), 2);
    }

    #[test]
    fn parse_dir_streams_and_matches_in_memory_path() {
        let dir = std::env::temp_dir().join(format!("logdiver-parse-dir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("messages.log"),
            "2013-03-28 12:30:00 nid00001 kernel: ok line
garbage
",
        )
        .unwrap();
        std::fs::write(
            dir.join("apsys.log"),
            "2013-03-28 12:30:00 apsys EXIT apid=1 code=0 signal=none node_failed=no runtime=60
",
        )
        .unwrap();
        let streamed = parse_dir(&dir).unwrap();
        let in_memory = {
            let logs = crate::input::LogCollection::from_dir(&dir).unwrap();
            parse_collection(&logs)
        };
        assert_eq!(streamed.syslog, in_memory.syslog);
        assert_eq!(streamed.alps, in_memory.alps);
        assert_eq!(streamed.counts, in_memory.counts);
        std::fs::remove_dir_all(&dir).unwrap();

        assert!(matches!(
            parse_dir("/definitely/not/here"),
            Err(LogDiverError::NoInput { .. })
        ));
    }

    #[test]
    fn corrupt_lines_do_not_abort() {
        let mut logs = LogCollection::new();
        for i in 0..100 {
            logs.hwerr.push(format!("corrupt record {i}"));
        }
        let parsed = parse_collection(&logs);
        assert_eq!(parsed.hwerr.len(), 0);
        assert_eq!(parsed.counts[1].bad, 100);
    }
}
