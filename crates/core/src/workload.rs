//! Stage 4: reconstructing application runs from the workload logs.
//!
//! ALPS gives the placement (apid → nodes, user, class) and the exit
//! record; Torque gives job-level context (requested walltime, needed to
//! recognize walltime kills). The join is by apid / batch id. Orphans —
//! exits without placements, placements without exits — are counted, not
//! dropped silently.

use std::collections::HashMap;

use craylog::alps::AlpsRecord;
use craylog::torque::TorqueEventKind;
use logdiver_types::{AppId, ExitStatus, JobId, NodeType, SimDuration, Timestamp, UserId};
use serde::{Deserialize, Serialize};

use crate::parse::ParsedLogs;
use crate::ranges::RangeSet;

/// How a reconstructed run terminated, as far as the logs say.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Termination {
    /// A normal ALPS exit record exists.
    Exited(ExitStatus),
    /// The launcher failed the run before execution.
    LaunchFailed,
    /// Placed, but no termination record was found (censored/corrupt).
    Missing,
}

/// One reconstructed application run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRun {
    /// Application id.
    pub apid: AppId,
    /// Enclosing batch job.
    pub job: JobId,
    /// Submitting user.
    pub user: UserId,
    /// Node class.
    pub node_type: NodeType,
    /// Width in nodes.
    pub width: u32,
    /// Placement.
    pub nodes: RangeSet,
    /// Launch time.
    pub start: Timestamp,
    /// Termination time (equals `start` when missing).
    pub end: Timestamp,
    /// Termination record.
    pub termination: Termination,
}

impl AppRun {
    /// Wall-clock runtime.
    pub fn runtime(&self) -> SimDuration {
        self.end - self.start
    }

    /// Node-hours consumed.
    pub fn node_hours(&self) -> f64 {
        self.width as f64 * self.runtime().as_hours_f64().max(0.0)
    }
}

/// Job-level context from Torque.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobInfo {
    /// Requested walltime.
    pub walltime: SimDuration,
    /// Job start (from the E record), when known.
    pub start: Option<Timestamp>,
    /// Job-script exit status, when known.
    pub exit_status: Option<i32>,
}

/// Accounting for the reconstruction stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Placement records seen.
    pub placed: u64,
    /// Exit records joined to a placement.
    pub exited: u64,
    /// Launch failures joined to a placement.
    pub launch_failed: u64,
    /// Termination records with no matching placement.
    pub orphan_terminations: u64,
    /// Placements with no termination record.
    pub missing_terminations: u64,
    /// Jobs with Torque context.
    pub jobs: u64,
}

/// Reconstructs runs and job context from parsed logs.
pub fn reconstruct(parsed: &ParsedLogs) -> (Vec<AppRun>, HashMap<u64, JobInfo>, WorkloadStats) {
    let mut stats = WorkloadStats::default();
    let mut runs: Vec<AppRun> = Vec::new();
    let mut index: HashMap<u64, usize> = HashMap::new();

    for rec in &parsed.alps {
        match rec {
            AlpsRecord::Placed(p) => {
                stats.placed += 1;
                let idx = runs.len();
                runs.push(AppRun {
                    apid: p.apid,
                    job: p.job,
                    user: p.user,
                    node_type: p.node_type,
                    width: p.width,
                    nodes: RangeSet::from_node_set(&p.nodes),
                    start: p.timestamp,
                    end: p.timestamp,
                    termination: Termination::Missing,
                });
                index.insert(p.apid.value(), idx);
            }
            AlpsRecord::Exit(e) => match index.get(&e.apid.value()) {
                Some(&idx) => {
                    let run = &mut runs[idx];
                    run.end = e.timestamp;
                    run.termination = Termination::Exited(e.exit);
                    stats.exited += 1;
                }
                None => stats.orphan_terminations += 1,
            },
            AlpsRecord::LaunchErr(l) => match index.get(&l.apid.value()) {
                Some(&idx) => {
                    let run = &mut runs[idx];
                    run.end = l.timestamp;
                    run.termination = Termination::LaunchFailed;
                    stats.launch_failed += 1;
                }
                None => stats.orphan_terminations += 1,
            },
        }
    }
    stats.missing_terminations = runs
        .iter()
        .filter(|r| r.termination == Termination::Missing)
        .count() as u64;

    let mut jobs: HashMap<u64, JobInfo> = HashMap::new();
    for rec in &parsed.torque {
        let info = jobs.entry(rec.job.value()).or_insert(JobInfo {
            walltime: SimDuration::from_secs(rec.walltime_secs),
            start: None,
            exit_status: None,
        });
        info.walltime = SimDuration::from_secs(rec.walltime_secs);
        if rec.kind == TorqueEventKind::End {
            info.start = rec.start;
            info.exit_status = rec.exit_status;
        } else if info.start.is_none() {
            info.start = Some(rec.timestamp);
        }
    }
    stats.jobs = jobs.len() as u64;
    (runs, jobs, stats)
}

/// Convenience for tests: total node-hours over runs.
pub fn total_node_hours(runs: &[AppRun]) -> f64 {
    runs.iter().map(AppRun::node_hours).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::LogCollection;
    use crate::parse::parse_collection;

    fn logs() -> LogCollection {
        let mut logs = LogCollection::new();
        logs.alps.extend([
            "2013-03-28 12:00:00 apsys PLACED apid=1 batch=10.bw user=u0001 cmd=a.out type=XE width=4 nodelist=nid[0-3]".to_string(),
            "2013-03-28 13:00:00 apsys EXIT apid=1 code=0 signal=none node_failed=no runtime=3600".to_string(),
            "2013-03-28 12:05:00 apsys PLACED apid=2 batch=10.bw user=u0001 cmd=b.out type=XK width=2 nodelist=nid[100-101]".to_string(),
            "2013-03-28 12:05:03 apsys LAUNCHERR apid=2 reason=placement failed".to_string(),
            "2013-03-28 12:06:00 apsys PLACED apid=3 batch=11.bw user=u0002 cmd=c.out type=XE width=1 nodelist=nid[7]".to_string(),
            "2013-03-28 14:00:00 apsys EXIT apid=99 code=1 signal=none node_failed=no runtime=10".to_string(),
        ]);
        logs.torque.extend([
            "2013-03-28 11:59:00;S;10.bw;user=u0001 queue=normal nodes=4 walltime=7200".to_string(),
            "2013-03-28 13:01:00;E;10.bw;user=u0001 queue=normal nodes=4 walltime=7200 start=1364472000 end=1364475660 exit_status=0".to_string(),
        ]);
        logs
    }

    #[test]
    fn joins_placements_with_terminations() {
        let parsed = parse_collection(&logs());
        let (runs, jobs, stats) = reconstruct(&parsed);
        assert_eq!(runs.len(), 3);
        assert_eq!(stats.placed, 3);
        assert_eq!(stats.exited, 1);
        assert_eq!(stats.launch_failed, 1);
        assert_eq!(stats.orphan_terminations, 1);
        assert_eq!(stats.missing_terminations, 1);
        assert_eq!(stats.jobs, 1);

        let run1 = &runs[0];
        assert_eq!(run1.apid, AppId::new(1));
        assert_eq!(run1.runtime(), SimDuration::from_hours(1));
        assert!((run1.node_hours() - 4.0).abs() < 1e-9);
        assert!(matches!(run1.termination, Termination::Exited(e) if e.is_clean()));

        let run2 = &runs[1];
        assert_eq!(run2.termination, Termination::LaunchFailed);
        assert_eq!(run2.node_type, NodeType::Xk);

        let run3 = &runs[2];
        assert_eq!(run3.termination, Termination::Missing);
        assert_eq!(run3.runtime(), SimDuration::ZERO);

        let job = jobs.get(&10).unwrap();
        assert_eq!(job.walltime, SimDuration::from_secs(7200));
        assert_eq!(job.exit_status, Some(0));
        assert!(job.start.is_some());
    }

    #[test]
    fn empty_input_is_fine() {
        let parsed = parse_collection(&LogCollection::new());
        let (runs, jobs, stats) = reconstruct(&parsed);
        assert!(runs.is_empty());
        assert!(jobs.is_empty());
        assert_eq!(stats, WorkloadStats::default());
    }
}
