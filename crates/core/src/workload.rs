//! Stage 4: reconstructing application runs from the workload logs.
//!
//! ALPS gives the placement (apid → nodes, user, class) and the exit
//! record; Torque gives job-level context (requested walltime, needed to
//! recognize walltime kills). The join is by apid / batch id. Orphans —
//! exits without placements, placements without exits — are counted, not
//! dropped silently.

use std::collections::{BTreeMap, HashMap};

use craylog::alps::AlpsRecord;
use craylog::torque::{TorqueEventKind, TorqueRecord};
use logdiver_types::{AppId, ExitStatus, JobId, NodeType, SimDuration, Timestamp, UserId};
use serde::{Deserialize, Serialize};

use crate::parse::ParsedLogs;
use crate::ranges::RangeSet;

/// How a reconstructed run terminated, as far as the logs say.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Termination {
    /// A normal ALPS exit record exists.
    Exited(ExitStatus),
    /// The launcher failed the run before execution.
    LaunchFailed,
    /// Placed, but no termination record was found (censored/corrupt).
    Missing,
}

/// One reconstructed application run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRun {
    /// Application id.
    pub apid: AppId,
    /// Enclosing batch job.
    pub job: JobId,
    /// Submitting user.
    pub user: UserId,
    /// Node class.
    pub node_type: NodeType,
    /// Width in nodes.
    pub width: u32,
    /// Placement.
    pub nodes: RangeSet,
    /// Launch time.
    pub start: Timestamp,
    /// Termination time (equals `start` when missing).
    pub end: Timestamp,
    /// Termination record.
    pub termination: Termination,
}

impl AppRun {
    /// Wall-clock runtime.
    pub fn runtime(&self) -> SimDuration {
        self.end - self.start
    }

    /// Node-hours consumed.
    pub fn node_hours(&self) -> f64 {
        self.width as f64 * self.runtime().as_hours_f64().max(0.0)
    }
}

/// Job-level context from Torque.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobInfo {
    /// Requested walltime.
    pub walltime: SimDuration,
    /// Job start (from the E record), when known.
    pub start: Option<Timestamp>,
    /// Job-script exit status, when known.
    pub exit_status: Option<i32>,
}

/// Accounting for the reconstruction stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Placement records seen.
    pub placed: u64,
    /// Exit records joined to a placement.
    pub exited: u64,
    /// Launch failures joined to a placement.
    pub launch_failed: u64,
    /// Termination records with no matching placement.
    pub orphan_terminations: u64,
    /// Placements with no termination record.
    pub missing_terminations: u64,
    /// Jobs with Torque context.
    pub jobs: u64,
}

/// Incremental run reconstruction: ALPS and Torque records go in one at a
/// time (per-source input order), finished runs come out as they become
/// final.
///
/// This is the single reconstruction implementation; the batch
/// [`reconstruct`] drives it in one shot, the streaming engine feeds it
/// record by record and harvests finalizable runs on every watermark
/// advance. Runs are keyed by a dense placement sequence number so the
/// final ordering (placement order) survives out-of-band harvesting, and
/// the apid index always points at the *newest* placement for an apid —
/// matching the batch behavior for duplicate placements, where the older
/// run survives but stops receiving termination records.
#[derive(Debug, Default)]
pub struct RunReconstructor {
    runs: BTreeMap<usize, AppRun>,
    index: HashMap<u64, usize>,
    jobs: HashMap<u64, JobInfo>,
    stats: WorkloadStats,
    next_seq: usize,
}

impl RunReconstructor {
    /// Creates an empty reconstructor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one ALPS record (placement, exit, or launch error).
    pub fn push_alps(&mut self, rec: &AlpsRecord) {
        match rec {
            AlpsRecord::Placed(p) => {
                self.stats.placed += 1;
                let seq = self.next_seq;
                self.next_seq += 1;
                self.runs.insert(
                    seq,
                    AppRun {
                        apid: p.apid,
                        job: p.job,
                        user: p.user,
                        node_type: p.node_type,
                        width: p.width,
                        nodes: RangeSet::from_node_set(&p.nodes),
                        start: p.timestamp,
                        end: p.timestamp,
                        termination: Termination::Missing,
                    },
                );
                self.index.insert(p.apid.value(), seq);
            }
            AlpsRecord::Exit(e) => match self.index.get(&e.apid.value()) {
                Some(&seq) => {
                    self.stats.exited += 1;
                    if let Some(run) = self.runs.get_mut(&seq) {
                        run.end = e.timestamp;
                        run.termination = Termination::Exited(e.exit);
                    }
                }
                None => self.stats.orphan_terminations += 1,
            },
            AlpsRecord::LaunchErr(l) => match self.index.get(&l.apid.value()) {
                Some(&seq) => {
                    self.stats.launch_failed += 1;
                    if let Some(run) = self.runs.get_mut(&seq) {
                        run.end = l.timestamp;
                        run.termination = Termination::LaunchFailed;
                    }
                }
                None => self.stats.orphan_terminations += 1,
            },
        }
    }

    /// Feeds one Torque record.
    pub fn push_torque(&mut self, rec: &TorqueRecord) {
        let info = self.jobs.entry(rec.job.value()).or_insert(JobInfo {
            walltime: SimDuration::from_secs(rec.walltime_secs),
            start: None,
            exit_status: None,
        });
        info.walltime = SimDuration::from_secs(rec.walltime_secs);
        if rec.kind == TorqueEventKind::End {
            info.start = rec.start;
            info.exit_status = rec.exit_status;
        } else if info.start.is_none() {
            info.start = Some(rec.timestamp);
        }
    }

    /// Job context accumulated so far.
    pub fn jobs(&self) -> &HashMap<u64, JobInfo> {
        &self.jobs
    }

    /// Number of runs still held (not yet taken).
    pub fn open_len(&self) -> usize {
        self.runs.len()
    }

    /// Removes and returns, in placement order, every terminated run whose
    /// end time is strictly before `cutoff`.
    ///
    /// The caller picks a cutoff such that no error event closing later
    /// can fall inside the run's attribution window — then classifying the
    /// run now gives the same verdict the batch path would.
    pub fn take_finalizable(&mut self, cutoff: Timestamp) -> Vec<(usize, AppRun)> {
        let seqs: Vec<usize> = self
            .runs
            .iter()
            .filter(|(_, r)| r.termination != Termination::Missing && r.end < cutoff)
            .map(|(&seq, _)| seq)
            .collect();
        seqs.into_iter()
            // lint: allow(no-panic) every seq was collected from self.runs two lines up, with &mut self held throughout
            .map(|seq| (seq, self.runs.remove(&seq).expect("seq was just observed")))
            .collect()
    }

    /// Current stats, with the live-state counters (missing terminations,
    /// job count) filled in from the open state.
    pub fn stats_snapshot(&self) -> WorkloadStats {
        let mut stats = self.stats;
        stats.missing_terminations = self
            .runs
            .values()
            .filter(|r| r.termination == Termination::Missing)
            .count() as u64;
        stats.jobs = self.jobs.len() as u64;
        stats
    }

    /// Removes and returns every remaining run (placement order), with its
    /// placement sequence number.
    pub fn take_all(&mut self) -> Vec<(usize, AppRun)> {
        std::mem::take(&mut self.runs).into_iter().collect()
    }

    /// Finalizes: returns the remaining runs in placement order, the job
    /// context, and the stats.
    pub fn finish(mut self) -> (Vec<AppRun>, HashMap<u64, JobInfo>, WorkloadStats) {
        let stats = self.stats_snapshot();
        let runs = self.take_all().into_iter().map(|(_, run)| run).collect();
        (runs, self.jobs, stats)
    }

    /// Externalizes the open state (serializable, deterministic ordering)
    /// so a crashed driver can rebuild an equivalent reconstructor with
    /// [`RunReconstructor::restore`].
    pub fn state(&self) -> ReconstructorState {
        let mut index: Vec<(u64, u64)> = self
            .index
            .iter()
            .map(|(&apid, &seq)| (apid, seq as u64))
            .collect();
        index.sort_unstable();
        let mut jobs: Vec<(u64, JobInfo)> = self.jobs.iter().map(|(&j, info)| (j, *info)).collect();
        jobs.sort_unstable_by_key(|(j, _)| *j);
        ReconstructorState {
            runs: self
                .runs
                .iter()
                .map(|(&seq, run)| (seq as u64, run.clone()))
                .collect(),
            index,
            jobs,
            stats: self.stats,
            next_seq: self.next_seq as u64,
        }
    }

    /// Rebuilds a reconstructor from externalized state. The restored
    /// reconstructor behaves identically to the original on any further
    /// input.
    pub fn restore(state: ReconstructorState) -> Self {
        RunReconstructor {
            runs: state
                .runs
                .into_iter()
                .map(|(seq, run)| (seq as usize, run))
                .collect(),
            index: state
                .index
                .into_iter()
                .map(|(apid, seq)| (apid, seq as usize))
                .collect(),
            jobs: state.jobs.into_iter().collect(),
            stats: state.stats,
            next_seq: state.next_seq as usize,
        }
    }
}

/// Serializable open state of a [`RunReconstructor`]
/// (see [`RunReconstructor::state`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconstructorState {
    /// Unfinalized runs with their placement sequence numbers.
    runs: Vec<(u64, AppRun)>,
    /// apid → placement sequence (newest placement wins), sorted by apid.
    index: Vec<(u64, u64)>,
    /// Job context, sorted by job id.
    jobs: Vec<(u64, JobInfo)>,
    /// Join accounting so far.
    stats: WorkloadStats,
    /// Next placement sequence number.
    next_seq: u64,
}

/// Reconstructs runs and job context from parsed logs.
pub fn reconstruct(parsed: &ParsedLogs) -> (Vec<AppRun>, HashMap<u64, JobInfo>, WorkloadStats) {
    reconstruct_records(&parsed.alps, &parsed.torque)
}

/// Reconstructs runs and job context from the record slices directly —
/// the entry point the columnar pipeline uses (it has no [`ParsedLogs`]).
pub fn reconstruct_records(
    alps: &[craylog::alps::AlpsRecord],
    torque: &[craylog::torque::TorqueRecord],
) -> (Vec<AppRun>, HashMap<u64, JobInfo>, WorkloadStats) {
    let mut reconstructor = RunReconstructor::new();
    for rec in alps {
        reconstructor.push_alps(rec);
    }
    for rec in torque {
        reconstructor.push_torque(rec);
    }
    reconstructor.finish()
}

/// Convenience for tests: total node-hours over runs.
pub fn total_node_hours(runs: &[AppRun]) -> f64 {
    runs.iter().map(AppRun::node_hours).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::LogCollection;
    use crate::parse::parse_collection;

    fn logs() -> LogCollection {
        let mut logs = LogCollection::new();
        logs.alps.extend([
            "2013-03-28 12:00:00 apsys PLACED apid=1 batch=10.bw user=u0001 cmd=a.out type=XE width=4 nodelist=nid[0-3]".to_string(),
            "2013-03-28 13:00:00 apsys EXIT apid=1 code=0 signal=none node_failed=no runtime=3600".to_string(),
            "2013-03-28 12:05:00 apsys PLACED apid=2 batch=10.bw user=u0001 cmd=b.out type=XK width=2 nodelist=nid[100-101]".to_string(),
            "2013-03-28 12:05:03 apsys LAUNCHERR apid=2 reason=placement failed".to_string(),
            "2013-03-28 12:06:00 apsys PLACED apid=3 batch=11.bw user=u0002 cmd=c.out type=XE width=1 nodelist=nid[7]".to_string(),
            "2013-03-28 14:00:00 apsys EXIT apid=99 code=1 signal=none node_failed=no runtime=10".to_string(),
        ]);
        logs.torque.extend([
            "2013-03-28 11:59:00;S;10.bw;user=u0001 queue=normal nodes=4 walltime=7200".to_string(),
            "2013-03-28 13:01:00;E;10.bw;user=u0001 queue=normal nodes=4 walltime=7200 start=1364472000 end=1364475660 exit_status=0".to_string(),
        ]);
        logs
    }

    #[test]
    fn joins_placements_with_terminations() {
        let parsed = parse_collection(&logs());
        let (runs, jobs, stats) = reconstruct(&parsed);
        assert_eq!(runs.len(), 3);
        assert_eq!(stats.placed, 3);
        assert_eq!(stats.exited, 1);
        assert_eq!(stats.launch_failed, 1);
        assert_eq!(stats.orphan_terminations, 1);
        assert_eq!(stats.missing_terminations, 1);
        assert_eq!(stats.jobs, 1);

        let run1 = &runs[0];
        assert_eq!(run1.apid, AppId::new(1));
        assert_eq!(run1.runtime(), SimDuration::from_hours(1));
        assert!((run1.node_hours() - 4.0).abs() < 1e-9);
        assert!(matches!(run1.termination, Termination::Exited(e) if e.is_clean()));

        let run2 = &runs[1];
        assert_eq!(run2.termination, Termination::LaunchFailed);
        assert_eq!(run2.node_type, NodeType::Xk);

        let run3 = &runs[2];
        assert_eq!(run3.termination, Termination::Missing);
        assert_eq!(run3.runtime(), SimDuration::ZERO);

        let job = jobs.get(&10).unwrap();
        assert_eq!(job.walltime, SimDuration::from_secs(7200));
        assert_eq!(job.exit_status, Some(0));
        assert!(job.start.is_some());
    }

    #[test]
    fn state_round_trip_preserves_behavior() {
        let parsed = parse_collection(&logs());
        let records: usize = parsed.alps.len() + parsed.torque.len();
        for split in 0..=records {
            let mut whole = RunReconstructor::new();
            let mut first = RunReconstructor::new();
            let feed = |r: &mut RunReconstructor, lo: usize, hi: usize| {
                for (k, rec) in parsed.alps.iter().enumerate() {
                    if (lo..hi).contains(&k) {
                        r.push_alps(rec);
                    }
                }
                for (k, rec) in parsed.torque.iter().enumerate() {
                    if (lo..hi).contains(&(parsed.alps.len() + k)) {
                        r.push_torque(rec);
                    }
                }
            };
            feed(&mut whole, 0, records);
            feed(&mut first, 0, split);
            let json = serde_json::to_string(&first.state()).unwrap();
            let state: ReconstructorState = serde_json::from_str(&json).unwrap();
            let mut resumed = RunReconstructor::restore(state);
            feed(&mut resumed, split, records);
            let (runs_a, jobs_a, stats_a) = whole.finish();
            let (runs_b, jobs_b, stats_b) = resumed.finish();
            assert_eq!(runs_a, runs_b, "split at {split}");
            assert_eq!(stats_a, stats_b, "split at {split}");
            assert_eq!(jobs_a.len(), jobs_b.len(), "split at {split}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let parsed = parse_collection(&LogCollection::new());
        let (runs, jobs, stats) = reconstruct(&parsed);
        assert!(runs.is_empty());
        assert!(jobs.is_empty());
        assert_eq!(stats, WorkloadStats::default());
    }
}
