//! Stage 3: coalescing — spatial-temporal tupling of filtered entries into
//! error events.
//!
//! A single underlying problem produces many log entries (an MCE line, an
//! EDAC dump, a heartbeat declaration; a correctable-error flood; a link
//! failure plus the reroute bracket). Classic tupling groups entries that
//! are close in **time** (gap-based window) and **space** (same blade for
//! node-scoped entries; machine scope for fabric/filesystem entries), so
//! the attribution stage reasons about *events*, not lines.

use std::collections::HashMap;

use bw_topology::location::NODES_PER_BLADE;
use logdiver_types::category::ErrorScope;
use logdiver_types::{ErrorCategory, NodeId, Severity, SimDuration, Timestamp};
use serde::{Deserialize, Serialize};

use crate::filter::FilteredEntry;

/// A coalesced error event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorEvent {
    /// Dense event id (index in the event table).
    pub id: u32,
    /// First member entry's timestamp.
    pub start: Timestamp,
    /// Last member entry's timestamp.
    pub end: Timestamp,
    /// Distinct categories seen, in first-seen order.
    pub categories: Vec<ErrorCategory>,
    /// Maximum severity over members.
    pub severity: Severity,
    /// Distinct nodes involved (empty for machine-scope events).
    pub nodes: Vec<NodeId>,
    /// True for machine-scope events (fabric, filesystem).
    pub system_scope: bool,
    /// Member entries folded in.
    pub entry_count: u32,
}

impl ErrorEvent {
    /// True when any member category can kill an application by itself.
    pub fn is_lethal(&self) -> bool {
        self.categories.iter().any(|c| c.is_application_lethal())
    }

    /// The root-cause category of the event.
    ///
    /// A lethal event typically contains a specific cause (MCE, GPU DBE,
    /// kernel panic) *followed by* the generic heartbeat declaration the
    /// health sweep adds when it finds the corpse. Root-cause preference:
    /// the earliest-seen lethal category that is not the generic
    /// declaration, then the earliest lethal one, then severity.
    pub fn dominant_category(&self) -> ErrorCategory {
        let generic = ErrorCategory::NodeHeartbeatFault;
        self.categories
            .iter()
            .copied()
            .find(|c| c.is_application_lethal() && *c != generic)
            .or_else(|| {
                self.categories
                    .iter()
                    .copied()
                    .find(|c| c.is_application_lethal())
            })
            .or_else(|| self.categories.iter().copied().max_by_key(|c| c.severity()))
            // Events absorb at least one entry, so the category list is
            // never empty; the Info-severity maintenance notice is the
            // inert fallback the type demands instead of a panic path.
            .unwrap_or(ErrorCategory::MaintenanceNotice)
    }

    /// Event duration.
    pub fn span(&self) -> SimDuration {
        self.end - self.start
    }

    fn absorb(&mut self, e: &FilteredEntry) {
        self.end = self.end.max(e.timestamp);
        self.severity = self.severity.max(e.severity);
        if !self.categories.contains(&e.category) {
            self.categories.push(e.category);
        }
        if let Some(n) = e.node {
            if !self.nodes.contains(&n) {
                self.nodes.push(n);
            }
        }
        self.entry_count += 1;
    }
}

/// Spatial grouping key.
///
/// Public only so a [`Coalescer`]'s open state can be externalized with
/// [`Coalescer::state`] and rebuilt with [`Coalescer::restore`] — e.g. by
/// the streaming engine's checkpoint machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GroupKey {
    /// Machine-scope stream (fabric, filesystem, reroutes).
    System,
    /// Blade-scoped stream.
    Blade(u32),
    /// Launcher complaints: per-application point events. They must never
    /// chain with (or extend) fabric/filesystem events — on a busy machine
    /// launch errors arrive every few minutes, and letting them bridge the
    /// gap would weld the whole machine-scope stream into one giant event.
    Launcher,
}

fn key_of(e: &FilteredEntry) -> GroupKey {
    if e.category == ErrorCategory::AlpsLaunchFailure {
        return GroupKey::Launcher;
    }
    let system = e.category.scope() == ErrorScope::System || e.node.is_none();
    match (system, e.node) {
        (false, Some(n)) => GroupKey::Blade(n.value() / NODES_PER_BLADE),
        _ => GroupKey::System,
    }
}

/// Hard ceiling on one event's span: even a steady drizzle of related
/// entries (each within the gap of the last) is cut after 30 minutes, the
/// classic truncated-tupling rule that keeps events attributable.
pub const MAX_EVENT_SPAN: SimDuration = SimDuration::from_secs(1_800);

/// Incremental tupling: entries go in one at a time (non-decreasing
/// timestamps), events come out as they become final.
///
/// This is the single coalescing implementation; the batch [`coalesce`]
/// drives it in one shot, the streaming engine feeds it record by record
/// and harvests closed events on every watermark advance. An open event
/// closes once no future entry at or after the watermark could absorb it —
/// its gap has lapsed or its span ceiling is reached.
///
/// Coalescing is **idempotent under exact duplicates**: a replayed record
/// (identical timestamp, category, severity, node and source — the shape a
/// syslog relay reconnect or an adversarial replay produces) folds into
/// the event at most once, and the collapse count is reported via
/// [`Coalescer::duplicates`]. The dedup window is one timestamp per
/// spatial group, which is exactly where a replay can land: duplicates
/// share their original's timestamp by construction.
#[derive(Debug)]
pub struct Coalescer {
    gap: SimDuration,
    open: HashMap<GroupKey, ErrorEvent>,
    closed: Vec<ErrorEvent>,
    next_id: u32,
    /// Distinct entries already absorbed at each group's newest timestamp
    /// (order-insensitive, so both pipeline drivers dedup identically
    /// regardless of how ties were sequenced).
    seen: HashMap<GroupKey, SeenSlot>,
    duplicates: u64,
}

/// The distinct entries one group has absorbed at its newest timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SeenSlot {
    at: Timestamp,
    entries: Vec<FilteredEntry>,
}

impl Coalescer {
    /// Creates a coalescer with the given chaining gap.
    pub fn new(gap: SimDuration) -> Self {
        Coalescer {
            gap,
            open: HashMap::new(),
            closed: Vec::new(),
            next_id: 0,
            seen: HashMap::new(),
            duplicates: 0,
        }
    }

    /// Exact-duplicate entries collapsed so far (see [`Coalescer::push`]).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Feeds one entry. Entries must arrive in non-decreasing timestamp
    /// order (the batch driver sorts; the streaming engine's reorder buffer
    /// guarantees it). An entry identical to one already absorbed at the
    /// same timestamp in the same spatial group is a replay: it is counted
    /// and dropped, never double-absorbed.
    pub fn push(&mut self, e: &FilteredEntry) {
        let key = key_of(e);
        match self.seen.get_mut(&key) {
            Some(slot) if slot.at == e.timestamp => {
                if slot.entries.contains(e) {
                    self.duplicates += 1;
                    return;
                }
                slot.entries.push(*e);
            }
            Some(slot) => {
                *slot = SeenSlot {
                    at: e.timestamp,
                    entries: vec![*e],
                };
            }
            None => {
                self.seen.insert(
                    key,
                    SeenSlot {
                        at: e.timestamp,
                        entries: vec![*e],
                    },
                );
            }
        }
        match self.open.get_mut(&key) {
            Some(ev)
                if e.timestamp - ev.end <= self.gap && e.timestamp - ev.start <= MAX_EVENT_SPAN =>
            {
                ev.absorb(e);
            }
            slot => {
                let fresh = ErrorEvent {
                    id: self.next_id,
                    start: e.timestamp,
                    end: e.timestamp,
                    categories: vec![e.category],
                    severity: e.severity,
                    nodes: e.node.into_iter().collect(),
                    system_scope: key == GroupKey::System,
                    entry_count: 1,
                };
                self.next_id += 1;
                match slot {
                    Some(ev) => self.closed.push(std::mem::replace(ev, fresh)),
                    None => {
                        self.open.insert(key, fresh);
                    }
                }
            }
        }
    }

    /// Closes every open event that no entry at or after `watermark` could
    /// still absorb, and drains all events closed so far.
    pub fn take_closed(&mut self, watermark: Timestamp) -> Vec<ErrorEvent> {
        let gap = self.gap;
        let mut newly_closed: Vec<ErrorEvent> = Vec::new();
        self.open.retain(|_, ev| {
            let still_open = watermark - ev.end <= gap && watermark - ev.start <= MAX_EVENT_SPAN;
            if !still_open {
                newly_closed.push(ev.clone());
            }
            still_open
        });
        self.closed.append(&mut newly_closed);
        // A replay always carries its original's timestamp, so once a
        // group's event is closed (its end is a full gap behind the
        // watermark and later input is at/after the watermark) its dedup
        // slot can never match again — drop it to keep state bounded.
        let open = &self.open;
        self.seen.retain(|k, _| open.contains_key(k));
        std::mem::take(&mut self.closed)
    }

    /// Number of events still open.
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// Closes everything and returns all not-yet-taken events in id
    /// (creation) order.
    pub fn finish(mut self) -> Vec<ErrorEvent> {
        self.closed.extend(self.open.into_values());
        self.closed.sort_by_key(|e| e.id);
        self.closed
    }

    /// Externalizes the open state (serializable, deterministic ordering)
    /// so a crashed driver can rebuild an equivalent coalescer with
    /// [`Coalescer::restore`].
    pub fn state(&self) -> CoalescerState {
        let mut open: Vec<(GroupKey, ErrorEvent)> =
            self.open.iter().map(|(k, v)| (*k, v.clone())).collect();
        open.sort_by_key(|(k, _)| *k);
        let mut seen: Vec<(GroupKey, SeenSlot)> =
            self.seen.iter().map(|(k, v)| (*k, v.clone())).collect();
        seen.sort_by_key(|(k, _)| *k);
        CoalescerState {
            open,
            closed: self.closed.clone(),
            next_id: self.next_id,
            seen,
            duplicates: self.duplicates,
        }
    }

    /// Rebuilds a coalescer from externalized state. With the same `gap`
    /// the restored coalescer behaves identically to the original on any
    /// further input.
    pub fn restore(gap: SimDuration, state: CoalescerState) -> Self {
        Coalescer {
            gap,
            open: state.open.into_iter().collect(),
            closed: state.closed,
            next_id: state.next_id,
            seen: state.seen.into_iter().collect(),
            duplicates: state.duplicates,
        }
    }
}

/// Serializable open state of a [`Coalescer`] (see [`Coalescer::state`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoalescerState {
    /// Open events by spatial group, sorted by key for determinism.
    open: Vec<(GroupKey, ErrorEvent)>,
    /// Events closed but not yet taken.
    closed: Vec<ErrorEvent>,
    /// Next event id to assign.
    next_id: u32,
    /// Per-group dedup slots, sorted by key for determinism.
    seen: Vec<(GroupKey, SeenSlot)>,
    /// Exact duplicates collapsed so far.
    duplicates: u64,
}

/// Coalesces time-sorted filtered entries with the given gap.
///
/// Every *distinct* input entry lands in exactly one event (exact
/// duplicates collapse — see [`Coalescer::push`]); events of one spatial
/// group never overlap (closing happens when the gap is exceeded), and no
/// event spans more than [`MAX_EVENT_SPAN`].
pub fn coalesce(entries: &[FilteredEntry], gap: SimDuration) -> Vec<ErrorEvent> {
    debug_assert!(entries.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    let mut coalescer = Coalescer::new(gap);
    for e in entries {
        coalescer.push(e);
    }
    coalescer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::EntrySource;
    use proptest::prelude::*;

    fn entry(secs: i64, cat: ErrorCategory, node: Option<u32>) -> FilteredEntry {
        FilteredEntry {
            timestamp: Timestamp::PRODUCTION_EPOCH + SimDuration::from_secs(secs),
            category: cat,
            severity: cat.severity(),
            node: node.map(NodeId::new),
            source: EntrySource::Syslog,
        }
    }

    #[test]
    fn burst_on_one_node_becomes_one_event() {
        let entries: Vec<_> = (0..10)
            .map(|i| entry(i * 10, ErrorCategory::MemoryCorrectable, Some(8)))
            .collect();
        let events = coalesce(&entries, SimDuration::from_secs(60));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].entry_count, 10);
        assert_eq!(events[0].span(), SimDuration::from_secs(90));
        assert!(!events[0].is_lethal());
    }

    #[test]
    fn gap_splits_events() {
        let entries = vec![
            entry(0, ErrorCategory::MemoryCorrectable, Some(8)),
            entry(30, ErrorCategory::MemoryCorrectable, Some(8)),
            entry(500, ErrorCategory::MemoryCorrectable, Some(8)),
        ];
        let events = coalesce(&entries, SimDuration::from_secs(60));
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].entry_count, 2);
        assert_eq!(events[1].entry_count, 1);
    }

    #[test]
    fn blade_groups_nodes_together_but_not_across() {
        // nids 8..11 share blade 2; nid 12 is blade 3.
        let entries = vec![
            entry(0, ErrorCategory::MachineCheckException, Some(8)),
            entry(5, ErrorCategory::NodeHeartbeatFault, Some(9)),
            entry(6, ErrorCategory::MachineCheckException, Some(12)),
        ];
        let events = coalesce(&entries, SimDuration::from_secs(60));
        assert_eq!(events.len(), 2);
        let blade2 = events
            .iter()
            .find(|e| e.nodes.contains(&NodeId::new(8)))
            .unwrap();
        assert_eq!(blade2.entry_count, 2);
        assert_eq!(blade2.categories.len(), 2);
        assert!(blade2.is_lethal());
        assert_eq!(blade2.severity, Severity::Fatal);
    }

    #[test]
    fn system_scope_categories_merge_machine_wide() {
        let entries = vec![
            entry(0, ErrorCategory::GeminiLinkFailure, None),
            entry(3, ErrorCategory::GeminiRouteReconfig, None),
            entry(45, ErrorCategory::GeminiRouteReconfig, None),
        ];
        let events = coalesce(&entries, SimDuration::from_secs(300));
        assert_eq!(events.len(), 1);
        assert!(events[0].system_scope);
        assert!(events[0].is_lethal());
        assert_eq!(
            events[0].dominant_category(),
            ErrorCategory::GeminiLinkFailure
        );
    }

    #[test]
    fn launcher_entries_never_bridge_system_events() {
        // Launch errors every 2 min would otherwise chain reroutes (20 min
        // apart) into one mega event.
        let mut entries = Vec::new();
        for k in 0..20 {
            entries.push(entry(k * 120, ErrorCategory::AlpsLaunchFailure, None));
        }
        entries.push(entry(5, ErrorCategory::GeminiRouteReconfig, None));
        entries.push(entry(1_500, ErrorCategory::GeminiRouteReconfig, None));
        entries.sort_by_key(|e| e.timestamp);
        let events = coalesce(&entries, SimDuration::from_secs(300));
        let system: Vec<&ErrorEvent> = events
            .iter()
            .filter(|e| e.categories.contains(&ErrorCategory::GeminiRouteReconfig))
            .collect();
        assert_eq!(system.len(), 2, "reroutes must stay separate events");
        for ev in system {
            assert!(!ev.categories.contains(&ErrorCategory::AlpsLaunchFailure));
        }
    }

    #[test]
    fn max_span_truncates_steady_drizzle() {
        // Entries every 200 s for 2 hours: the gap never closes the event,
        // the span ceiling must.
        let entries: Vec<_> = (0..36)
            .map(|k| entry(k * 200, ErrorCategory::MemoryCorrectable, Some(8)))
            .collect();
        let events = coalesce(&entries, SimDuration::from_secs(300));
        assert!(
            events.len() >= 3,
            "expected truncation, got {} events",
            events.len()
        );
        for ev in &events {
            assert!(ev.span() <= MAX_EVENT_SPAN);
        }
        let total: u32 = events.iter().map(|e| e.entry_count).sum();
        assert_eq!(total as usize, entries.len());
    }

    #[test]
    fn node_scoped_link_entry_groups_by_blade() {
        // A GeminiLinkFailure reported *by a node* still groups on the blade
        // (scope Blade), while the netwatch one (node=None) is system-wide.
        let entries = vec![
            entry(0, ErrorCategory::MachineCheckException, Some(4)),
            entry(1, ErrorCategory::GeminiRouteReconfig, None),
        ];
        let events = coalesce(&entries, SimDuration::from_secs(300));
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn state_round_trip_preserves_behavior() {
        let entries: Vec<_> = (0..40)
            .map(|k| {
                entry(
                    k * 70,
                    ErrorCategory::MemoryCorrectable,
                    Some((k as u32 % 8) * 4),
                )
            })
            .collect();
        let gap = SimDuration::from_secs(120);
        for split in [0usize, 1, 7, 20, 39, 40] {
            let mut whole = Coalescer::new(gap);
            let mut first = Coalescer::new(gap);
            for e in &entries[..split] {
                whole.push(e);
                first.push(e);
            }
            // Serialize mid-stream, rebuild, and continue on the copy.
            let json = serde_json::to_string(&first.state()).unwrap();
            let state: CoalescerState = serde_json::from_str(&json).unwrap();
            let mut resumed = Coalescer::restore(gap, state);
            for e in &entries[split..] {
                whole.push(e);
                resumed.push(e);
            }
            assert_eq!(resumed.finish(), whole.finish(), "split at {split}");
        }
    }

    #[test]
    fn exact_duplicate_replay_is_collapsed() {
        // A syslog relay reconnect replays two lines; the event must count
        // each underlying entry once and report the collapse.
        let a = entry(0, ErrorCategory::MachineCheckException, Some(8));
        let b = entry(40, ErrorCategory::NodeHeartbeatFault, Some(9));
        let mut co = Coalescer::new(SimDuration::from_secs(60));
        for e in [&a, &a, &b, &b, &b] {
            co.push(e);
        }
        assert_eq!(co.duplicates(), 3);
        let events = co.finish();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].entry_count, 2, "duplicates must not inflate");
        assert_eq!(events[0].categories.len(), 2);
    }

    #[test]
    fn duplicate_replay_is_idempotent() {
        // Replaying every entry once yields byte-identical events.
        let entries: Vec<_> = (0..30)
            .map(|k| {
                entry(
                    k * 37,
                    ErrorCategory::MemoryUncorrectable,
                    Some((k as u32 % 4) * 4),
                )
            })
            .collect();
        let gap = SimDuration::from_secs(120);
        let clean = coalesce(&entries, gap);
        let mut replayed = Vec::new();
        for e in &entries {
            replayed.push(*e);
            replayed.push(*e);
        }
        let doubled = coalesce(&replayed, gap);
        assert_eq!(doubled, clean);
    }

    #[test]
    fn distinct_same_second_entries_are_not_deduped() {
        // Two *different* categories on one blade in the same second are
        // genuinely distinct records, not a replay.
        let entries = vec![
            entry(0, ErrorCategory::MachineCheckException, Some(8)),
            entry(0, ErrorCategory::NodeHeartbeatFault, Some(8)),
        ];
        let mut co = Coalescer::new(SimDuration::from_secs(60));
        for e in &entries {
            co.push(e);
        }
        assert_eq!(co.duplicates(), 0);
        let events = co.finish();
        assert_eq!(events[0].entry_count, 2);
    }

    #[test]
    fn dedup_state_survives_round_trip() {
        // Checkpoint between an entry and its replay: the resumed
        // coalescer must still recognize the duplicate.
        let a = entry(0, ErrorCategory::MachineCheckException, Some(8));
        let mut co = Coalescer::new(SimDuration::from_secs(60));
        co.push(&a);
        let json = serde_json::to_string(&co.state()).unwrap();
        let state: CoalescerState = serde_json::from_str(&json).unwrap();
        let mut resumed = Coalescer::restore(SimDuration::from_secs(60), state);
        resumed.push(&a);
        assert_eq!(resumed.duplicates(), 1);
        let events = resumed.finish();
        assert_eq!(events[0].entry_count, 1);
    }

    proptest! {
        #[test]
        fn every_entry_lands_in_exactly_one_event(
            mut times in proptest::collection::vec(0i64..5_000, 1..120),
            gap in 10i64..600,
        ) {
            times.sort_unstable();
            let entries: Vec<_> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| entry(t, ErrorCategory::MemoryUncorrectable, Some((i as u32 % 16) * 4)))
                .collect();
            let events = coalesce(&entries, SimDuration::from_secs(gap));
            let total: u32 = events.iter().map(|e| e.entry_count).sum();
            // Same blade + same second + same category means the generator
            // produced an exact duplicate, which the coalescer collapses.
            let distinct: std::collections::HashSet<_> = entries
                .iter()
                .map(|e| (e.timestamp, e.node))
                .collect();
            prop_assert_eq!(total as usize, distinct.len());
            for e in &events {
                prop_assert!(e.start <= e.end);
                prop_assert!(!e.categories.is_empty());
            }
            // Events in one blade group do not overlap and are gap-separated.
            use std::collections::HashMap;
            let mut by_first_node: HashMap<u32, Vec<&ErrorEvent>> = HashMap::new();
            for e in &events {
                if let Some(n) = e.nodes.first() {
                    by_first_node.entry(n.value() / 4).or_default().push(e);
                }
            }
            for group in by_first_node.values() {
                for w in group.windows(2) {
                    prop_assert!(w[1].start - w[0].end > SimDuration::from_secs(gap));
                }
            }
        }
    }
}
