//! Per-user workload and failure analysis.
//!
//! Production machines concentrate both load and trouble: a handful of
//! projects drive most submissions, and user-caused failures cluster on
//! specific codes/teams. This stage ranks users by volume and failure
//! behaviour — the per-community view field studies use to separate "the
//! machine is unreliable" from "this workflow crashes a lot".

use std::collections::HashMap;

use logdiver_types::{ExitClass, UserId};
use serde::{Deserialize, Serialize};

use crate::classify::ClassifiedRun;

/// One user's aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserRow {
    /// The user.
    pub user: UserId,
    /// Application runs submitted.
    pub runs: u64,
    /// Node-hours consumed.
    pub node_hours: f64,
    /// Runs that failed for user-attributable reasons.
    pub user_failures: u64,
    /// Runs killed by the system.
    pub system_failures: u64,
}

impl UserRow {
    /// User-caused failure rate.
    pub fn user_failure_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.user_failures as f64 / self.runs as f64
        }
    }
}

/// The per-user report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserReport {
    /// Rows sorted by run count, descending.
    pub rows: Vec<UserRow>,
    /// Total runs (denominator for concentration).
    pub total_runs: u64,
}

impl UserReport {
    /// Distinct users seen.
    pub fn distinct_users(&self) -> usize {
        self.rows.len()
    }

    /// Share of all runs submitted by the busiest `k` users.
    pub fn top_k_share(&self, k: usize) -> f64 {
        if self.total_runs == 0 {
            return 0.0;
        }
        let top: u64 = self.rows.iter().take(k).map(|r| r.runs).sum();
        top as f64 / self.total_runs as f64
    }

    /// The spread of user-failure rates among users with ≥ `min_runs`:
    /// `(p10, median, p90)` — wide spread = failure proneness is a property
    /// of workflows, not of the machine.
    pub fn failure_rate_spread(&self, min_runs: u64) -> Option<(f64, f64, f64)> {
        let mut rates: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.runs >= min_runs)
            .map(UserRow::user_failure_rate)
            .collect();
        if rates.len() < 5 {
            return None;
        }
        rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        let at = |p: f64| rates[((p * rates.len() as f64) as usize).min(rates.len() - 1)];
        Some((at(0.1), at(0.5), at(0.9)))
    }
}

/// Builds the per-user report.
pub fn analyze_users(runs: &[ClassifiedRun]) -> UserReport {
    let mut map: HashMap<u32, UserRow> = HashMap::new();
    for r in runs {
        let row = map.entry(r.run.user.value()).or_insert(UserRow {
            user: r.run.user,
            runs: 0,
            node_hours: 0.0,
            user_failures: 0,
            system_failures: 0,
        });
        row.runs += 1;
        row.node_hours += r.run.node_hours();
        match r.class {
            ExitClass::UserFailure(_) | ExitClass::WalltimeExceeded => row.user_failures += 1,
            ExitClass::SystemFailure(_) => row.system_failures += 1,
            _ => {}
        }
    }
    let mut rows: Vec<UserRow> = map.into_values().collect();
    rows.sort_by(|a, b| b.runs.cmp(&a.runs).then(a.user.cmp(&b.user)));
    UserReport {
        total_runs: runs.len() as u64,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::RangeSet;
    use crate::workload::{AppRun, Termination};
    use logdiver_types::{
        AppId, ExitStatus, FailureCause, JobId, NodeSet, NodeType, SimDuration, Timestamp,
        UserFailureKind,
    };

    fn run_for(apid: u64, user: u32, class: ExitClass) -> ClassifiedRun {
        ClassifiedRun {
            run: AppRun {
                apid: AppId::new(apid),
                job: JobId::new(apid),
                user: UserId::new(user),
                node_type: NodeType::Xe,
                width: 2,
                nodes: RangeSet::from_node_set(&NodeSet::new()),
                start: Timestamp::PRODUCTION_EPOCH,
                end: Timestamp::PRODUCTION_EPOCH + SimDuration::from_hours(1),
                termination: Termination::Exited(ExitStatus::SUCCESS),
            },
            class,
            matched_events: Vec::new(),
            confidence: crate::classify::AttributionConfidence::Full,
        }
    }

    #[test]
    fn rows_aggregate_per_user() {
        let runs = vec![
            run_for(1, 0, ExitClass::Success),
            run_for(2, 0, ExitClass::UserFailure(UserFailureKind::Segfault)),
            run_for(3, 0, ExitClass::SystemFailure(FailureCause::Memory)),
            run_for(4, 1, ExitClass::Success),
        ];
        let report = analyze_users(&runs);
        assert_eq!(report.distinct_users(), 2);
        assert_eq!(report.rows[0].user, UserId::new(0), "busiest first");
        assert_eq!(report.rows[0].runs, 3);
        assert_eq!(report.rows[0].user_failures, 1);
        assert_eq!(report.rows[0].system_failures, 1);
        assert!((report.rows[0].node_hours - 6.0).abs() < 1e-9);
        assert!((report.rows[0].user_failure_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_share_measures_concentration() {
        let mut runs = Vec::new();
        for i in 0..90 {
            runs.push(run_for(i, 0, ExitClass::Success)); // one dominant user
        }
        for i in 90..100 {
            runs.push(run_for(i, (i - 89) as u32, ExitClass::Success));
        }
        let report = analyze_users(&runs);
        assert!((report.top_k_share(1) - 0.9).abs() < 1e-12);
        assert!((report.top_k_share(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spread_requires_enough_users() {
        let runs = vec![run_for(1, 0, ExitClass::Success)];
        assert!(analyze_users(&runs).failure_rate_spread(1).is_none());
    }

    #[test]
    fn spread_is_ordered() {
        let mut runs = Vec::new();
        let mut apid = 0;
        for user in 0..20u32 {
            for k in 0..10 {
                apid += 1;
                let class = if k < user % 10 {
                    ExitClass::UserFailure(UserFailureKind::Abort)
                } else {
                    ExitClass::Success
                };
                runs.push(run_for(apid, user, class));
            }
        }
        let (p10, p50, p90) = analyze_users(&runs).failure_rate_spread(5).unwrap();
        assert!(p10 <= p50 && p50 <= p90);
        assert!(p90 > p10, "constructed spread must be visible");
    }

    #[test]
    fn empty_input() {
        let report = analyze_users(&[]);
        assert_eq!(report.distinct_users(), 0);
        assert_eq!(report.top_k_share(5), 0.0);
    }
}
