//! Stage 6: exit-status classification.
//!
//! The decision tree combines three information sources: the ALPS exit
//! record (code/signal/node-failed flag), the job's requested walltime from
//! Torque, and the matched error events. Precedence, mirroring the field
//! methodology:
//!
//! 1. launcher failure → system (launcher);
//! 2. clean exit → success;
//! 3. SIGTERM at ≈ the walltime limit → walltime exceeded;
//! 4. launcher saw a node die → system (cause from the best matched
//!    node-scoped lethal event; *undetermined* when nothing in the logs
//!    explains it — the signature of the hybrid-node detection gap);
//! 5. matched node-scoped lethal event on the run's nodes → system;
//! 6. SIGKILL/SIGBUS death overlapping a machine-scope lethal event →
//!    system (quiesce and I/O-error kills arrive as 9/7; a SIGSEGV that
//!    merely coincides with a reroute stays a user failure);
//! 7. otherwise: classify by signal/exit code as a user failure;
//! 8. anything left (including runs with no termination record) → unknown.

use std::collections::HashMap;

use logdiver_types::{ExitClass, ExitStatus, FailureCause, UserFailureKind};
use serde::{Deserialize, Serialize};

use crate::coalesce::ErrorEvent;
use crate::config::LogDiverConfig;
use crate::matcher::{EventLookup, MatchIndex};
use crate::workload::{AppRun, JobInfo, Termination};

/// How much log evidence stood behind a verdict.
///
/// The decision tree always emits [`AttributionConfidence::Full`]; the
/// coverage post-pass ([`crate::coverage::qualify_runs`]) downgrades
/// absence-of-evidence verdicts whose attribution window overlaps a
/// detected per-source outage — a qualified answer instead of a silently
/// wrong one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AttributionConfidence {
    /// Every entry source was demonstrably producing around the death.
    #[default]
    Full,
    /// The attribution window overlaps a source-coverage gap: evidence
    /// that would change the verdict may never have been recorded.
    Degraded,
}

impl AttributionConfidence {
    /// True for [`AttributionConfidence::Degraded`].
    pub fn is_degraded(self) -> bool {
        self == AttributionConfidence::Degraded
    }
}

/// A run together with LogDiver's verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifiedRun {
    /// The reconstructed run.
    pub run: AppRun,
    /// The verdict.
    pub class: ExitClass,
    /// Ids of error events attributed to the death (empty for clean runs).
    pub matched_events: Vec<u32>,
    /// Evidence qualifier for the verdict.
    pub confidence: AttributionConfidence,
}

fn cause_of(event: &ErrorEvent) -> FailureCause {
    FailureCause::from(event.dominant_category().subsystem())
}

/// Causality filter. Node-scoped events already passed the matcher's death
/// window. Machine-scope events get a stricter check: the death must fall
/// *inside* the event (small slack for clock skew and teardown latency) —
/// a quiesce that started after an application died cannot have killed it.
fn plausibly_causal(ev: &ErrorEvent, death: logdiver_types::Timestamp) -> bool {
    use logdiver_types::SimDuration;
    if !ev.system_scope {
        return true;
    }
    death + SimDuration::from_secs(30) >= ev.start && death <= ev.end + SimDuration::from_secs(45)
}

/// Launcher-failure chatter names a *specific* apid; it never explains a
/// different application's death (that run has its own LAUNCHERR record).
fn explains_other_deaths(ev: &ErrorEvent) -> bool {
    ev.dominant_category() != logdiver_types::ErrorCategory::AlpsLaunchFailure
}

/// Picks the best explanatory event: lethal and causal, preferring
/// node-scoped over machine-scope, then higher severity.
fn best_cause<I: EventLookup + ?Sized>(
    index: &I,
    matched: &[u32],
    death: logdiver_types::Timestamp,
) -> Option<(bool, FailureCause)> {
    let mut best: Option<(&ErrorEvent, bool)> = None;
    for &id in matched {
        let Some(ev) = index.by_id(id) else { continue };
        if !ev.is_lethal() || !explains_other_deaths(ev) || !plausibly_causal(ev, death) {
            continue;
        }
        let node_scoped = !ev.system_scope;
        let better = match best {
            None => true,
            Some((cur, cur_node)) => (node_scoped, ev.severity) > (cur_node, cur.severity),
        };
        if better {
            best = Some((ev, node_scoped));
        }
    }
    best.map(|(ev, node_scoped)| (node_scoped, cause_of(ev)))
}

fn user_kind(exit: ExitStatus) -> Option<UserFailureKind> {
    match exit.signal {
        Some(11) | Some(7) => Some(UserFailureKind::Segfault),
        Some(6) => Some(UserFailureKind::Abort),
        Some(9) => Some(UserFailureKind::OutOfMemory),
        Some(15) => Some(UserFailureKind::Cancelled),
        Some(_) => Some(UserFailureKind::Abort),
        None if exit.code != 0 => Some(UserFailureKind::NonzeroExit),
        None => None,
    }
}

/// Classifies every run.
pub fn classify_runs(
    runs: Vec<AppRun>,
    jobs: &HashMap<u64, JobInfo>,
    index: &MatchIndex,
    config: &LogDiverConfig,
) -> Vec<ClassifiedRun> {
    classify_runs_threads(runs, jobs, index, config, 1)
}

/// Classifies every run across `threads` workers.
///
/// [`classify_one`] is a pure function of `(run, jobs, index, config)` and
/// the index is read-only after construction, so runs classify in parallel;
/// [`crate::exec::par_map`] returns verdicts in input order, which keeps
/// the output identical to the serial path.
pub fn classify_runs_threads(
    runs: Vec<AppRun>,
    jobs: &HashMap<u64, JobInfo>,
    index: &MatchIndex,
    config: &LogDiverConfig,
    threads: usize,
) -> Vec<ClassifiedRun> {
    crate::exec::par_map(threads, runs, |run| classify_one(run, jobs, index, config))
}

/// Classifies one run against any event table. The streaming engine calls
/// this as soon as a run becomes finalizable; the batch path calls it for
/// every run at once — one decision tree, two drivers.
pub fn classify_one<I: EventLookup + ?Sized>(
    run: AppRun,
    jobs: &HashMap<u64, JobInfo>,
    index: &I,
    config: &LogDiverConfig,
) -> ClassifiedRun {
    let exit = match run.termination {
        Termination::LaunchFailed => {
            return ClassifiedRun {
                run,
                class: ExitClass::SystemFailure(FailureCause::Launcher),
                matched_events: Vec::new(),
                confidence: AttributionConfidence::Full,
            };
        }
        Termination::Missing => {
            return ClassifiedRun {
                run,
                class: ExitClass::Unknown,
                matched_events: Vec::new(),
                confidence: AttributionConfidence::Full,
            };
        }
        Termination::Exited(exit) => exit,
    };

    if exit.is_clean() {
        return ClassifiedRun {
            run,
            class: ExitClass::Success,
            matched_events: Vec::new(),
            confidence: AttributionConfidence::Full,
        };
    }

    // Walltime: SIGTERM with the job at (or past) its requested limit.
    if exit.signal == Some(15) && !exit.node_failed {
        if let Some(job) = jobs.get(&run.job.value()) {
            if let Some(job_start) = job.start {
                let limit = job_start + job.walltime;
                if run.end + config.walltime_tolerance >= limit {
                    return ClassifiedRun {
                        run,
                        class: ExitClass::WalltimeExceeded,
                        matched_events: Vec::new(),
                        confidence: AttributionConfidence::Full,
                    };
                }
            }
        }
    }

    let matched = index.matches_for(
        run.end,
        &run.nodes,
        config.attribution_lead,
        config.attribution_lag,
    );
    let explanation = best_cause(index, &matched, run.end);

    let class = if exit.node_failed {
        match explanation {
            Some((true, cause)) => ExitClass::SystemFailure(cause),
            // A node died under the run but nothing in the error logs says
            // why — the detection-gap bucket.
            _ => ExitClass::SystemFailure(FailureCause::Undetermined),
        }
    } else {
        match explanation {
            Some((true, cause)) => ExitClass::SystemFailure(cause),
            // Machine-scope events explain SIGKILL/SIGBUS deaths only: an
            // application that segfaults or exits nonzero during a reroute
            // died of its own bug.
            Some((false, cause)) if matches!(exit.signal, Some(9) | Some(7)) => {
                ExitClass::SystemFailure(cause)
            }
            _ => match user_kind(exit) {
                Some(kind) => ExitClass::UserFailure(kind),
                None => ExitClass::Unknown,
            },
        }
    };
    ClassifiedRun {
        run,
        class,
        matched_events: matched,
        confidence: AttributionConfidence::Full,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::RangeSet;
    use logdiver_types::{
        AppId, ErrorCategory, JobId, NodeId, NodeSet, NodeType, Severity, SimDuration, Timestamp,
        UserId,
    };

    fn t(secs: i64) -> Timestamp {
        Timestamp::PRODUCTION_EPOCH + SimDuration::from_secs(secs)
    }

    fn run(termination: Termination, end_secs: i64, nodes: &[u32]) -> AppRun {
        let set: NodeSet = nodes.iter().copied().map(NodeId::new).collect();
        AppRun {
            apid: AppId::new(1),
            job: JobId::new(10),
            user: UserId::new(0),
            node_type: NodeType::Xe,
            width: nodes.len() as u32,
            nodes: RangeSet::from_node_set(&set),
            start: t(0),
            end: t(end_secs),
            termination,
        }
    }

    fn event(
        id: u32,
        start: i64,
        end: i64,
        nodes: &[u32],
        system: bool,
        cat: ErrorCategory,
    ) -> ErrorEvent {
        ErrorEvent {
            id,
            start: t(start),
            end: t(end),
            categories: vec![cat],
            severity: cat.severity(),
            nodes: nodes.iter().copied().map(NodeId::new).collect(),
            system_scope: system,
            entry_count: 1,
        }
    }

    fn classify(
        run: AppRun,
        events: Vec<ErrorEvent>,
        jobs: &HashMap<u64, JobInfo>,
    ) -> ClassifiedRun {
        let index = MatchIndex::new(events);
        classify_one(run, jobs, &index, &LogDiverConfig::default())
    }

    #[test]
    fn launch_failures_are_launcher_caused() {
        let c = classify(
            run(Termination::LaunchFailed, 3, &[0]),
            vec![],
            &HashMap::new(),
        );
        assert_eq!(c.class, ExitClass::SystemFailure(FailureCause::Launcher));
    }

    #[test]
    fn clean_exit_is_success() {
        let c = classify(
            run(Termination::Exited(ExitStatus::SUCCESS), 3_600, &[0]),
            vec![],
            &HashMap::new(),
        );
        assert_eq!(c.class, ExitClass::Success);
    }

    #[test]
    fn missing_termination_is_unknown() {
        let c = classify(run(Termination::Missing, 0, &[0]), vec![], &HashMap::new());
        assert_eq!(c.class, ExitClass::Unknown);
    }

    #[test]
    fn sigterm_at_limit_is_walltime() {
        let mut jobs = HashMap::new();
        jobs.insert(
            10,
            JobInfo {
                walltime: SimDuration::from_secs(3_600),
                start: Some(t(0)),
                exit_status: None,
            },
        );
        let c = classify(
            run(
                Termination::Exited(ExitStatus::with_signal(15)),
                3_600,
                &[0],
            ),
            vec![],
            &jobs,
        );
        assert_eq!(c.class, ExitClass::WalltimeExceeded);
    }

    #[test]
    fn sigterm_early_is_cancellation() {
        let mut jobs = HashMap::new();
        jobs.insert(
            10,
            JobInfo {
                walltime: SimDuration::from_secs(36_000),
                start: Some(t(0)),
                exit_status: None,
            },
        );
        let c = classify(
            run(Termination::Exited(ExitStatus::with_signal(15)), 600, &[0]),
            vec![],
            &jobs,
        );
        assert_eq!(c.class, ExitClass::UserFailure(UserFailureKind::Cancelled));
    }

    #[test]
    fn node_failed_with_evidence_gets_the_cause() {
        let ev = event(
            0,
            3_590,
            3_625,
            &[0],
            false,
            ErrorCategory::MemoryUncorrectable,
        );
        let c = classify(
            run(
                Termination::Exited(ExitStatus::with_signal(9).and_node_failed()),
                3_600,
                &[0, 1],
            ),
            vec![ev],
            &HashMap::new(),
        );
        assert_eq!(c.class, ExitClass::SystemFailure(FailureCause::Memory));
        assert_eq!(c.matched_events, vec![0]);
    }

    #[test]
    fn node_failed_without_evidence_is_undetermined() {
        let c = classify(
            run(
                Termination::Exited(ExitStatus::with_signal(9).and_node_failed()),
                3_600,
                &[0, 1],
            ),
            vec![],
            &HashMap::new(),
        );
        assert_eq!(
            c.class,
            ExitClass::SystemFailure(FailureCause::Undetermined)
        );
    }

    #[test]
    fn signal_death_near_wide_event_is_system() {
        let ev = event(0, 3_580, 3_640, &[], true, ErrorCategory::GeminiLinkFailure);
        let c = classify(
            run(Termination::Exited(ExitStatus::with_signal(9)), 3_600, &[0]),
            vec![ev],
            &HashMap::new(),
        );
        assert_eq!(
            c.class,
            ExitClass::SystemFailure(FailureCause::Interconnect)
        );
    }

    #[test]
    fn nonzero_exit_near_wide_event_stays_user() {
        let ev = event(0, 3_580, 3_640, &[], true, ErrorCategory::GeminiLinkFailure);
        let c = classify(
            run(Termination::Exited(ExitStatus::with_code(1)), 3_600, &[0]),
            vec![ev],
            &HashMap::new(),
        );
        assert_eq!(
            c.class,
            ExitClass::UserFailure(UserFailureKind::NonzeroExit)
        );
    }

    #[test]
    fn plain_signals_classify_by_kind() {
        for (sig, kind) in [
            (11, UserFailureKind::Segfault),
            (7, UserFailureKind::Segfault),
            (6, UserFailureKind::Abort),
            (9, UserFailureKind::OutOfMemory),
        ] {
            let c = classify(
                run(Termination::Exited(ExitStatus::with_signal(sig)), 100, &[0]),
                vec![],
                &HashMap::new(),
            );
            assert_eq!(c.class, ExitClass::UserFailure(kind), "signal {sig}");
        }
        let c = classify(
            run(Termination::Exited(ExitStatus::with_code(3)), 100, &[0]),
            vec![],
            &HashMap::new(),
        );
        assert_eq!(
            c.class,
            ExitClass::UserFailure(UserFailureKind::NonzeroExit)
        );
    }

    #[test]
    fn node_scoped_beats_system_scoped_explanation() {
        let local = event(
            0,
            3_595,
            3_630,
            &[0],
            false,
            ErrorCategory::GpuDoubleBitError,
        );
        let wide = event(1, 3_580, 3_640, &[], true, ErrorCategory::LustreOstFailure);
        let c = classify(
            run(Termination::Exited(ExitStatus::with_signal(9)), 3_600, &[0]),
            vec![local, wide],
            &HashMap::new(),
        );
        assert_eq!(c.class, ExitClass::SystemFailure(FailureCause::Gpu));
        assert_eq!(c.matched_events.len(), 2);
    }

    #[test]
    fn warning_events_never_explain_deaths() {
        let warn = event(
            0,
            3_590,
            3_610,
            &[0],
            false,
            ErrorCategory::MemoryCorrectable,
        );
        assert_eq!(warn.severity, Severity::Warning);
        let c = classify(
            run(
                Termination::Exited(ExitStatus::with_signal(11)),
                3_600,
                &[0],
            ),
            vec![warn],
            &HashMap::new(),
        );
        assert_eq!(c.class, ExitClass::UserFailure(UserFailureKind::Segfault));
    }

    #[test]
    fn events_on_other_nodes_are_ignored() {
        let ev = event(0, 3_590, 3_610, &[500], false, ErrorCategory::KernelPanic);
        let c = classify(
            run(
                Termination::Exited(ExitStatus::with_signal(11)),
                3_600,
                &[0, 1],
            ),
            vec![ev],
            &HashMap::new(),
        );
        assert_eq!(c.class, ExitClass::UserFailure(UserFailureKind::Segfault));
        assert!(c.matched_events.is_empty());
    }
}
