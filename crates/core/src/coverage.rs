//! Source-coverage tracking: detecting silent per-source outages and
//! degrading attribution gracefully instead of answering wrongly.
//!
//! LogDiver's verdicts lean on *absence* of evidence as much as presence:
//! a run is a user failure partly because no system event explains its
//! death, and a node-failed exit with no matching event becomes the
//! `Undetermined` detection-gap bucket. Both inferences silently break
//! when a log source stopped producing around the death — the evidence
//! may have existed and simply never been recorded.
//!
//! This module watches every parsed record's timestamp per entry source
//! (including discarded syslog chatter — chatter is exactly what proves a
//! source alive) and flags **coverage gaps**: windows where a normally
//! chatty source went silent far longer than its own observed rate
//! predicts. Classification then qualifies any absence-of-evidence
//! verdict whose attribution window overlaps a gap as
//! [`AttributionConfidence::Degraded`](crate::classify::AttributionConfidence::Degraded).
//!
//! The tracker is deliberately **order-insensitive**: its output is a
//! function of the per-source *multiset* of timestamps, never of arrival
//! order. That keeps the streaming and batch drivers bit-identical (the
//! stream == batch equivalence property) no matter how records were
//! interleaved, buffered, or replayed on the wire.

use std::collections::BTreeMap;

use logdiver_types::{SimDuration, Timestamp};
use serde::{Deserialize, Serialize};

use crate::classify::{AttributionConfidence, ClassifiedRun};
use crate::config::LogDiverConfig;
use crate::filter::EntrySource;
use logdiver_types::{ExitClass, FailureCause};

/// Tuning for the expected-rate silence detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageConfig {
    /// Occupancy-bucket width: timestamps are coarsened to buckets of this
    /// size before silence is measured.
    pub bucket: SimDuration,
    /// A silence shorter than this is never a gap, however chatty the
    /// source (guards against declaring outages on quiet nights).
    pub min_gap: SimDuration,
    /// A silence is a gap once it exceeds `rate_factor` times the source's
    /// observed mean inter-bucket interval.
    pub rate_factor: f64,
    /// Sources occupying fewer buckets than this have no trustworthy rate
    /// estimate and never report gaps.
    pub min_buckets: u64,
}

impl Default for CoverageConfig {
    fn default() -> Self {
        CoverageConfig {
            bucket: SimDuration::from_secs(60),
            min_gap: SimDuration::from_mins(15),
            rate_factor: 8.0,
            min_buckets: 64,
        }
    }
}

/// A window in which one entry source produced nothing despite its
/// observed rate predicting records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageGap {
    /// The silent source.
    pub source: EntrySource,
    /// Start of the silent window.
    pub start: Timestamp,
    /// End of the silent window.
    pub end: Timestamp,
}

impl CoverageGap {
    /// Length of the silent window.
    pub fn span(&self) -> SimDuration {
        self.end - self.start
    }

    /// True when `[lo, hi]` intersects the gap.
    pub fn overlaps(&self, lo: Timestamp, hi: Timestamp) -> bool {
        self.start <= hi && lo <= self.end
    }
}

/// Occupancy record for one source: which time buckets ever held a
/// record, plus the record count and observed extent.
#[derive(Debug, Clone, PartialEq, Default)]
struct SourceCoverage {
    /// Merged runs of occupied buckets: start bucket → end bucket
    /// (inclusive). Kept merged so memory scales with the number of silent
    /// windows, not with time.
    intervals: BTreeMap<i64, i64>,
    /// Records observed.
    records: u64,
    /// Earliest record timestamp.
    first: Option<Timestamp>,
    /// Latest record timestamp.
    last: Option<Timestamp>,
}

impl SourceCoverage {
    fn observe(&mut self, bucket: i64, ts: Timestamp) {
        self.records += 1;
        self.first = Some(self.first.map_or(ts, |f| f.min(ts)));
        self.last = Some(self.last.map_or(ts, |l| l.max(ts)));
        // Find the interval at or before the bucket and grow/merge.
        if let Some((&s, &e)) = self.intervals.range(..=bucket).next_back() {
            if bucket <= e {
                return; // already occupied
            }
            if bucket == e + 1 {
                // Extend right; maybe fuse with the next interval.
                let new_end = match self.intervals.range(bucket + 1..).next() {
                    Some((&ns, &ne)) if ns == bucket + 1 => {
                        self.intervals.remove(&ns);
                        ne
                    }
                    _ => bucket,
                };
                self.intervals.insert(s, new_end);
                return;
            }
        }
        // Not adjacent on the left; maybe adjacent to the interval after.
        match self.intervals.range(bucket + 1..).next() {
            Some((&ns, &ne)) if ns == bucket + 1 => {
                self.intervals.remove(&ns);
                self.intervals.insert(bucket, ne);
            }
            _ => {
                self.intervals.insert(bucket, bucket);
            }
        }
    }

    /// Distinct occupied buckets — the *set*-based activity measure, so a
    /// replayed record never changes the rate estimate (idempotence).
    fn occupied_buckets(&self) -> u64 {
        self.intervals
            .iter()
            .map(|(&s, &e)| (e - s + 1) as u64)
            .sum()
    }

    /// The silence threshold in seconds, from the observed rate.
    fn threshold(&self, config: &CoverageConfig) -> Option<i64> {
        let occupied = self.occupied_buckets();
        if occupied < config.min_buckets.max(2) {
            return None;
        }
        let (first, last) = (self.first?, self.last?);
        let extent = (last - first).as_secs();
        if extent <= 0 {
            return None;
        }
        let mean = extent as f64 / (occupied - 1) as f64;
        let by_rate = (config.rate_factor * mean).ceil() as i64;
        Some(by_rate.max(config.min_gap.as_secs()))
    }
}

/// Externalizable [`CoverageMap`] state (for streaming checkpoints).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CoverageState {
    /// Per-source occupancy in canonical entry-source order
    /// (syslog, hwerr, netwatch).
    sources: Vec<SourceState>,
}

/// Serializable form of one source's occupancy.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
struct SourceState {
    intervals: Vec<(i64, i64)>,
    records: u64,
    first: Option<Timestamp>,
    last: Option<Timestamp>,
}

/// Canonical slot order for the three entry sources.
const ENTRY_SOURCES: [EntrySource; 3] = [
    EntrySource::Syslog,
    EntrySource::HwErr,
    EntrySource::Netwatch,
];

fn slot(source: EntrySource) -> usize {
    match source {
        EntrySource::Syslog => 0,
        EntrySource::HwErr => 1,
        EntrySource::Netwatch => 2,
    }
}

/// Tracks per-source record occupancy and derives coverage gaps.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageMap {
    config: CoverageConfig,
    sources: [SourceCoverage; 3],
}

impl Default for CoverageMap {
    fn default() -> Self {
        CoverageMap::new(CoverageConfig::default())
    }
}

impl CoverageMap {
    /// Creates an empty map with the given detector tuning.
    pub fn new(config: CoverageConfig) -> Self {
        CoverageMap {
            config,
            sources: Default::default(),
        }
    }

    /// Records that `source` produced a record at `ts`. Call for every
    /// *parsed* record, kept or discarded — chatter proves liveness.
    pub fn observe(&mut self, source: EntrySource, ts: Timestamp) {
        let bucket = ts.as_unix().div_euclid(self.config.bucket.as_secs());
        self.sources[slot(source)].observe(bucket, ts);
    }

    /// Total records observed across all sources.
    pub fn records(&self) -> u64 {
        self.sources.iter().map(|s| s.records).sum()
    }

    /// Derives the coverage gaps: per source, every silent window longer
    /// than that source's expected-rate threshold. Includes leading and
    /// trailing silences relative to the global observed extent (a source
    /// that died an hour before the logs end is exactly the outage the
    /// trailing check catches). Output is sorted by (source, start) and is
    /// a pure function of the observed timestamp multisets.
    pub fn gaps(&self) -> Vec<CoverageGap> {
        let bucket_secs = self.config.bucket.as_secs();
        let global_first = self.sources.iter().filter_map(|s| s.first).min();
        let global_last = self.sources.iter().filter_map(|s| s.last).max();
        let mut out = Vec::new();
        for (i, src) in self.sources.iter().enumerate() {
            let Some(threshold) = src.threshold(&self.config) else {
                continue;
            };
            let source = ENTRY_SOURCES[i];
            // Internal silences between occupied-bucket runs.
            let mut prev_end: Option<i64> = None;
            for (&s, &e) in &src.intervals {
                if let Some(pe) = prev_end {
                    let silent_secs = (s - pe - 1) * bucket_secs;
                    if silent_secs >= threshold {
                        out.push(CoverageGap {
                            source,
                            start: Timestamp::from_unix((pe + 1) * bucket_secs),
                            end: Timestamp::from_unix(s * bucket_secs),
                        });
                    }
                }
                prev_end = Some(e);
            }
            // Leading/trailing silences against the whole corpus extent.
            if let (Some(gf), Some(sf)) = (global_first, src.first) {
                if (sf - gf).as_secs() >= threshold {
                    out.push(CoverageGap {
                        source,
                        start: gf,
                        end: sf,
                    });
                }
            }
            if let (Some(gl), Some(sl)) = (global_last, src.last) {
                if (gl - sl).as_secs() >= threshold {
                    out.push(CoverageGap {
                        source,
                        start: sl,
                        end: gl,
                    });
                }
            }
        }
        out.sort_by_key(|g| (slot(g.source), g.start, g.end));
        out
    }

    /// Externalizes the map for checkpointing.
    pub fn state(&self) -> CoverageState {
        CoverageState {
            sources: self
                .sources
                .iter()
                .map(|s| SourceState {
                    intervals: s.intervals.iter().map(|(&a, &b)| (a, b)).collect(),
                    records: s.records,
                    first: s.first,
                    last: s.last,
                })
                .collect(),
        }
    }

    /// Rebuilds a map from externalized state (inverse of
    /// [`CoverageMap::state`] under the same config).
    pub fn restore(config: CoverageConfig, state: CoverageState) -> Self {
        let mut map = CoverageMap::new(config);
        for (i, s) in state.sources.into_iter().take(3).enumerate() {
            map.sources[i] = SourceCoverage {
                intervals: s.intervals.into_iter().collect(),
                records: s.records,
                first: s.first,
                last: s.last,
            };
        }
        map
    }
}

/// True when the verdict leans on *absence* of evidence and is therefore
/// weakened by a hole in that evidence.
fn evidence_sensitive(class: &ExitClass) -> bool {
    matches!(
        class,
        ExitClass::SystemFailure(FailureCause::Undetermined)
            | ExitClass::UserFailure(_)
            | ExitClass::Unknown
    )
}

/// Downgrades the confidence of every absence-of-evidence verdict whose
/// attribution window overlaps a coverage gap.
///
/// Positive verdicts (a specific system cause, a clean exit, a walltime
/// kill) rest on records that *were* seen and stay
/// [`AttributionConfidence::Full`]; a gap can only have hidden extra
/// evidence, never invalidated what was found.
pub fn qualify_runs(runs: &mut [ClassifiedRun], gaps: &[CoverageGap], config: &LogDiverConfig) {
    if gaps.is_empty() {
        return;
    }
    for r in runs.iter_mut() {
        if !evidence_sensitive(&r.class) {
            continue;
        }
        let lo = r.run.end - config.attribution_lead;
        let hi = r.run.end + config.attribution_lag;
        if gaps.iter().any(|g| g.overlaps(lo, hi)) {
            r.confidence = AttributionConfidence::Degraded;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(secs: i64) -> Timestamp {
        Timestamp::PRODUCTION_EPOCH + SimDuration::from_secs(secs)
    }

    /// Feed a steady once-a-minute source with one silent window.
    fn steady_with_hole(hole_start: i64, hole_end: i64) -> CoverageMap {
        let mut map = CoverageMap::default();
        let mut s = 0;
        while s < 48 * 3_600 {
            if s < hole_start || s >= hole_end {
                map.observe(EntrySource::Syslog, t(s));
            }
            s += 60;
        }
        map
    }

    #[test]
    fn healthy_source_reports_no_gaps() {
        let map = steady_with_hole(0, 0);
        assert!(map.gaps().is_empty());
    }

    #[test]
    fn silent_window_is_detected() {
        let map = steady_with_hole(10 * 3_600, 14 * 3_600);
        let gaps = map.gaps();
        assert_eq!(gaps.len(), 1);
        let g = gaps[0];
        assert_eq!(g.source, EntrySource::Syslog);
        // Bucket-granular bounds: within one bucket of the true window.
        assert!((g.start - t(10 * 3_600)).abs() <= SimDuration::from_secs(60));
        assert!((g.end - t(14 * 3_600)).abs() <= SimDuration::from_secs(60));
        assert!(g.span() >= SimDuration::from_hours(3));
    }

    #[test]
    fn short_lull_is_not_a_gap() {
        // 10 minutes of silence in a once-a-minute source is below min_gap.
        let map = steady_with_hole(10 * 3_600, 10 * 3_600 + 600);
        assert!(map.gaps().is_empty());
    }

    #[test]
    fn sparse_source_never_reports_gaps() {
        // 10 records across two days: no trustworthy rate estimate.
        let mut map = CoverageMap::default();
        for k in 0..10 {
            map.observe(EntrySource::Netwatch, t(k * 17_000));
        }
        assert!(map.gaps().is_empty());
    }

    #[test]
    fn trailing_outage_is_detected() {
        // A chatty source that dies at hour 40 of 48 (hole runs to the
        // end), with another source proving the corpus extends to 48 h.
        let mut map = steady_with_hole(40 * 3_600, 48 * 3_600);
        for s in (0..48 * 3_600).step_by(60) {
            map.observe(EntrySource::HwErr, t(s));
        }
        let gaps = map.gaps();
        let trailing: Vec<_> = gaps
            .iter()
            .filter(|g| g.source == EntrySource::Syslog)
            .collect();
        assert_eq!(trailing.len(), 1);
        assert!(trailing[0].end >= t(48 * 3_600 - 60));
    }

    #[test]
    fn state_round_trip_preserves_gaps() {
        let map = steady_with_hole(10 * 3_600, 14 * 3_600);
        let json = serde_json::to_string(&map.state()).unwrap();
        let state: CoverageState = serde_json::from_str(&json).unwrap();
        let restored = CoverageMap::restore(CoverageConfig::default(), state);
        assert_eq!(restored.gaps(), map.gaps());
        assert_eq!(restored, map);
    }

    proptest! {
        /// Order-insensitivity: any permutation of the same observations
        /// yields identical gaps — the property that keeps stream == batch.
        #[test]
        fn gaps_are_order_insensitive(
            times in proptest::collection::vec(0i64..200_000, 64..200),
            rot in 0usize..199,
        ) {
            let mut fwd = CoverageMap::default();
            for &s in &times {
                fwd.observe(EntrySource::Syslog, t(s));
            }
            let mut rotated = times.clone();
            rotated.rotate_left(rot % times.len());
            rotated.reverse();
            let mut rev = CoverageMap::default();
            for &s in &rotated {
                rev.observe(EntrySource::Syslog, t(s));
            }
            prop_assert_eq!(fwd.gaps(), rev.gaps());
            prop_assert_eq!(fwd.state(), rev.state());
        }

        /// Duplicate observations never change the verdict (idempotence).
        #[test]
        fn observation_is_idempotent(
            times in proptest::collection::vec(0i64..200_000, 64..200),
        ) {
            let mut once = CoverageMap::default();
            let mut twice = CoverageMap::default();
            for &s in &times {
                once.observe(EntrySource::HwErr, t(s));
                twice.observe(EntrySource::HwErr, t(s));
                twice.observe(EntrySource::HwErr, t(s));
            }
            prop_assert_eq!(once.gaps(), twice.gaps());
        }
    }
}
