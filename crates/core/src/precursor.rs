//! Precursor analysis: which lethal failures announced themselves?
//!
//! The paper's detection discussion asks whether log data carries enough
//! warning to act proactively. This stage looks, for every lethal
//! node-scoped error event, for *warning-only* events (correctable-error
//! floods, GPU page-retirement pressure) on the same blade within a lookback
//! window, and measures the fraction of failures with a precursor and the
//! available lead time — the budget a proactive drain/migrate policy would
//! have had.

use bw_topology::location::NODES_PER_BLADE;
use logdiver_types::{ErrorCategory, SimDuration};
use serde::{Deserialize, Serialize};

use crate::coalesce::ErrorEvent;

/// Default lookback: generous enough to cover realistic escalation times.
pub const DEFAULT_LOOKBACK: SimDuration = SimDuration::from_secs(3 * 3_600);

/// Per-category precursor row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecursorRow {
    /// Lethal category.
    pub category: ErrorCategory,
    /// Lethal node-scoped events of this category.
    pub events: u64,
    /// Of those, events with a warning precursor on the same blade.
    pub with_precursor: u64,
}

/// The precursor report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecursorReport {
    /// Lethal node-scoped events examined.
    pub lethal_events: u64,
    /// Events with at least one warning precursor on the same blade.
    pub with_precursor: u64,
    /// Lookback window used.
    pub lookback: SimDuration,
    /// Lead times (hours) from the *latest* precursor's end to the failure.
    pub lead_times_hours: Vec<f64>,
    /// Per-category breakdown (only categories with events).
    pub by_category: Vec<PrecursorRow>,
}

impl PrecursorReport {
    /// Fraction of lethal events with a precursor.
    pub fn fraction(&self) -> f64 {
        if self.lethal_events == 0 {
            0.0
        } else {
            self.with_precursor as f64 / self.lethal_events as f64
        }
    }

    /// Median available lead time, if any precursors were found.
    pub fn median_lead_hours(&self) -> Option<f64> {
        let mut v = self.lead_times_hours.clone();
        if v.is_empty() {
            return None;
        }
        // lint: allow(no-panic) lead times are differences of finite event timestamps; NaN cannot enter the vec
        v.sort_by(|a, b| a.partial_cmp(b).expect("lead times are finite"));
        Some(v[v.len() / 2])
    }
}

fn blades_of(ev: &ErrorEvent) -> impl Iterator<Item = u32> + '_ {
    ev.nodes.iter().map(|n| n.value() / NODES_PER_BLADE)
}

/// Runs the precursor analysis over coalesced events.
pub fn analyze_precursors(events: &[ErrorEvent], lookback: SimDuration) -> PrecursorReport {
    // Index warning events (non-lethal, node-scoped) by blade.
    let mut warnings_by_blade: std::collections::HashMap<u32, Vec<(i64, i64)>> =
        std::collections::HashMap::new();
    for ev in events {
        if ev.is_lethal() || ev.system_scope {
            continue;
        }
        for blade in blades_of(ev) {
            warnings_by_blade
                .entry(blade)
                .or_default()
                .push((ev.start.as_unix(), ev.end.as_unix()));
        }
    }
    for v in warnings_by_blade.values_mut() {
        v.sort_unstable();
    }

    let mut report = PrecursorReport {
        lethal_events: 0,
        with_precursor: 0,
        lookback,
        lead_times_hours: Vec::new(),
        by_category: Vec::new(),
    };
    for ev in events {
        if !ev.is_lethal() || ev.system_scope || ev.nodes.is_empty() {
            continue;
        }
        report.lethal_events += 1;
        let category = ev.dominant_category();
        let t_fail = ev.start.as_unix();
        let t_lo = t_fail - lookback.as_secs();
        // Latest warning ending in [t_lo, t_fail) on any of the blades.
        let mut best_end: Option<i64> = None;
        for blade in blades_of(ev) {
            if let Some(warnings) = warnings_by_blade.get(&blade) {
                for &(w_start, w_end) in warnings.iter().rev() {
                    if w_start >= t_fail {
                        continue;
                    }
                    if w_end < t_lo {
                        break; // sorted: everything earlier is out of window
                    }
                    if w_end < t_fail {
                        best_end = Some(best_end.map_or(w_end, |b: i64| b.max(w_end)));
                        break;
                    }
                }
            }
        }
        let row = match report
            .by_category
            .iter_mut()
            .find(|r| r.category == category)
        {
            Some(row) => row,
            None => {
                report.by_category.push(PrecursorRow {
                    category,
                    events: 0,
                    with_precursor: 0,
                });
                // lint: allow(no-panic) the vec cannot be empty on the line after a push
                report.by_category.last_mut().expect("just pushed")
            }
        };
        row.events += 1;
        if let Some(w_end) = best_end {
            report.with_precursor += 1;
            row.with_precursor += 1;
            report
                .lead_times_hours
                .push((t_fail - w_end) as f64 / 3_600.0);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::EntrySource;
    use crate::filter::FilteredEntry;
    use logdiver_types::{NodeId, Timestamp};

    fn entry(secs: i64, cat: ErrorCategory, nid: u32) -> FilteredEntry {
        FilteredEntry {
            timestamp: Timestamp::PRODUCTION_EPOCH + SimDuration::from_secs(secs),
            category: cat,
            severity: cat.severity(),
            node: Some(NodeId::new(nid)),
            source: EntrySource::Syslog,
        }
    }

    fn events(entries: &[FilteredEntry]) -> Vec<ErrorEvent> {
        let mut sorted = entries.to_vec();
        sorted.sort_by_key(|e| e.timestamp);
        crate::coalesce::coalesce(&sorted, SimDuration::from_secs(300))
    }

    #[test]
    fn flood_before_ue_is_a_precursor() {
        // CE flood on blade 2 at t=0, UE crash on the same blade 1 h later.
        let evs = events(&[
            entry(0, ErrorCategory::MemoryCorrectable, 8),
            entry(3_600, ErrorCategory::MemoryUncorrectable, 9),
        ]);
        let report = analyze_precursors(&evs, DEFAULT_LOOKBACK);
        assert_eq!(report.lethal_events, 1);
        assert_eq!(report.with_precursor, 1);
        assert!((report.fraction() - 1.0).abs() < 1e-12);
        let lead = report.median_lead_hours().unwrap();
        assert!((lead - 1.0).abs() < 0.01, "lead {lead}");
    }

    #[test]
    fn warning_on_other_blade_does_not_count() {
        let evs = events(&[
            entry(0, ErrorCategory::MemoryCorrectable, 100),
            entry(3_600, ErrorCategory::MemoryUncorrectable, 8),
        ]);
        let report = analyze_precursors(&evs, DEFAULT_LOOKBACK);
        assert_eq!(report.lethal_events, 1);
        assert_eq!(report.with_precursor, 0);
    }

    #[test]
    fn warning_outside_window_does_not_count() {
        let evs = events(&[
            entry(0, ErrorCategory::MemoryCorrectable, 8),
            entry(5 * 3_600, ErrorCategory::MemoryUncorrectable, 8),
        ]);
        let report = analyze_precursors(&evs, SimDuration::from_secs(3_600));
        assert_eq!(report.with_precursor, 0);
    }

    #[test]
    fn warning_after_failure_does_not_count() {
        let evs = events(&[
            entry(0, ErrorCategory::MemoryUncorrectable, 8),
            entry(600, ErrorCategory::GpuPageRetirement, 8),
        ]);
        let report = analyze_precursors(&evs, DEFAULT_LOOKBACK);
        assert_eq!(report.lethal_events, 1);
        assert_eq!(report.with_precursor, 0);
    }

    #[test]
    fn per_category_rows_partition() {
        let evs = events(&[
            entry(0, ErrorCategory::MemoryCorrectable, 8),
            entry(3_000, ErrorCategory::MemoryUncorrectable, 8),
            entry(10_000, ErrorCategory::KernelPanic, 40),
            entry(20_000, ErrorCategory::GpuPageRetirement, 80),
            entry(23_000, ErrorCategory::GpuDoubleBitError, 80),
        ]);
        let report = analyze_precursors(&evs, DEFAULT_LOOKBACK);
        assert_eq!(report.lethal_events, 3);
        assert_eq!(report.with_precursor, 2);
        let total: u64 = report.by_category.iter().map(|r| r.events).sum();
        assert_eq!(total, report.lethal_events);
        let ue = report
            .by_category
            .iter()
            .find(|r| r.category == ErrorCategory::MemoryUncorrectable)
            .unwrap();
        assert_eq!((ue.events, ue.with_precursor), (1, 1));
        let panic = report
            .by_category
            .iter()
            .find(|r| r.category == ErrorCategory::KernelPanic)
            .unwrap();
        assert_eq!((panic.events, panic.with_precursor), (1, 0));
    }

    #[test]
    fn system_scope_events_are_ignored() {
        let mut evs = events(&[entry(0, ErrorCategory::MemoryUncorrectable, 8)]);
        evs.push(ErrorEvent {
            id: 99,
            start: Timestamp::PRODUCTION_EPOCH,
            end: Timestamp::PRODUCTION_EPOCH,
            categories: vec![ErrorCategory::GeminiLinkFailure],
            severity: ErrorCategory::GeminiLinkFailure.severity(),
            nodes: Vec::new(),
            system_scope: true,
            entry_count: 1,
        });
        let report = analyze_precursors(&evs, DEFAULT_LOOKBACK);
        assert_eq!(
            report.lethal_events, 1,
            "only the node-scoped lethal event counts"
        );
    }

    #[test]
    fn empty_input_gives_empty_report() {
        let report = analyze_precursors(&[], DEFAULT_LOOKBACK);
        assert_eq!(report.lethal_events, 0);
        assert_eq!(report.fraction(), 0.0);
        assert!(report.median_lead_hours().is_none());
    }
}
