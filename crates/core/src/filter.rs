//! Stage 2: filtering — from parsed records to categorized error entries.
//!
//! The consolidated syslog is overwhelmingly operational chatter; this
//! stage keeps only lines matching a curated **pattern table** and tags
//! them with an [`ErrorCategory`]. The table below was written against the
//! message phrasings observed in the logs (as the real LogDiver's template
//! base was reverse-engineered from Cray's `craylog` output) — it is
//! deliberately independent of the emitting code and is exercised against
//! both matching and non-matching corpora in the tests.
//!
//! ## The byte hot path
//!
//! Classification runs on **raw message bytes**: [`Pattern::matches_bytes`]
//! is a byte substring conjunction, and the `&str` entry points delegate to
//! it. The two agree exactly — `str::contains` is byte substring search,
//! and because UTF-8 is self-synchronizing a byte-level match of a valid
//! UTF-8 needle always lands on a character boundary. This is what lets
//! [`filter_columns`] classify borrowed arena slices **before** any record
//! materializes: a discarded line (the overwhelming majority) never
//! allocates, and a kept line only resolves its host to a [`NodeId`].
//!
//! Each pattern carries a precomputed *screen* — the set of its fragments'
//! first bytes plus the longest fragment's length. Per message, one pass
//! builds a 256-bit byte-presence bitmap; a pattern whose screen bytes are
//! not all present (or whose longest fragment cannot fit) is skipped
//! without any substring search. Screens are conservative, never changing
//! the match result — a property the tests pin against the naive scan.

use logdiver_types::{ErrorCategory, NodeId, Severity, Timestamp};
use serde::{Deserialize, Serialize};

use crate::parse::{ParsedColumns, ParsedLogs};

/// Which source a filtered entry came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntrySource {
    /// Consolidated syslog.
    Syslog,
    /// Hardware error log.
    HwErr,
    /// HSN netwatch.
    Netwatch,
}

/// One categorized error-log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilteredEntry {
    /// When it was logged.
    pub timestamp: Timestamp,
    /// Assigned category.
    pub category: ErrorCategory,
    /// Severity (from the record when structured, from the category
    /// otherwise).
    pub severity: Severity,
    /// Reporting node, when one is identifiable.
    pub node: Option<NodeId>,
    /// Originating source.
    pub source: EntrySource,
}

/// A substring-conjunction pattern: matches when *all* fragments occur.
#[derive(Debug, Clone)]
pub struct Pattern {
    fragments: &'static [&'static str],
    category: ErrorCategory,
}

impl Pattern {
    /// Builds a pattern from its fragments and target category.
    pub const fn new(fragments: &'static [&'static str], category: ErrorCategory) -> Self {
        Pattern {
            fragments,
            category,
        }
    }

    /// The conjunction fragments, in declaration order.
    pub fn fragments(&self) -> &'static [&'static str] {
        self.fragments
    }

    /// The category assigned on a match.
    pub fn category(&self) -> ErrorCategory {
        self.category
    }

    /// True when every fragment occurs in `message`.
    pub fn matches(&self, message: &str) -> bool {
        self.matches_bytes(message.as_bytes())
    }

    /// True when every fragment occurs in `message`, scanned as raw bytes.
    ///
    /// For valid UTF-8 input this is exactly [`Pattern::matches`]; for
    /// damaged input it degrades gracefully (a fragment simply cannot
    /// start inside a torn multi-byte sequence).
    pub fn matches_bytes(&self, message: &[u8]) -> bool {
        self.fragments
            .iter()
            .all(|f| craylog::scan::find_seq(message, f.as_bytes()).is_some())
    }
}

/// Precomputed skip data for one pattern: the set of fragment first bytes
/// (as a 256-bit mask) and the longest fragment's length. A message that
/// lacks any screened byte, or is shorter than the longest fragment,
/// cannot match — checked against a per-message presence bitmap before any
/// substring search runs.
#[derive(Debug, Clone, Copy)]
struct Screen {
    need: [u64; 4],
    min_len: usize,
}

impl Screen {
    fn for_pattern(p: &Pattern) -> Self {
        let mut need = [0u64; 4];
        let mut min_len = 0;
        for f in p.fragments {
            if let Some(&b) = f.as_bytes().first() {
                need[(b >> 6) as usize] |= 1 << (b & 63);
            }
            min_len = min_len.max(f.len());
        }
        Screen { need, min_len }
    }

    #[inline]
    fn admits(&self, have: &[u64; 4], len: usize) -> bool {
        len >= self.min_len
            && self.need[0] & have[0] == self.need[0]
            && self.need[1] & have[1] == self.need[1]
            && self.need[2] & have[2] == self.need[2]
            && self.need[3] & have[3] == self.need[3]
    }
}

/// Which byte values occur in `message`, as a 256-bit bitmap.
#[inline]
fn byte_presence(message: &[u8]) -> [u64; 4] {
    let mut have = [0u64; 4];
    for &b in message {
        have[(b >> 6) as usize] |= 1 << (b & 63);
    }
    have
}

/// A declared precedence between two lexically overlapping rules of
/// *different* categories: messages matching both are intentionally won by
/// the earlier rule. `logdiver lint` demands one of these (with a reason)
/// for every cross-category overlap it detects — the in-table record of
/// ordering intent that first-match-wins otherwise leaves implicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct OverlapWaiver {
    /// First fragment of the earlier (winning) rule.
    pub earlier: &'static str,
    /// First fragment of the later (yielding) rule.
    pub later: &'static str,
    /// Why the earlier rule winning is correct. Required.
    pub reason: &'static str,
}

/// The curated pattern table (first match wins).
#[derive(Debug, Clone)]
pub struct PatternTable {
    patterns: Vec<Pattern>,
    waivers: Vec<OverlapWaiver>,
    screens: Vec<Screen>,
}

impl Default for PatternTable {
    fn default() -> Self {
        Self::curated()
    }
}

impl PatternTable {
    /// The curated table for Cray XE/XK syslog streams.
    ///
    /// Ordering is load-bearing (first match wins). Within a subsystem the
    /// more specific phrasing precedes the generic one (`"LCB lane
    /// shutdown"` before `"link failed"`, `"UE row"` before `"CE row"`),
    /// and every cross-category overlap is recorded as an
    /// [`OverlapWaiver`] below — `logdiver lint` verifies the list is
    /// exact: no unwaived overlap, no stale waiver, and every waived
    /// pair's witness string actually classifies to the earlier rule.
    pub fn curated() -> Self {
        use ErrorCategory::*;
        let patterns = vec![
            Pattern {
                fragments: &["Machine Check Exception"],
                category: MachineCheckException,
            },
            Pattern {
                fragments: &["Machine Check", "unrecoverable"],
                category: MachineCheckException,
            },
            Pattern {
                fragments: &["DRAM ECC error"],
                category: MemoryUncorrectable,
            },
            Pattern {
                fragments: &["EDAC", "UE row"],
                category: MemoryUncorrectable,
            },
            Pattern {
                fragments: &["uncorrectable memory error"],
                category: MemoryUncorrectable,
            },
            Pattern {
                fragments: &["EDAC", "CE row"],
                category: MemoryCorrectable,
            },
            Pattern {
                fragments: &["LCB lane shutdown"],
                category: GeminiLinkFailure,
            },
            Pattern {
                fragments: &["link failed"],
                category: GeminiLinkFailure,
            },
            Pattern {
                fragments: &["running degraded", "lanes up"],
                category: GeminiLaneDegrade,
            },
            Pattern {
                fragments: &["route table recomputation"],
                category: GeminiRouteReconfig,
            },
            Pattern {
                fragments: &["traffic quiesced"],
                category: GeminiRouteReconfig,
            },
            Pattern {
                fragments: &["heartbeat fault"],
                category: NodeHeartbeatFault,
            },
            Pattern {
                fragments: &["declaring node dead"],
                category: NodeHeartbeatFault,
            },
            Pattern {
                fragments: &["L0 controller unresponsive"],
                category: BladeControllerFailure,
            },
            Pattern {
                fragments: &["VRM fault"],
                category: VoltageFault,
            },
            Pattern {
                fragments: &["Kernel panic"],
                category: KernelPanic,
            },
            Pattern {
                fragments: &["unable to handle kernel paging request"],
                category: KernelPanic,
            },
            Pattern {
                fragments: &["softlockup detected"],
                category: NodeHang,
            },
            Pattern {
                fragments: &["node unresponsive"],
                category: NodeHang,
            },
            Pattern {
                fragments: &["Connection to service was lost"],
                category: LustreOstFailure,
            },
            Pattern {
                fragments: &["failed over", "I/O will block"],
                category: LustreOstFailure,
            },
            Pattern {
                fragments: &["MDS failover"],
                category: LustreMdsFailover,
            },
            Pattern {
                fragments: &["client evicted"],
                category: LustreClientEviction,
            },
            Pattern {
                fragments: &["Double Bit ECC Error"],
                category: GpuDoubleBitError,
            },
            Pattern {
                fragments: &["fallen off the bus"],
                category: GpuBusError,
            },
            Pattern {
                fragments: &["page retirement"],
                category: GpuPageRetirement,
            },
            Pattern {
                fragments: &["placement failed"],
                category: AlpsLaunchFailure,
            },
            Pattern {
                fragments: &["warm swap"],
                category: MaintenanceNotice,
            },
        ];
        // Ordering intent for every cross-category lexical overlap in the
        // table above. Each entry says: a message matching both rules is
        // *meant* to be won by the earlier one, and why.
        let waivers = vec![
            OverlapWaiver {
                earlier: "DRAM ECC error",
                later: "Double Bit ECC Error",
                reason: "generic word `error`; host-memory ECC text outranks GPU Xid text — \
                         real GPU lines carry `Double Bit`/`Xid`, which host rules never match",
            },
            OverlapWaiver {
                earlier: "EDAC",
                later: "EDAC",
                reason: "UE row is checked before CE row so an uncorrectable report that also \
                         mentions the corrected counter is never downgraded to a warning",
            },
            OverlapWaiver {
                earlier: "uncorrectable memory error",
                later: "Double Bit ECC Error",
                reason: "generic word `error`; a line naming an uncorrectable host memory error \
                         attributes to Memory even if GPU ECC chatter is appended",
            },
            OverlapWaiver {
                earlier: "link failed",
                later: "failed over",
                reason: "generic word `failed`; an HSN link failure that triggers Lustre \
                         failover text is root-caused to the interconnect",
            },
            OverlapWaiver {
                earlier: "link failed",
                later: "placement failed",
                reason: "generic word `failed`; a link failure aborting a placement is the \
                         interconnect's fault, not the launcher's",
            },
            OverlapWaiver {
                earlier: "failed over",
                later: "placement failed",
                reason: "generic word `failed`; filesystem failover noted in a placement \
                         message outranks the launcher symptom",
            },
            OverlapWaiver {
                earlier: "heartbeat fault",
                later: "VRM fault",
                reason: "generic word `fault`; a heartbeat loss co-reported with a voltage \
                         fault is counted once, as the node-death signal",
            },
            OverlapWaiver {
                earlier: "declaring node dead",
                later: "node unresponsive",
                reason: "generic word `node`; a declared node death subsumes the softer \
                         hang/unresponsive phrasing",
            },
            OverlapWaiver {
                earlier: "L0 controller unresponsive",
                later: "node unresponsive",
                reason: "shared word `unresponsive`; the blade-controller diagnosis is more \
                         specific than a generic node hang",
            },
        ];
        Self::build(patterns, waivers)
    }

    /// Builds a table from user-supplied rules (first match wins), with no
    /// overlap waivers declared. Chain [`PatternTable::with_waivers`] to
    /// record ordering intent for cross-category overlaps.
    pub fn from_rules(patterns: Vec<Pattern>) -> Self {
        Self::build(patterns, Vec::new())
    }

    /// The one place screens are derived, so every constructor agrees.
    fn build(patterns: Vec<Pattern>, waivers: Vec<OverlapWaiver>) -> Self {
        let screens = patterns.iter().map(Screen::for_pattern).collect();
        PatternTable {
            patterns,
            waivers,
            screens,
        }
    }

    /// Replaces the declared overlap waivers.
    #[must_use]
    pub fn with_waivers(mut self, waivers: Vec<OverlapWaiver>) -> Self {
        self.waivers = waivers;
        self
    }

    /// The rules, in match-priority order.
    pub fn rules(&self) -> &[Pattern] {
        &self.patterns
    }

    /// The declared cross-category precedence waivers.
    pub fn waivers(&self) -> &[OverlapWaiver] {
        &self.waivers
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when no patterns are loaded.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Classifies a message; `None` means "operational chatter, discard".
    pub fn classify(&self, message: &str) -> Option<ErrorCategory> {
        self.classify_index(message).map(|(_, category)| category)
    }

    /// Classifies a message, also reporting *which* rule (0-based index in
    /// [`PatternTable::rules`]) won — the introspection hook the rule-set
    /// verifier uses to prove its witness strings resolve as claimed.
    pub fn classify_index(&self, message: &str) -> Option<(usize, ErrorCategory)> {
        self.classify_index_bytes(message.as_bytes())
    }

    /// Byte-level [`PatternTable::classify`] — the zero-copy hot path.
    pub fn classify_bytes(&self, message: &[u8]) -> Option<ErrorCategory> {
        self.classify_index_bytes(message)
            .map(|(_, category)| category)
    }

    /// Byte-level [`PatternTable::classify_index`]. One presence-bitmap
    /// pass over the message, then first-match-wins over the rules with
    /// each rule's [`Screen`] consulted before its substring scan.
    pub fn classify_index_bytes(&self, message: &[u8]) -> Option<(usize, ErrorCategory)> {
        let have = byte_presence(message);
        for (i, (p, s)) in self.patterns.iter().zip(&self.screens).enumerate() {
            if s.admits(&have, message.len()) && p.matches_bytes(message) {
                return Some((i, p.category));
            }
        }
        None
    }
}

/// Accounting for the filter stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FilterStats {
    /// Syslog lines examined.
    pub syslog_examined: u64,
    /// Syslog lines kept.
    pub syslog_kept: u64,
    /// Structured records (hwerr + netwatch) kept.
    pub structured_kept: u64,
}

impl FilterStats {
    /// Fraction of syslog discarded as noise.
    pub fn syslog_discard_ratio(&self) -> f64 {
        if self.syslog_examined == 0 {
            0.0
        } else {
            1.0 - self.syslog_kept as f64 / self.syslog_examined as f64
        }
    }
}

/// Filters one syslog record; `None` means "operational chatter, discard".
pub fn entry_from_syslog(
    rec: &craylog::syslog::SyslogRecord,
    table: &PatternTable,
) -> Option<FilteredEntry> {
    table.classify(&rec.message).map(|category| FilteredEntry {
        timestamp: rec.timestamp,
        category,
        severity: category.severity(),
        node: rec.node(),
        source: EntrySource::Syslog,
    })
}

/// Converts one hardware-error record (always kept).
pub fn entry_from_hwerr(rec: &craylog::hwerr::HwErrRecord) -> FilteredEntry {
    FilteredEntry {
        timestamp: rec.timestamp,
        category: rec.category,
        severity: rec.severity,
        node: Some(rec.location.to_nid()),
        source: EntrySource::HwErr,
    }
}

/// Converts one netwatch record (always kept).
pub fn entry_from_netwatch(rec: &craylog::netwatch::NetwatchRecord) -> FilteredEntry {
    use craylog::netwatch::NetwatchEvent::*;
    let category = match rec.event {
        LinkFailed { .. } => ErrorCategory::GeminiLinkFailure,
        LaneDegrade { .. } => ErrorCategory::GeminiLaneDegrade,
        RerouteStart { .. } | RerouteDone { .. } => ErrorCategory::GeminiRouteReconfig,
    };
    FilteredEntry {
        timestamp: rec.timestamp,
        category,
        severity: category.severity(),
        node: None,
        source: EntrySource::Netwatch,
    }
}

/// The key the entry stream is ordered by: time, then node (node-less
/// entries last), with source order (syslog, hwerr, netwatch) breaking the
/// remaining ties — exactly the order the batch path's stable sort
/// produces. The streaming reorder buffer sorts by this same key so both
/// drivers feed the coalescer identically.
pub fn entry_sort_key(e: &FilteredEntry) -> (Timestamp, u32) {
    (e.timestamp, e.node.map(|n| n.value()).unwrap_or(u32::MAX))
}

/// Runs the filter over parsed logs.
pub fn filter_logs(parsed: &ParsedLogs, table: &PatternTable) -> (Vec<FilteredEntry>, FilterStats) {
    filter_logs_threads(parsed, table, 1)
}

/// Below this many syslog records the parallel scan is all overhead.
const PAR_FILTER_MIN_RECORDS: usize = 4096;

/// Runs the filter across `threads` workers, producing exactly what
/// [`filter_logs`] produces.
///
/// Only the syslog scan (the volume) parallelizes; per-chunk keeps are
/// concatenated in chunk order — i.e. record order — before the same stable
/// sort the serial path runs, so ties resolve identically.
pub fn filter_logs_threads(
    parsed: &ParsedLogs,
    table: &PatternTable,
    threads: usize,
) -> (Vec<FilteredEntry>, FilterStats) {
    let mut entries = Vec::new();
    let mut stats = FilterStats::default();

    if threads <= 1 || parsed.syslog.len() < PAR_FILTER_MIN_RECORDS {
        for rec in &parsed.syslog {
            stats.syslog_examined += 1;
            if let Some(entry) = entry_from_syslog(rec, table) {
                stats.syslog_kept += 1;
                entries.push(entry);
            }
        }
    } else {
        let chunk_len = (parsed.syslog.len() / (threads * 4)).max(PAR_FILTER_MIN_RECORDS / 4);
        let chunks: Vec<&[craylog::syslog::SyslogRecord]> =
            parsed.syslog.chunks(chunk_len).collect();
        let results = crate::exec::par_map(threads, chunks, |recs| {
            let kept: Vec<FilteredEntry> = recs
                .iter()
                .filter_map(|rec| entry_from_syslog(rec, table))
                .collect();
            (recs.len() as u64, kept)
        });
        for (examined, kept) in results {
            stats.syslog_examined += examined;
            stats.syslog_kept += kept.len() as u64;
            entries.extend(kept);
        }
    }

    for rec in &parsed.hwerr {
        stats.structured_kept += 1;
        entries.push(entry_from_hwerr(rec));
    }
    for rec in &parsed.netwatch {
        stats.structured_kept += 1;
        entries.push(entry_from_netwatch(rec));
    }
    entries.sort_by_key(entry_sort_key);
    (entries, stats)
}

/// Filters one columnar syslog record from its borrowed field slices;
/// `None` means "operational chatter, discard". Classification runs on the
/// raw message bytes, and the host is resolved to a node **only on a
/// keep** — a discarded line costs one bitmap pass and some screened
/// substring scans, nothing more.
pub fn entry_from_syslog_bytes(
    timestamp: Timestamp,
    host: &[u8],
    message: &[u8],
    table: &PatternTable,
) -> Option<FilteredEntry> {
    table.classify_bytes(message).map(|category| FilteredEntry {
        timestamp,
        category,
        severity: category.severity(),
        node: NodeId::parse_hostname_bytes(host),
        source: EntrySource::Syslog,
    })
}

/// Converts one reduced hardware-error record (always kept).
fn entry_from_hwerr_parsed(h: &crate::parse::HwErrParsed) -> FilteredEntry {
    FilteredEntry {
        timestamp: h.timestamp,
        category: h.category,
        severity: h.severity,
        node: Some(h.node),
        source: EntrySource::HwErr,
    }
}

/// Runs the filter over columnar parse output — the zero-copy pipeline's
/// stage 2, producing exactly what [`filter_logs_threads`] produces on the
/// equivalent [`ParsedLogs`]: same entries, same order (chunk-in-record-
/// order concatenation, then the same stable sort), same stats, for any
/// thread count.
pub fn filter_columns(
    cols: &ParsedColumns<'_>,
    table: &PatternTable,
    threads: usize,
) -> (Vec<FilteredEntry>, FilterStats) {
    let syslog = &cols.syslog;
    let mut stats = FilterStats {
        syslog_examined: syslog.len() as u64,
        ..FilterStats::default()
    };

    let mut entries: Vec<FilteredEntry>;
    if threads <= 1 || syslog.len() < PAR_FILTER_MIN_RECORDS {
        entries = Vec::new();
        for i in 0..syslog.len() {
            if let Some(entry) =
                entry_from_syslog_bytes(syslog.times[i], syslog.hosts[i], syslog.messages[i], table)
            {
                entries.push(entry);
            }
        }
    } else {
        let chunk_len = (syslog.len() / (threads * 4)).max(PAR_FILTER_MIN_RECORDS / 4);
        let ranges: Vec<std::ops::Range<usize>> = (0..syslog.len())
            .step_by(chunk_len)
            .map(|lo| lo..(lo + chunk_len).min(syslog.len()))
            .collect();
        let results = crate::exec::par_map(threads, ranges, |range| {
            range
                .filter_map(|i| {
                    entry_from_syslog_bytes(
                        syslog.times[i],
                        syslog.hosts[i],
                        syslog.messages[i],
                        table,
                    )
                })
                .collect::<Vec<FilteredEntry>>()
        });
        entries = results.into_iter().flatten().collect();
    }
    stats.syslog_kept = entries.len() as u64;

    for h in &cols.hwerr {
        stats.structured_kept += 1;
        entries.push(entry_from_hwerr_parsed(h));
    }
    for rec in &cols.netwatch {
        stats.structured_kept += 1;
        entries.push(entry_from_netwatch(rec));
    }
    entries.sort_by_key(entry_sort_key);
    (entries, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use craylog::templates;
    use logdiver_types::ErrorCategory;

    #[test]
    fn table_classifies_every_emitted_template() {
        // The table must recognize every phrasing the machine produces —
        // validated against the emitter corpus without sharing code with it.
        let table = PatternTable::curated();
        for cat in ErrorCategory::ALL {
            for variant in 0..16 {
                let msg = templates::error_message(cat, variant);
                let got = table.classify(&msg);
                assert_eq!(got, Some(cat), "message {msg:?} classified as {got:?}");
            }
        }
    }

    #[test]
    fn table_discards_noise_corpus() {
        let table = PatternTable::curated();
        for variant in 0..200 {
            let (_tag, msg) = templates::noise_message(variant);
            assert_eq!(table.classify(&msg), None, "noise matched: {msg:?}");
        }
    }

    #[test]
    fn filter_routes_sources() {
        let mut logs = crate::input::LogCollection::new();
        logs.syslog.push(
            "2013-03-28 12:30:00 nid00004 kernel: Machine Check Exception: bank 2 status 0xdead"
                .into(),
        );
        logs.syslog
            .push("2013-03-28 12:30:01 nid00004 ntpd: time slew +0.001s".into());
        logs.hwerr
            .push("2013-03-28 12:30:02|c0-0c0s1n0|MEM_UE|FATAL|dimm=1".into());
        logs.netwatch
            .push("2013-03-28 12:30:03 netwatch LINK_FAILED coord=(1,2,3) dim=X".into());
        let parsed = crate::parse::parse_collection(&logs);
        let (entries, stats) = filter_logs(&parsed, &PatternTable::curated());
        assert_eq!(entries.len(), 3);
        assert_eq!(stats.syslog_examined, 2);
        assert_eq!(stats.syslog_kept, 1);
        assert_eq!(stats.structured_kept, 2);
        assert!((stats.syslog_discard_ratio() - 0.5).abs() < 1e-12);
        // Entries are time-sorted.
        assert!(entries.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        // hwerr location resolved to a nid: c0-0c0s1n0 = blade 1 node 0 = nid 4.
        assert_eq!(entries[1].node, Some(NodeId::new(4)));
        assert_eq!(entries[2].node, None);
    }

    #[test]
    fn first_match_wins_is_stable() {
        let table = PatternTable::curated();
        // A message with both MCE and panic fragments hits the earlier rule.
        let msg = "Machine Check Exception: then Kernel panic followed";
        assert_eq!(
            table.classify(msg),
            Some(ErrorCategory::MachineCheckException)
        );
    }

    #[test]
    fn empty_message_discards() {
        let table = PatternTable::curated();
        assert_eq!(table.classify(""), None);
        assert!(!table.is_empty());
        assert!(table.len() > 20);
    }

    /// Locks the verified rule ordering: the specific phrasing precedes the
    /// generic one wherever the rule-set verifier found an overlap, and the
    /// waiver list records exactly the pairs the verifier flags. Reordering
    /// the table invalidates the verification — this test makes that a
    /// loud failure instead of a silent semantics change.
    #[test]
    fn curated_ordering_intent_is_locked() {
        let table = PatternTable::curated();
        let pos = |first_fragment: &str, cat: ErrorCategory| {
            table
                .rules()
                .iter()
                .position(|p| p.fragments()[0] == first_fragment && p.category() == cat)
                .unwrap_or_else(|| panic!("rule {first_fragment:?} missing"))
        };
        use ErrorCategory::*;
        // Specific-before-generic within the interconnect rules.
        assert!(
            pos("LCB lane shutdown", GeminiLinkFailure) < pos("link failed", GeminiLinkFailure)
        );
        // Uncorrectable before correctable for EDAC rows.
        assert!(pos("EDAC", MemoryUncorrectable) < pos("EDAC", MemoryCorrectable));
        // Host-memory ECC before GPU ECC (shared word `error`).
        assert!(
            pos("DRAM ECC error", MemoryUncorrectable)
                < pos("Double Bit ECC Error", GpuDoubleBitError)
        );
        // Node-death signals before generic hang/unresponsive phrasings.
        assert!(
            pos("declaring node dead", NodeHeartbeatFault) < pos("node unresponsive", NodeHang)
        );
        assert!(
            pos("L0 controller unresponsive", BladeControllerFailure)
                < pos("node unresponsive", NodeHang)
        );
        // Heartbeat loss before voltage fault (shared word `fault`).
        assert!(pos("heartbeat fault", NodeHeartbeatFault) < pos("VRM fault", VoltageFault));
        // `failed` chain: interconnect > filesystem > launcher.
        assert!(pos("link failed", GeminiLinkFailure) < pos("failed over", LustreOstFailure));
        assert!(pos("failed over", LustreOstFailure) < pos("placement failed", AlpsLaunchFailure));
        // Every waiver names rules that exist, earlier-first.
        for w in table.waivers() {
            let earlier = table
                .rules()
                .iter()
                .position(|p| p.fragments()[0] == w.earlier);
            let later = table
                .rules()
                .iter()
                .rposition(|p| p.fragments()[0] == w.later);
            let (Some(e), Some(l)) = (earlier, later) else {
                panic!(
                    "waiver ({:?}, {:?}) names a missing rule",
                    w.earlier, w.later
                );
            };
            assert!(
                e < l,
                "waiver ({:?}, {:?}) is not earlier-first",
                w.earlier,
                w.later
            );
            assert!(!w.reason.trim().is_empty(), "waiver reasons are required");
        }
    }

    /// The naive scan the screens must never disagree with.
    fn classify_unscreened(table: &PatternTable, message: &str) -> Option<(usize, ErrorCategory)> {
        table
            .rules()
            .iter()
            .position(|p| p.fragments().iter().all(|f| message.contains(f)))
            .map(|i| (i, table.rules()[i].category()))
    }

    #[test]
    fn screens_never_change_classification() {
        let table = PatternTable::curated();
        let mut corpus: Vec<String> = Vec::new();
        for cat in ErrorCategory::ALL {
            for variant in 0..16 {
                corpus.push(templates::error_message(cat, variant));
            }
        }
        for variant in 0..200 {
            corpus.push(templates::noise_message(variant).1);
        }
        // Truncations exercise the min-len screen; they must degrade to
        // whatever the naive scan says, never to a different rule.
        corpus.push("Machine Check Exceptio".into());
        corpus.push("".into());
        for msg in &corpus {
            assert_eq!(
                table.classify_index(msg),
                classify_unscreened(&table, msg),
                "screen diverged on {msg:?}"
            );
        }
    }

    proptest::proptest! {
        /// Arbitrary (including non-ASCII) messages: the screened byte
        /// path and the naive `str::contains` scan always agree.
        #[test]
        fn classify_bytes_matches_str_contains(msg in ".{0,120}") {
            let table = PatternTable::curated();
            proptest::prop_assert_eq!(
                table.classify_index_bytes(msg.as_bytes()),
                classify_unscreened(&table, &msg)
            );
        }
    }

    #[test]
    fn filter_columns_matches_record_filter() {
        let mut logs = crate::input::LogCollection::new();
        // Enough volume that threads=4 takes the parallel chunked path.
        for i in 0..2500u32 {
            logs.syslog.push(format!(
                "2013-03-28 12:30:{:02} nid{:05} kernel: Machine Check Exception: bank {i}",
                i % 60,
                i % 8
            ));
            logs.syslog.push(format!(
                "2013-03-28 12:31:{:02} nid{:05} ntpd: time slew +0.00{i}s",
                i % 60,
                i % 8
            ));
        }
        logs.syslog
            .push("2013-03-28 12:30:00 smw xtnmd: heartbeat fault on c0-0c1s2n3".into());
        logs.hwerr
            .push("2013-03-28 12:30:02|c0-0c0s1n0|MEM_UE|FATAL|dimm=1".into());
        logs.netwatch
            .push("2013-03-28 12:30:03 netwatch LINK_FAILED coord=(1,2,3) dim=X".into());

        let table = PatternTable::curated();
        let parsed = crate::parse::parse_collection(&logs);
        let (want_entries, want_stats) = filter_logs(&parsed, &table);

        let sources = crate::parse::collection_lines(&logs);
        let cols = crate::parse::parse_columns_threads(&sources, 1);
        for threads in [1, 4] {
            let (entries, stats) = filter_columns(&cols, &table, threads);
            assert_eq!(entries, want_entries, "threads={threads}");
            assert_eq!(stats, want_stats, "threads={threads}");
        }
    }
}
