//! Stage 2: filtering — from parsed records to categorized error entries.
//!
//! The consolidated syslog is overwhelmingly operational chatter; this
//! stage keeps only lines matching a curated **pattern table** and tags
//! them with an [`ErrorCategory`]. The table below was written against the
//! message phrasings observed in the logs (as the real LogDiver's template
//! base was reverse-engineered from Cray's `craylog` output) — it is
//! deliberately independent of the emitting code and is exercised against
//! both matching and non-matching corpora in the tests.

use logdiver_types::{ErrorCategory, NodeId, Severity, Timestamp};
use serde::{Deserialize, Serialize};

use crate::parse::ParsedLogs;

/// Which source a filtered entry came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntrySource {
    /// Consolidated syslog.
    Syslog,
    /// Hardware error log.
    HwErr,
    /// HSN netwatch.
    Netwatch,
}

/// One categorized error-log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilteredEntry {
    /// When it was logged.
    pub timestamp: Timestamp,
    /// Assigned category.
    pub category: ErrorCategory,
    /// Severity (from the record when structured, from the category
    /// otherwise).
    pub severity: Severity,
    /// Reporting node, when one is identifiable.
    pub node: Option<NodeId>,
    /// Originating source.
    pub source: EntrySource,
}

/// A substring-conjunction pattern: matches when *all* fragments occur.
#[derive(Debug, Clone)]
pub struct Pattern {
    fragments: &'static [&'static str],
    category: ErrorCategory,
}

/// The curated pattern table (first match wins).
#[derive(Debug, Clone)]
pub struct PatternTable {
    patterns: Vec<Pattern>,
}

impl Default for PatternTable {
    fn default() -> Self {
        Self::curated()
    }
}

impl PatternTable {
    /// The curated table for Cray XE/XK syslog streams.
    pub fn curated() -> Self {
        use ErrorCategory::*;
        let patterns = vec![
            Pattern {
                fragments: &["Machine Check Exception"],
                category: MachineCheckException,
            },
            Pattern {
                fragments: &["Machine Check", "unrecoverable"],
                category: MachineCheckException,
            },
            Pattern {
                fragments: &["DRAM ECC error"],
                category: MemoryUncorrectable,
            },
            Pattern {
                fragments: &["EDAC", "UE row"],
                category: MemoryUncorrectable,
            },
            Pattern {
                fragments: &["uncorrectable memory error"],
                category: MemoryUncorrectable,
            },
            Pattern {
                fragments: &["EDAC", "CE row"],
                category: MemoryCorrectable,
            },
            Pattern {
                fragments: &["LCB lane shutdown"],
                category: GeminiLinkFailure,
            },
            Pattern {
                fragments: &["link failed"],
                category: GeminiLinkFailure,
            },
            Pattern {
                fragments: &["running degraded", "lanes up"],
                category: GeminiLaneDegrade,
            },
            Pattern {
                fragments: &["route table recomputation"],
                category: GeminiRouteReconfig,
            },
            Pattern {
                fragments: &["traffic quiesced"],
                category: GeminiRouteReconfig,
            },
            Pattern {
                fragments: &["heartbeat fault"],
                category: NodeHeartbeatFault,
            },
            Pattern {
                fragments: &["declaring node dead"],
                category: NodeHeartbeatFault,
            },
            Pattern {
                fragments: &["L0 controller unresponsive"],
                category: BladeControllerFailure,
            },
            Pattern {
                fragments: &["VRM fault"],
                category: VoltageFault,
            },
            Pattern {
                fragments: &["Kernel panic"],
                category: KernelPanic,
            },
            Pattern {
                fragments: &["unable to handle kernel paging request"],
                category: KernelPanic,
            },
            Pattern {
                fragments: &["softlockup detected"],
                category: NodeHang,
            },
            Pattern {
                fragments: &["node unresponsive"],
                category: NodeHang,
            },
            Pattern {
                fragments: &["Connection to service was lost"],
                category: LustreOstFailure,
            },
            Pattern {
                fragments: &["failed over", "I/O will block"],
                category: LustreOstFailure,
            },
            Pattern {
                fragments: &["MDS failover"],
                category: LustreMdsFailover,
            },
            Pattern {
                fragments: &["client evicted"],
                category: LustreClientEviction,
            },
            Pattern {
                fragments: &["Double Bit ECC Error"],
                category: GpuDoubleBitError,
            },
            Pattern {
                fragments: &["fallen off the bus"],
                category: GpuBusError,
            },
            Pattern {
                fragments: &["page retirement"],
                category: GpuPageRetirement,
            },
            Pattern {
                fragments: &["placement failed"],
                category: AlpsLaunchFailure,
            },
            Pattern {
                fragments: &["warm swap"],
                category: MaintenanceNotice,
            },
        ];
        PatternTable { patterns }
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when no patterns are loaded.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Classifies a message; `None` means "operational chatter, discard".
    pub fn classify(&self, message: &str) -> Option<ErrorCategory> {
        self.patterns
            .iter()
            .find(|p| p.fragments.iter().all(|f| message.contains(f)))
            .map(|p| p.category)
    }
}

/// Accounting for the filter stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FilterStats {
    /// Syslog lines examined.
    pub syslog_examined: u64,
    /// Syslog lines kept.
    pub syslog_kept: u64,
    /// Structured records (hwerr + netwatch) kept.
    pub structured_kept: u64,
}

impl FilterStats {
    /// Fraction of syslog discarded as noise.
    pub fn syslog_discard_ratio(&self) -> f64 {
        if self.syslog_examined == 0 {
            0.0
        } else {
            1.0 - self.syslog_kept as f64 / self.syslog_examined as f64
        }
    }
}

/// Filters one syslog record; `None` means "operational chatter, discard".
pub fn entry_from_syslog(
    rec: &craylog::syslog::SyslogRecord,
    table: &PatternTable,
) -> Option<FilteredEntry> {
    table.classify(&rec.message).map(|category| FilteredEntry {
        timestamp: rec.timestamp,
        category,
        severity: category.severity(),
        node: rec.node(),
        source: EntrySource::Syslog,
    })
}

/// Converts one hardware-error record (always kept).
pub fn entry_from_hwerr(rec: &craylog::hwerr::HwErrRecord) -> FilteredEntry {
    FilteredEntry {
        timestamp: rec.timestamp,
        category: rec.category,
        severity: rec.severity,
        node: Some(rec.location.to_nid()),
        source: EntrySource::HwErr,
    }
}

/// Converts one netwatch record (always kept).
pub fn entry_from_netwatch(rec: &craylog::netwatch::NetwatchRecord) -> FilteredEntry {
    use craylog::netwatch::NetwatchEvent::*;
    let category = match rec.event {
        LinkFailed { .. } => ErrorCategory::GeminiLinkFailure,
        LaneDegrade { .. } => ErrorCategory::GeminiLaneDegrade,
        RerouteStart { .. } | RerouteDone { .. } => ErrorCategory::GeminiRouteReconfig,
    };
    FilteredEntry {
        timestamp: rec.timestamp,
        category,
        severity: category.severity(),
        node: None,
        source: EntrySource::Netwatch,
    }
}

/// The key the entry stream is ordered by: time, then node (node-less
/// entries last), with source order (syslog, hwerr, netwatch) breaking the
/// remaining ties — exactly the order the batch path's stable sort
/// produces. The streaming reorder buffer sorts by this same key so both
/// drivers feed the coalescer identically.
pub fn entry_sort_key(e: &FilteredEntry) -> (Timestamp, u32) {
    (e.timestamp, e.node.map(|n| n.value()).unwrap_or(u32::MAX))
}

/// Runs the filter over parsed logs.
pub fn filter_logs(parsed: &ParsedLogs, table: &PatternTable) -> (Vec<FilteredEntry>, FilterStats) {
    filter_logs_threads(parsed, table, 1)
}

/// Below this many syslog records the parallel scan is all overhead.
const PAR_FILTER_MIN_RECORDS: usize = 4096;

/// Runs the filter across `threads` workers, producing exactly what
/// [`filter_logs`] produces.
///
/// Only the syslog scan (the volume) parallelizes; per-chunk keeps are
/// concatenated in chunk order — i.e. record order — before the same stable
/// sort the serial path runs, so ties resolve identically.
pub fn filter_logs_threads(
    parsed: &ParsedLogs,
    table: &PatternTable,
    threads: usize,
) -> (Vec<FilteredEntry>, FilterStats) {
    let mut entries = Vec::new();
    let mut stats = FilterStats::default();

    if threads <= 1 || parsed.syslog.len() < PAR_FILTER_MIN_RECORDS {
        for rec in &parsed.syslog {
            stats.syslog_examined += 1;
            if let Some(entry) = entry_from_syslog(rec, table) {
                stats.syslog_kept += 1;
                entries.push(entry);
            }
        }
    } else {
        let chunk_len = (parsed.syslog.len() / (threads * 4)).max(PAR_FILTER_MIN_RECORDS / 4);
        let chunks: Vec<&[craylog::syslog::SyslogRecord]> =
            parsed.syslog.chunks(chunk_len).collect();
        let results = crate::exec::par_map(threads, chunks, |recs| {
            let kept: Vec<FilteredEntry> = recs
                .iter()
                .filter_map(|rec| entry_from_syslog(rec, table))
                .collect();
            (recs.len() as u64, kept)
        });
        for (examined, kept) in results {
            stats.syslog_examined += examined;
            stats.syslog_kept += kept.len() as u64;
            entries.extend(kept);
        }
    }

    for rec in &parsed.hwerr {
        stats.structured_kept += 1;
        entries.push(entry_from_hwerr(rec));
    }
    for rec in &parsed.netwatch {
        stats.structured_kept += 1;
        entries.push(entry_from_netwatch(rec));
    }
    entries.sort_by_key(entry_sort_key);
    (entries, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use craylog::templates;
    use logdiver_types::ErrorCategory;

    #[test]
    fn table_classifies_every_emitted_template() {
        // The table must recognize every phrasing the machine produces —
        // validated against the emitter corpus without sharing code with it.
        let table = PatternTable::curated();
        for cat in ErrorCategory::ALL {
            for variant in 0..16 {
                let msg = templates::error_message(cat, variant);
                let got = table.classify(&msg);
                assert_eq!(got, Some(cat), "message {msg:?} classified as {got:?}");
            }
        }
    }

    #[test]
    fn table_discards_noise_corpus() {
        let table = PatternTable::curated();
        for variant in 0..200 {
            let (_tag, msg) = templates::noise_message(variant);
            assert_eq!(table.classify(&msg), None, "noise matched: {msg:?}");
        }
    }

    #[test]
    fn filter_routes_sources() {
        let mut logs = crate::input::LogCollection::new();
        logs.syslog.push(
            "2013-03-28 12:30:00 nid00004 kernel: Machine Check Exception: bank 2 status 0xdead"
                .into(),
        );
        logs.syslog
            .push("2013-03-28 12:30:01 nid00004 ntpd: time slew +0.001s".into());
        logs.hwerr
            .push("2013-03-28 12:30:02|c0-0c0s1n0|MEM_UE|FATAL|dimm=1".into());
        logs.netwatch
            .push("2013-03-28 12:30:03 netwatch LINK_FAILED coord=(1,2,3) dim=X".into());
        let parsed = crate::parse::parse_collection(&logs);
        let (entries, stats) = filter_logs(&parsed, &PatternTable::curated());
        assert_eq!(entries.len(), 3);
        assert_eq!(stats.syslog_examined, 2);
        assert_eq!(stats.syslog_kept, 1);
        assert_eq!(stats.structured_kept, 2);
        assert!((stats.syslog_discard_ratio() - 0.5).abs() < 1e-12);
        // Entries are time-sorted.
        assert!(entries.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        // hwerr location resolved to a nid: c0-0c0s1n0 = blade 1 node 0 = nid 4.
        assert_eq!(entries[1].node, Some(NodeId::new(4)));
        assert_eq!(entries[2].node, None);
    }

    #[test]
    fn first_match_wins_is_stable() {
        let table = PatternTable::curated();
        // A message with both MCE and panic fragments hits the earlier rule.
        let msg = "Machine Check Exception: then Kernel panic followed";
        assert_eq!(
            table.classify(msg),
            Some(ErrorCategory::MachineCheckException)
        );
    }

    #[test]
    fn empty_message_discards() {
        let table = PatternTable::curated();
        assert_eq!(table.classify(""), None);
        assert!(!table.is_empty());
        assert!(table.len() > 20);
    }
}
