//! Checkpoint economics from measured MTTI.
//!
//! The study's application-level MTTI numbers exist to answer an
//! operational question: *how often should a full-scale application
//! checkpoint, and how much machine capacity does resilience overhead eat?*
//! This module implements the classic first-order model (Young) and Daly's
//! higher-order refinement, and derives per-scale-bucket advice from a
//! [`MetricSet`]'s F3 rows.
//!
//! Model: failures are memoryless with mean time to interrupt `M`; writing
//! a checkpoint costs `δ`; on failure the application restarts from the
//! last checkpoint (restart cost `R`) and loses half a checkpoint interval
//! of work on average. The wasted fraction of machine time is approximately
//!
//! ```text
//! waste(τ) ≈ δ/τ + (τ/2 + δ + R)/M
//! ```
//!
//! minimized at `τ* = √(2δM)` (Young). Daly's refinement corrects `τ*` for
//! `δ` not being ≪ `M`.

use logdiver_types::NodeType;
use serde::{Deserialize, Serialize};

use crate::metrics::MetricSet;

/// Young's first-order optimal checkpoint interval `√(2δM)` (hours).
///
/// # Panics
///
/// Panics when `delta_hours` or `mtti_hours` is not positive.
pub fn young_interval(delta_hours: f64, mtti_hours: f64) -> f64 {
    assert!(
        delta_hours > 0.0 && mtti_hours > 0.0,
        "costs must be positive"
    );
    (2.0 * delta_hours * mtti_hours).sqrt()
}

/// Daly's higher-order optimal interval (hours).
///
/// For `δ < M/2`:
/// `τ* = √(2δM) · [1 + (1/3)√(δ/2M) + (δ/2M)/9] − δ`; for larger `δ` the
/// model degenerates and `τ* = M` is returned (checkpointing cannot keep
/// up).
///
/// # Panics
///
/// Panics when `delta_hours` or `mtti_hours` is not positive.
pub fn daly_interval(delta_hours: f64, mtti_hours: f64) -> f64 {
    assert!(
        delta_hours > 0.0 && mtti_hours > 0.0,
        "costs must be positive"
    );
    if delta_hours >= mtti_hours / 2.0 {
        return mtti_hours;
    }
    let x = delta_hours / (2.0 * mtti_hours);
    (2.0 * delta_hours * mtti_hours).sqrt() * (1.0 + x.sqrt() / 3.0 + x / 9.0) - delta_hours
}

/// First-order wasted fraction of machine time at interval `tau`.
///
/// # Panics
///
/// Panics when any argument is not positive (`restart_hours` may be zero).
pub fn waste_fraction(
    tau_hours: f64,
    delta_hours: f64,
    mtti_hours: f64,
    restart_hours: f64,
) -> f64 {
    assert!(
        tau_hours > 0.0 && delta_hours > 0.0 && mtti_hours > 0.0,
        "costs must be positive"
    );
    assert!(restart_hours >= 0.0, "restart cost cannot be negative");
    (delta_hours / tau_hours + (tau_hours / 2.0 + delta_hours + restart_hours) / mtti_hours)
        .min(1.0)
}

/// Checkpoint advice for one scale bucket.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointAdvice {
    /// Node class.
    pub node_type: NodeType,
    /// Bucket bounds (inclusive widths).
    pub lo: u32,
    /// Upper bound.
    pub hi: u32,
    /// Measured MTTI feeding the model (hours).
    pub mtti_hours: f64,
    /// Assumed checkpoint write cost (hours).
    pub delta_hours: f64,
    /// Optimal interval, Daly (hours).
    pub optimal_interval_hours: f64,
    /// Wasted machine fraction at the optimum.
    pub waste_at_optimum: f64,
}

/// Derives advice for every F3 bucket with a measured MTTI.
///
/// `delta_hours` is the checkpoint write cost (a 22,640-node application
/// dumping to Lustre at aggregate ~1 TB/s writes tens of TB in ~5–15 min;
/// pass what matches the modeled application), `restart_hours` the restart
/// cost.
pub fn advise(m: &MetricSet, delta_hours: f64, restart_hours: f64) -> Vec<CheckpointAdvice> {
    m.mtti
        .iter()
        .filter_map(|row| {
            let mtti = row.mtti_hours?;
            let tau = daly_interval(delta_hours, mtti);
            Some(CheckpointAdvice {
                node_type: row.node_type,
                lo: row.lo,
                hi: row.hi,
                mtti_hours: mtti,
                delta_hours,
                optimal_interval_hours: tau,
                waste_at_optimum: waste_fraction(tau, delta_hours, mtti, restart_hours),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_matches_closed_form() {
        // δ = 0.1 h, M = 20 h → τ = √4 = 2 h.
        assert!((young_interval(0.1, 20.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn daly_refines_young_downward_by_delta() {
        let (d, m) = (0.1, 20.0);
        let young = young_interval(d, m);
        let daly = daly_interval(d, m);
        // Daly ≈ Young·(1 + small) − δ; close to Young for δ ≪ M.
        assert!((daly - young).abs() < 0.15, "young {young} daly {daly}");
        assert!(daly < young + 0.1);
    }

    #[test]
    fn daly_degenerates_when_checkpointing_cannot_keep_up() {
        assert_eq!(daly_interval(6.0, 8.0), 8.0);
    }

    #[test]
    fn waste_is_minimized_near_the_optimum() {
        let (d, m, r) = (0.15, 7.9, 0.25); // full-scale Blue Waters regime
        let tau = daly_interval(d, m);
        let at_opt = waste_fraction(tau, d, m, r);
        for factor in [0.25, 0.5, 2.0, 4.0] {
            let w = waste_fraction(tau * factor, d, m, r);
            assert!(
                w >= at_opt - 1e-9,
                "waste at {factor}×τ* ({w:.4}) below optimum ({at_opt:.4})"
            );
        }
        // In the measured full-scale regime the overhead is substantial —
        // the paper's energy-cost message.
        assert!(at_opt > 0.15 && at_opt < 0.6, "waste {at_opt}");
    }

    #[test]
    fn longer_mtti_means_longer_intervals_and_less_waste() {
        let d = 0.1;
        let short = daly_interval(d, 8.0);
        let long = daly_interval(d, 800.0);
        assert!(long > short);
        let w_short = waste_fraction(short, d, 8.0, 0.1);
        let w_long = waste_fraction(long, d, 800.0, 0.1);
        assert!(w_long < w_short / 3.0);
    }

    #[test]
    fn advise_covers_buckets_with_mtti() {
        use crate::classify::ClassifiedRun;
        use crate::metrics::compute;
        use crate::ranges::RangeSet;
        use crate::workload::{AppRun, Termination};
        use logdiver_types::{
            AppId, ExitClass, ExitStatus, FailureCause, JobId, NodeSet, SimDuration, Timestamp,
            UserId,
        };
        let mk = |apid: u64, class: ExitClass| ClassifiedRun {
            run: AppRun {
                apid: AppId::new(apid),
                job: JobId::new(apid),
                user: UserId::new(0),
                node_type: NodeType::Xe,
                width: 1,
                nodes: RangeSet::from_node_set(&NodeSet::from_range(
                    logdiver_types::NodeId::new(0),
                    logdiver_types::NodeId::new(0),
                )),
                start: Timestamp::PRODUCTION_EPOCH,
                end: Timestamp::PRODUCTION_EPOCH + SimDuration::from_hours(10),
                termination: match class {
                    ExitClass::Success => Termination::Exited(ExitStatus::SUCCESS),
                    _ => Termination::Exited(ExitStatus::with_signal(9)),
                },
            },
            class,
            matched_events: Vec::new(),
            confidence: crate::classify::AttributionConfidence::Full,
        };
        let runs = vec![
            mk(1, ExitClass::Success),
            mk(2, ExitClass::SystemFailure(FailureCause::Memory)),
        ];
        let m = compute(&runs, &[]);
        let advice = advise(&m, 0.1, 0.1);
        assert_eq!(advice.len(), 1, "one bucket has interrupts");
        let a = advice[0];
        assert!((a.mtti_hours - 20.0).abs() < 1e-9);
        assert!(a.optimal_interval_hours > 1.0);
        assert!(a.waste_at_optimum > 0.0 && a.waste_at_optimum < 1.0);
    }

    #[test]
    #[should_panic(expected = "costs must be positive")]
    fn zero_delta_panics() {
        let _ = young_interval(0.0, 10.0);
    }
}
