//! Deterministic parallel execution for the batch pipeline.
//!
//! Two primitives, both with a hard ordering contract: **results come back
//! in input order**, no matter how work was scheduled across threads. That
//! contract is what lets `analyze --threads N` produce output byte-identical
//! to the serial path — every parallel stage is an order-preserving map, and
//! every merge is a deterministic index-ordered concatenation (DESIGN.md
//! §13).
//!
//! - [`par_map`] — map over an in-memory `Vec` on a work-stealing pool.
//!   Items go into a shared [`Injector`]; each worker drains its local deque
//!   first, refills from the injector in batches, and steals from siblings
//!   when both are dry. Tagging every item with its index makes the merge
//!   trivially deterministic.
//! - [`par_map_stream`] — map over a *sequentially produced* stream of work
//!   items (file chunks read by the caller) with bounded in-flight work, so
//!   a multi-gigabyte log file never materializes in memory just to be
//!   fanned out.
//!
//! Both fall back to a plain serial loop for `threads <= 1` or trivially
//! small inputs, so the serial pipeline does not pay for thread spawns.

use crossbeam::channel;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};

/// Below this many items a parallel map is all overhead; run serial.
const PAR_MIN_ITEMS: usize = 2;

/// How many in-flight chunks [`par_map_stream`] allows per worker before the
/// producer blocks. Small: bounds raw-text memory during file parsing.
const STREAM_INFLIGHT_PER_WORKER: usize = 2;

/// Maps `f` over `items` using `threads` workers, returning results in
/// input order.
///
/// Work is distributed by work stealing: all items start in a shared
/// injector; workers pull batches into local deques and steal from each
/// other when starved, so uneven per-item cost (one chunk full of corrupt
/// lines, one run with thousands of candidate events) cannot idle a core.
///
/// Determinism: `f` is applied exactly once per item and the output vector
/// is assembled by item index, so the result equals
/// `items.into_iter().map(f).collect()` for any thread count — only faster.
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    if threads <= 1 || len < PAR_MIN_ITEMS {
        return items.into_iter().map(f).collect();
    }
    let workers = threads.min(len);

    let injector = Injector::new();
    for task in items.into_iter().enumerate() {
        injector.push(task);
    }

    let locals: Vec<Worker<(usize, T)>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<(usize, T)>> = locals.iter().map(Worker::stealer).collect();
    let (tx, rx) = channel::unbounded::<(usize, R)>();

    let mut slots: Vec<Option<R>> = Vec::with_capacity(len);
    slots.resize_with(len, || None);

    std::thread::scope(|scope| {
        for (wi, local) in locals.into_iter().enumerate() {
            let tx = tx.clone();
            let injector = &injector;
            let stealers = &stealers;
            let f = &f;
            scope.spawn(move || {
                while let Some((idx, item)) = next_task(&local, injector, stealers, wi) {
                    // The receiver outlives all workers (it is drained in
                    // this scope after the senders drop), so send cannot
                    // fail while work remains.
                    let _ = tx.send((idx, f(item)));
                }
            });
        }
        drop(tx);
        for (idx, result) in rx.iter() {
            slots[idx] = Some(result);
        }
    });

    slots
        .into_iter()
        // lint: allow(no-panic) the scope join above guarantees every slot was filled; a panicking worker has already propagated through the scope
        .map(|r| r.expect("par_map worker dropped a task"))
        .collect()
}

/// One scheduling step: local deque first, then an injector batch, then a
/// sweep over sibling deques. `None` means no task was observable anywhere —
/// with a fixed task population that worker is done (any task it missed is
/// held by the worker that will execute it).
fn next_task<T>(
    local: &Worker<T>,
    injector: &Injector<T>,
    stealers: &[Stealer<T>],
    own_index: usize,
) -> Option<T> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(task) => return Some(task),
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    for (si, stealer) in stealers.iter().enumerate() {
        if si == own_index {
            continue;
        }
        loop {
            match stealer.steal_batch_and_pop(local) {
                Steal::Success(task) => return Some(task),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
    }
    None
}

/// Maps `f` over a stream of work items pulled one at a time from `source`,
/// with bounded in-flight work, returning results in production order.
///
/// The producer (this thread) pulls items and feeds a bounded channel;
/// `threads` consumers apply `f`. At most `threads ×`
/// [`STREAM_INFLIGHT_PER_WORKER`] items are buffered, so when items are
/// chunks of raw log text the unparsed bytes in memory stay bounded
/// regardless of file size.
///
/// If `source` returns an error, feeding stops, in-flight work is drained,
/// and the error is returned.
pub fn par_map_stream<T, R, E, S, F>(threads: usize, mut source: S, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    S: FnMut() -> Result<Option<T>, E>,
    F: Fn(T) -> R + Sync,
{
    if threads <= 1 {
        let mut out = Vec::new();
        while let Some(item) = source()? {
            out.push(f(item));
        }
        return Ok(out);
    }

    let (work_tx, work_rx) = channel::bounded::<(usize, T)>(threads * STREAM_INFLIGHT_PER_WORKER);
    let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let work_rx = work_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            scope.spawn(move || {
                for (seq, item) in work_rx.iter() {
                    let _ = res_tx.send((seq, f(item)));
                }
            });
        }
        drop(work_rx);
        drop(res_tx);

        let mut feed_err = None;
        let mut seq = 0usize;
        loop {
            match source() {
                Ok(Some(item)) => {
                    if work_tx.send((seq, item)).is_err() {
                        break; // all workers gone; cannot happen while we hold work
                    }
                    seq += 1;
                }
                Ok(None) => break,
                Err(e) => {
                    feed_err = Some(e);
                    break;
                }
            }
        }
        drop(work_tx);

        let mut results: Vec<(usize, R)> = res_rx.iter().collect();
        if let Some(e) = feed_err {
            return Err(e);
        }
        results.sort_by_key(|(s, _)| *s);
        Ok(results.into_iter().map(|(_, r)| r).collect())
    })
}

/// Splits `items` into at most `pieces` contiguous chunks of near-equal
/// size, preserving order. Used by pipeline stages that parallelize over
/// chunks (parse, filter) so per-item dispatch cost amortizes; chunk
/// results are concatenated in chunk order, which equals input order.
pub fn chunked<T>(items: Vec<T>, pieces: usize) -> Vec<Vec<T>> {
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let pieces = pieces.clamp(1, len);
    let base = len / pieces;
    let extra = len % pieces;
    let mut chunks = Vec::with_capacity(pieces);
    let mut it = items.into_iter();
    for i in 0..pieces {
        let take = base + usize::from(i < extra);
        chunks.push(it.by_ref().take(take).collect());
    }
    chunks
}

/// The worker count to use for "all cores": the machine's available
/// parallelism, with a serial fallback when it cannot be queried.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 4, 8] {
            let items: Vec<u64> = (0..10_000).collect();
            let out = par_map(threads, items.clone(), |x| x * 3 + 1);
            let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_uneven_work() {
        // A few very expensive items early on must not serialize the rest.
        let items: Vec<usize> = (0..256).collect();
        let out = par_map(4, items, |i| {
            let spins = if i < 4 { 200_000 } else { 10 };
            let mut acc = i as u64;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            }
            (i, acc)
        });
        assert_eq!(out.len(), 256);
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }

    #[test]
    fn par_map_empty_and_tiny() {
        assert_eq!(par_map(8, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(8, vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_stream_matches_serial() {
        for threads in [1, 2, 4] {
            let mut n = 0u64;
            let source = move || -> Result<Option<u64>, ()> {
                if n < 500 {
                    n += 1;
                    Ok(Some(n))
                } else {
                    Ok(None)
                }
            };
            let out = par_map_stream(threads, source, |x| x * x).unwrap();
            let expect: Vec<u64> = (1..=500).map(|x| x * x).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_stream_propagates_source_error() {
        let mut n = 0u32;
        let source = move || -> Result<Option<u32>, &'static str> {
            n += 1;
            if n > 10 {
                Err("disk on fire")
            } else {
                Ok(Some(n))
            }
        };
        let err = par_map_stream(4, source, |x| x).unwrap_err();
        assert_eq!(err, "disk on fire");
    }

    #[test]
    fn chunked_covers_everything_in_order() {
        let items: Vec<u32> = (0..97).collect();
        for pieces in [1, 2, 3, 8, 97, 200] {
            let chunks = chunked(items.clone(), pieces);
            assert!(chunks.len() <= pieces.max(1));
            assert!(chunks.iter().all(|c| !c.is_empty()));
            let flat: Vec<u32> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, items, "pieces={pieces}");
        }
        assert!(chunked(Vec::<u32>::new(), 4).is_empty());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
