//! Property tests for the ambiguity machinery: every witness the verifier
//! constructs must (1) match both rules it cites — the pair really is
//! jointly satisfiable — and (2) when the verifier claims the earlier rule
//! wins, replaying the witness through `classify` must return the earlier
//! rule's category. Runs over the curated table and over randomly composed
//! tables drawn from a pool of realistic fragments.

use logdiver::filter::{Pattern, PatternTable};
use logdiver_lint::rules::{build_witness, table_overlaps};
use logdiver_types::ErrorCategory;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fragment conjunctions to compose random tables from — a mix of curated
/// phrasings, overlapping variants, and disjoint noise.
const POOL: &[&[&str]] = &[
    &["Machine Check Exception"],
    &["Machine Check", "unrecoverable"],
    &["DRAM ECC error"],
    &["EDAC", "UE row"],
    &["EDAC", "CE row"],
    &["link failed"],
    &["LCB lane shutdown"],
    &["heartbeat fault"],
    &["declaring node dead"],
    &["node unresponsive"],
    &["node dead"],
    &["dead node"],
    &["VRM fault"],
    &["Kernel panic"],
    &["failed over", "I/O will block"],
    &["placement failed"],
    &["Double Bit ECC Error"],
    &["warm swap"],
    &["traffic quiesced"],
    &["client evicted"],
];

fn random_table(seed: u64) -> PatternTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = rng.random_range(2..=8usize);
    let rules = (0..len)
        .map(|_| {
            let frags = POOL[rng.random_range(0..POOL.len())];
            let cat = ErrorCategory::ALL[rng.random_range(0..ErrorCategory::ALL.len())];
            Pattern::new(frags, cat)
        })
        .collect();
    PatternTable::from_rules(rules)
}

fn assert_overlap_invariants(table: &PatternTable) {
    for o in table_overlaps(table) {
        let earlier = &table.rules()[o.earlier];
        let later = &table.rules()[o.later];
        // (1) The witness demonstrates joint satisfiability of the pair.
        assert!(
            earlier.matches(&o.witness),
            "witness misses earlier rule: {o:#?}"
        );
        assert!(
            later.matches(&o.witness),
            "witness misses later rule: {o:#?}"
        );
        // First-match-wins can only be won by the earlier side or an even
        // earlier rule — never the later side, never nothing.
        let (winner, category) = o.winner.expect("a matching table cannot classify to None");
        assert!(winner <= o.earlier, "winner after earlier rule: {o:#?}");
        // (2) When the verifier reports the earlier rule as winner, the
        // public classify() agrees, category included.
        if winner == o.earlier {
            assert_eq!(table.classify(&o.witness), Some(earlier.category()));
            assert_eq!(category, earlier.category());
        }
    }
}

#[test]
fn curated_witnesses_match_and_resolve_to_earlier_rule() {
    let table = PatternTable::curated();
    assert_overlap_invariants(&table);
    // On the curated table specifically, *every* overlap resolves to the
    // earlier member of the pair (no tie-breaker absorption).
    for o in table_overlaps(&table) {
        assert_eq!(o.winner.map(|(w, _)| w), Some(o.earlier));
    }
}

#[test]
fn witness_skips_contained_fragments() {
    let a = Pattern::new(&["EDAC", "UE row"], ErrorCategory::MemoryUncorrectable);
    let b = Pattern::new(&["EDAC", "CE row"], ErrorCategory::MemoryCorrectable);
    let w = build_witness(&a, &b);
    assert_eq!(w, "EDAC UE row CE row", "duplicate fragment joined once");
    assert!(a.matches(&w) && b.matches(&w));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Overlap invariants hold for arbitrary tables composed from the pool.
    #[test]
    fn random_table_witnesses_hold(seed in 0u64..10_000) {
        assert_overlap_invariants(&random_table(seed));
    }

    /// A witness for any two pool rules matches both, regardless of table
    /// membership — joint satisfiability is a property of the pair alone.
    #[test]
    fn any_pair_witness_matches_both(a in 0usize..POOL.len(), b in 0usize..POOL.len()) {
        let pa = Pattern::new(POOL[a], ErrorCategory::KernelPanic);
        let pb = Pattern::new(POOL[b], ErrorCategory::NodeHang);
        let w = build_witness(&pa, &pb);
        prop_assert!(pa.matches(&w));
        prop_assert!(pb.matches(&w));
    }
}
