//! Locks the verified state of the committed tree: the curated table passes
//! every rule-set check, its waiver list is exact (all cited, none stale),
//! and the whole workspace lints clean — the regression test behind the
//! "zero findings on the committed tree" guarantee CI enforces.

use std::path::PathBuf;

use logdiver::filter::PatternTable;
use logdiver_lint::rules::{table_overlaps, verify_table, TableCheckOptions};
use logdiver_lint::{driver, source};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn curated_table_verifies_clean() {
    let findings = verify_table(&PatternTable::curated(), &TableCheckOptions::default());
    assert!(
        findings.is_empty(),
        "curated table has findings: {findings:#?}"
    );
}

#[test]
fn curated_overlaps_are_exactly_the_waivers() {
    let table = PatternTable::curated();
    let overlaps = table_overlaps(&table);
    assert_eq!(
        overlaps.len(),
        table.waivers().len(),
        "every detected overlap needs a waiver and every waiver a detected overlap"
    );
    for o in &overlaps {
        assert!(o.waived, "unwaived overlap: {o:#?}");
        let (winner, category) = o.winner.expect("witness must classify");
        assert_eq!(winner, o.earlier, "witness hijacked: {o:#?}");
        assert_eq!(category, table.rules()[o.earlier].category());
        // The witness really demonstrates joint satisfiability.
        assert!(table.rules()[o.earlier].matches(&o.witness));
        assert!(table.rules()[o.later].matches(&o.witness));
    }
}

#[test]
fn workspace_lints_clean() {
    let findings = source::lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(findings.is_empty(), "workspace has findings: {findings:#?}");
}

#[test]
fn full_run_passes_with_deny_warnings() {
    let report = driver::run_analyzers(Some(workspace_root())).expect("analyzers run");
    assert_eq!(report.errors(), 0);
    assert_eq!(report.warnings(), 0);
    assert!(!report.failed(true), "must survive --deny warnings");
}

#[test]
fn guarded_scope_files_exist() {
    // The invariant scopes name real files; a rename must update the linter
    // (otherwise a guard silently stops applying).
    let root = workspace_root();
    for rel in [
        "crates/core/src/parse.rs",
        "crates/core/src/filter.rs",
        "crates/core/src/coalesce.rs",
        "crates/core/src/matcher.rs",
        "crates/core/src/classify.rs",
        "crates/core/src/pipeline.rs",
        "crates/core/src/exec.rs",
        "crates/stream/src/checkpoint.rs",
        "crates/stream/src/state.rs",
        "crates/stream/src/index.rs",
        "crates/stream/src/health.rs",
        "crates/core/src/checkpoint.rs",
        "crates/types/src/time.rs",
    ] {
        assert!(root.join(rel).is_file(), "guarded file {rel} is missing");
    }
}
