//! Mutation self-tests: seed each class of defect the linter exists to
//! catch — into the *real* curated table and the *real* workspace sources —
//! and demand exactly the expected finding, at the expected span, and
//! nothing else. A verifier that cannot see a planted bug is worse than no
//! verifier; these tests are the proof the analyzers bite.

use std::path::PathBuf;

use logdiver::filter::{OverlapWaiver, Pattern, PatternTable};
use logdiver_lint::rules::{verify_table, TableCheckOptions};
use logdiver_lint::source::lint_source;
use logdiver_types::ErrorCategory::*;

fn structural_only() -> TableCheckOptions {
    TableCheckOptions {
        coverage: false,
        templates: false,
    }
}

/// The curated rules plus one appended rule, waivers preserved.
fn curated_plus(extra: Pattern) -> PatternTable {
    let curated = PatternTable::curated();
    let mut rules = curated.rules().to_vec();
    rules.push(extra);
    PatternTable::from_rules(rules).with_waivers(curated.waivers().to_vec())
}

/// Reads a real workspace source file.
fn workspace_file(rel: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// (a) a shadowed pattern
// ---------------------------------------------------------------------------

#[test]
fn seeded_shadowed_rule_in_curated_table() {
    // "LCB lane shutdown" (rule 7) fits inside the seeded rule's only
    // fragment, so the seeded rule can never win.
    let table = curated_plus(Pattern::new(&["LCB lane shutdown now"], GeminiLinkFailure));
    let findings = verify_table(&table, &structural_only());
    assert_eq!(findings.len(), 1, "exactly one finding: {findings:#?}");
    assert_eq!(findings[0].rule, "shadowed-rule");
    assert_eq!(findings[0].file, "<ruleset>");
    assert_eq!(
        findings[0].line as usize,
        table.len(),
        "span is the dead (later) rule"
    );
}

#[test]
fn seeded_shadowed_rule_minimal() {
    let table = PatternTable::from_rules(vec![
        Pattern::new(&["link"], GeminiLinkFailure),
        Pattern::new(&["link failed"], GeminiLinkFailure),
    ]);
    let findings = verify_table(&table, &structural_only());
    assert_eq!(findings.len(), 1);
    assert_eq!((findings[0].rule, findings[0].line), ("shadowed-rule", 2));
}

// ---------------------------------------------------------------------------
// (b) a cross-category ambiguous pattern
// ---------------------------------------------------------------------------

#[test]
fn seeded_ambiguous_pair_in_curated_table() {
    // Shares the word "heartbeat" with rule "heartbeat fault"
    // (NodeHeartbeatFault) under a different category, with no waiver.
    let table = curated_plus(Pattern::new(&["heartbeat timeout"], NodeHang));
    let findings = verify_table(&table, &structural_only());
    assert_eq!(findings.len(), 1, "exactly one finding: {findings:#?}");
    assert_eq!(findings[0].rule, "ambiguous-pair");
    assert_eq!(findings[0].line as usize, table.len());
    let witness = findings[0]
        .witness
        .as_deref()
        .expect("ambiguity carries a witness");
    assert!(witness.contains("heartbeat fault") && witness.contains("heartbeat timeout"));
}

#[test]
fn seeded_ambiguous_pair_minimal_and_waiver_silences_it() {
    let rules = || {
        vec![
            Pattern::new(&["node dead"], NodeHeartbeatFault),
            Pattern::new(&["node hung"], NodeHang),
        ]
    };
    let findings = verify_table(&PatternTable::from_rules(rules()), &structural_only());
    assert_eq!(findings.len(), 1);
    assert_eq!((findings[0].rule, findings[0].line), ("ambiguous-pair", 2));

    let waived = PatternTable::from_rules(rules()).with_waivers(vec![OverlapWaiver {
        earlier: "node dead",
        later: "node hung",
        reason: "a dead node subsumes a hung one",
    }]);
    assert!(verify_table(&waived, &structural_only()).is_empty());
}

#[test]
fn seeded_misresolved_pair_is_an_error() {
    // The witness for (rule 2, rule 3) is "node dead node hung"; rule 1's
    // "dead node" occurs across the junction and hijacks it with a third
    // category. Waivers keep rule 1's own overlaps out of the way so the
    // hijack is the single finding.
    let table = PatternTable::from_rules(vec![
        Pattern::new(&["dead node"], KernelPanic),
        Pattern::new(&["node dead"], NodeHeartbeatFault),
        Pattern::new(&["node hung"], NodeHang),
    ])
    .with_waivers(vec![
        OverlapWaiver {
            earlier: "dead node",
            later: "node dead",
            reason: "test fixture",
        },
        OverlapWaiver {
            earlier: "dead node",
            later: "node hung",
            reason: "test fixture",
        },
    ]);
    let findings = verify_table(&table, &structural_only());
    assert_eq!(findings.len(), 1, "exactly one finding: {findings:#?}");
    assert_eq!(
        (findings[0].rule, findings[0].line),
        ("misresolved-pair", 3)
    );
}

// ---------------------------------------------------------------------------
// (c) an unwrap() seeded into core/src/classify.rs
// ---------------------------------------------------------------------------

#[test]
fn seeded_unwrap_in_classify() {
    let clean = workspace_file("crates/core/src/classify.rs");
    assert!(
        lint_source("crates/core/src/classify.rs", &clean).is_empty(),
        "the committed file must lint clean for the seed to be attributable"
    );
    let mut mutated = clean.clone();
    mutated.push_str("fn seeded(x: Option<u8>) -> u8 { x.unwrap() }\n");
    let expected_line = clean.lines().count() as u32 + 1;
    let findings = lint_source("crates/core/src/classify.rs", &mutated);
    assert_eq!(findings.len(), 1, "exactly one finding: {findings:#?}");
    assert_eq!(findings[0].rule, "no-panic");
    assert_eq!(findings[0].file, "crates/core/src/classify.rs");
    assert_eq!(findings[0].line, expected_line);
}

// ---------------------------------------------------------------------------
// (d) an Instant::now() seeded into crates/stream
// ---------------------------------------------------------------------------

#[test]
fn seeded_instant_now_in_stream_engine() {
    let clean = workspace_file("crates/stream/src/engine.rs");
    assert!(lint_source("crates/stream/src/engine.rs", &clean).is_empty());
    let mut mutated = clean.clone();
    mutated.push_str("fn seeded_clock() -> std::time::Instant { std::time::Instant::now() }\n");
    let expected_line = clean.lines().count() as u32 + 1;
    let findings = lint_source("crates/stream/src/engine.rs", &mutated);
    assert_eq!(findings.len(), 1, "exactly one finding: {findings:#?}");
    assert_eq!(findings[0].rule, "wall-clock");
    assert_eq!(findings[0].line, expected_line);
}

// ---------------------------------------------------------------------------
// further seeds: thread spawns, checkpoint-state clocks, template drift
// ---------------------------------------------------------------------------

#[test]
fn seeded_thread_spawn_in_stream_tail() {
    let clean = workspace_file("crates/stream/src/tail.rs");
    assert!(lint_source("crates/stream/src/tail.rs", &clean).is_empty());
    let mut mutated = clean.clone();
    mutated.push_str("fn seeded_bg() { std::thread::spawn(|| {}); }\n");
    let findings = lint_source("crates/stream/src/tail.rs", &mutated);
    assert_eq!(findings.len(), 1, "exactly one finding: {findings:#?}");
    assert_eq!(findings[0].rule, "thread-spawn");
    assert_eq!(findings[0].line, clean.lines().count() as u32 + 1);
}

#[test]
fn seeded_wall_clock_type_in_checkpoint_state() {
    let clean = workspace_file("crates/stream/src/state.rs");
    assert!(lint_source("crates/stream/src/state.rs", &clean).is_empty());
    let mut mutated = clean.clone();
    mutated.push_str("struct SeededClock { at: std::time::Instant }\n");
    let findings = lint_source("crates/stream/src/state.rs", &mutated);
    assert_eq!(findings.len(), 1, "exactly one finding: {findings:#?}");
    assert_eq!(findings[0].rule, "checkpoint-state-clock");
    assert_eq!(findings[0].line, clean.lines().count() as u32 + 1);
}

#[test]
fn dropping_a_rule_surfaces_template_drift_and_coverage() {
    // Remove the MaintenanceNotice rule: its templates stop classifying and
    // the category becomes unreachable.
    let curated = PatternTable::curated();
    let rules: Vec<Pattern> = curated
        .rules()
        .iter()
        .filter(|p| p.category() != MaintenanceNotice)
        .cloned()
        .collect();
    let table = PatternTable::from_rules(rules).with_waivers(curated.waivers().to_vec());
    let findings = verify_table(&table, &TableCheckOptions::default());
    assert!(
        findings.iter().any(|f| f.rule == "template-drift"),
        "templates for the dropped category must drift: {findings:#?}"
    );
    assert!(findings.iter().any(|f| f.rule == "unreachable-category"));
    assert!(findings
        .iter()
        .all(|f| f.rule == "template-drift" || f.rule == "unreachable-category"));
}

#[test]
fn stale_waiver_is_flagged() {
    let table = PatternTable::from_rules(vec![
        Pattern::new(&["Kernel panic"], KernelPanic),
        Pattern::new(&["warm swap"], MaintenanceNotice),
    ])
    .with_waivers(vec![OverlapWaiver {
        earlier: "Kernel panic",
        later: "warm swap",
        reason: "these rules never overlapped",
    }]);
    let findings = verify_table(&table, &structural_only());
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "stale-waiver");
}

// ---------------------------------------------------------------------------
// interprocedural seeds: the graph and contract analyzers must bite too
// ---------------------------------------------------------------------------

/// The real workspace sources, with `mutate` applied to the file at `rel`
/// (empty `rel` mutates nothing).
fn workspace_with(rel: &str, mutate: impl Fn(&str) -> String) -> Vec<(String, String)> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = logdiver_lint::source::collect_workspace(&root).expect("workspace readable");
    if !rel.is_empty() {
        let slot = files
            .iter_mut()
            .find(|(p, _)| p == rel)
            .unwrap_or_else(|| panic!("{rel} not in workspace"));
        slot.1 = mutate(&slot.1);
    }
    files
}

fn design_md() -> String {
    workspace_file("DESIGN.md")
}

#[test]
fn committed_tree_is_clean_for_graph_and_contract() {
    // Every seed below is attributable only because the unmutated tree
    // produces zero findings from both deep analyzers.
    let files = workspace_with("", |t| t.to_string());
    let graph = logdiver_lint::graph::analyze(&files);
    assert!(graph.is_empty(), "graph findings on clean tree: {graph:#?}");
    let contract = logdiver_lint::contract::analyze(&files, &design_md());
    assert!(
        contract.is_empty(),
        "contract findings on clean tree: {contract:#?}"
    );
}

#[test]
fn seeded_ab_ba_lock_cycle_in_serve() {
    let server = "crates/serve/src/server.rs";
    let clean_lines = workspace_file(server).lines().count() as u32;
    let files = workspace_with(server, |t| {
        format!(
            "{t}fn seeded_ab(a: &M, b: &M) {{\n    let ga = a.lock();\n    let gb = b.lock();\n    drop(gb);\n    drop(ga);\n}}\nfn seeded_ba(a: &M, b: &M) {{\n    let gb = b.lock();\n    let ga = a.lock();\n    drop(ga);\n    drop(gb);\n}}\n"
        )
    });
    let findings = logdiver_lint::graph::analyze(&files);
    assert_eq!(findings.len(), 1, "exactly one finding: {findings:#?}");
    assert_eq!(findings[0].rule, "lock-order");
    assert_eq!(findings[0].file, server);
    // Reported at the first acquisition of the first edge: `let ga`.
    assert_eq!(findings[0].line, clean_lines + 2);
    let w = findings[0].witness.as_deref().expect("two-sided witness");
    assert!(
        w.contains("seeded_ab") && w.contains("seeded_ba") && w.contains("opposite order"),
        "witness names both chains: {w}"
    );
}

#[test]
fn seeded_checkpoint_write_under_held_guard() {
    let server = "crates/serve/src/server.rs";
    let clean_lines = workspace_file(server).lines().count() as u32;
    let files = workspace_with(server, |t| {
        format!(
            "{t}fn seeded_hold(m: &M) {{\n    let g = m.lock();\n    let _ = std::fs::rename(\"a.ckpt\", \"b.ckpt\");\n    drop(g);\n}}\n"
        )
    });
    let findings = logdiver_lint::graph::analyze(&files);
    assert_eq!(findings.len(), 1, "exactly one finding: {findings:#?}");
    assert_eq!(findings[0].rule, "blocking-under-lock");
    assert_eq!(findings[0].file, server);
    // Reported at the acquisition, where the hold window opens.
    assert_eq!(findings[0].line, clean_lines + 2);
    assert!(findings[0]
        .witness
        .as_deref()
        .expect("witness")
        .contains("fs::rename"));
}

#[test]
fn seeded_unwrap_reached_only_through_a_helper_call() {
    // The panic site lives in crates/stats (outside the no-panic guard, so
    // the lexical rule is silent); the *call* is in guarded serve code.
    // Only the interprocedural frontier rule can connect the two.
    let server = "crates/serve/src/server.rs";
    let clean_lines = workspace_file(server).lines().count() as u32;
    let mut files = workspace_with(server, |t| {
        format!("{t}fn seeded_caller() -> u8 {{ seeded_helper(None) }}\n")
    });
    let stats = files
        .iter_mut()
        .find(|(p, _)| p == "crates/stats/src/lib.rs")
        .expect("stats lib present");
    stats
        .1
        .push_str("pub fn seeded_helper(x: Option<u8>) -> u8 { x.unwrap() }\n");
    let findings = logdiver_lint::graph::analyze(&files);
    assert_eq!(findings.len(), 1, "exactly one finding: {findings:#?}");
    assert_eq!(findings[0].rule, "panic-path");
    assert_eq!(findings[0].file, server);
    assert_eq!(findings[0].line, clean_lines + 1);
    let w = findings[0].witness.as_deref().expect("witness chain");
    assert!(
        w.contains("seeded_caller") && w.contains("seeded_helper") && w.contains(".unwrap()"),
        "witness walks the call chain to the unwrap: {w}"
    );
}

#[test]
fn seeded_emitted_but_unhandled_code() {
    // Retarget the client's line-too-long arm at over-quota: the server
    // still emits line-too-long (AbandonSource, non-Fatal), but nothing
    // client-side matches it any more.
    let session = "crates/client/src/session.rs";
    let files = workspace_with(session, |t| {
        assert!(t.contains("codes::LINE_TOO_LONG"), "arm exists to retarget");
        t.replace("codes::LINE_TOO_LONG", "codes::OVER_QUOTA")
    });
    let emit_line = workspace_file("crates/serve/src/server.rs")
        .lines()
        .position(|l| l.contains("codes::LINE_TOO_LONG"))
        .expect("server emit site") as u32
        + 1;
    let findings = logdiver_lint::contract::analyze(&files, &design_md());
    assert_eq!(findings.len(), 1, "exactly one finding: {findings:#?}");
    assert_eq!(findings[0].rule, "unhandled-code");
    assert_eq!(findings[0].file, "crates/serve/src/server.rs");
    assert_eq!(findings[0].line, emit_line);
    let w = findings[0].witness.as_deref().expect("two-sided witness");
    assert!(
        w.contains("crates/client/src") && findings[0].message.contains("line-too-long"),
        "witness names the missing client side: {w}"
    );
}
