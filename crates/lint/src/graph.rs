//! The interprocedural layer: a workspace symbol table and call graph
//! built on the token [`lexer`], plus the analyses that need it.
//!
//! Three rule families live here (DESIGN.md §19):
//!
//! - **`lock-order`** — every `Mutex`/`RwLock` guard's lifetime is
//!   tracked per function (`let g = x.lock()` lives to the end of its
//!   enclosing block or an explicit `drop(g)`); acquisitions reached
//!   while another guard is live — directly or through any resolved
//!   call chain — become edges of a lock-order digraph, and any cycle
//!   (including a self-cycle: re-acquiring a non-reentrant lock you
//!   already hold) is reported with both acquisition sites.
//! - **`blocking-under-lock`** — channel sends/receives, file and
//!   socket I/O, and `sleep` reached while a guard is live, reported at
//!   the *acquisition* site with the call chain to the blocking
//!   operation as the witness. Scoped to `crates/serve/src` and
//!   `crates/stream/src`, the two places where a stalled guard freezes
//!   a fleet.
//! - **`panic-path`** — panic capability (`unwrap`/`expect`/`panic!`/
//!   `todo!`/`unimplemented!`) propagated bottom-up through the call
//!   graph. The lexical `no-panic` rule already flags direct panics
//!   inside the guarded scope, so this rule reports exactly the
//!   frontier the lexical rule cannot see: a call site in a guarded
//!   file whose resolved callee lives *outside* the guard and can
//!   (transitively) panic.
//!
//! ## Soundness posture
//!
//! The graph is name-resolved, not type-resolved: a call binds to every
//! workspace function of that name (filtered by the `module::`/`Type::`
//! qualifier when one is written, preferring same-file candidates for
//! bare names, and skipping ubiquitous std-shadowed method names).
//! That over-approximates dispatch — deliberately: a false edge costs
//! an audited `// lint: allow(<rule>) <reason>` annotation; a missed
//! edge costs a deadlocked daemon. Lock identity is `(crate, binding
//! name)`, which merges distinct locks that share a field name within
//! a crate — also the conservative direction. The escape hatches are
//! the same as every other rule: a per-line allow on the reported line
//! (the acquisition for lock rules, the call for `panic-path`) or a
//! declared [`crate::MODULE_ALLOWANCES`] entry.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::lexer::{self, CleanSource};
use crate::source::{in_exempt_dir, no_panic_scope};
use crate::{Finding, Level};

/// Method names that never resolve into the workspace call graph: they
/// shadow std/collection methods so thoroughly that name resolution
/// would wire half the workspace to the other half.
const COMMON_METHODS: &[&str] = &[
    "new",
    "clone",
    "default",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "unwrap_or",
    "map",
    "map_err",
    "and_then",
    "filter",
    "filter_map",
    "collect",
    "to_string",
    "fmt",
    "eq",
    "cmp",
    "partial_cmp",
    "hash",
    "drop",
    "clear",
    "extend",
    "sort",
    "sort_by",
    "sort_by_key",
    "join",
    "split",
    "trim",
    "parse",
    "name",
    "label",
    "code",
    "value",
    "as_str",
    "as_bytes",
    "as_ref",
    "as_mut",
    "into",
    "from",
    "try_from",
    "try_into",
    "index",
    "min",
    "max",
    "abs",
    "entry",
    "or_insert_with",
    "or_default",
    "starts_with",
    "ends_with",
    "find",
    "position",
    "any",
    "all",
    "sum",
    "count",
    "chars",
    "bytes",
    "lines",
    "take",
    "skip",
    "rev",
    "zip",
    "enumerate",
    "flat_map",
    "flatten",
    "fold",
    "last",
    "first",
    "expect",
    "ok",
    "err",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "ok_or",
    "ok_or_else",
    "unwrap_or_else",
    "unwrap_or_default",
    "then",
    "then_some",
    "get_or_insert_with",
    "retain",
    "truncate",
    "resize",
    "swap",
    "replace",
    "id",
    "keys",
    "values",
    "values_mut",
    "range",
    "binary_search",
    "to_vec",
    "windows",
    "chunks",
];

/// Method calls that block: channel traffic, file/socket I/O, sleeps.
/// `read`/`write` with a non-empty argument list are handled separately
/// (empty-argument `.lock()`/`.read()`/`.write()` are lock
/// acquisitions).
const BLOCKING_METHODS: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "write_all",
    "flush",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "sleep",
    "connect",
    "accept",
    "sync_all",
    "sync_data",
    "set_len",
    "wait",
    "wait_timeout",
];

/// Keywords that look like calls when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "in", "as", "move", "else", "unsafe",
    "let", "pub", "where", "impl", "use", "mod", "ref", "mut", "dyn", "break", "continue",
];

/// One source file, lexed once and indexed for position→line queries.
struct FileSrc {
    path: String,
    crate_name: String,
    clean: CleanSource,
    /// Cleaned lines joined with `\n` (strings/comments blanked), the
    /// text every structural scan runs over.
    joined: String,
    /// Byte offset of each line start in `joined` (0-based line index).
    line_start: Vec<usize>,
    /// `(open, close)` byte offsets of every matched `{}` pair.
    braces: Vec<(usize, usize)>,
}

impl FileSrc {
    fn build(path: &str, text: &str) -> FileSrc {
        let clean = lexer::scan(text);
        let joined = clean.lines.join("\n");
        let mut line_start = Vec::with_capacity(clean.lines.len());
        let mut at = 0usize;
        for l in &clean.lines {
            line_start.push(at);
            at += l.len() + 1;
        }
        let braces = brace_pairs(joined.as_bytes());
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        FileSrc {
            path: path.to_string(),
            crate_name,
            clean,
            joined,
            line_start,
            braces,
        }
    }

    /// 1-based line containing byte offset `pos` of `joined`.
    fn pos_line(&self, pos: usize) -> u32 {
        match self.line_start.binary_search(&pos) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }

    /// Byte offset in `joined` of column `col` on 1-based line `ln`.
    fn line_pos(&self, ln: u32, col: usize) -> usize {
        self.line_start[(ln as usize) - 1] + col
    }

    /// The close offset of the innermost `{}` pair containing `pos`
    /// (`joined.len()` when none does).
    fn enclosing_block_end(&self, pos: usize) -> usize {
        self.braces
            .iter()
            .filter(|(o, c)| *o < pos && pos < *c)
            .min_by_key(|(o, c)| c - o)
            .map(|(_, c)| *c)
            .unwrap_or(self.joined.len())
    }
}

/// Every `{}` pair in `bytes` (already comment/string-blanked).
fn brace_pairs(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut stack = Vec::new();
    for (i, b) in bytes.iter().enumerate() {
        match b {
            b'{' => stack.push(i),
            b'}' => {
                if let Some(open) = stack.pop() {
                    out.push((open, i));
                }
            }
            _ => {}
        }
    }
    out
}

/// A `(crate, binding-name)` lock identity.
type LockId = (String, String);

/// One guard acquisition inside a function body.
#[derive(Debug, Clone)]
struct LockSite {
    lock: LockId,
    line: u32,
    /// Last line (inclusive) the guard can still be live on.
    live_end: u32,
}

/// One call site, resolved to zero or more workspace functions.
#[derive(Debug, Clone)]
struct CallSite {
    line: u32,
    name: String,
    callees: Vec<usize>,
}

/// A direct effect (panic or blocking operation) inside a body.
#[derive(Debug, Clone)]
struct EffectSite {
    line: u32,
    desc: String,
}

/// One workspace function.
struct FnDef {
    file: usize,
    name: String,
    calls: Vec<CallSite>,
    locks: Vec<LockSite>,
    panics: Vec<EffectSite>,
    blocking: Vec<EffectSite>,
}

/// Bottom-up summaries, each with one shortest witness chain.
#[derive(Default)]
struct Summaries {
    /// `fn index -> witness chain ending in a panic site`.
    panic: Vec<Option<Vec<String>>>,
    /// `fn index -> witness chain ending in a blocking operation`.
    blocking: Vec<Option<Vec<String>>>,
    /// `fn index -> every lock (transitively) acquired, with a chain`.
    acquires: Vec<BTreeMap<LockId, Vec<String>>>,
}

/// Runs the interprocedural analyses over `(workspace-relative path,
/// text)` pairs. Pure — the mutation self-tests feed it doctored file
/// sets.
pub fn analyze(files: &[(String, String)]) -> Vec<Finding> {
    let srcs: Vec<FileSrc> = files
        .iter()
        .filter(|(p, _)| p.ends_with(".rs") && !in_exempt_dir(p))
        .map(|(p, t)| FileSrc::build(p, t))
        .collect();
    let fns = parse_workspace(&srcs);
    let sums = summarize(&srcs, &fns);
    let mut out = Vec::new();
    report_panic_paths(&srcs, &fns, &sums, &mut out);
    report_lock_rules(&srcs, &fns, &sums, &mut out);
    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    out.dedup_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message) == (&b.file, b.line, b.rule, &b.message)
    });
    out
}

// ---------------------------------------------------------------------
// symbol table + call graph construction
// ---------------------------------------------------------------------

/// `(name, 1-based sig line, body byte range)` — one lexed `fn` item.
type FnItem = (String, u32, Option<(usize, usize)>);
/// `(file idx, name, impl type, sig line, body range)` — a pre-resolution
/// symbol-table row.
type FnRow = (usize, String, Option<String>, u32, Option<(usize, usize)>);

fn parse_workspace(srcs: &[FileSrc]) -> Vec<FnDef> {
    let mut fns = Vec::new();
    // (file, body range, impl type) per fn, resolved in a second pass.
    for (fi, src) in srcs.iter().enumerate() {
        let impls = parse_impls(src);
        for (name, sig_line, body) in parse_fn_items(src) {
            if src.clean.is_test_line(sig_line) {
                continue;
            }
            let impl_type = body.and_then(|(open, _)| {
                impls
                    .iter()
                    .filter(|(o, c, _)| *o < open && open < *c)
                    .min_by_key(|(o, c, _)| c - o)
                    .map(|(_, _, t)| t.clone())
            });
            fns.push((fi, name, impl_type, sig_line, body));
        }
    }

    // Name index for resolution.
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, (_, name, _, _, _)) in fns.iter().enumerate() {
        by_name.entry(name.as_str()).or_default().push(i);
    }

    fns.iter()
        .enumerate()
        .map(|(ci, (fi, name, _, _sig_line, body))| {
            let src = &srcs[*fi];
            let mut def = FnDef {
                file: *fi,
                name: name.clone(),
                calls: Vec::new(),
                locks: Vec::new(),
                panics: Vec::new(),
                blocking: Vec::new(),
            };
            if let Some((open, close)) = body {
                scan_body(
                    src,
                    *fi,
                    ci,
                    (*open, *close),
                    &fns,
                    &by_name,
                    srcs,
                    &mut def,
                );
            }
            def
        })
        .collect()
}

/// `(open, close, Self type)` for every inherent/trait `impl` block.
fn parse_impls(src: &FileSrc) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in src.clean.lines.iter().enumerate() {
        for at in lexer::ident_positions(line, "impl") {
            // Item position only: nothing (or `unsafe`) before it on the
            // line, so `fn f(x: impl Trait)` does not read as a block.
            let before = line[..at].trim();
            if !(before.is_empty() || before == "unsafe") {
                continue;
            }
            let jpos = src.line_pos(idx as u32 + 1, at);
            let Some(open_rel) = src.joined[jpos..].find('{') else {
                continue;
            };
            let open = jpos + open_rel;
            let close = src
                .braces
                .iter()
                .find(|(o, _)| *o == open)
                .map(|(_, c)| *c)
                .unwrap_or(src.joined.len());
            let header = &src.joined[jpos + "impl".len()..open];
            out.push((open, close, impl_self_type(header)));
        }
    }
    out
}

/// The Self type name out of an impl header: the last path segment of
/// the type after `for` (trait impls) or after the generics (inherent).
fn impl_self_type(header: &str) -> String {
    let mut rest = header.trim();
    if let Some(stripped) = rest.strip_prefix('<') {
        // Skip the generic parameter list.
        let mut depth = 1usize;
        let mut cut = stripped.len();
        for (i, c) in stripped.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = stripped[cut.min(stripped.len())..].trim();
    }
    if let Some(at) = rest.rfind(" for ") {
        rest = rest[at + " for ".len()..].trim();
    }
    // `std::fmt::Display` -> `Display`; `Request<'a>` -> `Request`.
    let rest = rest.split('<').next().unwrap_or(rest);
    rest.rsplit("::").next().unwrap_or(rest).trim().to_string()
}

/// `(name, 1-based sig line, body byte range)` for every `fn` item.
fn parse_fn_items(src: &FileSrc) -> Vec<FnItem> {
    let mut out = Vec::new();
    let bytes = src.joined.as_bytes();
    for (idx, line) in src.clean.lines.iter().enumerate() {
        for at in lexer::ident_positions(line, "fn") {
            let before = line[..at].trim();
            let item_position = before.is_empty()
                || before.split_whitespace().all(|tok| {
                    matches!(
                        tok,
                        "pub"
                            | "pub(crate)"
                            | "pub(super)"
                            | "unsafe"
                            | "async"
                            | "const"
                            | "extern"
                            | "default"
                    )
                });
            if !item_position {
                continue;
            }
            let jpos = src.line_pos(idx as u32 + 1, at);
            let mut j = jpos + 2;
            while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                j += 1;
            }
            let name_start = j;
            while j < bytes.len() && lexer::is_ident_char(bytes[j] as char) {
                j += 1;
            }
            if j == name_start {
                continue; // `fn(` — a function-pointer type, not an item
            }
            let name = src.joined[name_start..j].to_string();
            // Find the body `{` (or a trait-decl `;`) at bracket depth 0.
            let mut depth = 0i32;
            let mut body = None;
            while j < bytes.len() {
                match bytes[j] {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b';' if depth == 0 => break,
                    b'{' if depth == 0 => {
                        let close = src
                            .braces
                            .iter()
                            .find(|(o, _)| *o == j)
                            .map(|(_, c)| *c)
                            .unwrap_or(src.joined.len());
                        body = Some((j, close));
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            out.push((name, idx as u32 + 1, body));
        }
    }
    out
}

/// Extracts calls, lock acquisitions, and direct effects from one body.
#[allow(clippy::too_many_arguments)]
fn scan_body(
    src: &FileSrc,
    file_idx: usize,
    caller_idx: usize,
    body: (usize, usize),
    fns: &[FnRow],
    by_name: &HashMap<&str, Vec<usize>>,
    srcs: &[FileSrc],
    def: &mut FnDef,
) {
    let first = src.pos_line(body.0);
    let last = src.pos_line(body.1.min(src.joined.len().saturating_sub(1)));
    for ln in first..=last {
        let line = src.clean.line(ln);
        if src.clean.is_test_line(ln) {
            continue;
        }

        // Direct panic sites (same token rules as the lexical no-panic
        // pass; an allow there asserts the site cannot actually panic,
        // so it must not seed propagation either).
        if !src.clean.allowed("no-panic", ln) {
            for method in ["unwrap", "expect"] {
                for at in lexer::ident_positions(line, method) {
                    if line[..at].ends_with('.') {
                        def.panics.push(EffectSite {
                            line: ln,
                            desc: format!(".{method}()"),
                        });
                    }
                }
            }
            for mac in ["panic", "todo", "unimplemented"] {
                for at in lexer::ident_positions(line, mac) {
                    if line[at + mac.len()..].starts_with('!') {
                        def.panics.push(EffectSite {
                            line: ln,
                            desc: format!("{mac}!"),
                        });
                    }
                }
            }
        }

        for raw in scan_raw_calls(line) {
            let jpos = src.line_pos(ln, raw.col);
            if jpos < body.0 || jpos > body.1 {
                continue;
            }
            // Lock acquisition: `.lock()` / `.read()` / `.write()` with
            // an empty argument list (io::Read/Write always take one).
            if raw.method
                && raw.args_empty
                && matches!(raw.name.as_str(), "lock" | "read" | "write")
            {
                let lock_name = receiver_name(line, raw.col).unwrap_or_else(|| "<expr>".into());
                let live_end = guard_live_end(src, line, ln, raw.col, jpos);
                def.locks.push(LockSite {
                    lock: (src.crate_name.clone(), lock_name),
                    line: ln,
                    live_end,
                });
                continue;
            }
            // Direct blocking operations. `accept` only blocks in its
            // nullary socket form — `sink.accept(record)` is the visitor
            // idiom, not `TcpListener::accept()`.
            if (raw.method
                && BLOCKING_METHODS.contains(&raw.name.as_str())
                && (raw.name != "accept" || raw.args_empty))
                || (raw.method && !raw.args_empty && matches!(raw.name.as_str(), "read" | "write"))
            {
                def.blocking.push(EffectSite {
                    line: ln,
                    desc: format!(".{}()", raw.name),
                });
            } else if raw.qualifier.as_deref() == Some("fs")
                || (raw.qualifier.as_deref() == Some("thread") && raw.name == "sleep")
                || (raw.qualifier.as_deref() == Some("TcpStream") && raw.name == "connect")
            {
                def.blocking.push(EffectSite {
                    line: ln,
                    desc: format!("{}::{}()", raw.qualifier.as_deref().unwrap_or(""), raw.name),
                });
            }

            // Workspace resolution.
            let callees = resolve(&raw, file_idx, caller_idx, fns, by_name, srcs);
            if !callees.is_empty() {
                def.calls.push(CallSite {
                    line: ln,
                    name: raw.name.clone(),
                    callees,
                });
            }
        }
    }
}

/// A syntactic call candidate on one line.
struct RawCall {
    col: usize,
    name: String,
    method: bool,
    qualifier: Option<String>,
    args_empty: bool,
}

fn scan_raw_calls(line: &str) -> Vec<RawCall> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if !lexer::is_ident_char(c) || c.is_ascii_digit() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && lexer::is_ident_char(bytes[i] as char) {
            i += 1;
        }
        let name = &line[start..i];
        if i >= bytes.len() || bytes[i] != b'(' {
            continue;
        }
        if KEYWORDS.contains(&name) || name.chars().next().is_some_and(char::is_uppercase) {
            continue;
        }
        // The defining `fn name(` is not a call of itself.
        let before = line[..start].trim_end();
        if before.ends_with("fn")
            && !before[..before.len() - 2]
                .chars()
                .next_back()
                .is_some_and(lexer::is_ident_char)
        {
            continue;
        }
        let method = start > 0 && bytes[start - 1] == b'.';
        let qualifier = if !method && line[..start].ends_with("::") {
            let q = &line[..start - 2];
            let qs = q
                .rfind(|ch: char| !lexer::is_ident_char(ch))
                .map(|p| p + 1)
                .unwrap_or(0);
            (!q[qs..].is_empty()).then(|| q[qs..].to_string())
        } else {
            None
        };
        let mut j = i + 1;
        while j < bytes.len() && bytes[j] == b' ' {
            j += 1;
        }
        let args_empty = j < bytes.len() && bytes[j] == b')';
        out.push(RawCall {
            col: start,
            name: name.to_string(),
            method,
            qualifier,
            args_empty,
        });
    }
    out
}

/// The receiver binding a method call hangs off: the identifier (or the
/// identifier before a call's parens) immediately left of the dot at
/// `col - 1`. `self.core.lock()` → `core`; `tenants().lock()` → `tenants`.
fn receiver_name(line: &str, col: usize) -> Option<String> {
    let mut end = col.checked_sub(1)?; // the '.'
    let bytes = line.as_bytes();
    if end > 0 && bytes[end - 1] == b')' {
        // Walk back over the balanced parens of `foo(...)`.
        let mut depth = 0i32;
        let mut k = end - 1;
        loop {
            match bytes[k] {
                b')' => depth += 1,
                b'(' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if k == 0 {
                return None;
            }
            k -= 1;
        }
        end = k;
    }
    let start = line[..end]
        .rfind(|c: char| !lexer::is_ident_char(c))
        .map(|p| p + 1)
        .unwrap_or(0);
    let name = &line[start..end];
    (!name.is_empty()).then(|| name.to_string())
}

/// Last line a guard acquired at (`ln`, byte `jpos`) can be live on:
/// the end of the enclosing block for `let`-bound guards (cut short by
/// an explicit `drop(<guard>)`), the acquisition line itself for
/// unbound temporaries (`x.lock().f()` drops at the statement's end).
fn guard_live_end(src: &FileSrc, line: &str, ln: u32, col: usize, jpos: usize) -> u32 {
    let before = line[..col].trim_start();
    let bound = before.strip_prefix("let ").map(|rest| {
        let rest = rest
            .trim_start()
            .strip_prefix("mut ")
            .unwrap_or(rest)
            .trim_start();
        let end = rest
            .find(|c: char| !lexer::is_ident_char(c))
            .unwrap_or(rest.len());
        rest[..end].to_string()
    });
    // `let conn = core.lock().open_conn();` binds open_conn's result, not
    // the guard — the guard is a temporary dropped at the statement's
    // end. Only `.unwrap()`/`.expect(..)` chains (the std-Mutex poison
    // idiom) still bind the guard itself.
    if let Some(tail) = line[col..]
        .find(')')
        .map(|p| line[col + p + 1..].trim_start())
    {
        if let Some(chained) = tail.strip_prefix('.') {
            let end = chained
                .find(|c: char| !lexer::is_ident_char(c))
                .unwrap_or(chained.len());
            if !matches!(&chained[..end], "unwrap" | "expect") {
                return ln;
            }
        }
    }
    let Some(guard) = bound.filter(|g| !g.is_empty()) else {
        return ln;
    };
    let block_end = src.pos_line(
        src.enclosing_block_end(jpos)
            .min(src.joined.len().saturating_sub(1)),
    );
    for probe in ln + 1..=block_end {
        let l = src.clean.line(probe);
        for at in lexer::ident_positions(l, "drop") {
            let rest = l[at + "drop".len()..].trim_start();
            if let Some(arg) = rest.strip_prefix('(') {
                if arg.trim_start().starts_with(&guard) {
                    return probe;
                }
            }
        }
    }
    block_end
}

/// Resolves a raw call to workspace function indices.
fn resolve(
    raw: &RawCall,
    caller_file: usize,
    caller_idx: usize,
    fns: &[FnRow],
    by_name: &HashMap<&str, Vec<usize>>,
    srcs: &[FileSrc],
) -> Vec<usize> {
    if raw.method && COMMON_METHODS.contains(&raw.name.as_str()) {
        return Vec::new();
    }
    // `drop(g)` is `mem::drop`; linking it to the workspace's `Drop::drop`
    // impls (which are never called by name) wires destructors into every
    // caller.
    if raw.name == "drop" {
        return Vec::new();
    }
    let Some(all) = by_name.get(raw.name.as_str()) else {
        return Vec::new();
    };
    // A method call sharing the caller's own name is almost always the
    // wrapper idiom — `fn probe(&mut self) { self.core.lock().probe(s) }`
    // — not recursion; resolving it to the caller fabricates a self-loop
    // (and with a lock held, a phantom self-deadlock).
    let all: Vec<usize> = if raw.method {
        all.iter().copied().filter(|i| *i != caller_idx).collect()
    } else {
        all.clone()
    };
    let all = &all;
    let candidates: Vec<usize> = match raw.qualifier.as_deref() {
        Some("self") | Some("crate") => {
            let caller_crate = &srcs[caller_file].crate_name;
            all.iter()
                .copied()
                .filter(|&i| &srcs[fns[i].0].crate_name == caller_crate)
                .collect()
        }
        Some(q) if q.chars().next().is_some_and(char::is_uppercase) => all
            .iter()
            .copied()
            .filter(|&i| fns[i].2.as_deref() == Some(q))
            .collect(),
        Some(q) => all
            .iter()
            .copied()
            .filter(|&i| {
                let path = &srcs[fns[i].0].path;
                path.ends_with(&format!("/{q}.rs")) || path.ends_with(&format!("/{q}/mod.rs"))
            })
            .collect(),
        None => {
            // Bare name: same-file candidates win; otherwise any.
            let same_file: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&i| fns[i].0 == caller_file)
                .collect();
            if !same_file.is_empty() {
                same_file
            } else if raw.method && all.len() > 1 {
                // An unqualified method name matching several same-named
                // methods across crates (`pump`, `drain`, `flush`...) is
                // the wrapper idiom again: linking the call to ALL of
                // them fabricates call chains — and with locks in play,
                // phantom deadlock cycles — between unrelated layers.
                // Without types, only a unique name is trustworthy.
                Vec::new()
            } else {
                all.clone()
            }
        }
    };
    // A huge fan-out means the name is effectively ambient; linking it
    // would wire unrelated crates together.
    if candidates.len() > 8 {
        return Vec::new();
    }
    candidates
}

// ---------------------------------------------------------------------
// bottom-up summaries
// ---------------------------------------------------------------------

fn summarize(srcs: &[FileSrc], fns: &[FnDef]) -> Summaries {
    let mut sums = Summaries {
        panic: vec![None; fns.len()],
        blocking: vec![None; fns.len()],
        acquires: vec![BTreeMap::new(); fns.len()],
    };
    // Reverse edges: callee -> (caller, line).
    let mut callers: Vec<Vec<(usize, u32)>> = vec![Vec::new(); fns.len()];
    for (ci, f) in fns.iter().enumerate() {
        for call in &f.calls {
            for &callee in &call.callees {
                callers[callee].push((ci, call.line));
            }
        }
    }

    let site = |f: &FnDef, e: &EffectSite| {
        format!(
            "{}:{} {}() does {}",
            srcs[f.file].path, e.line, f.name, e.desc
        )
    };
    let hop = |f: &FnDef, line: u32, callee: &FnDef| {
        format!(
            "{}:{} {}() calls {}()",
            srcs[f.file].path, line, f.name, callee.name
        )
    };

    // Panic capability: BFS from direct panic sites gives each function
    // a shortest-hop witness chain.
    let mut queue: Vec<usize> = Vec::new();
    for (i, f) in fns.iter().enumerate() {
        if let Some(e) = f.panics.first() {
            sums.panic[i] = Some(vec![site(f, e)]);
            queue.push(i);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let callee = queue[head];
        head += 1;
        let chain = sums.panic[callee].clone().unwrap_or_default();
        for &(caller, line) in &callers[callee] {
            if sums.panic[caller].is_some() {
                continue;
            }
            // An allow on the call line asserts the callee cannot panic
            // from here; it stops propagation through this edge.
            if srcs[fns[caller].file].clean.allowed("panic-path", line) {
                continue;
            }
            let mut c = vec![hop(&fns[caller], line, &fns[callee])];
            c.extend(chain.iter().cloned());
            sums.panic[caller] = Some(c);
            queue.push(caller);
        }
    }

    // Blocking effects: same shape.
    let mut queue: Vec<usize> = Vec::new();
    for (i, f) in fns.iter().enumerate() {
        if let Some(e) = f.blocking.first() {
            sums.blocking[i] = Some(vec![site(f, e)]);
            queue.push(i);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let callee = queue[head];
        head += 1;
        let chain = sums.blocking[callee].clone().unwrap_or_default();
        for &(caller, line) in &callers[callee] {
            if sums.blocking[caller].is_some() {
                continue;
            }
            let mut c = vec![hop(&fns[caller], line, &fns[callee])];
            c.extend(chain.iter().cloned());
            sums.blocking[caller] = Some(c);
            queue.push(caller);
        }
    }

    // Transitive lock acquisition sets: monotone worklist to fixpoint.
    for (i, f) in fns.iter().enumerate() {
        for l in &f.locks {
            sums.acquires[i].entry(l.lock.clone()).or_insert_with(|| {
                vec![format!(
                    "{}:{} {}() locks `{}`",
                    srcs[f.file].path, l.line, f.name, l.lock.1
                )]
            });
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for (ci, f) in fns.iter().enumerate() {
            for call in &f.calls {
                for &callee in &call.callees {
                    if callee == ci {
                        continue;
                    }
                    let add: Vec<(LockId, Vec<String>)> = sums.acquires[callee]
                        .iter()
                        .filter(|(id, _)| !sums.acquires[ci].contains_key(*id))
                        .map(|(id, chain)| {
                            let mut c = vec![hop(f, call.line, &fns[callee])];
                            c.extend(chain.iter().cloned());
                            (id.clone(), c)
                        })
                        .collect();
                    if !add.is_empty() {
                        changed = true;
                        sums.acquires[ci].extend(add);
                    }
                }
            }
        }
    }
    sums
}

// ---------------------------------------------------------------------
// reporting
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn emit(
    srcs: &[FileSrc],
    file: usize,
    line: u32,
    rule: &'static str,
    message: String,
    hint: &str,
    witness: Option<String>,
    out: &mut Vec<Finding>,
) {
    let src = &srcs[file];
    if src.clean.allowed(rule, line) || crate::module_allowance(&src.path, rule).is_some() {
        return;
    }
    out.push(Finding {
        file: src.path.clone(),
        line,
        rule,
        level: crate::rule_level(rule).unwrap_or(Level::Error),
        message,
        hint: hint.to_string(),
        witness,
    });
}

/// `panic-path`: guarded call sites whose resolved callee lives outside
/// the guard and can (transitively) panic.
fn report_panic_paths(srcs: &[FileSrc], fns: &[FnDef], sums: &Summaries, out: &mut Vec<Finding>) {
    for f in fns {
        if !no_panic_scope(&srcs[f.file].path) {
            continue;
        }
        for call in &f.calls {
            if srcs[f.file].clean.allowed("panic-path", call.line) {
                continue;
            }
            let Some(&culprit) = call
                .callees
                .iter()
                .find(|&&c| sums.panic[c].is_some() && !no_panic_scope(&srcs[fns[c].file].path))
            else {
                continue;
            };
            let chain = sums.panic[culprit].as_ref().cloned().unwrap_or_default();
            let mut witness = vec![format!(
                "{}:{} {}() calls {}()",
                srcs[f.file].path, call.line, f.name, fns[culprit].name
            )];
            witness.extend(chain);
            emit(
                srcs,
                f.file,
                call.line,
                "panic-path",
                format!(
                    "{}() can panic and is outside the no-panic guard",
                    call.name
                ),
                "make the helper infallible (typed error), move it under the guard, or annotate \
                 this call with `// lint: allow(panic-path) <why the input is safe here>`",
                Some(witness.join(" -> ")),
                out,
            );
        }
    }
}

/// A lock-order edge: `from` held while `to` is acquired.
struct LockEdge {
    from: LockId,
    to: LockId,
    file: usize,
    line: u32,
    witness: String,
}

/// `lock-order` + `blocking-under-lock` over guard live ranges.
fn report_lock_rules(srcs: &[FileSrc], fns: &[FnDef], sums: &Summaries, out: &mut Vec<Finding>) {
    let in_scope =
        |p: &str| p.starts_with("crates/serve/src/") || p.starts_with("crates/stream/src/");
    let mut edges: Vec<LockEdge> = Vec::new();

    for f in fns {
        for held in &f.locks {
            // What does this guard's live range reach?
            let mut block_witness: Option<(u32, String)> = None;

            // Direct blocking operations inside the range.
            for e in &f.blocking {
                if e.line >= held.line && e.line <= held.live_end {
                    let w = format!(
                        "guard on `{}` taken at {}:{} -> {}:{} {}() does {}",
                        held.lock.1,
                        srcs[f.file].path,
                        held.line,
                        srcs[f.file].path,
                        e.line,
                        f.name,
                        e.desc
                    );
                    if block_witness.as_ref().is_none_or(|(l, _)| e.line < *l) {
                        block_witness = Some((e.line, w));
                    }
                }
            }

            // Later direct acquisitions inside the range: lock-order edges.
            for later in &f.locks {
                if later.line > held.line && later.line <= held.live_end && later.lock != held.lock
                {
                    edges.push(LockEdge {
                        from: held.lock.clone(),
                        to: later.lock.clone(),
                        file: f.file,
                        line: held.line,
                        witness: format!(
                            "`{}` taken at {}:{}, then `{}` at {}:{} ({}())",
                            held.lock.1,
                            srcs[f.file].path,
                            held.line,
                            later.lock.1,
                            srcs[f.file].path,
                            later.line,
                            f.name
                        ),
                    });
                }
                // Re-acquiring the same lock while it is live deadlocks a
                // non-reentrant mutex outright.
                if later.line > held.line && later.line <= held.live_end && later.lock == held.lock
                {
                    edges.push(LockEdge {
                        from: held.lock.clone(),
                        to: later.lock.clone(),
                        file: f.file,
                        line: held.line,
                        witness: format!(
                            "`{}` taken at {}:{} is still live when {}:{} takes it again ({}())",
                            held.lock.1,
                            srcs[f.file].path,
                            held.line,
                            srcs[f.file].path,
                            later.line,
                            f.name
                        ),
                    });
                }
            }

            // Calls inside the range: pull in callee summaries.
            for call in &f.calls {
                if call.line < held.line || call.line > held.live_end {
                    continue;
                }
                for &callee in &call.callees {
                    if let Some(chain) = &sums.blocking[callee] {
                        let line = call.line;
                        if block_witness.as_ref().is_none_or(|(l, _)| line < *l) {
                            let mut w = vec![format!(
                                "guard on `{}` taken at {}:{}",
                                held.lock.1, srcs[f.file].path, held.line
                            )];
                            w.push(format!(
                                "{}:{} {}() calls {}()",
                                srcs[f.file].path, call.line, f.name, fns[callee].name
                            ));
                            w.extend(chain.iter().cloned());
                            block_witness = Some((line, w.join(" -> ")));
                        }
                    }
                    for (id, chain) in &sums.acquires[callee] {
                        if *id == held.lock {
                            // Transitive re-acquisition: a self-cycle.
                            edges.push(LockEdge {
                                from: held.lock.clone(),
                                to: id.clone(),
                                file: f.file,
                                line: held.line,
                                witness: format!(
                                    "`{}` taken at {}:{} is still live on this path: {}",
                                    held.lock.1,
                                    srcs[f.file].path,
                                    held.line,
                                    chain.join(" -> ")
                                ),
                            });
                        } else {
                            edges.push(LockEdge {
                                from: held.lock.clone(),
                                to: id.clone(),
                                file: f.file,
                                line: held.line,
                                witness: format!(
                                    "`{}` taken at {}:{}, then via {}",
                                    held.lock.1,
                                    srcs[f.file].path,
                                    held.line,
                                    chain.join(" -> ")
                                ),
                            });
                        }
                    }
                }
            }

            if let Some((_, w)) = block_witness {
                if in_scope(&srcs[f.file].path) {
                    emit(
                        srcs,
                        f.file,
                        held.line,
                        "blocking-under-lock",
                        format!(
                            "guard on `{}` is held across a blocking operation",
                            held.lock.1
                        ),
                        "drop the guard before the blocking call (stage the data out of the \
                         critical section), or annotate the acquisition with \
                         `// lint: allow(blocking-under-lock) <why the stall is bounded>`",
                        Some(w),
                        out,
                    );
                }
            }
        }
    }

    // Cycle detection over the lock digraph.
    let mut adj: BTreeMap<&LockId, BTreeSet<&LockId>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let reaches = |from: &LockId, to: &LockId| -> bool {
        let mut seen: BTreeSet<&LockId> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if let Some(next) = adj.get(n) {
                for m in next {
                    if seen.insert(m) {
                        stack.push(m);
                    }
                }
            }
        }
        false
    };
    let mut reported: BTreeSet<(LockId, LockId)> = BTreeSet::new();
    for e in &edges {
        let cyclic = if e.from == e.to {
            true
        } else {
            reaches(&e.to, &e.from)
        };
        if !cyclic {
            continue;
        }
        let key = if e.from <= e.to {
            (e.from.clone(), e.to.clone())
        } else {
            (e.to.clone(), e.from.clone())
        };
        if !reported.insert(key) {
            continue;
        }
        if !in_scope(&srcs[e.file].path) {
            continue;
        }
        // The counter-direction edge, for the two-sided witness.
        let counter = edges
            .iter()
            .find(|c| c.from == e.to && c.to == e.from && (c.file, c.line) != (e.file, e.line));
        let mut witness = e.witness.clone();
        if let Some(c) = counter {
            witness.push_str("; opposite order: ");
            witness.push_str(&c.witness);
        }
        let message = if e.from == e.to {
            format!(
                "lock `{}` can be re-acquired while already held (self-deadlock)",
                e.from.1
            )
        } else {
            format!("lock-order cycle between `{}` and `{}`", e.from.1, e.to.1)
        };
        emit(
            srcs,
            e.file,
            e.line,
            "lock-order",
            message,
            "pick one global acquisition order (document it at the lock declarations) and \
             restructure the violating path, or narrow a guard so the orders never overlap",
            Some(witness),
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, t)| (p.to_string(), t.to_string()))
            .collect();
        analyze(&owned)
    }

    #[test]
    fn interprocedural_panic_crosses_the_guard_frontier() {
        let helper = "pub fn helper_that_unwraps(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let caller =
            "pub fn classify_one(x: Option<u32>) -> u32 {\n    helper_that_unwraps(x)\n}\n";
        let got = run(&[
            ("crates/stats/src/lib.rs", helper),
            ("crates/core/src/classify.rs", caller),
        ]);
        assert_eq!(got.len(), 1, "{got:?}");
        let f = &got[0];
        assert_eq!(f.rule, "panic-path");
        assert_eq!(f.file, "crates/core/src/classify.rs");
        assert_eq!(f.line, 2);
        let w = f.witness.as_deref().unwrap_or("");
        assert!(w.contains("crates/stats/src/lib.rs:2"), "{w}");
        assert!(w.contains(".unwrap()"), "{w}");
    }

    #[test]
    fn panic_inside_the_guard_is_left_to_the_lexical_rule() {
        let both = "pub fn helper(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\npub fn caller(x: Option<u32>) -> u32 {\n    helper(x)\n}\n";
        // Both functions are in a guarded file: the direct unwrap belongs
        // to `no-panic` (lexical), and the call is not re-reported.
        assert!(run(&[("crates/core/src/classify.rs", both)]).is_empty());
    }

    #[test]
    fn allow_on_the_call_site_stops_propagation() {
        let helper = "pub fn helper_that_unwraps(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let caller = "pub fn classify_one(x: Option<u32>) -> u32 {\n    // lint: allow(panic-path) input validated at parse time\n    helper_that_unwraps(x)\n}\n";
        assert!(run(&[
            ("crates/stats/src/lib.rs", helper),
            ("crates/core/src/classify.rs", caller),
        ])
        .is_empty());
    }

    #[test]
    fn ab_ba_cycle_is_one_finding_with_both_sites() {
        let src = "\
pub fn ab(a: &parking_lot::Mutex<u32>, b: &parking_lot::Mutex<u32>) -> u32 {
    let ga = a.lock();
    let gb = b.lock();
    *ga + *gb
}
pub fn ba(a: &parking_lot::Mutex<u32>, b: &parking_lot::Mutex<u32>) -> u32 {
    let gb = b.lock();
    let ga = a.lock();
    *ga + *gb
}
";
        let got = run(&[("crates/serve/src/seeded.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        let f = &got[0];
        assert_eq!(f.rule, "lock-order");
        assert_eq!(f.line, 2);
        let w = f.witness.as_deref().unwrap_or("");
        assert!(w.contains("seeded.rs:2"), "{w}");
        assert!(w.contains("opposite order"), "{w}");
    }

    #[test]
    fn blocking_under_lock_reports_at_the_acquisition() {
        let src = "\
pub fn ckpt(m: &parking_lot::Mutex<u32>, p: &std::path::Path) {
    let g = m.lock();
    let _ = std::fs::rename(p, p);
    let _ = *g;
}
";
        let got = run(&[("crates/serve/src/seeded.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        let f = &got[0];
        assert_eq!(f.rule, "blocking-under-lock");
        assert_eq!(f.line, 2);
        assert!(f.witness.as_deref().unwrap_or("").contains("fs::rename"));
    }

    #[test]
    fn dropping_the_guard_first_is_clean() {
        let src = "\
pub fn ckpt(m: &parking_lot::Mutex<u32>, p: &std::path::Path) {
    let g = m.lock();
    let _ = *g;
    drop(g);
    let _ = std::fs::rename(p, p);
}
";
        assert!(run(&[("crates/serve/src/seeded.rs", src)]).is_empty());
    }

    #[test]
    fn blocking_reached_through_a_call_chain_is_found() {
        let src = "\
fn write_out(p: &std::path::Path) {
    let _ = std::fs::write(p, b\"x\");
}
pub fn pumped(m: &parking_lot::Mutex<u32>, p: &std::path::Path) {
    let g = m.lock();
    write_out(p);
    let _ = *g;
}
";
        let got = run(&[("crates/stream/src/seeded.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        let f = &got[0];
        assert_eq!(f.rule, "blocking-under-lock");
        assert_eq!(f.line, 5);
        let w = f.witness.as_deref().unwrap_or("");
        assert!(w.contains("calls write_out()"), "{w}");
        assert!(w.contains("fs::write"), "{w}");
    }

    #[test]
    fn lock_rules_are_scoped_to_serve_and_stream() {
        let src = "\
pub fn ckpt(m: &parking_lot::Mutex<u32>, p: &std::path::Path) {
    let g = m.lock();
    let _ = std::fs::rename(p, p);
    let _ = *g;
}
";
        assert!(run(&[("crates/stats/src/seeded.rs", src)]).is_empty());
    }

    #[test]
    fn unbound_guard_lives_one_statement() {
        let src = "\
pub fn quick(m: &parking_lot::Mutex<Vec<u32>>, p: &std::path::Path) {
    m.lock().push(1);
    let _ = std::fs::rename(p, p);
}
";
        assert!(run(&[("crates/serve/src/seeded.rs", src)]).is_empty());
    }

    #[test]
    fn io_read_write_with_args_are_not_lock_acquisitions() {
        let src = "\
pub fn io(mut s: std::net::TcpStream, buf: &mut [u8]) {
    let _ = std::io::Read::read(&mut s, buf);
}
";
        // No lock, no findings — and no phantom `read` guard either.
        assert!(run(&[("crates/serve/src/seeded.rs", src)]).is_empty());
    }

    #[test]
    fn test_code_is_outside_the_graph() {
        let src = "\
#[cfg(test)]
mod tests {
    pub fn ab(a: &parking_lot::Mutex<u32>, b: &parking_lot::Mutex<u32>) {
        let ga = a.lock();
        let gb = b.lock();
        let _ = (*ga, *gb);
    }
    pub fn ba(a: &parking_lot::Mutex<u32>, b: &parking_lot::Mutex<u32>) {
        let gb = b.lock();
        let ga = a.lock();
        let _ = (*ga, *gb);
    }
}
";
        assert!(run(&[("crates/serve/src/seeded.rs", src)]).is_empty());
    }

    #[test]
    fn impl_self_types_parse() {
        assert_eq!(impl_self_type(" ServeCore "), "ServeCore");
        assert_eq!(impl_self_type("<'a> Request<'a> "), "Request");
        assert_eq!(impl_self_type(" std::fmt::Display for Finding "), "Finding");
        assert_eq!(impl_self_type("<T: Clone> Holder<T> "), "Holder");
    }

    #[test]
    fn qualified_calls_resolve_by_module_and_type() {
        let lib = "pub fn helper(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        // `other::helper(...)` must not resolve to stats' helper.
        let caller = "pub fn f(x: Option<u32>) -> u32 {\n    other::helper(x)\n}\n";
        assert!(run(&[
            ("crates/stats/src/lib.rs", lib),
            ("crates/core/src/classify.rs", caller),
        ])
        .is_empty());
        // …while `lib::helper(...)` does.
        let caller = "pub fn f(x: Option<u32>) -> u32 {\n    lib::helper(x)\n}\n";
        assert_eq!(
            run(&[
                ("crates/stats/src/lib.rs", lib),
                ("crates/core/src/classify.rs", caller),
            ])
            .len(),
            1
        );
    }
}
