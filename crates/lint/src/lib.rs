//! `logdiver-lint`: static verification of the classification rule set plus
//! a workspace invariant linter.
//!
//! Two analyzers share one [`Finding`] model:
//!
//! 1. **Rule-set verifier** ([`rules`]) — proves properties of a
//!    [`logdiver::filter::PatternTable`] that the runtime takes on faith:
//!    no earlier rule shadows a later one, every cross-category lexical
//!    overlap is resolved by declared intent (with a concrete witness string
//!    replayed through `classify`), every [`ErrorCategory`] is reachable,
//!    and the craylog simulator's templates classify back to their own
//!    categories. The substring-conjunction pattern language makes all of
//!    these *decidable* — see DESIGN.md §14 for the argument.
//!
//! 2. **Workspace invariant linter** ([`source`]) — a token-level scan
//!    ([`lexer`]) of the workspace sources enforcing repo policy: no panic
//!    paths in the guarded pipeline/stream modules, no wall-clock reads or
//!    thread spawns outside the sanctioned sites, and no wall-clock types
//!    in checkpointable state. Escapes go through
//!    `// lint: allow(<rule>) <reason>` annotations, reason required.
//!
//! 3. **Interprocedural analyzer** ([`graph`]) — a workspace symbol table
//!    and intra-workspace call graph built on the same lexer, propagating
//!    two effect summaries bottom-up: *may panic* (so the guarded scopes
//!    are panic-free through helper calls, not just lexically) and
//!    *may block / acquires locks* (so lock-order cycles and blocking
//!    syscalls under held guards surface with a concrete call-chain
//!    witness). See DESIGN.md §19 for the soundness posture.
//!
//! 4. **Protocol-contract verifier** ([`contract`]) — extracts the
//!    `ERR code=<kebab>` vocabulary from serve emit sites, the client
//!    `Session` matcher, DESIGN.md, and the declared catalog in
//!    `logdiver_types::protocol`, and proves the sets agree.
//!
//! Findings carry `file:line`, a stable rule id, a message, and a fix hint;
//! [`report`] renders them as text or JSON.
//!
//! [`ErrorCategory`]: logdiver_types::ErrorCategory

pub mod contract;
pub mod driver;
pub mod graph;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

use serde::Serialize;

/// How serious a finding is. `--deny warnings` promotes warnings to
/// failures; errors always fail the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Level {
    /// Should be fixed or explicitly waived, but does not fail `lint`
    /// unless `--deny warnings` is set.
    Warning,
    /// A broken invariant; always fails the run.
    Error,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::Warning => "warning",
            Level::Error => "error",
        })
    }
}

/// One diagnostic from either analyzer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Finding {
    /// Workspace-relative path, or `<ruleset>` for table findings.
    pub file: String,
    /// 1-based line for source findings; the 1-based rule position for
    /// table findings.
    pub line: u32,
    /// Stable rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// Severity.
    pub level: Level,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
    /// For ambiguity findings: a concrete message that demonstrates the
    /// problem, verified against `classify` (JSON `null` when absent).
    pub witness: Option<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}:{}: [{}] {}",
            self.level, self.file, self.line, self.rule, self.message
        )?;
        if let Some(w) = &self.witness {
            write!(f, "\n    witness: {w:?}")?;
        }
        write!(f, "\n    hint: {}", self.hint)
    }
}

/// Every rule id either analyzer can emit, with its level and a one-line
/// description (`logdiver lint --help` material, and the allowlist the
/// `bad-allow` check validates annotations against).
pub const RULES: &[(&str, Level, &str)] = &[
    (
        "shadowed-rule",
        Level::Error,
        "an earlier pattern matches everything a later pattern matches, so the later rule is dead",
    ),
    (
        "ambiguous-pair",
        Level::Warning,
        "two rules of different categories lexically overlap with no declared ordering intent",
    ),
    (
        "misresolved-pair",
        Level::Error,
        "the witness for an overlapping pair is hijacked by an unrelated third rule",
    ),
    (
        "unreachable-category",
        Level::Error,
        "an ErrorCategory has no pattern producing it",
    ),
    (
        "stale-waiver",
        Level::Warning,
        "an OverlapWaiver names rules that do not overlap (or do not exist), or lacks a reason",
    ),
    (
        "template-drift",
        Level::Error,
        "a craylog simulator template no longer classifies to its own category",
    ),
    (
        "noise-matched",
        Level::Error,
        "a craylog noise template matches the pattern table",
    ),
    (
        "no-panic",
        Level::Error,
        "unwrap/expect/panic!/todo!/unimplemented! in guarded non-test code",
    ),
    (
        "wall-clock",
        Level::Error,
        "Instant::now/SystemTime::now outside the sanctioned timing sites",
    ),
    (
        "thread-spawn",
        Level::Error,
        "std::thread::spawn outside the executor, the streaming engine, and the CLI",
    ),
    (
        "checkpoint-state-clock",
        Level::Error,
        "a wall-clock type named in checkpointable-state modules",
    ),
    (
        "hot-path-alloc",
        Level::Warning,
        "a per-record allocation (to_string/to_owned/String::from/format!) in the zero-copy \
         parse/filter hot path",
    ),
    (
        "bad-allow",
        Level::Warning,
        "a lint allow annotation with an unknown rule id or no reason",
    ),
    (
        "panic-path",
        Level::Error,
        "a call in guarded scope reaches unwrap/expect/panic! through an unguarded helper \
         (witness: the shortest call chain to the panic site)",
    ),
    (
        "lock-order",
        Level::Error,
        "two locks are acquired in opposite orders on different call paths, or a lock is \
         re-acquired while already held (witness: both acquisition chains)",
    ),
    (
        "blocking-under-lock",
        Level::Error,
        "a blocking operation (fs/network/channel/sleep) runs while a serve/stream lock guard \
         is held, possibly through helper calls",
    ),
    (
        "unhandled-code",
        Level::Error,
        "the server emits a non-Fatal protocol code the client Session has no match arm for",
    ),
    (
        "phantom-code",
        Level::Error,
        "the client handles (or the catalog declares) a protocol code no serve site emits",
    ),
    (
        "undocumented-code",
        Level::Warning,
        "an emitted protocol code missing from DESIGN.md's response-code grammar",
    ),
    (
        "uncentralized-code",
        Level::Warning,
        "a protocol code spelled as a string literal instead of a logdiver_types::protocol \
         constant",
    ),
];

/// Looks a rule id up in [`RULES`].
pub fn rule_level(rule: &str) -> Option<Level> {
    RULES
        .iter()
        .find(|(id, _, _)| *id == rule)
        .map(|(_, level, _)| *level)
}

/// Declared module-level rule allowances: `(workspace-relative path, rule
/// id, reason)`.
///
/// Some modules are *architecturally* exempt from a rule — their entire
/// job is the thing the rule bans elsewhere. Scattering per-line
/// `// lint: allow` comments through such a file buries the real policy
/// decision in noise; declaring the allowance here keeps it in one
/// audited place, with the reason next to it, printed by
/// `logdiver lint --rules` alongside the rules themselves.
///
/// An allowance waives exactly one rule for exactly one file. Everything
/// else in the file — and every other file in its crate — is still
/// linted, so e.g. a `thread::spawn` creeping into the serve *core*
/// (`server.rs`, which must stay deterministic for the equivalence
/// proptests) is still flagged.
pub const MODULE_ALLOWANCES: &[(&str, &str, &str)] = &[
    (
        "crates/serve/src/daemon.rs",
        "thread-spawn",
        "the daemon's accept loop spawns one lockstep handler per connection plus one idle \
         ticker; all state lives behind one mutex in the deterministic ServeCore, which stays \
         under the ban",
    ),
    (
        "crates/serve/src/daemon.rs",
        "wall-clock",
        "the idle ticker sleeps on a wall-clock cadence to advance watermarks between pushes; \
         the duration never enters ServeCore, checkpoints, or any analysis result",
    ),
    (
        "crates/craylog/src/templates.rs",
        "hot-path-alloc",
        "the template corpus *renders* message strings for the simulator and tests; it is the \
         emit side, never on the parse hot path",
    ),
    (
        "crates/craylog/src/anonymize.rs",
        "hot-path-alloc",
        "anonymization rewrites lines into fresh strings by design; it runs in offline \
         data-prep tooling, not in the per-record parse loop",
    ),
    (
        "crates/craylog/src/reference.rs",
        "hot-path-alloc",
        "the frozen pre-rewrite allocating parsers, kept verbatim as the differential-fuzz \
         oracle; allocating is exactly what they are preserved to do",
    ),
    (
        "crates/serve/src/daemon.rs",
        "blocking-under-lock",
        "the daemon deliberately holds the fleet mutex across pump and checkpoint: the \
         deterministic ServeCore is single-writer by contract, and the equivalence proptests \
         depend on no interleaving inside a sweep; stalls are bounded by --deadline-ms shedding",
    ),
    (
        "crates/serve/src/daemon.rs",
        "uncentralized-code",
        "the --help text quotes the wire spelling of the shed and limit codes for operators; \
         prose inside a usage string, not an emit site",
    ),
];

/// The declared reason when `path` carries a module-level allowance for
/// `rule`, `None` otherwise.
pub fn module_allowance(path: &str, rule: &str) -> Option<&'static str> {
    MODULE_ALLOWANCES
        .iter()
        .find(|(p, r, _)| *p == path && *r == rule)
        .map(|(_, _, reason)| *reason)
}

/// The combined result of a lint run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct LintReport {
    /// All findings, rule-set first, then source findings in path order.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Number of error-level findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.level == Level::Error)
            .count()
    }

    /// Number of warning-level findings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.level == Level::Warning)
            .count()
    }

    /// True when the run should fail: any error, or (with `deny_warnings`)
    /// any finding at all.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        if deny_warnings {
            !self.findings.is_empty()
        } else {
            self.errors() > 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_looked_up() {
        let mut seen = std::collections::HashSet::new();
        for (id, level, desc) in RULES {
            assert!(seen.insert(*id), "duplicate rule id {id}");
            assert!(!desc.is_empty());
            assert_eq!(rule_level(id), Some(*level));
        }
        assert_eq!(rule_level("no-such-rule"), None);
    }

    #[test]
    fn failed_respects_deny() {
        let mut r = LintReport::default();
        assert!(!r.failed(false));
        assert!(!r.failed(true));
        r.findings.push(Finding {
            file: "<ruleset>".into(),
            line: 1,
            rule: "ambiguous-pair",
            level: Level::Warning,
            message: "m".into(),
            hint: "h".into(),
            witness: None,
        });
        assert!(!r.failed(false));
        assert!(r.failed(true));
        assert_eq!(r.warnings(), 1);
        assert_eq!(r.errors(), 0);
    }
}
