//! A small Rust source scanner — no rustc internals.
//!
//! Produces what the invariant rules need and nothing more:
//!
//! - **cleaned lines**: the source with comments and string/char literals
//!   blanked out (newlines preserved), so token searches cannot be fooled
//!   by `"panic!"` inside a string or `.unwrap()` inside a doc comment;
//! - a **test mask**: which lines sit inside a `#[cfg(test)]` item
//!   (`mod tests { … }` and friends), where repo policy does not apply;
//! - the **allow annotations**: every `// lint: allow(<rule>) <reason>`
//!   comment, with its rule id and whether a reason was actually given.
//!
//! The scanner understands line comments, nested block comments, string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`), byte strings,
//! char literals, and tells lifetimes (`'a`) apart from char literals
//! (`'x'`). It is line-oriented on output: multi-line token sequences
//! (`Instant::\nnow`) are out of scope, which `rustfmt --check` in CI makes
//! a non-issue.

/// One `// lint: allow(<rule>) <reason>` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the comment sits on. The allow covers this line and
    /// the next one (so it can ride on the finding's line or directly
    /// above it).
    pub line: u32,
    /// The rule id inside the parentheses.
    pub rule: String,
    /// The justification after the closing paren, trimmed.
    pub reason: String,
}

/// Scanner output for one source file.
#[derive(Debug, Clone)]
pub struct CleanSource {
    /// Source lines with comments and literals blanked (1-based indexing
    /// via `line(n)`).
    pub lines: Vec<String>,
    /// `true` for lines inside `#[cfg(test)]` items.
    pub test_mask: Vec<bool>,
    /// Every allow annotation found, in line order.
    pub allows: Vec<Allow>,
}

impl CleanSource {
    /// The cleaned text of 1-based line `n` (empty for out-of-range).
    pub fn line(&self, n: u32) -> &str {
        self.lines
            .get((n as usize).saturating_sub(1))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// True when 1-based line `n` is inside a `#[cfg(test)]` region.
    pub fn is_test_line(&self, n: u32) -> bool {
        self.test_mask
            .get((n as usize).saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// True when an allow for `rule` covers 1-based line `n` (the
    /// annotation sits on `n` or on `n - 1`).
    pub fn allowed(&self, rule: &str, n: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line == n || a.line + 1 == n))
    }
}

/// True for characters that can continue a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans `text` into cleaned lines + test mask + allow annotations.
pub fn scan(text: &str) -> CleanSource {
    let mut cleaned = String::with_capacity(text.len());
    let mut allows = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Blank `n` characters (newlines kept so line numbers survive).
    fn blank(cleaned: &mut String, chars: &[char], from: usize, to: usize, line: &mut u32) {
        for &c in &chars[from..to] {
            if c == '\n' {
                cleaned.push('\n');
                *line += 1;
            } else {
                cleaned.push(' ');
            }
        }
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line comment — capture for allow parsing, then blank.
        if c == '/' && next == Some('/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let comment: String = chars[start..i].iter().collect();
            if let Some(a) = parse_allow(&comment, line) {
                allows.push(a);
            }
            blank(&mut cleaned, &chars, start, i, &mut line);
            continue;
        }

        // Block comment, possibly nested.
        if c == '/' && next == Some('*') {
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            blank(&mut cleaned, &chars, start, i, &mut line);
            continue;
        }

        // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…'.
        let prev_is_ident = i > 0 && is_ident_char(chars[i - 1]);
        if (c == 'r' || c == 'b') && !prev_is_ident {
            let mut j = i + 1;
            if c == 'b' && chars.get(j) == Some(&'r') {
                j += 1;
            }
            let raw = chars.get(j) == Some(&'#') || (j > i + 1 || c == 'r');
            if raw {
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    // Raw string: ends at `"` followed by `hashes` hashes.
                    let start = i;
                    j += 1;
                    'raw: while j < chars.len() {
                        if chars[j] == '"' {
                            let mut k = 0usize;
                            while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    blank(&mut cleaned, &chars, start, j, &mut line);
                    i = j;
                    continue;
                }
            }
            if c == 'b' && chars.get(i + 1) == Some(&'"') {
                let end = skip_string(&chars, i + 1);
                blank(&mut cleaned, &chars, i, end, &mut line);
                i = end;
                continue;
            }
            if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                let end = skip_char_literal(&chars, i + 1);
                blank(&mut cleaned, &chars, i, end, &mut line);
                i = end;
                continue;
            }
            // Plain identifier starting with r/b.
            cleaned.push(c);
            i += 1;
            continue;
        }

        // String literal.
        if c == '"' {
            let end = skip_string(&chars, i);
            blank(&mut cleaned, &chars, i, end, &mut line);
            i = end;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            if is_char_literal(&chars, i) {
                let end = skip_char_literal(&chars, i);
                blank(&mut cleaned, &chars, i, end, &mut line);
                i = end;
                continue;
            }
            cleaned.push(c);
            i += 1;
            continue;
        }

        if c == '\n' {
            line += 1;
        }
        cleaned.push(c);
        i += 1;
    }

    let lines: Vec<String> = cleaned.lines().map(str::to_string).collect();
    let test_mask = test_mask(&lines);
    CleanSource {
        lines,
        test_mask,
        allows,
    }
}

/// Consumes a `"…"` literal starting at `chars[start] == '"'`; returns the
/// index one past the closing quote.
fn skip_string(chars: &[char], start: usize) -> usize {
    let mut i = start + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// True when the `'` at `start` opens a char literal rather than a lifetime.
fn is_char_literal(chars: &[char], start: usize) -> bool {
    match chars.get(start + 1) {
        Some('\\') => true,
        Some(_) => chars.get(start + 2) == Some(&'\''),
        None => false,
    }
}

/// Consumes a `'…'` char literal; returns the index one past the close.
fn skip_char_literal(chars: &[char], start: usize) -> usize {
    let mut i = start + 1;
    if chars.get(i) == Some(&'\\') {
        i += 2;
        // Escapes like \u{1F600} run to the closing quote.
        while i < chars.len() && chars[i] != '\'' {
            i += 1;
        }
        return (i + 1).min(chars.len());
    }
    i += 1;
    if chars.get(i) == Some(&'\'') {
        return i + 1;
    }
    i
}

/// Parses `// lint: allow(<rule>) <reason>` out of a line comment. Only a
/// comment whose *content* starts with the grammar counts — prose that
/// merely mentions `lint: allow(...)` mid-sentence (like this doc comment)
/// is not an annotation.
fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let content = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start();
    if !content.starts_with("lint: allow(") {
        return None;
    }
    let rest = &content["lint: allow(".len()..];
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..].trim().to_string();
    Some(Allow { line, rule, reason })
}

/// Marks every line covered by a `#[cfg(test)]` item: from the attribute to
/// the end of the braced block it introduces (or the terminating `;` for
/// brace-less items).
fn test_mask(lines: &[String]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let joined: String = lines.join("\n");
    let bytes = joined.as_bytes();
    let mut search_from = 0usize;
    while let Some(rel) = joined[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + rel;
        let after = attr_at + "#[cfg(test)]".len();
        // Find the item's body: first `{` or `;`, whichever comes first.
        let mut j = after;
        let mut end = joined.len();
        while j < joined.len() {
            match bytes[j] {
                b'{' => {
                    end = match_brace(bytes, j);
                    break;
                }
                b';' => {
                    end = j + 1;
                    break;
                }
                _ => j += 1,
            }
        }
        let start_line = joined[..attr_at].matches('\n').count();
        let end_line = joined[..end.min(joined.len())].matches('\n').count();
        for m in mask
            .iter_mut()
            .take((end_line + 1).min(lines.len()))
            .skip(start_line)
        {
            *m = true;
        }
        search_from = end.max(after);
    }
    mask
}

/// Index one past the brace that closes the `{` at `open` (strings and
/// comments are already blanked, so raw brace counting is sound).
fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Positions (byte offsets) where `ident` occurs in `line` as a standalone
/// identifier token (no identifier characters on either side).
pub fn ident_positions(line: &str, ident: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = line[from..].find(ident) {
        let at = from + rel;
        let before_ok = at == 0 || !line[..at].chars().next_back().is_some_and(is_ident_char);
        let after = at + ident.len();
        let after_ok = !line[after..].chars().next().is_some_and(is_ident_char);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + ident.len().max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let a = \"panic!\"; // .unwrap() here\nlet b = 1; /* todo!() */ let c = 2;\n";
        let s = scan(src);
        assert!(!s.line(1).contains("panic"));
        assert!(!s.line(1).contains("unwrap"));
        assert!(s.line(2).contains("let c = 2;"));
        assert!(!s.line(2).contains("todo"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "let a = r#\"x \"quoted\" panic!\"#;\nlet b = 'x';\nlet c: &'static str = \"\";\nlet d = b\"unwrap()\";\n";
        let s = scan(src);
        assert!(!s.line(1).contains("panic"));
        assert!(s.line(2).contains("let b ="));
        assert!(
            s.line(3).contains("'static str"),
            "lifetime survives: {:?}",
            s.line(3)
        );
        assert!(!s.line(4).contains("unwrap"));
    }

    #[test]
    fn multiline_string_keeps_line_numbers() {
        let src = "let a = \"line one\n line two\";\nfn f() {}\n";
        let s = scan(src);
        assert_eq!(s.lines.len(), 3);
        assert!(s.line(3).contains("fn f()"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}\n";
        let s = scan(src);
        assert!(s.line(1).contains("fn f()"));
        assert!(!s.line(1).contains("inner"));
    }

    #[test]
    fn cfg_test_region_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let s = scan(src);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(2));
        assert!(s.is_test_line(4));
        assert!(s.is_test_line(5));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn allow_annotations_parse() {
        let src = "x.unwrap(); // lint: allow(no-panic) invariant: joined above\n// lint: allow(wall-clock)\ny();\n";
        let s = scan(src);
        assert_eq!(s.allows.len(), 2);
        assert_eq!(s.allows[0].rule, "no-panic");
        assert!(!s.allows[0].reason.is_empty());
        assert_eq!(s.allows[1].rule, "wall-clock");
        assert!(s.allows[1].reason.is_empty());
        assert!(s.allowed("no-panic", 1));
        assert!(s.allowed("wall-clock", 3));
        assert!(!s.allowed("no-panic", 3));
    }

    #[test]
    fn ident_positions_respect_boundaries() {
        assert_eq!(ident_positions("a.unwrap()", "unwrap"), vec![2]);
        assert!(ident_positions("a.unwrap_or(b)", "unwrap").is_empty());
        assert!(ident_positions("Arc::try_unwrap(x)", "unwrap").is_empty());
        assert_eq!(ident_positions("panic!(\"\")", "panic"), vec![0]);
        assert!(ident_positions("should_panic", "panic").is_empty());
    }
}
