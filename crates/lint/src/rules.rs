//! The rule-set verifier.
//!
//! [`logdiver::filter::PatternTable`] rules are substring conjunctions under
//! first-match-wins, which makes the interesting questions *decidable*
//! (DESIGN.md §14 has the full argument):
//!
//! - **Shadowing.** Rule `i` (earlier) shadows rule `j` (later) exactly when
//!   every fragment of `i` is a substring of some single fragment of `j`.
//!   If so, any message matching `j` matches `i`, and `j` is dead. If not,
//!   some fragment `f` of `i` fits in no fragment of `j`, and the witness
//!   built from `j`'s fragments joined by a separator avoids `f` — so `j`
//!   is live.
//! - **Ambiguity.** Any two conjunctions are jointly satisfiable (just
//!   concatenate), so flagging every cross-category pair would be noise.
//!   The verifier flags pairs that *lexically overlap* — they share a
//!   lowercased word of ≥ 4 characters, or a fragment of one contains a
//!   fragment of the other — because those are the pairs real log lines can
//!   plausibly hit together. For each flagged pair it constructs a concrete
//!   witness matching both rules and replays it through
//!   [`classify_index`](logdiver::filter::PatternTable::classify_index):
//!   the earlier rule must win (declared via an
//!   [`OverlapWaiver`](logdiver::filter::OverlapWaiver)), a same-category
//!   earlier rule may win (the tie-breaker already resolves the pair), and
//!   a *third*-category hijack is always an error.
//! - **Coverage.** Every [`ErrorCategory`] must be producible by some rule,
//!   every [`Subsystem`] must be reachable through the table, and the
//!   `subsystem`/`severity` mappings are exercised for totality.
//! - **Sim↔tool drift.** Every message phrasing the craylog simulator can
//!   emit must classify back to the category it was emitted for, and no
//!   noise phrasing may match at all.

use std::collections::BTreeSet;

use logdiver::filter::{Pattern, PatternTable};
use logdiver_types::{ErrorCategory, Subsystem};

use crate::{Finding, Level};

/// Which optional check groups [`verify_table`] runs. Structural checks
/// (shadowing, ambiguity, waiver hygiene) always run; coverage and template
/// checks only make sense for the curated table, not for small synthetic
/// tables built in tests.
#[derive(Debug, Clone, Copy)]
pub struct TableCheckOptions {
    /// Require every `ErrorCategory` and `Subsystem` to be reachable.
    pub coverage: bool,
    /// Replay the craylog simulator's template corpus through the table.
    pub templates: bool,
}

impl Default for TableCheckOptions {
    fn default() -> Self {
        TableCheckOptions {
            coverage: true,
            templates: true,
        }
    }
}

/// One detected cross-category lexical overlap, with its verified witness —
/// the structured form behind the `ambiguous-pair`/`misresolved-pair`
/// findings, exposed for property tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapReport {
    /// 0-based index of the earlier rule.
    pub earlier: usize,
    /// 0-based index of the later rule.
    pub later: usize,
    /// Why the pair was flagged (shared word or fragment containment).
    pub via: String,
    /// A message matching both rules, built by fragment concatenation.
    pub witness: String,
    /// What `classify_index` said about the witness.
    pub winner: Option<(usize, ErrorCategory)>,
    /// True when an [`OverlapWaiver`](logdiver::filter::OverlapWaiver)
    /// covers the pair.
    pub waived: bool,
}

/// True when `earlier` shadows `later`: every message matching `later` also
/// matches `earlier`, so `later` can never win under first-match-wins.
pub fn shadows(earlier: &Pattern, later: &Pattern) -> bool {
    earlier
        .fragments()
        .iter()
        .all(|f| later.fragments().iter().any(|g| g.contains(f)))
}

/// The lowercased words (alphanumeric runs of ≥ 4 characters) across a
/// rule's fragments.
fn rule_words(p: &Pattern) -> BTreeSet<String> {
    let mut words = BTreeSet::new();
    for frag in p.fragments() {
        for word in frag.split(|c: char| !c.is_alphanumeric()) {
            if word.chars().count() >= 4 {
                words.insert(word.to_lowercase());
            }
        }
    }
    words
}

/// Why two rules lexically overlap, if they do.
fn overlap_reason(a: &Pattern, b: &Pattern) -> Option<String> {
    if let Some(shared) = rule_words(a).intersection(&rule_words(b)).next() {
        return Some(format!("shared word {shared:?}"));
    }
    for f in a.fragments() {
        for g in b.fragments() {
            if f.contains(g) || g.contains(f) {
                return Some(format!("fragment containment ({f:?} / {g:?})"));
            }
        }
    }
    None
}

/// A message matching both rules: the union of their fragments, joined with
/// spaces, skipping fragments already present as substrings.
pub fn build_witness(a: &Pattern, b: &Pattern) -> String {
    let mut witness = String::new();
    for frag in a.fragments().iter().chain(b.fragments()) {
        if !witness.contains(frag) {
            if !witness.is_empty() {
                witness.push(' ');
            }
            witness.push_str(frag);
        }
    }
    witness
}

/// Detects every cross-category lexical overlap in `table` and replays its
/// witness through the table.
pub fn table_overlaps(table: &PatternTable) -> Vec<OverlapReport> {
    let rules = table.rules();
    let mut out = Vec::new();
    for i in 0..rules.len() {
        for j in i + 1..rules.len() {
            if rules[i].category() == rules[j].category() {
                continue;
            }
            let Some(via) = overlap_reason(&rules[i], &rules[j]) else {
                continue;
            };
            let witness = build_witness(&rules[i], &rules[j]);
            let waived = table.waivers().iter().any(|w| {
                w.earlier == rules[i].fragments()[0] && w.later == rules[j].fragments()[0]
            });
            out.push(OverlapReport {
                earlier: i,
                later: j,
                via,
                witness: witness.clone(),
                winner: table.classify_index(&witness),
                waived,
            });
        }
    }
    out
}

fn describe(rules: &[Pattern], i: usize) -> String {
    format!(
        "rule {} ({:?} -> {})",
        i + 1,
        rules[i].fragments(),
        rules[i].category()
    )
}

/// Runs the rule-set verifier over `table`.
pub fn verify_table(table: &PatternTable, options: &TableCheckOptions) -> Vec<Finding> {
    let mut findings = Vec::new();
    let rules = table.rules();
    let at = |line: u32| ("<ruleset>".to_string(), line);

    // Shadowing: a later rule that can never win is dead configuration.
    for i in 0..rules.len() {
        for j in i + 1..rules.len() {
            if shadows(&rules[i], &rules[j]) {
                let (file, line) = at(j as u32 + 1);
                findings.push(Finding {
                    file,
                    line,
                    rule: "shadowed-rule",
                    level: Level::Error,
                    message: format!(
                        "{} is shadowed by {}: every fragment of the earlier rule fits inside \
                         a fragment of the later one, so the later rule can never win",
                        describe(rules, j),
                        describe(rules, i)
                    ),
                    hint: "delete the dead rule, or add a distinguishing fragment the earlier \
                           rule does not cover"
                        .into(),
                    witness: None,
                });
            }
        }
    }

    // Cross-category overlaps: each needs declared intent, and the witness
    // must actually resolve to the earlier rule.
    for o in table_overlaps(table) {
        match o.winner {
            Some((w, _)) if w == o.earlier => {
                if !o.waived {
                    let (file, line) = at(o.later as u32 + 1);
                    findings.push(Finding {
                        file,
                        line,
                        rule: "ambiguous-pair",
                        level: Level::Warning,
                        message: format!(
                            "{} and {} overlap ({}) with no declared ordering intent; the \
                             witness resolves to the earlier rule by position alone",
                            describe(rules, o.earlier),
                            describe(rules, o.later),
                            o.via
                        ),
                        hint: format!(
                            "add OverlapWaiver {{ earlier: {:?}, later: {:?}, reason: \"...\" }} \
                             to record why the earlier rule should win, or make the fragments \
                             disjoint",
                            rules[o.earlier].fragments()[0],
                            rules[o.later].fragments()[0]
                        ),
                        witness: Some(o.witness),
                    });
                }
            }
            Some((w, cat)) if rules[o.earlier].category() == cat => {
                // A same-category rule ahead of the pair absorbs the
                // witness: the outcome is the one the waiver would declare,
                // so the pair is already resolved by a tie-breaker.
                let _ = w;
            }
            Some((w, cat)) => {
                let (file, line) = at(o.later as u32 + 1);
                findings.push(Finding {
                    file,
                    line,
                    rule: "misresolved-pair",
                    level: Level::Error,
                    message: format!(
                        "the witness for the overlap between {} and {} is hijacked by {} \
                         (category {}), which neither side of the pair intends",
                        describe(rules, o.earlier),
                        describe(rules, o.later),
                        describe(rules, w),
                        cat
                    ),
                    hint: "reorder the table or specialize the hijacking rule's fragments so \
                           the declared earlier rule actually wins"
                        .into(),
                    witness: Some(o.witness),
                });
            }
            None => {
                let (file, line) = at(o.later as u32 + 1);
                findings.push(Finding {
                    file,
                    line,
                    rule: "misresolved-pair",
                    level: Level::Error,
                    message: format!(
                        "internal inconsistency: the witness for {} / {} matches neither rule \
                         through classify",
                        describe(rules, o.earlier),
                        describe(rules, o.later)
                    ),
                    hint: "this indicates a verifier bug; please report it".into(),
                    witness: Some(o.witness),
                });
            }
        }
    }

    // Waiver hygiene: every declared waiver must cite a real detected
    // overlap and carry a reason.
    let overlaps = table_overlaps(table);
    for (k, w) in table.waivers().iter().enumerate() {
        let (file, line) = at(k as u32 + 1);
        if w.reason.trim().is_empty() {
            findings.push(Finding {
                file,
                line,
                rule: "stale-waiver",
                level: Level::Warning,
                message: format!(
                    "waiver ({:?}, {:?}) has no reason; ordering intent must be justified",
                    w.earlier, w.later
                ),
                hint: "explain why the earlier rule winning is correct".into(),
                witness: None,
            });
            continue;
        }
        let cited = overlaps.iter().any(|o| {
            rules[o.earlier].fragments()[0] == w.earlier && rules[o.later].fragments()[0] == w.later
        });
        if !cited {
            findings.push(Finding {
                file,
                line,
                rule: "stale-waiver",
                level: Level::Warning,
                message: format!(
                    "waiver ({:?}, {:?}) matches no detected cross-category overlap",
                    w.earlier, w.later
                ),
                hint: "delete the waiver, or fix the fragment names so it cites the intended \
                       pair (earlier rule first)"
                    .into(),
                witness: None,
            });
        }
    }

    if options.coverage {
        for cat in ErrorCategory::ALL {
            if !rules.iter().any(|p| p.category() == cat) {
                let (file, _) = at(0);
                findings.push(Finding {
                    file,
                    line: 0,
                    rule: "unreachable-category",
                    level: Level::Error,
                    message: format!(
                        "no pattern produces {cat} ({}); the category can never be assigned \
                         from syslog",
                        cat.subsystem()
                    ),
                    hint: "add a pattern for the category's message phrasing, or retire the \
                           category"
                        .into(),
                    witness: None,
                });
            }
        }
        // Totality of the rollup mappings, and subsystem reachability
        // through the table.
        for sub in Subsystem::ALL {
            let reachable = rules.iter().any(|p| {
                let c = p.category();
                // Exercise both mappings for every rule while we are here.
                let _ = c.severity();
                c.subsystem() == sub
            });
            if !reachable {
                findings.push(Finding {
                    file: "<ruleset>".into(),
                    line: 0,
                    rule: "unreachable-category",
                    level: Level::Error,
                    message: format!("no pattern reaches subsystem {sub}"),
                    hint: "the subsystem's failure share would silently read as zero; add a \
                           pattern for one of its categories"
                        .into(),
                    witness: None,
                });
            }
        }
    }

    if options.templates {
        for cat in ErrorCategory::ALL {
            for msg in craylog::templates::template_samples(cat) {
                let got = table.classify(&msg);
                if got != Some(cat) {
                    findings.push(Finding {
                        file: "<templates>".into(),
                        line: 0,
                        rule: "template-drift",
                        level: Level::Error,
                        message: format!(
                            "simulator template for {cat} classifies as {}",
                            got.map(|c| c.token()).unwrap_or("nothing")
                        ),
                        hint: "the simulator and the pattern table drifted apart; update the \
                               table (or the template) so emitted phrasings round-trip"
                            .into(),
                        witness: Some(msg),
                    });
                }
            }
        }
        for (tag, msg) in craylog::templates::noise_samples() {
            if let Some(cat) = table.classify(&msg) {
                findings.push(Finding {
                    file: "<templates>".into(),
                    line: 0,
                    rule: "noise-matched",
                    level: Level::Error,
                    message: format!("noise template {tag:?} classifies as {cat}"),
                    hint: "tighten the matching rule's fragments; operational chatter must \
                           not survive the filter"
                        .into(),
                    witness: Some(msg),
                });
            }
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use ErrorCategory::*;

    fn bare(table: &PatternTable) -> Vec<Finding> {
        verify_table(
            table,
            &TableCheckOptions {
                coverage: false,
                templates: false,
            },
        )
    }

    #[test]
    fn shadow_is_exact() {
        let broad = Pattern::new(&["link"], GeminiLinkFailure);
        let narrow = Pattern::new(&["link failed"], GeminiLinkFailure);
        assert!(shadows(&broad, &narrow));
        assert!(!shadows(&narrow, &broad));
        let two = Pattern::new(&["EDAC", "UE row"], MemoryUncorrectable);
        let other = Pattern::new(&["EDAC", "CE row"], MemoryCorrectable);
        assert!(!shadows(&two, &other));
    }

    #[test]
    fn witness_matches_both_rules() {
        let a = Pattern::new(&["heartbeat fault"], NodeHeartbeatFault);
        let b = Pattern::new(&["VRM fault"], VoltageFault);
        let w = build_witness(&a, &b);
        assert!(a.matches(&w) && b.matches(&w));
    }

    #[test]
    fn clean_synthetic_table_has_no_findings() {
        let table = PatternTable::from_rules(vec![
            Pattern::new(&["Kernel panic"], KernelPanic),
            Pattern::new(&["warm swap"], MaintenanceNotice),
        ]);
        assert!(bare(&table).is_empty());
    }

    #[test]
    fn same_category_earlier_rule_resolves_overlap() {
        // The witness for (declaring node dead, node unresponsive) could be
        // absorbed by an even-earlier NodeHeartbeatFault rule: same category
        // as the pair's earlier side, so no finding.
        let table = PatternTable::from_rules(vec![
            Pattern::new(&["node dead"], NodeHeartbeatFault),
            Pattern::new(&["declaring node dead"], NodeHeartbeatFault),
            Pattern::new(&["node unresponsive"], NodeHang),
        ]);
        let findings = bare(&table);
        // Pair (1,3) witness "declaring node dead node unresponsive" is won
        // by rule 0 with the same category — resolved. Pair (0,2) still
        // needs a waiver.
        assert!(findings
            .iter()
            .all(|f| f.rule == "ambiguous-pair" || f.rule == "shadowed-rule"));
    }
}
