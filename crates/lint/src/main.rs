//! `logdiver-lint` — static verification of the classification rule set
//! plus the workspace invariant linter.
//!
//! ```text
//! logdiver-lint [--json] [--deny warnings] [--root DIR] [--rules]
//! ```
//!
//! Exit status: 0 when the run passes, 1 when findings fail it (any error,
//! or any finding at all under `--deny warnings`), 2 on usage errors, 3 on
//! analyzer internal errors (unreadable workspace or DESIGN.md, or an
//! analyzer panic).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(logdiver_lint::driver::run(&args))
}
