//! The command-line driver, shared by the `logdiver-lint` binary and the
//! `logdiver lint` subcommand.

use std::path::PathBuf;

use logdiver::filter::PatternTable;

use crate::rules::{verify_table, TableCheckOptions};
use crate::source::{collect_workspace, find_workspace_root, lint_source};
use crate::{report, LintReport, MODULE_ALLOWANCES, RULES};

/// Parsed command-line options.
pub struct Options {
    /// Emit the machine-readable JSON envelope instead of text.
    pub json: bool,
    /// Fail on warnings too, not just errors.
    pub deny_warnings: bool,
    /// Workspace root override; autodetected from the cwd when `None`.
    pub root: Option<PathBuf>,
    /// Print the rule catalog and exit.
    pub list_rules: bool,
}

/// Parses `--json`, `--deny warnings`, `--root DIR`, `--rules`.
///
/// # Errors
///
/// A usage message on an unknown or malformed argument (also for
/// `--help`, which callers print and exit 0 or 2 as appropriate).
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        deny_warnings: false,
        root: None,
        list_rules: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => opts.json = true,
            "--rules" => opts.list_rules = true,
            "--deny" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("warnings") => opts.deny_warnings = true,
                    other => {
                        return Err(format!(
                            "--deny takes `warnings`, got {}",
                            other.unwrap_or("nothing")
                        ))
                    }
                }
            }
            "--root" => {
                i += 1;
                let dir = args.get(i).ok_or("--root takes a directory")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: logdiver-lint [--json] [--deny warnings] [--root DIR] [--rules]\n\
                     \n\
                     exit status:\n\
                     \x20 0  clean (or --rules)\n\
                     \x20 1  findings failed the run (any error, or any finding with --deny \
                     warnings)\n\
                     \x20 2  usage error (bad flag or argument)\n\
                     \x20 3  analyzer internal error (unreadable workspace/DESIGN.md, or an \
                     analyzer panic)"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
        i += 1;
    }
    Ok(opts)
}

/// The rule catalog, one line per rule, as `--rules` prints it — followed
/// by the declared module-level allowances so the policy's waivers are as
/// visible as the policy itself.
pub fn rule_catalog() -> String {
    let mut out = String::new();
    for (id, level, desc) in RULES {
        out.push_str(&format!("{level:>7}  {id:<22} {desc}\n"));
    }
    if !MODULE_ALLOWANCES.is_empty() {
        out.push_str("\nmodule allowances (whole-file waivers, declared in the catalog):\n");
        for (path, rule, reason) in MODULE_ALLOWANCES {
            out.push_str(&format!("  allow  {rule:<22} {path}\n         {reason}\n"));
        }
    }
    out
}

/// Runs all four analyzers — rule-set verifier, per-file linter,
/// interprocedural graph analysis, protocol-contract verifier — over the
/// curated table and the workspace under `root` (autodetected when
/// `None`). Sources are read once and shared.
///
/// # Errors
///
/// A message when no workspace root can be found, a source file or
/// DESIGN.md cannot be read, or an analyzer panics — all of which are
/// *internal* errors (exit 3), distinct from findings (exit 1).
pub fn run_analyzers(root: Option<PathBuf>) -> Result<LintReport, String> {
    let root = root
        .or_else(|| find_workspace_root(&std::env::current_dir().unwrap_or_default()))
        .ok_or("cannot find a workspace root (no Cargo.toml with [workspace]); use --root")?;
    let files = collect_workspace(&root)?;
    let design = std::fs::read_to_string(root.join("DESIGN.md"))
        .map_err(|e| format!("cannot read {}: {e}", root.join("DESIGN.md").display()))?;
    let mut report = LintReport::default();
    report.findings.extend(verify_table(
        &PatternTable::curated(),
        &TableCheckOptions::default(),
    ));
    for (rel, text) in &files {
        report.findings.extend(lint_source(rel, text));
    }
    // The interprocedural analyzers parse arbitrary workspace source with
    // heuristics; a panic in them is an analyzer bug, not a finding, and
    // must not masquerade as either "clean" or "findings".
    let deep = std::panic::catch_unwind(|| {
        let mut v = crate::graph::analyze(&files);
        v.extend(crate::contract::analyze(&files, &design));
        v
    })
    .map_err(|_| "analyzer panic in graph/contract analysis (this is a lint bug)".to_string())?;
    report.findings.extend(deep);
    Ok(report)
}

/// Full driver: parse, analyze, render to stdout. Returns the process exit
/// status (0 pass, 1 findings failed the run, 2 usage error, 3 analyzer
/// internal error).
pub fn run(args: &[String]) -> u8 {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    if opts.list_rules {
        print!("{}", rule_catalog());
        return 0;
    }
    let report = match run_analyzers(opts.root) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("lint: {msg}");
            return 3;
        }
    };
    if opts.json {
        println!("{}", report::render_json(&report));
    } else {
        print!("{}", report::render_text(&report));
    }
    u8::from(report.failed(opts.deny_warnings))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn args_parse() {
        let o = parse_args(&s(&["--json", "--deny", "warnings"])).unwrap();
        assert!(o.json && o.deny_warnings && o.root.is_none());
        let o = parse_args(&s(&["--root", "/tmp/x"])).unwrap();
        assert_eq!(o.root.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert!(parse_args(&s(&["--deny", "everything"])).is_err());
        assert!(parse_args(&s(&["--frobnicate"])).is_err());
        assert!(parse_args(&s(&["--help"])).is_err());
    }

    #[test]
    fn rule_catalog_lists_every_rule() {
        let cat = rule_catalog();
        for (id, _, _) in RULES {
            assert!(cat.contains(id), "missing {id}");
        }
    }
}
