//! The workspace invariant linter.
//!
//! Scans `crates/**` Rust sources (skipping `tests/` and `benches/`
//! directories and `#[cfg(test)]` regions) for repo-policy violations:
//!
//! - **`no-panic`** — `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`
//!   in the guarded pipeline modules (`core::{parse, filter, coalesce,
//!   matcher, classify, pipeline, exec}`) and everything in
//!   `crates/stream/src`, `crates/serve/src`, and `crates/client/src`.
//!   These are the crash-safety-bearing paths: a panic there kills a
//!   streaming coordinator mid-checkpoint, a multi-tenant daemon, or an
//!   unattended push client mid-replay.
//! - **`wall-clock`** — `Instant::now`/`SystemTime::now` anywhere except
//!   the CLI, the bench crate, and `core/src/exec.rs`. Determinism
//!   (parallel == serial, resume == uninterrupted) depends on the engine
//!   never reading the host clock.
//! - **`thread-spawn`** — `std::thread::spawn` outside the same exempt
//!   set. Concurrency is confined to the executor and the streaming
//!   engine's audited pool (which carries explicit allows).
//! - **`checkpoint-state-clock`** — the *types* `Instant`/`SystemTime`
//!   named at all in checkpointable-state modules; state that survives a
//!   resume must be wall-clock-free by construction.
//! - **`hot-path-alloc`** — `.to_string()`/`.to_owned()`/`String::from`/
//!   `format!` in the zero-copy hot path (all of `crates/craylog/src` plus
//!   `core::{parse, filter}`). The multi-M-lines/sec throughput contract
//!   rests on the per-record loop never allocating; an allocation that
//!   sneaks in shows up as a silent 2-3× regression, not a test failure.
//!   Cold paths (error display, `materialize()`, quarantine rendering)
//!   carry per-line allows; whole modules that exist to build strings
//!   (templates, anonymize, the frozen reference parsers) carry module
//!   allowances.
//!
//! Escapes: `// lint: allow(<rule>) <reason>` on the finding's line or the
//! line above. The reason is mandatory and the rule id must exist —
//! violations of the annotation grammar are themselves findings
//! (**`bad-allow`**).
//!
//! Modules whose whole purpose is the banned operation (e.g. the serve
//! daemon's socket shell, which exists to spawn connection handlers and
//! tick a timer) carry declared allowances in
//! [`crate::MODULE_ALLOWANCES`] instead of per-line comment spam: one
//! `(path, rule, reason)` entry waives that one rule for that one file,
//! visible in `logdiver lint --rules` next to the rules it waives.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer;
use crate::{Finding, Level};

/// `core` modules under the `no-panic` guard (the deterministic pipeline
/// spine; the rest of `core` is reporting/analysis code where a panic is
/// an ordinary bug, not a crash-safety hole).
const GUARDED_CORE: &[&str] = &[
    "parse.rs",
    "filter.rs",
    "coalesce.rs",
    "matcher.rs",
    "classify.rs",
    "pipeline.rs",
    "exec.rs",
];

/// Modules whose state ends up inside checkpoints (or defines the logical
/// clock): no wall-clock *type* may appear at all.
const CHECKPOINT_STATE: &[&str] = &[
    "crates/stream/src/checkpoint.rs",
    "crates/stream/src/state.rs",
    "crates/stream/src/index.rs",
    "crates/stream/src/health.rs",
    "crates/core/src/checkpoint.rs",
    "crates/serve/src/store.rs",
    "crates/types/src/time.rs",
];

/// Is `path` (workspace-relative, `/`-separated) under the panic guard?
/// The serve crate is included wholesale: a panic in a tenant's ingest
/// path kills the daemon for every other tenant. The push client is too:
/// it runs unattended inside rolling-restart scripts, where a panic turns
/// a recoverable wire fault into silent data loss.
pub(crate) fn no_panic_scope(path: &str) -> bool {
    if let Some(rest) = path.strip_prefix("crates/core/src/") {
        return GUARDED_CORE.contains(&rest);
    }
    path.starts_with("crates/stream/src/")
        || path.starts_with("crates/serve/src/")
        || path.starts_with("crates/client/src/")
}

/// Is `path` in the zero-copy allocation guard? All of craylog (the
/// parsers) plus the two core stages that run per record before
/// materialization.
fn hot_path_alloc_scope(path: &str) -> bool {
    path.starts_with("crates/craylog/src/")
        || path == "crates/core/src/parse.rs"
        || path == "crates/core/src/filter.rs"
}

/// Files allowed to read the wall clock / spawn threads freely: the CLI
/// (progress display, watch loops), the bench harness, and the executor.
fn clock_exempt(path: &str) -> bool {
    path.starts_with("crates/cli/")
        || path.starts_with("crates/bench/")
        || path == "crates/core/src/exec.rs"
}

/// True when the path contains a `tests` or `benches` directory component —
/// integration tests and benchmarks are exempt wholesale.
pub(crate) fn in_exempt_dir(path: &str) -> bool {
    path.split('/').any(|c| c == "tests" || c == "benches")
}

fn finding(
    path: &str,
    line: u32,
    rule: &'static str,
    message: String,
    hint: &str,
    out: &mut Vec<Finding>,
) {
    out.push(Finding {
        file: path.to_string(),
        line,
        rule,
        level: crate::rule_level(rule).unwrap_or(Level::Error),
        message,
        hint: hint.to_string(),
        witness: None,
    });
}

/// The identifier token ending immediately before byte `at` in `line`, if
/// `at` is preceded by `::`.
fn path_qualifier(line: &str, at: usize) -> Option<&str> {
    let before = &line[..at];
    let before = before.strip_suffix("::")?;
    let start = before
        .rfind(|c: char| !lexer::is_ident_char(c))
        .map(|i| i + 1)
        .unwrap_or(0);
    let ident = &before[start..];
    (!ident.is_empty()).then_some(ident)
}

/// Lints one file's text under its workspace-relative path. Pure: the
/// mutation self-tests feed it doctored copies of real sources.
pub fn lint_source(path: &str, text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    if in_exempt_dir(path) || !path.ends_with(".rs") {
        return out;
    }
    let src = lexer::scan(text);

    // Annotation grammar first: a malformed allow silently not applying is
    // the worst failure mode a lint escape hatch can have.
    for a in &src.allows {
        if crate::rule_level(&a.rule).is_none() {
            finding(
                path,
                a.line,
                "bad-allow",
                format!("allow names unknown rule {:?}", a.rule),
                "use one of the rule ids from `logdiver lint --rules`",
                &mut out,
            );
        } else if a.reason.trim().is_empty() {
            finding(
                path,
                a.line,
                "bad-allow",
                format!("allow({}) has no reason", a.rule),
                "write `// lint: allow(<rule>) <why this site is sound>`",
                &mut out,
            );
        }
    }

    // A declared module-level allowance waives one rule for one file.
    let waived = |rule: &str| crate::module_allowance(path, rule).is_some();
    let guard_panics = no_panic_scope(path) && !waived("no-panic");
    let exempt_clock = clock_exempt(path);
    let guard_wall_clock = !exempt_clock && !waived("wall-clock");
    let guard_spawn = !exempt_clock && !waived("thread-spawn");
    let guard_state = CHECKPOINT_STATE.contains(&path) && !waived("checkpoint-state-clock");
    let guard_alloc = hot_path_alloc_scope(path) && !waived("hot-path-alloc");

    for (idx, line) in src.lines.iter().enumerate() {
        let ln = idx as u32 + 1;
        if src.is_test_line(ln) {
            continue;
        }

        if guard_panics && !src.allowed("no-panic", ln) {
            for method in ["unwrap", "expect"] {
                for at in lexer::ident_positions(line, method) {
                    if line[..at].ends_with('.') {
                        finding(
                            path,
                            ln,
                            "no-panic",
                            format!(".{method}() in guarded non-test code"),
                            "return a typed error, provide an infallible fallback, or annotate \
                             with `// lint: allow(no-panic) <invariant>`",
                            &mut out,
                        );
                    }
                }
            }
            for mac in ["panic", "todo", "unimplemented"] {
                for at in lexer::ident_positions(line, mac) {
                    if line[at + mac.len()..].starts_with('!') {
                        finding(
                            path,
                            ln,
                            "no-panic",
                            format!("{mac}! in guarded non-test code"),
                            "convert the condition into a typed error on the stage's error \
                             path",
                            &mut out,
                        );
                    }
                }
            }
        }

        if guard_wall_clock && !src.allowed("wall-clock", ln) {
            for at in lexer::ident_positions(line, "now") {
                if let Some(q) = path_qualifier(line, at) {
                    if q == "Instant" || q == "SystemTime" {
                        finding(
                            path,
                            ln,
                            "wall-clock",
                            format!("{q}::now() outside the sanctioned timing sites"),
                            "thread a logical Timestamp through instead; wall-clock reads \
                             belong in the CLI or core/src/exec.rs",
                            &mut out,
                        );
                    }
                }
            }
        }

        if guard_spawn && !src.allowed("thread-spawn", ln) {
            for at in lexer::ident_positions(line, "spawn") {
                if path_qualifier(line, at) == Some("thread") {
                    finding(
                        path,
                        ln,
                        "thread-spawn",
                        "std::thread::spawn outside the executor".to_string(),
                        "route parallelism through core::exec::par_map (or annotate an audited \
                         engine site with `// lint: allow(thread-spawn) <determinism argument>`)",
                        &mut out,
                    );
                }
            }
        }

        if guard_alloc && !src.allowed("hot-path-alloc", ln) {
            for method in ["to_string", "to_owned"] {
                for at in lexer::ident_positions(line, method) {
                    if line[..at].ends_with('.') {
                        finding(
                            path,
                            ln,
                            "hot-path-alloc",
                            format!(".{method}() in the zero-copy hot path"),
                            "keep the field a borrowed &[u8]/&str (resolve through Sym or \
                             materialize() off the hot path), or annotate the cold site with \
                             `// lint: allow(hot-path-alloc) <why this never runs per record>`",
                            &mut out,
                        );
                    }
                }
            }
            for at in lexer::ident_positions(line, "from") {
                if path_qualifier(line, at) == Some("String") {
                    finding(
                        path,
                        ln,
                        "hot-path-alloc",
                        "String::from in the zero-copy hot path".to_string(),
                        "borrow instead of owning; per-record strings are what the rewrite \
                         removed",
                        &mut out,
                    );
                }
            }
            for at in lexer::ident_positions(line, "format") {
                if line[at + "format".len()..].starts_with('!') {
                    finding(
                        path,
                        ln,
                        "hot-path-alloc",
                        "format! in the zero-copy hot path".to_string(),
                        "build rejection reasons as &'static str (CraylogFault) and render \
                         text only at the quarantine/report boundary",
                        &mut out,
                    );
                }
            }
        }

        if guard_state && !src.allowed("checkpoint-state-clock", ln) {
            for ty in ["Instant", "SystemTime"] {
                if !lexer::ident_positions(line, ty).is_empty() {
                    finding(
                        path,
                        ln,
                        "checkpoint-state-clock",
                        format!("wall-clock type {ty} named in checkpointable state"),
                        "checkpointed state must be wall-clock-free so resume is \
                         deterministic; carry a logical Timestamp or drop the field",
                        &mut out,
                    );
                }
            }
        }
    }
    out
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn collect_rs(dir: &Path, acc: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, acc);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            acc.push(path);
        }
    }
}

/// Reads every `.rs` file under `<root>/crates` as
/// `(workspace-relative path, text)` pairs, in sorted path order — the
/// shared input for the per-file linter and the interprocedural
/// analyzers ([`crate::graph`], [`crate::contract`]).
///
/// # Errors
///
/// Returns a message when a discovered source file cannot be read.
pub fn collect_workspace(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    let mut out = Vec::new();
    for file in files {
        let rel: String = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let text = fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
        out.push((rel, text));
    }
    Ok(out)
}

/// Lints every `.rs` file under `<root>/crates`, in sorted path order.
///
/// # Errors
///
/// Returns a message when a discovered source file cannot be read.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let files = collect_workspace(root)?;
    let mut findings = Vec::new();
    for (rel, text) in &files {
        findings.extend(lint_source(rel, text));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_are_as_documented() {
        assert!(no_panic_scope("crates/core/src/classify.rs"));
        assert!(no_panic_scope("crates/stream/src/engine.rs"));
        assert!(no_panic_scope("crates/serve/src/server.rs"));
        assert!(no_panic_scope("crates/serve/src/daemon.rs"));
        assert!(no_panic_scope("crates/client/src/session.rs"));
        assert!(no_panic_scope("crates/client/src/net.rs"));
        assert!(!no_panic_scope("crates/core/src/report.rs"));
        assert!(!no_panic_scope("crates/stats/src/lib.rs"));
        assert!(clock_exempt("crates/cli/src/main.rs"));
        assert!(clock_exempt("crates/core/src/exec.rs"));
        assert!(!clock_exempt("crates/core/src/pipeline.rs"));
        assert!(in_exempt_dir("crates/stream/tests/chaos.rs"));
        assert!(in_exempt_dir("crates/bench/benches/perf_stream.rs"));
        assert!(!in_exempt_dir("crates/stream/src/engine.rs"));
    }

    #[test]
    fn unwrap_in_guarded_code_is_flagged_and_allows_work() {
        let bad = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let got = lint_source("crates/core/src/classify.rs", bad);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "no-panic");
        assert_eq!(got[0].line, 1);

        let allowed = "// lint: allow(no-panic) caller checked is_some\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint_source("crates/core/src/classify.rs", allowed).is_empty());

        // Outside the guard, unwrap is not a finding.
        assert!(lint_source("crates/stats/src/lib.rs", bad).is_empty());
        // In a test region, not a finding either.
        let test_only = "#[cfg(test)]\nmod tests { fn f(x: Option<u8>) -> u8 { x.unwrap() } }\n";
        assert!(lint_source("crates/core/src/classify.rs", test_only).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_a_panic_path() {
        let ok = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        assert!(lint_source("crates/core/src/classify.rs", ok).is_empty());
        let arc = "fn f(a: std::sync::Arc<u8>) { let _ = std::sync::Arc::try_unwrap(a); }\n";
        assert!(lint_source("crates/core/src/classify.rs", arc).is_empty());
    }

    #[test]
    fn wall_clock_and_spawn_are_scoped() {
        let clock = "fn f() { let _t = std::time::Instant::now(); }\n";
        let got = lint_source("crates/stream/src/engine.rs", clock);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "wall-clock");
        assert!(lint_source("crates/cli/src/main.rs", clock).is_empty());
        assert!(lint_source("crates/core/src/exec.rs", clock).is_empty());

        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        let got = lint_source("crates/craylog/src/lib.rs", spawn);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "thread-spawn");
        // `scope.spawn` (the executor's audited API) is not std::thread.
        let scoped = "fn f() { scope.spawn(|| {}); }\n";
        assert!(lint_source("crates/craylog/src/lib.rs", scoped).is_empty());
    }

    #[test]
    fn module_allowances_waive_exactly_their_file_and_rule() {
        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        let clock = "fn f() { let _t = std::time::Instant::now(); }\n";
        // The daemon's declared allowances cover spawn and clock there...
        assert!(lint_source("crates/serve/src/daemon.rs", spawn).is_empty());
        assert!(lint_source("crates/serve/src/daemon.rs", clock).is_empty());
        // ...but not in the deterministic serve core next door...
        assert_eq!(
            lint_source("crates/serve/src/server.rs", spawn)[0].rule,
            "thread-spawn"
        );
        assert_eq!(
            lint_source("crates/serve/src/server.rs", clock)[0].rule,
            "wall-clock"
        );
        // ...and not other rules in the daemon itself: serve is under the
        // panic guard, allowance or no allowance.
        let bad = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(
            lint_source("crates/serve/src/daemon.rs", bad)[0].rule,
            "no-panic"
        );
        assert_eq!(
            lint_source("crates/serve/src/tenant.rs", bad)[0].rule,
            "no-panic"
        );
    }

    #[test]
    fn module_allowances_are_well_formed() {
        for (path, rule, reason) in crate::MODULE_ALLOWANCES {
            assert!(
                crate::rule_level(rule).is_some(),
                "allowance for {path} names unknown rule {rule:?}"
            );
            assert!(
                !reason.trim().is_empty(),
                "allowance {path}/{rule} has no reason"
            );
            // A dangling path would make the allowance silently inert.
            let root =
                find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
            assert!(
                root.join(path).is_file(),
                "allowance path {path} does not exist"
            );
        }
    }

    #[test]
    fn checkpoint_state_bans_the_type_not_just_the_call() {
        let field = "pub struct S { started: std::time::Instant }\n";
        let got = lint_source("crates/stream/src/state.rs", field);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "checkpoint-state-clock");
        // The same field is fine in a non-state module (wall-clock only
        // fires on ::now()).
        assert!(lint_source("crates/stream/src/config.rs", field).is_empty());
    }

    #[test]
    fn hot_path_alloc_is_scoped_and_token_exact() {
        assert!(hot_path_alloc_scope("crates/craylog/src/syslog.rs"));
        assert!(hot_path_alloc_scope("crates/core/src/parse.rs"));
        assert!(hot_path_alloc_scope("crates/core/src/filter.rs"));
        assert!(!hot_path_alloc_scope("crates/core/src/pipeline.rs"));
        assert!(!hot_path_alloc_scope("crates/stream/src/engine.rs"));

        for bad in [
            "fn f(x: u8) -> String { x.to_string() }\n",
            "fn f(x: &str) -> String { x.to_owned() }\n",
            "fn f() -> String { String::from(\"x\") }\n",
            "fn f(x: u8) -> String { format!(\"{x}\") }\n",
        ] {
            let got = lint_source("crates/craylog/src/syslog.rs", bad);
            assert_eq!(got.len(), 1, "{bad}");
            assert_eq!(got[0].rule, "hot-path-alloc");
            // Outside the guard the same code is fine.
            assert!(lint_source("crates/core/src/coalesce.rs", bad).is_empty());
        }

        // Token-exactness: look-alikes must not trip.
        for ok in [
            "fn f(x: &[u8]) -> Vec<u8> { x.to_vec() }\n",
            "fn f() { let _ = Vec::from([1u8]); }\n",
            "fn f(x: u8) { let _ = x.to_string_lossy_not_really(); }\n",
            "// to_string() discussed in a comment; \"format!\" in a string\n",
        ] {
            assert!(
                lint_source("crates/craylog/src/syslog.rs", ok).is_empty(),
                "{ok}"
            );
        }

        // An annotated cold site is suppressed.
        let allowed = "// lint: allow(hot-path-alloc) materialize() is the explicit cold exit\n\
                       fn f(x: &str) -> String { x.to_owned() }\n";
        assert!(lint_source("crates/craylog/src/syslog.rs", allowed).is_empty());

        // Module allowances cover the emit-side modules wholesale.
        let bad = "fn f(x: u8) -> String { format!(\"{x}\") }\n";
        assert!(lint_source("crates/craylog/src/templates.rs", bad).is_empty());
        assert!(lint_source("crates/craylog/src/reference.rs", bad).is_empty());
        assert!(lint_source("crates/craylog/src/anonymize.rs", bad).is_empty());
    }

    #[test]
    fn bad_allows_are_flagged() {
        let unknown = "// lint: allow(no-such-rule) because\nfn f() {}\n";
        let got = lint_source("crates/core/src/classify.rs", unknown);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "bad-allow");

        let unreasoned = "fn f(x: Option<u8>) -> u8 {\n// lint: allow(no-panic)\nx.unwrap() }\n";
        let got = lint_source("crates/core/src/classify.rs", unreasoned);
        // The allow still suppresses, but is itself a warning.
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "bad-allow");
        assert_eq!(got[0].level, crate::Level::Warning);
    }

    #[test]
    fn comments_and_strings_do_not_trip_rules() {
        let src = "// calls unwrap() conceptually\nfn f() { let s = \"panic! Instant::now\"; let _ = s; }\n";
        assert!(lint_source("crates/core/src/classify.rs", src).is_empty());
        assert!(lint_source("crates/stream/src/state.rs", src).is_empty());
    }
}
