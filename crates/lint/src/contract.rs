//! The serve↔client protocol-contract verifier.
//!
//! Three parties describe the wire protocol's `ERR code=<kebab>` vocabulary:
//! the daemon's emit sites (`crates/serve/src`), the push client's `Session`
//! matcher (`crates/client/src`), and DESIGN.md's protocol grammar. The
//! catalog in `logdiver_types::protocol` is the declared single source of
//! truth, carrying each code's required client [`Disposition`]. This
//! analyzer extracts all four sets and proves they agree:
//!
//! - **`unhandled-code`** — the server emits a code whose disposition is
//!   not [`Disposition::Fatal`] and the client has no match arm for it:
//!   the exact detection gap that turns a recoverable rejection into a
//!   failed session.
//! - **`phantom-code`** — the client handles (or the catalog declares) a
//!   code no serve emit site can produce: dead contract surface that will
//!   silently rot.
//! - **`undocumented-code`** — an emitted code DESIGN.md's grammar never
//!   mentions.
//! - **`uncentralized-code`** — a string literal spelling a catalog code
//!   in non-test serve/client source instead of referencing
//!   `codes::<IDENT>`: the drift vector the codes module exists to close.
//!
//! Extraction is token-level on two views of each file: the lexer's
//! cleaned lines (for `codes::IDENT` references) and a comment-stripped
//! view that *keeps* string literals (for `code=<kebab>` spelled in
//! format strings — the lexer blanks those, and doc comments quoting the
//! grammar must not count as emit sites).

use logdiver_types::protocol::{self as codes, Disposition};

use crate::lexer::{self, CleanSource};
use crate::source::in_exempt_dir;
use crate::{Finding, Level};

/// One reference to a protocol code in source.
#[derive(Debug, Clone)]
struct CodeRef {
    file: String,
    line: u32,
    /// The wire value (`"line-too-long"`).
    value: String,
    /// True when spelled as a string literal rather than `codes::IDENT`.
    literal: bool,
}

/// Runs the contract checks over `(workspace-relative path, text)` pairs
/// plus the DESIGN.md text. Pure — mutation self-tests feed doctored
/// file sets.
pub fn analyze(files: &[(String, String)], design: &str) -> Vec<Finding> {
    let mut emitted: Vec<CodeRef> = Vec::new();
    let mut handled: Vec<CodeRef> = Vec::new();
    let mut sources: Vec<(&str, CleanSource)> = Vec::new();

    for (path, text) in files {
        if !path.ends_with(".rs") || in_exempt_dir(path) {
            continue;
        }
        let serve_side = path.starts_with("crates/serve/src/");
        let client_side = path.starts_with("crates/client/src/");
        if !serve_side && !client_side {
            continue;
        }
        let clean = lexer::scan(text);
        let stripped = strip_comments(text);
        let mut refs = Vec::new();
        for (idx, line) in clean.lines.iter().enumerate() {
            let ln = idx as u32 + 1;
            if clean.is_test_line(ln) {
                continue;
            }
            // `codes::IDENT` references on the blanked view.
            for at in lexer::ident_positions(line, "codes") {
                let rest = &line[at + "codes".len()..];
                let Some(ident_part) = rest.strip_prefix("::") else {
                    continue;
                };
                let end = ident_part
                    .find(|c: char| !lexer::is_ident_char(c))
                    .unwrap_or(ident_part.len());
                let ident = &ident_part[..end];
                if let Some(spec) = codes::CATALOG.iter().find(|c| c.ident == ident) {
                    refs.push(CodeRef {
                        file: path.clone(),
                        line: ln,
                        value: spec.value.to_string(),
                        literal: false,
                    });
                }
            }
            // Literal `code=<kebab>` on the comment-stripped view.
            let raw_line = stripped.get(idx).map(String::as_str).unwrap_or("");
            for value in literal_codes(raw_line) {
                refs.push(CodeRef {
                    file: path.clone(),
                    line: ln,
                    value,
                    literal: true,
                });
            }
        }
        if serve_side {
            emitted.extend(refs);
        } else {
            handled.extend(refs);
        }
        sources.push((path.as_str(), clean));
    }

    let documented = design_codes(design);
    let mut out = Vec::new();
    let allowed = |rule: &str, file: &str, line: u32| {
        crate::module_allowance(file, rule).is_some()
            || sources
                .iter()
                .find(|(p, _)| *p == file)
                .is_some_and(|(_, c)| c.allowed(rule, line))
    };
    let push = |rule: &'static str,
                file: &str,
                line: u32,
                message: String,
                hint: &str,
                witness: String,
                out: &mut Vec<Finding>| {
        if allowed(rule, file, line) {
            return;
        }
        out.push(Finding {
            file: file.to_string(),
            line,
            rule,
            level: crate::rule_level(rule).unwrap_or(Level::Error),
            message,
            hint: hint.to_string(),
            witness: Some(witness),
        });
    };

    // Every emitted non-Fatal code needs a client match arm.
    for spec in codes::CATALOG {
        let emit = pick(&emitted, spec.value);
        let handle = pick(&handled, spec.value);
        match (emit, handle) {
            (Some(e), None) if spec.disposition != Disposition::Fatal => {
                push(
                    "unhandled-code",
                    &e.file,
                    e.line,
                    format!(
                        "server emits `{}` ({:?}) but the client has no match arm for it",
                        spec.value, spec.disposition
                    ),
                    "add a Session arm implementing the catalog disposition (codes::CATALOG), \
                     or re-classify the code as Fatal if failing the session really is correct",
                    format!(
                        "emitted at {}:{}; no codes::{} reference under crates/client/src",
                        e.file, e.line, spec.ident
                    ),
                    &mut out,
                );
            }
            (None, Some(h)) => {
                push(
                    "phantom-code",
                    &h.file,
                    h.line,
                    format!("client handles `{}` but no serve site emits it", spec.value),
                    "delete the dead arm, or wire the emit site the arm was written for",
                    format!(
                        "handled at {}:{}; no emit site under crates/serve/src",
                        h.file, h.line
                    ),
                    &mut out,
                );
            }
            (None, None) => {
                // A catalog entry nobody uses is contract surface rotting
                // in place; report it on the catalog itself.
                let (file, line) = catalog_site(files, spec.value);
                push(
                    "phantom-code",
                    &file,
                    line,
                    format!(
                        "catalog declares `{}` but no serve site emits it",
                        spec.value
                    ),
                    "remove the catalog entry or add the emit site it was declared for",
                    format!("declared at {file}:{line}; no emit site under crates/serve/src"),
                    &mut out,
                );
            }
            _ => {}
        }
        if let Some(e) = emit {
            if !documented.contains(&spec.value.to_string()) {
                push(
                    "undocumented-code",
                    &e.file,
                    e.line,
                    format!(
                        "emitted code `{}` is not in DESIGN.md's protocol grammar",
                        spec.value
                    ),
                    "add the code to the DESIGN.md §15/§19 response-code table",
                    format!(
                        "emitted at {}:{}; DESIGN.md never mentions code={}",
                        e.file, e.line, spec.value
                    ),
                    &mut out,
                );
            }
        }
    }

    // Literals that should be codes:: references.
    for r in emitted.iter().chain(handled.iter()) {
        if !r.literal {
            continue;
        }
        if let Some(spec) = codes::CATALOG.iter().find(|c| c.value == r.value) {
            push(
                "uncentralized-code",
                &r.file,
                r.line,
                format!(
                    "protocol code `{}` spelled as a string literal instead of codes::{}",
                    r.value, spec.ident
                ),
                "reference logdiver_types::protocol so the contract verifier (and the compiler) \
                 see every use of the code",
                format!("literal at {}:{}", r.file, r.line),
                &mut out,
            );
        }
    }

    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    out
}

/// The representative reference for `value`: a `codes::IDENT` reference
/// when one exists — the canonical site — falling back to a string
/// literal spelling.
fn pick<'a>(refs: &'a [CodeRef], value: &str) -> Option<&'a CodeRef> {
    refs.iter()
        .find(|r| r.value == value && !r.literal)
        .or_else(|| refs.iter().find(|r| r.value == value))
}

/// Where the catalog declares `value`: the `protocol.rs` line spelling
/// its string literal.
fn catalog_site(files: &[(String, String)], value: &str) -> (String, u32) {
    let needle = format!("\"{value}\"");
    for (path, text) in files {
        if !path.ends_with("src/protocol.rs") {
            continue;
        }
        for (idx, line) in text.lines().enumerate() {
            if line.contains(&needle) {
                return (path.clone(), idx as u32 + 1);
            }
        }
        return (path.clone(), 1);
    }
    ("<catalog>".to_string(), 1)
}

/// Every kebab token following `code=` in one line of text (handles the
/// grammar's alternation form `code=<a|b|c>` too).
fn literal_codes(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = line[from..].find("code=") {
        let at = from + rel + "code=".len();
        from = at;
        // Boundary: `code=` must not be the tail of another identifier
        // (e.g. `exit_code=`); `=` handles the right side already.
        let head = from - "code=".len();
        if head > 0
            && line[..head]
                .chars()
                .next_back()
                .is_some_and(lexer::is_ident_char)
        {
            continue;
        }
        let rest = &line[at..];
        if let Some(alts) = rest.strip_prefix('<') {
            let Some(close) = alts.find('>') else {
                continue;
            };
            for tok in alts[..close].split('|') {
                if is_kebab(tok) {
                    out.push(tok.to_string());
                }
            }
        } else {
            let end = rest
                .find(|c: char| !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'))
                .unwrap_or(rest.len());
            let tok = rest[..end].trim_end_matches('-');
            if is_kebab(tok) {
                out.push(tok.to_string());
            }
        }
    }
    out
}

fn is_kebab(tok: &str) -> bool {
    !tok.is_empty()
        && tok.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && tok
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        && !tok.ends_with('-')
}

/// Every code DESIGN.md mentions as `code=<kebab>` (plain or alternation).
fn design_codes(design: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in design.lines() {
        out.extend(literal_codes(line));
    }
    out.sort();
    out.dedup();
    out
}

/// Blanks comments but keeps string literals: the inverse selectivity of
/// [`lexer::scan`], for finding codes spelled inside format strings
/// without counting the doc comments that quote the same grammar.
fn strip_comments(text: &str) -> Vec<String> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '/' && next == Some('/') {
            while i < chars.len() && chars[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        if c == '/' && next == Some('*') {
            let mut depth = 1usize;
            out.push_str("  ");
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if chars[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            continue;
        }
        if c == '"' {
            // Keep the string, but honour escapes so an embedded `\"` or
            // `//` cannot derail the scan.
            out.push(c);
            i += 1;
            while i < chars.len() {
                out.push(chars[i]);
                match chars[i] {
                    '\\' => {
                        i += 1;
                        if i < chars.len() {
                            out.push(chars[i]);
                            i += 1;
                        }
                    }
                    '"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            continue;
        }
        if c == 'r' && (next == Some('"') || next == Some('#')) {
            // Raw string: keep verbatim to its matching close.
            let start = i;
            let mut j = i + 1;
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                j += 1;
                'raw: while j < chars.len() {
                    if chars[j] == '"' {
                        let mut k = 0usize;
                        while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break 'raw;
                        }
                    }
                    j += 1;
                }
                for &rc in &chars[start..j] {
                    out.push(rc);
                }
                i = j;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out.lines().map(str::to_string).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)], design: &str) -> Vec<Finding> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, t)| (p.to_string(), t.to_string()))
            .collect();
        analyze(&owned, design)
    }

    /// A minimal serve+client pair referencing every catalog code, plus a
    /// design doc documenting them — the fixture the negative tests
    /// perturb.
    fn full_serve() -> String {
        let refs: Vec<String> = logdiver_types::protocol::CATALOG
            .iter()
            .map(|c| format!("    let _ = codes::{};", c.ident))
            .collect();
        format!("pub fn emit_all() {{\n{}\n}}\n", refs.join("\n"))
    }

    fn full_client() -> String {
        let refs: Vec<String> = logdiver_types::protocol::CATALOG
            .iter()
            .filter(|c| c.disposition != Disposition::Fatal)
            .map(|c| format!("    let _ = codes::{};", c.ident))
            .collect();
        format!("pub fn handle_all() {{\n{}\n}}\n", refs.join("\n"))
    }

    fn full_design() -> String {
        logdiver_types::protocol::CATALOG
            .iter()
            .map(|c| format!("`ERR code={}`", c.value))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn agreeing_sets_are_clean() {
        assert!(run(
            &[
                ("crates/serve/src/server.rs", &full_serve()),
                ("crates/client/src/session.rs", &full_client()),
            ],
            &full_design(),
        )
        .is_empty());
    }

    #[test]
    fn missing_client_arm_is_unhandled() {
        let client = full_client().replace("codes::SLOW_CLIENT", "codes::BAD_VERB");
        let got = run(
            &[
                ("crates/serve/src/server.rs", &full_serve()),
                ("crates/client/src/session.rs", &client),
            ],
            &full_design(),
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "unhandled-code");
        assert_eq!(got[0].file, "crates/serve/src/server.rs");
        assert!(got[0].message.contains("slow-client"));
        assert!(got[0]
            .witness
            .as_deref()
            .unwrap_or("")
            .contains("SLOW_CLIENT"));
    }

    #[test]
    fn fatal_codes_need_no_arm() {
        // full_client() already omits every Fatal code; agreeing run above
        // proves it. Dropping a Fatal code server-side instead:
        let serve = full_serve().replace("    let _ = codes::BAD_VERB;\n", "");
        let got = run(
            &[
                ("crates/serve/src/server.rs", &serve),
                ("crates/client/src/session.rs", &full_client()),
            ],
            &full_design(),
        );
        // bad-verb becomes catalog-declared-but-never-emitted.
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "phantom-code");
    }

    #[test]
    fn client_arm_without_emitter_is_phantom() {
        let serve = full_serve().replace("    let _ = codes::GAP;\n", "");
        let got = run(
            &[
                ("crates/serve/src/server.rs", &serve),
                ("crates/client/src/session.rs", &full_client()),
            ],
            &full_design(),
        );
        let phantom: Vec<_> = got.iter().filter(|f| f.rule == "phantom-code").collect();
        assert_eq!(phantom.len(), 1, "{got:?}");
        assert_eq!(phantom[0].file, "crates/client/src/session.rs");
        assert!(phantom[0].message.contains("gap"));
    }

    #[test]
    fn undocumented_emitted_code_is_flagged() {
        let design = full_design().replace("`ERR code=overload`", "");
        let got = run(
            &[
                ("crates/serve/src/server.rs", &full_serve()),
                ("crates/client/src/session.rs", &full_client()),
            ],
            &design,
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "undocumented-code");
        assert_eq!(got[0].level, Level::Warning);
        assert!(got[0].message.contains("overload"));
    }

    #[test]
    fn string_literal_codes_are_uncentralized_and_still_count() {
        let serve = format!(
            "{}pub fn extra() -> String {{\n    format!(\"ERR code=overload retry-ms=5\")\n}}\n",
            full_serve()
        );
        let got = run(
            &[
                ("crates/serve/src/server.rs", &serve),
                ("crates/client/src/session.rs", &full_client()),
            ],
            &full_design(),
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "uncentralized-code");
        assert!(got[0].message.contains("codes::OVERLOAD"));
    }

    #[test]
    fn doc_comments_do_not_count_as_emit_sites() {
        // Only a doc comment mentions gap in serve: the client's gap arm
        // must be flagged phantom, not satisfied by prose.
        let serve = format!(
            "//! answers `ERR code=gap expected=N` on out-of-order pushes\n{}",
            full_serve().replace("    let _ = codes::GAP;\n", "")
        );
        let got = run(
            &[
                ("crates/serve/src/server.rs", &serve),
                ("crates/client/src/session.rs", &full_client()),
            ],
            &full_design(),
        );
        assert!(got.iter().any(|f| f.rule == "phantom-code"), "{got:?}");
    }

    #[test]
    fn test_code_is_ignored() {
        let serve = format!(
            "{}#[cfg(test)]\nmod tests {{\n    fn t() {{ let _ = \"ERR code=overload\"; }}\n}}\n",
            full_serve()
        );
        assert!(run(
            &[
                ("crates/serve/src/server.rs", &serve),
                ("crates/client/src/session.rs", &full_client()),
            ],
            &full_design(),
        )
        .is_empty());
    }

    #[test]
    fn literal_code_parsing() {
        assert_eq!(literal_codes("ERR code=gap expected=3"), vec!["gap"]);
        assert_eq!(
            literal_codes("code=<bad-verb|missing-arg|...>"),
            vec!["bad-verb", "missing-arg"]
        );
        assert!(literal_codes("exit_code=3").is_empty());
        assert!(literal_codes("ERR code={} tenant=x").is_empty());
        assert_eq!(
            literal_codes("\"ERR code=over-quota \""),
            vec!["over-quota"]
        );
    }

    #[test]
    fn strip_comments_keeps_strings() {
        let text = "// ERR code=gap\nlet x = \"ERR code=overload\"; /* code=draining */\n";
        let lines = strip_comments(text);
        assert!(!lines[0].contains("gap"));
        assert!(lines[1].contains("code=overload"));
        assert!(!lines[1].contains("draining"));
    }
}
