//! Rendering lint results as text or machine-readable JSON.

use crate::LintReport;

/// Human-readable rendering: one block per finding, then a summary line.
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    let (e, w) = (report.errors(), report.warnings());
    if e == 0 && w == 0 {
        out.push_str("lint: clean (0 findings)\n");
    } else {
        out.push_str(&format!(
            "lint: {e} error{} and {w} warning{}\n",
            if e == 1 { "" } else { "s" },
            if w == 1 { "" } else { "s" },
        ));
    }
    out
}

/// Machine-readable rendering: a JSON object with summary counts and the
/// findings array (stable field names; `witness` is `null` when absent).
pub fn render_json(report: &LintReport) -> String {
    #[derive(serde::Serialize)]
    struct Envelope {
        errors: usize,
        warnings: usize,
        findings: Vec<crate::Finding>,
    }
    serde_json::to_string_pretty(&Envelope {
        errors: report.errors(),
        warnings: report.warnings(),
        findings: report.findings.clone(),
    })
    .unwrap_or_else(|_| "{\"error\": \"serialization failed\"}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, Level};

    fn sample() -> LintReport {
        LintReport {
            findings: vec![Finding {
                file: "crates/core/src/classify.rs".into(),
                line: 7,
                rule: "no-panic",
                level: Level::Error,
                message: ".unwrap() in guarded non-test code".into(),
                hint: "return a typed error".into(),
                witness: None,
            }],
        }
    }

    #[test]
    fn text_carries_location_rule_and_summary() {
        let text = render_text(&sample());
        assert!(text.contains("crates/core/src/classify.rs:7"));
        assert!(text.contains("[no-panic]"));
        assert!(text.contains("1 error and 0 warnings"));
        assert!(render_text(&LintReport::default()).contains("clean"));
    }

    #[test]
    fn json_is_parseable_with_counts() {
        let json = render_json(&sample());
        let v = serde_json::parse(&json).unwrap();
        let top = v.as_object().unwrap();
        let field = |obj: &[(String, serde_json::Value)], key: &str| {
            obj.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
        };
        assert_eq!(field(top, "errors").unwrap().as_u64(), Some(1));
        let findings = field(top, "findings").unwrap();
        let first = findings.as_array().unwrap()[0].as_object().unwrap().clone();
        assert_eq!(field(&first, "rule").unwrap().as_str(), Some("no-panic"));
        assert_eq!(field(&first, "line").unwrap().as_u64(), Some(7));
        assert!(field(&first, "witness").unwrap().is_null());
    }
}
