//! Time-series helpers: autocorrelation and runs-above-mean burst tests.

use crate::error::StatsError;

/// Sample autocorrelation of `xs` at `lag` (biased estimator, the standard
/// ACF): `r(k) = Σ (x_t − x̄)(x_{t+k} − x̄) / Σ (x_t − x̄)²`.
///
/// # Errors
///
/// [`StatsError::EmptySample`] when the series is shorter than `lag + 2`
/// or has zero variance.
pub fn autocorrelation(xs: &[f64], lag: usize) -> Result<f64, StatsError> {
    if xs.len() < lag + 2 {
        return Err(StatsError::EmptySample);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let denom: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum();
    if denom <= 0.0 {
        return Err(StatsError::EmptySample);
    }
    let num: f64 = xs
        .windows(lag + 1)
        .map(|w| (w[0] - mean) * (w[lag] - mean))
        .sum();
    Ok(num / denom)
}

/// Longest run of consecutive values strictly above the series mean — a
/// crude but robust burst indicator for daily failure counts.
pub fn longest_run_above_mean(xs: &[f64]) -> usize {
    if xs.is_empty() {
        return 0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let mut best = 0;
    let mut current = 0;
    for &x in xs {
        if x > mean {
            current += 1;
            best = best.max(current);
        } else {
            current = 0;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_has_no_acf() {
        assert!(autocorrelation(&[3.0; 10], 1).is_err());
        assert!(autocorrelation(&[1.0, 2.0], 1).is_err());
    }

    #[test]
    fn alternating_series_is_anticorrelated() {
        let xs: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r1 = autocorrelation(&xs, 1).unwrap();
        let r2 = autocorrelation(&xs, 2).unwrap();
        assert!(r1 < -0.9, "lag-1 {r1}");
        assert!(r2 > 0.9, "lag-2 {r2}");
    }

    #[test]
    fn trending_series_is_positively_correlated() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        let r = autocorrelation(&xs, 1).unwrap();
        assert!(r > 0.8, "{r}");
    }

    #[test]
    fn acf_is_bounded() {
        let xs: Vec<f64> = (0..100).map(|i| ((i * 37) % 11) as f64).collect();
        for lag in 1..5 {
            let r = autocorrelation(&xs, lag).unwrap();
            assert!((-1.0..=1.0).contains(&r), "lag {lag}: {r}");
        }
    }

    #[test]
    fn runs_above_mean() {
        assert_eq!(longest_run_above_mean(&[]), 0);
        assert_eq!(
            longest_run_above_mean(&[1.0, 1.0]),
            0,
            "nothing above the mean"
        );
        assert_eq!(longest_run_above_mean(&[0.0, 5.0, 5.0, 0.0, 5.0]), 2);
        assert_eq!(longest_run_above_mean(&[0.0, 0.0, 0.0, 9.0]), 1);
    }
}
