//! Empirical cumulative distribution functions.
//!
//! Used for the workload-characterization figures (CDFs of application sizes
//! and durations, F5) and anywhere a measured distribution needs plotting or
//! quantile extraction.

use serde::{Deserialize, Serialize};

use crate::error::StatsError;

/// An empirical CDF built from a sample.
///
/// ```
/// use hpc_stats::Ecdf;
/// let e = Ecdf::from_sample(vec![1.0, 2.0, 2.0, 10.0])?;
/// assert_eq!(e.eval(0.5), 0.0);
/// assert_eq!(e.eval(2.0), 0.75);
/// assert_eq!(e.eval(100.0), 1.0);
/// assert_eq!(e.quantile(0.5), 2.0);
/// # Ok::<(), hpc_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF, consuming and sorting the sample.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptySample`] when the sample is empty or contains
    /// non-finite values.
    pub fn from_sample(mut sample: Vec<f64>) -> Result<Self, StatsError> {
        if sample.is_empty() || sample.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::EmptySample);
        }
        // lint: allow(no-panic) the emptiness/finiteness guard two lines up rejects NaN before the sort
        sample.sort_by(|a, b| a.partial_cmp(b).expect("values checked finite"));
        Ok(Ecdf { sorted: sample })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the ECDF holds no observations (cannot happen after a
    /// successful construction; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of observations `≤ x`.
    pub fn eval(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile: the smallest observation `v` with
    /// `F(v) ≥ p`, for `p ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `(0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p <= 1.0,
            "quantile probability out of (0,1]: {p}"
        );
        let n = self.sorted.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        // lint: allow(no-panic) from_sample rejects empty samples, so sorted is never empty
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Evenly spaced `(x, F(x))` points suitable for plotting, deduplicated.
    ///
    /// Produces at most `max_points` points covering the whole support.
    pub fn plot_points(&self, max_points: usize) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let step = (n / max_points.max(1)).max(1);
        let mut pts: Vec<(f64, f64)> = Vec::new();
        for i in (0..n).step_by(step) {
            let x = self.sorted[i];
            let y = (i + 1) as f64 / n as f64;
            if pts.last().map(|&(px, _)| px) != Some(x) {
                pts.push((x, y));
            } else if let Some(last) = pts.last_mut() {
                last.1 = y;
            }
        }
        if let Some(last) = pts.last_mut() {
            if last.0 == self.max() {
                last.1 = 1.0;
            } else {
                pts.push((self.max(), 1.0));
            }
        }
        pts
    }

    /// Kolmogorov–Smirnov statistic against a model CDF.
    pub fn ks_statistic<F: Fn(f64) -> f64>(&self, model_cdf: F) -> f64 {
        let n = self.sorted.len() as f64;
        let mut d: f64 = 0.0;
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = model_cdf(x);
            let hi = (i + 1) as f64 / n - f;
            let lo = f - i as f64 / n;
            d = d.max(hi.max(lo));
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_samples() {
        assert!(Ecdf::from_sample(vec![]).is_err());
        assert!(Ecdf::from_sample(vec![1.0, f64::NAN]).is_err());
        assert!(Ecdf::from_sample(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn eval_steps_correctly() {
        let e = Ecdf::from_sample(vec![3.0, 1.0, 2.0, 2.0]).unwrap();
        assert_eq!(e.eval(0.0), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(1.5), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 3.0);
    }

    #[test]
    fn quantiles_hit_order_statistics() {
        let e = Ecdf::from_sample((1..=100).map(f64::from).collect()).unwrap();
        assert_eq!(e.quantile(0.01), 1.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(0.99), 99.0);
        assert_eq!(e.quantile(1.0), 100.0);
    }

    #[test]
    fn plot_points_reach_one() {
        let e = Ecdf::from_sample((1..=1000).map(f64::from).collect()).unwrap();
        let pts = e.plot_points(50);
        assert!(pts.len() <= 52);
        assert_eq!(pts.last().unwrap().1, 1.0);
        // Monotone in both coordinates.
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn ks_statistic_of_perfect_fit_is_small() {
        // Uniform sample vs uniform CDF: D_n = O(1/n) for a stratified grid.
        let n = 1000;
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let e = Ecdf::from_sample(xs).unwrap();
        assert!(e.ks_statistic(|x| x.clamp(0.0, 1.0)) < 0.002);
        // Against a very wrong model it should be large.
        assert!(e.ks_statistic(|_| 0.0) > 0.9);
    }

    proptest! {
        #[test]
        fn eval_matches_counting(sample in proptest::collection::vec(-100.0f64..100.0, 1..50),
                                 x in -120.0f64..120.0) {
            let e = Ecdf::from_sample(sample.clone()).unwrap();
            let expected = sample.iter().filter(|&&v| v <= x).count() as f64 / sample.len() as f64;
            prop_assert!((e.eval(x) - expected).abs() < 1e-12);
        }

        #[test]
        fn quantile_is_inverse_of_eval(sample in proptest::collection::vec(0.0f64..10.0, 1..50),
                                       p in 0.01f64..1.0) {
            let e = Ecdf::from_sample(sample).unwrap();
            let q = e.quantile(p);
            prop_assert!(e.eval(q) >= p - 1e-12);
        }
    }
}
