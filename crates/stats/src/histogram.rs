//! Histograms with linear or logarithmic binning.
//!
//! The scale-sensitivity figures (F1/F2) bucket application runs by node
//! count on a logarithmic axis; the lost-work figure (F4) uses linear
//! time bins. Both share this implementation.

use serde::{Deserialize, Serialize};

use crate::error::StatsError;

/// Bin layout of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Binning {
    /// `count` equal-width bins over `[lo, hi)`.
    Linear,
    /// `count` bins with geometrically increasing widths over `[lo, hi)`.
    /// Requires `lo > 0`.
    Logarithmic,
}

/// A fixed-bin histogram over `[lo, hi)` with overflow/underflow counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    binning: Binning,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    /// Sum of all accepted values, for mean computation.
    sum: f64,
}

impl Histogram {
    /// Creates a histogram.
    ///
    /// # Errors
    ///
    /// [`StatsError::BadParameter`] when `lo ≥ hi`, `bins == 0`, or
    /// logarithmic binning is requested with `lo ≤ 0`.
    pub fn new(lo: f64, hi: f64, bins: usize, binning: Binning) -> Result<Self, StatsError> {
        if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less)
            || !lo.is_finite()
            || !hi.is_finite()
        {
            return Err(StatsError::BadParameter {
                name: "hi",
                value: hi,
            });
        }
        if bins == 0 {
            return Err(StatsError::BadParameter {
                name: "bins",
                value: 0.0,
            });
        }
        if matches!(binning, Binning::Logarithmic) && lo <= 0.0 {
            return Err(StatsError::BadParameter {
                name: "lo",
                value: lo,
            });
        }
        Ok(Histogram {
            lo,
            hi,
            binning,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            sum: 0.0,
        })
    }

    /// Number of bins (excluding under/overflow).
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Index of the bin that would hold `x`, or `None` for out-of-range.
    pub fn bin_index(&self, x: f64) -> Option<usize> {
        if !x.is_finite() || x < self.lo || x >= self.hi {
            return None;
        }
        let n = self.counts.len() as f64;
        let idx = match self.binning {
            Binning::Linear => ((x - self.lo) / (self.hi - self.lo) * n) as usize,
            Binning::Logarithmic => ((x / self.lo).ln() / (self.hi / self.lo).ln() * n) as usize,
        };
        Some(idx.min(self.counts.len() - 1))
    }

    /// Boundaries `(left, right)` of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let n = self.counts.len() as f64;
        match self.binning {
            Binning::Linear => {
                let w = (self.hi - self.lo) / n;
                (self.lo + w * i as f64, self.lo + w * (i as f64 + 1.0))
            }
            Binning::Logarithmic => {
                let r = (self.hi / self.lo).powf(1.0 / n);
                (self.lo * r.powi(i as i32), self.lo * r.powi(i as i32 + 1))
            }
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        match self.bin_index(x) {
            Some(i) => {
                self.counts[i] += 1;
                self.sum += x;
            }
            None if x < self.lo => self.underflow += 1,
            None => self.overflow += 1,
        }
    }

    /// Records an observation with an integral weight (e.g. node-hours).
    pub fn record_weighted(&mut self, x: f64, weight: u64) {
        match self.bin_index(x) {
            Some(i) => {
                self.counts[i] += weight;
                self.sum += x * weight as f64;
            }
            None if x < self.lo => self.underflow += weight,
            None => self.overflow += weight,
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean of in-range observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        let t = self.total();
        (t > 0).then(|| self.sum / t as f64)
    }

    /// Iterates `(left, right, count)` rows for reporting.
    pub fn rows(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.counts.len()).map(move |i| {
            let (l, r) = self.bin_bounds(i);
            (l, r, self.counts[i])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validation() {
        assert!(Histogram::new(1.0, 0.0, 4, Binning::Linear).is_err());
        assert!(Histogram::new(0.0, 1.0, 0, Binning::Linear).is_err());
        assert!(Histogram::new(0.0, 1.0, 4, Binning::Logarithmic).is_err());
        assert!(Histogram::new(0.5, 1.0, 4, Binning::Logarithmic).is_ok());
    }

    #[test]
    fn linear_binning_places_values() {
        let mut h = Histogram::new(0.0, 10.0, 10, Binning::Linear).unwrap();
        h.record(0.0);
        h.record(0.99);
        h.record(5.0);
        h.record(9.999);
        h.record(-1.0); // underflow
        h.record(10.0); // overflow (right-open)
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn log_binning_covers_decades() {
        let h = Histogram::new(1.0, 10_000.0, 4, Binning::Logarithmic).unwrap();
        // Bins should be [1,10), [10,100), [100,1000), [1000,10000).
        for (i, lo) in [1.0, 10.0, 100.0, 1000.0].iter().enumerate() {
            let (l, r) = h.bin_bounds(i);
            assert!((l - lo).abs() / lo < 1e-9);
            assert!((r - lo * 10.0).abs() / (lo * 10.0) < 1e-9);
        }
        assert_eq!(h.bin_index(1.0), Some(0));
        assert_eq!(h.bin_index(99.0), Some(1));
        assert_eq!(h.bin_index(9_999.0), Some(3));
        assert_eq!(h.bin_index(10_000.0), None);
    }

    #[test]
    fn weighted_recording_and_mean() {
        let mut h = Histogram::new(0.0, 100.0, 10, Binning::Linear).unwrap();
        h.record_weighted(10.0, 3);
        h.record_weighted(30.0, 1);
        assert_eq!(h.total(), 4);
        assert!((h.mean().unwrap() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mean_is_none() {
        let h = Histogram::new(0.0, 1.0, 2, Binning::Linear).unwrap();
        assert_eq!(h.mean(), None);
    }

    proptest! {
        #[test]
        fn every_in_range_value_lands_in_its_bounds(x in 0.0f64..99.999, bins in 1usize..30) {
            let h = Histogram::new(0.0, 100.0, bins, Binning::Linear).unwrap();
            let i = h.bin_index(x).unwrap();
            let (l, r) = h.bin_bounds(i);
            prop_assert!(l <= x && x < r + 1e-9);
        }

        #[test]
        fn log_bins_partition_the_range(x in 1.0f64..9999.0, bins in 1usize..20) {
            let h = Histogram::new(1.0, 10_000.0, bins, Binning::Logarithmic).unwrap();
            let i = h.bin_index(x).unwrap();
            let (l, r) = h.bin_bounds(i);
            prop_assert!(l <= x * (1.0 + 1e-12) && x < r * (1.0 + 1e-12));
        }
    }
}
