//! Kaplan–Meier survival estimation.
//!
//! Time-to-interrupt data is right-censored: most application runs end
//! (successfully or by user error) *before* a system interrupt would have
//! hit them. The Kaplan–Meier product-limit estimator recovers the
//! distribution of time-to-system-interrupt from such censored observations,
//! which is how the MTTI figure (F3) avoids the bias of only averaging
//! observed failures.

use serde::{Deserialize, Serialize};

use crate::error::StatsError;

/// One observation for survival analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurvivalObservation {
    /// Observed duration (time to event or to censoring).
    pub time: f64,
    /// True when the event (failure) was observed; false when censored
    /// (the run ended for an unrelated reason).
    pub event: bool,
}

/// A point of the fitted survival curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurvivalPoint {
    /// Event time.
    pub time: f64,
    /// Survival probability S(t) just after `time`.
    pub survival: f64,
    /// Individuals at risk just before `time`.
    pub at_risk: u64,
    /// Events at `time`.
    pub events: u64,
}

/// Kaplan–Meier product-limit estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KaplanMeier {
    points: Vec<SurvivalPoint>,
    n: usize,
}

impl KaplanMeier {
    /// Fits the estimator to a set of possibly-censored observations.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptySample`] when no observations are given;
    /// [`StatsError::OutOfSupport`] for negative or non-finite times.
    pub fn fit(observations: &[SurvivalObservation]) -> Result<Self, StatsError> {
        if observations.is_empty() {
            return Err(StatsError::EmptySample);
        }
        if let Some(bad) = observations
            .iter()
            .find(|o| !o.time.is_finite() || o.time < 0.0)
        {
            return Err(StatsError::OutOfSupport { value: bad.time });
        }
        let mut obs: Vec<SurvivalObservation> = observations.to_vec();
        // lint: allow(no-panic) the finiteness guard above rejects NaN times before the sort
        obs.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("times checked finite"));

        let mut points = Vec::new();
        let mut at_risk = obs.len() as u64;
        let mut survival = 1.0;
        let mut i = 0;
        while i < obs.len() {
            let t = obs[i].time;
            let mut events = 0u64;
            let mut removed = 0u64;
            while i < obs.len() && obs[i].time == t {
                if obs[i].event {
                    events += 1;
                }
                removed += 1;
                i += 1;
            }
            if events > 0 {
                survival *= 1.0 - events as f64 / at_risk as f64;
                points.push(SurvivalPoint {
                    time: t,
                    survival,
                    at_risk,
                    events,
                });
            }
            at_risk -= removed;
        }
        Ok(KaplanMeier {
            points,
            n: obs.len(),
        })
    }

    /// The fitted curve: one point per distinct event time.
    pub fn points(&self) -> &[SurvivalPoint] {
        &self.points
    }

    /// Number of observations the fit used.
    pub fn sample_size(&self) -> usize {
        self.n
    }

    /// Survival probability at time `t`.
    pub fn survival_at(&self, t: f64) -> f64 {
        let idx = self.points.partition_point(|p| p.time <= t);
        if idx == 0 {
            1.0
        } else {
            self.points[idx - 1].survival
        }
    }

    /// Median survival time, if the curve drops below 0.5.
    pub fn median(&self) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.survival <= 0.5)
            .map(|p| p.time)
    }

    /// Restricted mean survival time up to `horizon`: the area under the
    /// survival curve on `[0, horizon]`. With full follow-up this converges
    /// to the MTTI.
    pub fn restricted_mean(&self, horizon: f64) -> f64 {
        let mut area = 0.0;
        let mut prev_t = 0.0;
        let mut prev_s = 1.0;
        for p in &self.points {
            if p.time >= horizon {
                break;
            }
            area += prev_s * (p.time - prev_t);
            prev_t = p.time;
            prev_s = p.survival;
        }
        area + prev_s * (horizon - prev_t).max(0.0)
    }
}

/// A point of the Nelson–Aalen cumulative-hazard estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HazardPoint {
    /// Event time.
    pub time: f64,
    /// Cumulative hazard Λ(t) just after `time`.
    pub cumulative_hazard: f64,
}

/// Nelson–Aalen cumulative-hazard estimator for right-censored data:
/// `Λ(t) = Σ_{tᵢ ≤ t} dᵢ / nᵢ` (events over at-risk at each event time).
///
/// For exponential data `Λ(t) = λ·t`, so the slope estimates the failure
/// rate directly — the standard companion to [`KaplanMeier`] when the
/// question is "how does the interrupt *rate* evolve over a run's life".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NelsonAalen {
    points: Vec<HazardPoint>,
}

impl NelsonAalen {
    /// Fits the estimator.
    ///
    /// # Errors
    ///
    /// Same domain errors as [`KaplanMeier::fit`].
    pub fn fit(observations: &[SurvivalObservation]) -> Result<Self, StatsError> {
        // Reuse KM's validation and tie-handling by refitting on the same
        // grouped walk.
        if observations.is_empty() {
            return Err(StatsError::EmptySample);
        }
        if let Some(bad) = observations
            .iter()
            .find(|o| !o.time.is_finite() || o.time < 0.0)
        {
            return Err(StatsError::OutOfSupport { value: bad.time });
        }
        let mut obs: Vec<SurvivalObservation> = observations.to_vec();
        // lint: allow(no-panic) the finiteness guard above rejects NaN times before the sort
        obs.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("times checked finite"));
        let mut points = Vec::new();
        let mut at_risk = obs.len() as u64;
        let mut cumulative = 0.0;
        let mut i = 0;
        while i < obs.len() {
            let t = obs[i].time;
            let mut events = 0u64;
            let mut removed = 0u64;
            while i < obs.len() && obs[i].time == t {
                if obs[i].event {
                    events += 1;
                }
                removed += 1;
                i += 1;
            }
            if events > 0 {
                cumulative += events as f64 / at_risk as f64;
                points.push(HazardPoint {
                    time: t,
                    cumulative_hazard: cumulative,
                });
            }
            at_risk -= removed;
        }
        Ok(NelsonAalen { points })
    }

    /// The step points of the estimate.
    pub fn points(&self) -> &[HazardPoint] {
        &self.points
    }

    /// Cumulative hazard at time `t`.
    pub fn cumulative_hazard_at(&self, t: f64) -> f64 {
        let idx = self.points.partition_point(|p| p.time <= t);
        if idx == 0 {
            0.0
        } else {
            self.points[idx - 1].cumulative_hazard
        }
    }

    /// Average hazard *rate* over `[0, horizon]` — for exponential data
    /// this estimates λ (and `1/λ` the MTTI).
    pub fn mean_rate(&self, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        self.cumulative_hazard_at(horizon) / horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64) -> SurvivalObservation {
        SurvivalObservation { time, event: true }
    }

    fn cens(time: f64) -> SurvivalObservation {
        SurvivalObservation { time, event: false }
    }

    #[test]
    fn uncensored_km_matches_ecdf_complement() {
        let obs: Vec<_> = [1.0, 2.0, 3.0, 4.0].iter().map(|&t| ev(t)).collect();
        let km = KaplanMeier::fit(&obs).unwrap();
        assert!((km.survival_at(0.5) - 1.0).abs() < 1e-12);
        assert!((km.survival_at(1.0) - 0.75).abs() < 1e-12);
        assert!((km.survival_at(2.5) - 0.5).abs() < 1e-12);
        assert!((km.survival_at(4.0) - 0.0).abs() < 1e-12);
        assert_eq!(km.median(), Some(2.0));
    }

    #[test]
    fn textbook_censored_example() {
        // Events at 1 and 3; censored at 2: S(1) = 5/6, S(3) = 5/6 * (1 - 1/3).
        let obs = vec![ev(1.0), cens(2.0), ev(3.0), cens(4.0), cens(5.0), cens(6.0)];
        let km = KaplanMeier::fit(&obs).unwrap();
        assert!((km.survival_at(1.0) - 5.0 / 6.0).abs() < 1e-12);
        let expected = (5.0 / 6.0) * (1.0 - 1.0 / 4.0);
        assert!(
            (km.survival_at(3.0) - expected).abs() < 1e-12,
            "{}",
            km.survival_at(3.0)
        );
    }

    #[test]
    fn censoring_raises_survival_vs_treating_as_events() {
        let censored = vec![ev(1.0), cens(1.5), ev(2.0), cens(2.5), ev(3.0)];
        let as_events: Vec<_> = censored.iter().map(|o| ev(o.time)).collect();
        let km_c = KaplanMeier::fit(&censored).unwrap();
        let km_e = KaplanMeier::fit(&as_events).unwrap();
        assert!(km_c.survival_at(2.0) > km_e.survival_at(2.0));
    }

    #[test]
    fn ties_are_handled() {
        let obs = vec![ev(2.0), ev(2.0), ev(2.0), cens(2.0), ev(5.0)];
        let km = KaplanMeier::fit(&obs).unwrap();
        // At t=2: 5 at risk, 3 events → S = 2/5.
        assert!((km.survival_at(2.0) - 0.4).abs() < 1e-12);
        // At t=5: 1 at risk, 1 event → S = 0.
        assert!((km.survival_at(5.0)).abs() < 1e-12);
    }

    #[test]
    fn restricted_mean_of_exponential_like_data() {
        // All events at time 2 → area under S on [0,4] = 1*2 + 0*2 = 2.
        let obs = vec![ev(2.0), ev(2.0)];
        let km = KaplanMeier::fit(&obs).unwrap();
        assert!((km.restricted_mean(4.0) - 2.0).abs() < 1e-12);
        // Horizon before the event: area = horizon.
        assert!((km.restricted_mean(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_censored_curve_stays_at_one() {
        let obs = vec![cens(1.0), cens(2.0)];
        let km = KaplanMeier::fit(&obs).unwrap();
        assert_eq!(km.points().len(), 0);
        assert_eq!(km.survival_at(10.0), 1.0);
        assert_eq!(km.median(), None);
        assert!((km.restricted_mean(5.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(KaplanMeier::fit(&[]).is_err());
        assert!(KaplanMeier::fit(&[ev(-1.0)]).is_err());
        assert!(KaplanMeier::fit(&[ev(f64::NAN)]).is_err());
        assert!(NelsonAalen::fit(&[]).is_err());
        assert!(NelsonAalen::fit(&[ev(-1.0)]).is_err());
    }

    #[test]
    fn nelson_aalen_textbook_values() {
        // Events at 1,2,3 with 3 at risk, then 2, then 1:
        // Λ = 1/3, 1/3+1/2, 1/3+1/2+1.
        let na = NelsonAalen::fit(&[ev(1.0), ev(2.0), ev(3.0)]).unwrap();
        let p = na.points();
        assert_eq!(p.len(), 3);
        assert!((p[0].cumulative_hazard - 1.0 / 3.0).abs() < 1e-12);
        assert!((p[1].cumulative_hazard - (1.0 / 3.0 + 0.5)).abs() < 1e-12);
        assert!((p[2].cumulative_hazard - (1.0 / 3.0 + 0.5 + 1.0)).abs() < 1e-12);
        assert_eq!(na.cumulative_hazard_at(0.5), 0.0);
        assert!((na.cumulative_hazard_at(2.5) - (1.0 / 3.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn nelson_aalen_censoring_reduces_risk_set_only() {
        // Censored at 1.5 shrinks the risk set without a hazard step.
        let na = NelsonAalen::fit(&[ev(1.0), cens(1.5), ev(2.0)]).unwrap();
        let p = na.points();
        assert_eq!(p.len(), 2);
        assert!((p[0].cumulative_hazard - 1.0 / 3.0).abs() < 1e-12);
        assert!((p[1].cumulative_hazard - (1.0 / 3.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn nelson_aalen_recovers_exponential_rate() {
        use crate::dist::{Distribution, Exponential};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let exp = Exponential::new(0.25).unwrap();
        // Observe each subject to at most 2 time units (heavy censoring).
        let obs: Vec<SurvivalObservation> = (0..20_000)
            .map(|_| {
                let t = exp.sample(&mut rng);
                if t > 2.0 {
                    SurvivalObservation {
                        time: 2.0,
                        event: false,
                    }
                } else {
                    SurvivalObservation {
                        time: t,
                        event: true,
                    }
                }
            })
            .collect();
        let na = NelsonAalen::fit(&obs).unwrap();
        let rate = na.mean_rate(2.0);
        assert!((rate - 0.25).abs() < 0.02, "estimated rate {rate}");
    }

    #[test]
    fn km_and_na_agree_via_exp_transform() {
        // S(t) ≈ exp(−Λ(t)) when event counts per step are small.
        let obs: Vec<SurvivalObservation> = (1..=50)
            .map(|i| ev(i as f64))
            .chain((1..=150).map(|i| cens(i as f64 + 0.5)))
            .collect();
        let km = KaplanMeier::fit(&obs).unwrap();
        let na = NelsonAalen::fit(&obs).unwrap();
        for t in [5.0, 20.0, 45.0] {
            let s_km = km.survival_at(t);
            let s_na = (-na.cumulative_hazard_at(t)).exp();
            assert!((s_km - s_na).abs() < 0.02, "t={t}: {s_km} vs {s_na}");
        }
    }
}
