//! Probability distributions: sampling, densities, quantiles and
//! maximum-likelihood fitting.
//!
//! The workload and fault models of the study are built from these
//! distributions (heavy-tailed application sizes, Weibull repair/failure
//! processes, log-normal runtimes, Zipf users), and the metric pipeline fits
//! them back to measured data. Implemented from scratch over a uniform
//! source; numerical helpers (`ln Γ`, `erf`, normal quantile) use standard
//! published approximations and are unit-tested against known values.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::StatsError;

/// A continuous univariate distribution.
///
/// The trait is object-safe so heterogeneous model tables can hold
/// `Box<dyn Distribution>`.
pub trait Distribution: std::fmt::Debug {
    /// Draws one sample.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64;

    /// Probability density at `x` (0 outside the support).
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function at `x`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile function (inverse CDF) for `p ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `p` is outside `(0, 1)`.
    fn quantile(&self, p: f64) -> f64;

    /// Mean of the distribution (may be infinite, e.g. Pareto with α ≤ 1).
    fn mean(&self) -> f64;
}

fn check_positive(name: &'static str, value: f64) -> Result<f64, StatsError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(StatsError::BadParameter { name, value })
    }
}

fn uniform_open(rng: &mut dyn rand::RngCore) -> f64 {
    // In (0, 1): avoids ln(0) in inverse-CDF transforms.
    loop {
        let u: f64 = rng.random();
        if u > 0.0 {
            return u;
        }
    }
}

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Accurate to ~1e-13 for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Error function, Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile (Acklam's rational approximation, |ε| < 1.15e-9).
///
/// # Panics
///
/// Panics when `p` is outside `(0, 1)`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile probability out of (0,1): {p}");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step using the high-accuracy CDF.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

// ---------------------------------------------------------------------------
// Exponential
// ---------------------------------------------------------------------------

/// Exponential distribution with rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] unless `rate > 0` and finite.
    pub fn new(rate: f64) -> Result<Self, StatsError> {
        Ok(Exponential {
            rate: check_positive("rate", rate)?,
        })
    }

    /// Creates from the mean (`rate = 1/mean`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] unless `mean > 0` and finite.
    pub fn from_mean(mean: f64) -> Result<Self, StatsError> {
        Self::new(1.0 / check_positive("mean", mean)?)
    }

    /// The rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Maximum-likelihood fit: `λ̂ = 1 / x̄`.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptySample`] for empty input,
    /// [`StatsError::OutOfSupport`] if any value is negative.
    pub fn fit_mle(sample: &[f64]) -> Result<Self, StatsError> {
        if sample.is_empty() {
            return Err(StatsError::EmptySample);
        }
        if let Some(&bad) = sample.iter().find(|&&x| x < 0.0 || !x.is_finite()) {
            return Err(StatsError::OutOfSupport { value: bad });
        }
        let mean = sample.iter().sum::<f64>() / sample.len() as f64;
        Self::from_mean(mean)
    }

    /// Log-likelihood of a sample under this distribution.
    pub fn log_likelihood(&self, sample: &[f64]) -> f64 {
        sample
            .iter()
            .map(|&x| self.pdf(x).max(f64::MIN_POSITIVE).ln())
            .sum()
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        -uniform_open(rng).ln() / self.rate
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile probability out of (0,1): {p}");
        -(1.0 - p).ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

// ---------------------------------------------------------------------------
// Weibull
// ---------------------------------------------------------------------------

/// Weibull distribution with shape `k` and scale `λ`.
///
/// `k < 1` models infant mortality (decreasing hazard), `k = 1` is
/// exponential, `k > 1` wear-out — the standard vocabulary of dependability
/// field studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] unless both parameters are
    /// positive and finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self, StatsError> {
        Ok(Weibull {
            shape: check_positive("shape", shape)?,
            scale: check_positive("scale", scale)?,
        })
    }

    /// Shape parameter k.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter λ.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Maximum-likelihood fit via Newton iteration on the shape equation.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptySample`], [`StatsError::OutOfSupport`] (values must
    /// be strictly positive), or [`StatsError::NoConvergence`].
    pub fn fit_mle(sample: &[f64]) -> Result<Self, StatsError> {
        if sample.len() < 2 {
            return Err(StatsError::EmptySample);
        }
        if let Some(&bad) = sample.iter().find(|&&x| x <= 0.0 || !x.is_finite()) {
            return Err(StatsError::OutOfSupport { value: bad });
        }
        let n = sample.len() as f64;
        let mean_ln: f64 = sample.iter().map(|x| x.ln()).sum::<f64>() / n;
        // Solve f(k) = Σ xᵏ ln x / Σ xᵏ − 1/k − mean_ln = 0.
        let mut k: f64 = 1.0;
        for iter in 0..200 {
            let (mut s0, mut s1, mut s2) = (0.0f64, 0.0f64, 0.0f64);
            for &x in sample {
                let xk = x.powf(k);
                let lx = x.ln();
                s0 += xk;
                s1 += xk * lx;
                s2 += xk * lx * lx;
            }
            let f = s1 / s0 - 1.0 / k - mean_ln;
            let fp = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
            let step = f / fp;
            k -= step;
            if !(k.is_finite() && k > 0.0) {
                return Err(StatsError::NoConvergence {
                    iterations: iter + 1,
                });
            }
            if step.abs() < 1e-10 * k.max(1.0) {
                let scale = (sample.iter().map(|x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
                return Weibull::new(k, scale);
            }
        }
        Err(StatsError::NoConvergence { iterations: 200 })
    }

    /// Log-likelihood of a sample under this distribution.
    pub fn log_likelihood(&self, sample: &[f64]) -> f64 {
        sample
            .iter()
            .map(|&x| self.pdf(x).max(f64::MIN_POSITIVE).ln())
            .sum()
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.scale * (-uniform_open(rng).ln()).powf(1.0 / self.shape)
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let z = x / self.scale;
        (self.shape / self.scale) * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile probability out of (0,1): {p}");
        self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * (ln_gamma(1.0 + 1.0 / self.shape)).exp()
    }
}

// ---------------------------------------------------------------------------
// Normal / LogNormal
// ---------------------------------------------------------------------------

/// Normal distribution `N(μ, σ²)`, sampled by Box–Muller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] unless `sigma > 0` and finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        if !mu.is_finite() {
            return Err(StatsError::BadParameter {
                name: "mu",
                value: mu,
            });
        }
        Ok(Normal {
            mu,
            sigma: check_positive("sigma", sigma)?,
        })
    }

    /// Mean μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Standard deviation σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u1 = uniform_open(rng);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mu + self.sigma * z
    }

    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.mu + self.sigma * std_normal_quantile(p)
    }

    fn mean(&self) -> f64 {
        self.mu
    }
}

/// Log-normal distribution: `ln X ~ N(μ, σ²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal with the given log-space parameters.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] unless `sigma > 0` and finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }

    /// Creates a log-normal from a target *linear-space* mean and median.
    ///
    /// Handy for workload modelling: "median runtime 20 min, mean 1.6 h".
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] unless `0 < median < mean`.
    pub fn from_mean_median(mean: f64, median: f64) -> Result<Self, StatsError> {
        check_positive("median", median)?;
        // NaN means must fail this check, so compare via partial_cmp.
        if mean.partial_cmp(&median) != Some(std::cmp::Ordering::Greater) {
            return Err(StatsError::BadParameter {
                name: "mean",
                value: mean,
            });
        }
        let mu = median.ln();
        let sigma = (2.0 * (mean.ln() - mu)).sqrt();
        Self::new(mu, sigma)
    }

    /// Log-space mean μ.
    pub fn mu(&self) -> f64 {
        self.norm.mu()
    }

    /// Log-space standard deviation σ.
    pub fn sigma(&self) -> f64 {
        self.norm.sigma()
    }

    /// Maximum-likelihood fit from the log moments.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptySample`] or [`StatsError::OutOfSupport`] (values
    /// must be strictly positive).
    pub fn fit_mle(sample: &[f64]) -> Result<Self, StatsError> {
        if sample.len() < 2 {
            return Err(StatsError::EmptySample);
        }
        if let Some(&bad) = sample.iter().find(|&&x| x <= 0.0 || !x.is_finite()) {
            return Err(StatsError::OutOfSupport { value: bad });
        }
        let n = sample.len() as f64;
        let mu = sample.iter().map(|x| x.ln()).sum::<f64>() / n;
        let var = sample.iter().map(|x| (x.ln() - mu).powi(2)).sum::<f64>() / n;
        Self::new(mu, var.sqrt().max(1e-12))
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.norm.sample(rng).exp()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.norm.pdf(x.ln()) / x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.norm.cdf(x.ln())
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        self.norm.quantile(p).exp()
    }

    fn mean(&self) -> f64 {
        (self.norm.mu() + self.norm.sigma().powi(2) / 2.0).exp()
    }
}

// ---------------------------------------------------------------------------
// Pareto (optionally truncated)
// ---------------------------------------------------------------------------

/// Pareto distribution with scale `x_min` and shape `α`, optionally
/// right-truncated at `x_max` — the workhorse for heavy-tailed application
/// sizes where a hard machine-size cap exists.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
    x_max: Option<f64>,
}

impl Pareto {
    /// Creates an (untruncated) Pareto distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] unless both parameters are
    /// positive and finite.
    pub fn new(x_min: f64, alpha: f64) -> Result<Self, StatsError> {
        Ok(Pareto {
            x_min: check_positive("x_min", x_min)?,
            alpha: check_positive("alpha", alpha)?,
            x_max: None,
        })
    }

    /// Right-truncates the distribution at `x_max`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] unless `x_max > x_min`.
    pub fn truncated(x_min: f64, alpha: f64, x_max: f64) -> Result<Self, StatsError> {
        let mut p = Self::new(x_min, alpha)?;
        if x_max.partial_cmp(&p.x_min) != Some(std::cmp::Ordering::Greater) || !x_max.is_finite() {
            return Err(StatsError::BadParameter {
                name: "x_max",
                value: x_max,
            });
        }
        p.x_max = Some(x_max);
        Ok(p)
    }

    /// Scale (minimum) parameter.
    pub fn x_min(&self) -> f64 {
        self.x_min
    }

    /// Tail index α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Truncation point, if any.
    pub fn x_max(&self) -> Option<f64> {
        self.x_max
    }

    /// CDF mass at the truncation point (1.0 when untruncated).
    fn trunc_mass(&self) -> f64 {
        match self.x_max {
            Some(m) => 1.0 - (self.x_min / m).powf(self.alpha),
            None => 1.0,
        }
    }

    /// Hill estimator of the tail index with known `x_min` (MLE).
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptySample`] or [`StatsError::OutOfSupport`] (all
    /// values must be ≥ `x_min`).
    pub fn fit_alpha_mle(sample: &[f64], x_min: f64) -> Result<Self, StatsError> {
        if sample.is_empty() {
            return Err(StatsError::EmptySample);
        }
        check_positive("x_min", x_min)?;
        if let Some(&bad) = sample.iter().find(|&&x| x < x_min || !x.is_finite()) {
            return Err(StatsError::OutOfSupport { value: bad });
        }
        let n = sample.len() as f64;
        let s: f64 = sample.iter().map(|&x| (x / x_min).ln()).sum();
        if s <= 0.0 {
            return Err(StatsError::EmptySample);
        }
        Self::new(x_min, n / s)
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rng.random::<f64>() * self.trunc_mass();
        self.x_min / (1.0 - u).powf(1.0 / self.alpha)
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < self.x_min || self.x_max.is_some_and(|m| x > m) {
            return 0.0;
        }
        (self.alpha * self.x_min.powf(self.alpha) / x.powf(self.alpha + 1.0)) / self.trunc_mass()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.x_min {
            return 0.0;
        }
        if let Some(m) = self.x_max {
            if x >= m {
                return 1.0;
            }
        }
        (1.0 - (self.x_min / x).powf(self.alpha)) / self.trunc_mass()
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile probability out of (0,1): {p}");
        let u = p * self.trunc_mass();
        self.x_min / (1.0 - u).powf(1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        match self.x_max {
            None if self.alpha <= 1.0 => f64::INFINITY,
            None => self.alpha * self.x_min / (self.alpha - 1.0),
            Some(m) => {
                // E[X] for a truncated Pareto.
                let a = self.alpha;
                if (a - 1.0).abs() < 1e-12 {
                    self.x_min * (m / self.x_min).ln() / self.trunc_mass()
                } else {
                    (a * self.x_min.powf(a) / (a - 1.0))
                        * (self.x_min.powf(1.0 - a) - m.powf(1.0 - a))
                        / self.trunc_mass()
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Zipf (discrete)
// ---------------------------------------------------------------------------

/// Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^(-s)`. Used for user/project activity skew.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    cumulative: Vec<f64>,
    s: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] when `n == 0` or `s` is not
    /// finite/non-negative.
    pub fn new(n: usize, s: f64) -> Result<Self, StatsError> {
        if n == 0 {
            return Err(StatsError::BadParameter {
                name: "n",
                value: 0.0,
            });
        }
        if !s.is_finite() || s < 0.0 {
            return Err(StatsError::BadParameter {
                name: "s",
                value: s,
            });
        }
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Ok(Zipf { cumulative, s })
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cumulative.len()
    }

    /// Exponent s.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Draws a rank in `1..=n`.
    pub fn sample_rank(&self, rng: &mut dyn rand::RngCore) -> usize {
        let u: f64 = rng.random();
        let idx = self
            .cumulative
            .binary_search_by(|c| {
                // lint: allow(no-panic) the constructor validates weights, so every cumulative entry is finite
                c.partial_cmp(&u)
                    .expect("cumulative probabilities are finite")
            })
            .map(|i| i + 1) // u landed exactly on a boundary: CDF is inclusive
            .unwrap_or_else(|i| i);
        (idx + 1).min(self.cumulative.len())
    }

    /// Probability of rank `k` (1-based); 0 outside `1..=n`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 || k > self.cumulative.len() {
            return 0.0;
        }
        let hi = self.cumulative[k - 1];
        let lo = if k >= 2 { self.cumulative[k - 2] } else { 0.0 };
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn sample_n<D: Distribution>(d: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut r = rng(seed);
        (0..n).map(|_| d.sample(&mut r)).collect()
    }

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = std_normal_quantile(p);
            assert!((std_normal_cdf(x) - p).abs() < 1e-6, "p = {p}");
        }
        assert!(std_normal_quantile(0.5).abs() < 1e-6);
        assert!((std_normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
    }

    #[test]
    fn exponential_moments_and_fit() {
        let d = Exponential::new(0.5).unwrap();
        let xs = sample_n(&d, 50_000, 1);
        assert!((mean(&xs) - 2.0).abs() < 0.05, "mean was {}", mean(&xs));
        let fit = Exponential::fit_mle(&xs).unwrap();
        assert!((fit.rate() - 0.5).abs() < 0.02);
    }

    #[test]
    fn exponential_rejects_bad_inputs() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::fit_mle(&[]).is_err());
        assert!(Exponential::fit_mle(&[1.0, -2.0]).is_err());
    }

    #[test]
    fn weibull_fit_recovers_parameters() {
        let d = Weibull::new(1.7, 3.0).unwrap();
        let xs = sample_n(&d, 40_000, 2);
        let fit = Weibull::fit_mle(&xs).unwrap();
        assert!((fit.shape() - 1.7).abs() < 0.05, "shape {}", fit.shape());
        assert!((fit.scale() - 3.0).abs() < 0.1, "scale {}", fit.scale());
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::new(1.0, 2.0).unwrap();
        let e = Exponential::new(0.5).unwrap();
        for x in [0.1, 0.5, 1.0, 2.0, 5.0] {
            assert!((w.cdf(x) - e.cdf(x)).abs() < 1e-12);
        }
        assert!((w.mean() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lognormal_fit_and_mean() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let xs = sample_n(&d, 50_000, 3);
        let fit = LogNormal::fit_mle(&xs).unwrap();
        assert!((fit.mu() - 1.0).abs() < 0.02);
        assert!((fit.sigma() - 0.5).abs() < 0.02);
        let expected_mean = (1.0f64 + 0.125).exp();
        assert!((mean(&xs) - expected_mean).abs() / expected_mean < 0.02);
        assert!((d.mean() - expected_mean).abs() < 1e-9);
    }

    #[test]
    fn lognormal_from_mean_median() {
        let d = LogNormal::from_mean_median(2.0, 1.0).unwrap();
        assert!((d.quantile(0.5) - 1.0).abs() < 1e-6);
        assert!((d.mean() - 2.0).abs() < 1e-9);
        assert!(LogNormal::from_mean_median(1.0, 2.0).is_err());
    }

    #[test]
    fn pareto_truncated_stays_in_bounds() {
        let d = Pareto::truncated(8.0, 1.1, 22_640.0).unwrap();
        let xs = sample_n(&d, 20_000, 4);
        assert!(xs.iter().all(|&x| (8.0..=22_640.0).contains(&x)));
        // Empirical mean should match the analytic truncated mean.
        let m = d.mean();
        assert!(
            (mean(&xs) - m).abs() / m < 0.05,
            "mean {} vs {}",
            mean(&xs),
            m
        );
    }

    #[test]
    fn pareto_alpha_fit() {
        let d = Pareto::new(1.0, 2.5).unwrap();
        let xs = sample_n(&d, 50_000, 5);
        let fit = Pareto::fit_alpha_mle(&xs, 1.0).unwrap();
        assert!((fit.alpha() - 2.5).abs() < 0.05, "alpha {}", fit.alpha());
    }

    #[test]
    fn zipf_is_skewed_and_normalized() {
        let z = Zipf::new(100, 1.2).unwrap();
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(z.pmf(1) > 10.0 * z.pmf(50));
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(101), 0.0);

        let mut r = rng(6);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            let k = z.sample_rank(&mut r);
            assert!((1..=100).contains(&k));
            counts[k - 1] += 1;
        }
        // Rank 1 should be sampled close to its pmf.
        let p1 = counts[0] as f64 / 50_000.0;
        assert!((p1 - z.pmf(1)).abs() < 0.01, "p1 {} pmf {}", p1, z.pmf(1));
    }

    #[test]
    fn distribution_trait_is_object_safe() {
        let dists: Vec<Box<dyn Distribution>> = vec![
            Box::new(Exponential::new(1.0).unwrap()),
            Box::new(Weibull::new(0.8, 10.0).unwrap()),
            Box::new(LogNormal::new(0.0, 1.0).unwrap()),
            Box::new(Pareto::new(1.0, 2.0).unwrap()),
        ];
        let mut r = rng(7);
        for d in &dists {
            let x = d.sample(&mut r);
            assert!(x.is_finite());
            assert!(d.pdf(x) >= 0.0);
        }
    }

    proptest! {
        #[test]
        fn quantile_inverts_cdf_exponential(rate in 0.01f64..100.0, p in 0.001f64..0.999) {
            let d = Exponential::new(rate).unwrap();
            let x = d.quantile(p);
            prop_assert!((d.cdf(x) - p).abs() < 1e-9);
        }

        #[test]
        fn quantile_inverts_cdf_weibull(shape in 0.2f64..5.0, scale in 0.1f64..100.0, p in 0.001f64..0.999) {
            let d = Weibull::new(shape, scale).unwrap();
            let x = d.quantile(p);
            prop_assert!((d.cdf(x) - p).abs() < 1e-8);
        }

        #[test]
        fn quantile_inverts_cdf_pareto(alpha in 0.3f64..5.0, p in 0.001f64..0.999) {
            let d = Pareto::new(2.0, alpha).unwrap();
            let x = d.quantile(p);
            prop_assert!((d.cdf(x) - p).abs() < 1e-9);
        }

        #[test]
        fn cdf_is_monotone_lognormal(mu in -2.0f64..2.0, sigma in 0.1f64..2.0,
                                     a in 0.01f64..50.0, b in 0.01f64..50.0) {
            let d = LogNormal::new(mu, sigma).unwrap();
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(d.cdf(lo) <= d.cdf(hi) + 1e-12);
        }

        #[test]
        fn samples_stay_in_support(seed in 0u64..1000) {
            let mut r = rng(seed);
            let w = Weibull::new(0.7, 5.0).unwrap();
            let p = Pareto::truncated(4.0, 1.3, 100.0).unwrap();
            for _ in 0..50 {
                prop_assert!(w.sample(&mut r) >= 0.0);
                let x = p.sample(&mut r);
                prop_assert!((4.0..=100.0 + 1e-9).contains(&x));
            }
        }
    }
}
