//! Percentile-bootstrap confidence intervals.
//!
//! Field-study metrics (MTTI, mean lost node-hours per failure, …) come from
//! skewed samples; the bootstrap gives distribution-free intervals for the
//! report tables.

use rand::Rng;

use crate::error::StatsError;

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// Resamples `sample` with replacement `resamples` times, applies `stat` to
/// each resample and returns the empirical `(1−level)/2` and `(1+level)/2`
/// quantiles of the resulting distribution.
///
/// # Errors
///
/// [`StatsError::EmptySample`] for an empty sample;
/// [`StatsError::BadParameter`] for `level` outside `(0, 1)` or
/// `resamples == 0`.
///
/// # Example
///
/// ```
/// use hpc_stats::bootstrap_ci;
/// use rand::SeedableRng;
///
/// let sample: Vec<f64> = (1..=100).map(f64::from).collect();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let ci = bootstrap_ci(&sample, 500, 0.95, &mut rng,
///                       |xs| xs.iter().sum::<f64>() / xs.len() as f64)?;
/// assert!(ci.lo < 50.5 && 50.5 < ci.hi);
/// # Ok::<(), hpc_stats::StatsError>(())
/// ```
pub fn bootstrap_ci<R, F>(
    sample: &[f64],
    resamples: usize,
    level: f64,
    rng: &mut R,
    stat: F,
) -> Result<ConfidenceInterval, StatsError>
where
    R: Rng + ?Sized,
    F: Fn(&[f64]) -> f64,
{
    if sample.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if !(level > 0.0 && level < 1.0) {
        return Err(StatsError::BadParameter {
            name: "level",
            value: level,
        });
    }
    if resamples == 0 {
        return Err(StatsError::BadParameter {
            name: "resamples",
            value: 0.0,
        });
    }
    let estimate = stat(sample);
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; sample.len()];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = sample[rng.random_range(0..sample.len())];
        }
        stats.push(stat(&buf));
    }
    // lint: allow(no-panic) the statistic is computed over finite-checked samples; NaN cannot reach the sort
    stats.sort_by(|a, b| a.partial_cmp(b).expect("statistics are finite"));
    let lo_idx = (((1.0 - level) / 2.0) * resamples as f64) as usize;
    let hi_idx = ((((1.0 + level) / 2.0) * resamples as f64) as usize).min(resamples - 1);
    Ok(ConfidenceInterval {
        estimate,
        lo: stats[lo_idx],
        hi: stats[hi_idx],
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn interval_contains_true_mean_for_clean_data() {
        let sample: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect(); // mean 4.5
        let mut rng = StdRng::seed_from_u64(42);
        let ci = bootstrap_ci(&sample, 1000, 0.95, &mut rng, mean).unwrap();
        assert!((ci.estimate - 4.5).abs() < 1e-9);
        assert!(ci.lo <= 4.5 && 4.5 <= ci.hi);
        assert!(ci.hi - ci.lo < 1.5, "interval suspiciously wide");
    }

    #[test]
    fn interval_is_ordered() {
        let sample = vec![1.0, 5.0, 2.0, 8.0, 3.0];
        let mut rng = StdRng::seed_from_u64(7);
        let ci = bootstrap_ci(&sample, 200, 0.9, &mut rng, mean).unwrap();
        assert!(ci.lo <= ci.estimate + 1e-9);
        assert!(ci.estimate <= ci.hi + 1e-9);
    }

    #[test]
    fn validation_errors() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            bootstrap_ci(&[], 10, 0.9, &mut rng, mean),
            Err(StatsError::EmptySample)
        );
        assert!(bootstrap_ci(&[1.0], 10, 1.5, &mut rng, mean).is_err());
        assert!(bootstrap_ci(&[1.0], 0, 0.9, &mut rng, mean).is_err());
    }

    #[test]
    fn degenerate_sample_gives_point_interval() {
        let sample = vec![3.0; 20];
        let mut rng = StdRng::seed_from_u64(9);
        let ci = bootstrap_ci(&sample, 100, 0.95, &mut rng, mean).unwrap();
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
    }
}
