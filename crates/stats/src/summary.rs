//! One-pass summary statistics.

use serde::{Deserialize, Serialize};

/// Streaming summary of a univariate sample: count, mean, variance
/// (Welford), min and max. Percentiles need the data and live on
/// [`crate::Ecdf`]; this type is for cheap aggregate rows in report tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Builds a summary from a slice in one pass.
    pub fn of(sample: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in sample {
            s.record(x);
        }
        s
    }

    /// Records one observation (Welford update).
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Unbiased sample variance (`None` with fewer than 2 observations).
    pub fn variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_returns_none() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        // Population variance is 4; unbiased = 4 * 8/7.
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn single_observation_has_no_variance() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean(), Some(3.5));
        assert_eq!(s.variance(), None);
    }

    proptest! {
        #[test]
        fn merge_equals_concatenation(a in proptest::collection::vec(-50.0f64..50.0, 0..40),
                                      b in proptest::collection::vec(-50.0f64..50.0, 0..40)) {
            let mut merged = Summary::of(&a);
            merged.merge(&Summary::of(&b));
            let mut all = a.clone();
            all.extend_from_slice(&b);
            let direct = Summary::of(&all);
            prop_assert_eq!(merged.count(), direct.count());
            match (merged.mean(), direct.mean()) {
                (Some(m1), Some(m2)) => prop_assert!((m1 - m2).abs() < 1e-9),
                (None, None) => {}
                _ => prop_assert!(false, "mean presence mismatch"),
            }
            match (merged.variance(), direct.variance()) {
                (Some(v1), Some(v2)) => prop_assert!((v1 - v2).abs() < 1e-6),
                (None, None) => {}
                _ => prop_assert!(false, "variance presence mismatch"),
            }
        }
    }
}
