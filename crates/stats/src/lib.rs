//! # hpc-stats
//!
//! Statistics substrate for the LogDiver field study: probability
//! distributions with sampling / density / quantile / maximum-likelihood
//! fitting, empirical CDFs, histograms, summary statistics, bootstrap
//! confidence intervals, binomial proportion intervals, and Kaplan–Meier
//! survival estimation.
//!
//! Everything is implemented from first principles on top of a [`rand`]
//! uniform source — the field-study pipeline needs to *fit* these
//! distributions to measured data (e.g. error-event interarrival times,
//! Figure F6) as much as it needs to sample them, and keeping both sides in
//! one tested crate guarantees that `fit(sample(θ)) ≈ θ`.
//!
//! ## Example
//!
//! ```
//! use hpc_stats::dist::{Distribution, Exponential};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let exp = Exponential::new(2.0)?;
//! let xs: Vec<f64> = (0..10_000).map(|_| exp.sample(&mut rng)).collect();
//! let fitted = Exponential::fit_mle(&xs)?;
//! assert!((fitted.rate() - 2.0).abs() < 0.1);
//! # Ok::<(), hpc_stats::StatsError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod bootstrap;
pub mod dist;
pub mod ecdf;
pub mod error;
pub mod histogram;
pub mod proportion;
pub mod series;
pub mod summary;
pub mod survival;

pub use bootstrap::bootstrap_ci;
pub use dist::{Distribution, Exponential, LogNormal, Normal, Pareto, Weibull, Zipf};
pub use ecdf::Ecdf;
pub use error::StatsError;
pub use histogram::Histogram;
pub use proportion::wilson_interval;
pub use series::{autocorrelation, longest_run_above_mean};
pub use summary::Summary;
pub use survival::{KaplanMeier, NelsonAalen};
