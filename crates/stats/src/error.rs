//! Error type for statistical routines.

use std::error::Error;
use std::fmt;

/// Errors returned by construction and fitting routines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution parameter was non-positive / out of its domain.
    BadParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A fit or estimator was asked to run on an empty or unusable sample.
    EmptySample,
    /// Sample contained a value outside the distribution's support.
    OutOfSupport {
        /// The offending value.
        value: f64,
    },
    /// An iterative fit failed to converge.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::BadParameter { name, value } => {
                write!(f, "parameter {name} out of domain: {value}")
            }
            StatsError::EmptySample => f.write_str("sample is empty or degenerate"),
            StatsError::OutOfSupport { value } => {
                write!(f, "sample value {value} outside distribution support")
            }
            StatsError::NoConvergence { iterations } => {
                write!(
                    f,
                    "estimator failed to converge after {iterations} iterations"
                )
            }
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_concise() {
        assert_eq!(
            StatsError::BadParameter {
                name: "rate",
                value: -1.0
            }
            .to_string(),
            "parameter rate out of domain: -1"
        );
        assert_eq!(
            StatsError::EmptySample.to_string(),
            "sample is empty or degenerate"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
