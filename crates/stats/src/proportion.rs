//! Confidence intervals for binomial proportions.
//!
//! Failure *probabilities* (the paper's headline scale-sensitivity numbers,
//! e.g. "0.162 at 22,000 nodes") are binomial proportions estimated from a
//! handful of full-scale runs — exactly the regime where the naive Wald
//! interval collapses; we use the Wilson score interval.

use crate::dist::std_normal_quantile;
use crate::error::StatsError;

/// A binomial proportion with its Wilson score interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionEstimate {
    /// Number of successes (e.g. failed runs).
    pub successes: u64,
    /// Number of trials (e.g. total runs in the bucket).
    pub trials: u64,
    /// Point estimate `successes / trials`.
    pub p_hat: f64,
    /// Lower Wilson bound.
    pub lo: f64,
    /// Upper Wilson bound.
    pub hi: f64,
    /// Confidence level used.
    pub level: f64,
}

/// Wilson score interval for a binomial proportion.
///
/// # Errors
///
/// [`StatsError::EmptySample`] when `trials == 0`;
/// [`StatsError::BadParameter`] when `successes > trials` or `level`
/// is outside `(0, 1)`.
///
/// # Example
///
/// ```
/// use hpc_stats::wilson_interval;
/// let est = wilson_interval(3, 1000, 0.95)?;
/// assert!((est.p_hat - 0.003).abs() < 1e-12);
/// assert!(est.lo > 0.0 && est.hi < 0.01);
/// # Ok::<(), hpc_stats::StatsError>(())
/// ```
pub fn wilson_interval(
    successes: u64,
    trials: u64,
    level: f64,
) -> Result<ProportionEstimate, StatsError> {
    if trials == 0 {
        return Err(StatsError::EmptySample);
    }
    if successes > trials {
        return Err(StatsError::BadParameter {
            name: "successes",
            value: successes as f64,
        });
    }
    if !(level > 0.0 && level < 1.0) {
        return Err(StatsError::BadParameter {
            name: "level",
            value: level,
        });
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = std_normal_quantile(0.5 + level / 2.0);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    Ok(ProportionEstimate {
        successes,
        trials,
        p_hat: p,
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn point_estimate_is_ratio() {
        let e = wilson_interval(162, 1000, 0.95).unwrap();
        assert!((e.p_hat - 0.162).abs() < 1e-12);
        assert!(e.lo < 0.162 && 0.162 < e.hi);
    }

    #[test]
    fn zero_successes_has_nonzero_upper_bound() {
        let e = wilson_interval(0, 100, 0.95).unwrap();
        assert_eq!(e.lo, 0.0);
        assert!(e.hi > 0.0 && e.hi < 0.06);
    }

    #[test]
    fn all_successes_has_nonunit_lower_bound() {
        let e = wilson_interval(100, 100, 0.95).unwrap();
        assert_eq!(e.hi, 1.0);
        assert!(e.lo < 1.0 && e.lo > 0.94);
    }

    #[test]
    fn matches_known_value() {
        // Classic check: 5/10 at 95 % → (0.2366, 0.7634) approximately.
        let e = wilson_interval(5, 10, 0.95).unwrap();
        assert!((e.lo - 0.2366).abs() < 5e-3, "lo {}", e.lo);
        assert!((e.hi - 0.7634).abs() < 5e-3, "hi {}", e.hi);
    }

    #[test]
    fn validation() {
        assert!(wilson_interval(1, 0, 0.95).is_err());
        assert!(wilson_interval(5, 4, 0.95).is_err());
        assert!(wilson_interval(1, 10, 1.0).is_err());
    }

    proptest! {
        #[test]
        fn interval_is_proper(s in 0u64..1000, extra in 0u64..1000, level in 0.5f64..0.999) {
            let n = s + extra.max(1);
            let e = wilson_interval(s, n, level).unwrap();
            prop_assert!(0.0 <= e.lo && e.lo <= e.p_hat + 1e-12);
            prop_assert!(e.p_hat <= e.hi + 1e-12 && e.hi <= 1.0);
        }

        #[test]
        fn wider_level_gives_wider_interval(s in 1u64..100, extra in 1u64..100) {
            let n = s + extra;
            let narrow = wilson_interval(s, n, 0.8).unwrap();
            let wide = wilson_interval(s, n, 0.99).unwrap();
            prop_assert!(wide.hi - wide.lo >= narrow.hi - narrow.lo - 1e-12);
        }
    }
}
