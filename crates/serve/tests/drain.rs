//! Overload-hardening drills over real TCP: graceful drain (`DRAIN` verb
//! and SIGTERM), slow-client eviction, malformed-frame tolerance, and a
//! zero-loss rolling restart driven by the resilient `logdiver-push`
//! client. Companion to `smoke.rs`, which covers the happy path and
//! SIGKILL crash recovery.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use logdiver::{LogCollection, LogDiver};
use logdiver_push::{deliver, NetConfig, PushPlan, Session, SessionConfig};

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Start on an ephemeral port with hardening flags.
    fn start(tenants_dir: &Path, extra: &[&str]) -> Daemon {
        Self::try_start(tenants_dir, "127.0.0.1:0", extra).expect("spawn logdiver-serve")
    }

    /// Start on a specific address, retrying briefly — a just-exited
    /// predecessor may still hold the port for a moment.
    fn restart_at(tenants_dir: &Path, addr: &str, extra: &[&str]) -> Daemon {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match Self::try_start(tenants_dir, addr, extra) {
                Some(d) => return d,
                None => {
                    assert!(Instant::now() < deadline, "could not rebind {addr}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
    }

    fn try_start(tenants_dir: &Path, listen: &str, extra: &[&str]) -> Option<Daemon> {
        let mut args = vec![
            "--listen",
            listen,
            "--tenants-dir",
            tenants_dir.to_str().expect("utf-8 temp path"),
        ];
        args.extend_from_slice(extra);
        let mut child = Command::new(env!("CARGO_BIN_EXE_logdiver-serve"))
            .args(&args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn logdiver-serve");
        let stdout: ChildStdout = child.stdout.take().expect("piped stdout");
        let mut first = String::new();
        BufReader::new(stdout)
            .read_line(&mut first)
            .expect("startup line");
        if !first.contains("listening on") {
            let _ = child.kill();
            let _ = child.wait();
            return None;
        }
        let addr = first
            .trim()
            .rsplit(' ')
            .next()
            .expect("listen address")
            .to_string();
        Some(Daemon { child, addr })
    }

    fn connect(&self) -> Client {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone socket"));
        Client { stream, reader }
    }

    /// Wait (bounded) for the daemon to exit and return its status.
    fn wait_exit(mut self, secs: u64) -> std::process::ExitStatus {
        let deadline = Instant::now() + Duration::from_secs(secs);
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            assert!(
                Instant::now() < deadline,
                "daemon did not exit within {secs}s"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn request(&mut self, line: &str) -> String {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        self.read_line()
    }

    fn read_line(&mut self) -> String {
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("response");
        response.trim_end_matches('\n').to_string()
    }

    /// Send several request lines in one write, then read one response
    /// per request — the lockstep server answers them as a batch, which
    /// keeps multi-step checks ahead of a draining daemon's exit.
    fn request_many(&mut self, lines: &[&str]) -> Vec<String> {
        let batch: String = lines.iter().map(|l| format!("{l}\n")).collect();
        self.stream.write_all(batch.as_bytes()).expect("send batch");
        lines.iter().map(|_| self.read_line()).collect()
    }

    fn report(&mut self, tenant: &str) -> String {
        let head = self.request(&format!("REPORT {tenant}"));
        let n: usize = head
            .strip_prefix("OK lines=")
            .and_then(|rest| rest.split(' ').next())
            .unwrap_or_else(|| panic!("bad REPORT head: {head}"))
            .parse()
            .expect("line count");
        (0..n).map(|_| self.read_line() + "\n").collect()
    }
}

/// One tenant's corpus: two jobs, one killed by a node failure.
fn corpus() -> LogCollection {
    let mut logs = LogCollection::new();
    logs.torque.extend([
        "2013-03-28 10:00:00;S;1.bw;user=u0001 queue=normal nodes=4 walltime=86400".to_string(),
        "2013-03-28 10:00:00;S;2.bw;user=u0002 queue=small nodes=1 walltime=86400".to_string(),
    ]);
    logs.alps.extend([
        "2013-03-28 10:00:05 apsys PLACED apid=100 batch=1.bw user=u0001 cmd=namd2 type=XE width=4 nodelist=nid[0-3]".to_string(),
        "2013-03-28 10:00:06 apsys PLACED apid=200 batch=2.bw user=u0002 cmd=vasp type=XE width=1 nodelist=nid[100]".to_string(),
        "2013-03-28 12:00:05 apsys EXIT apid=100 code=137 signal=9 node_failed=yes runtime=7200".to_string(),
        "2013-03-28 13:00:06 apsys EXIT apid=200 code=0 signal=none node_failed=no runtime=10800".to_string(),
    ]);
    logs.syslog.extend([
        "2013-03-28 09:59:00 nid00050 ntpd: time slew +0.012s".to_string(),
        "2013-03-28 12:00:00 nid00002 kernel: Machine Check Exception: bank 4 status 0xb200".to_string(),
        "2013-03-28 12:00:31 smw xtnmd: node heartbeat fault: no response in 60s, declaring node dead".to_string(),
    ]);
    logs.hwerr.extend([
        "2013-03-28 12:00:01|c0-0c0s0n2|MCE|CRIT|bank=4".to_string(),
        "2013-03-28 12:00:31|c0-0c0s0n2|NODE_DEAD|FATAL|".to_string(),
    ]);
    logs
}

/// The corpus as a push plan, in the server's source order.
fn corpus_plan(tenant: &str) -> PushPlan {
    let logs = corpus();
    PushPlan {
        tenant: tenant.to_string(),
        lines: [
            logs.syslog.clone(),
            logs.hwerr.clone(),
            logs.alps.clone(),
            logs.torque.clone(),
            logs.netwatch.clone(),
        ],
    }
}

fn batch_report(logs: &LogCollection) -> String {
    let analysis = LogDiver::new().analyze(logs);
    logdiver::report::full_report(&analysis.metrics, &analysis.stats)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("logdiver-drain-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn drain_checkpoints_sheds_and_exits_zero() {
    let dir = temp_dir("verb");
    let daemon = Daemon::start(&dir, &[]);
    let mut client = daemon.connect();
    assert!(client
        .request("PUSH bw syslog 0 2013-03-28 09:59:00 nid1 ntpd: ok")
        .starts_with("OK"));

    // One batch: DRAIN, a shed push, a duplicate replay, and a second
    // DRAIN — answered together before the grace period can expire.
    let resps = client.request_many(&[
        "DRAIN",
        "PUSH bw syslog 1 2013-03-28 10:00:00 nid1 ntpd: more",
        "PUSH bw syslog 0 2013-03-28 09:59:00 nid1 ntpd: ok",
        "DRAIN",
    ]);
    assert!(
        resps[0].starts_with("OK draining tenants=1"),
        "DRAIN response: {}",
        resps[0]
    );
    // New work is shed with a machine-readable retry hint; replayed
    // duplicates still settle; a second DRAIN is idempotent, not an error.
    assert!(
        resps[1].starts_with("ERR code=draining retry-ms="),
        "{}",
        resps[1]
    );
    assert_eq!(resps[2], "OK dup");
    assert!(resps[3].starts_with("OK draining"), "{}", resps[3]);

    let status = daemon.wait_exit(15);
    assert!(status.success(), "drained daemon exited {status:?}");

    // The pre-exit checkpoint preserved the accepted line.
    let daemon = Daemon::start(&dir, &[]);
    let mut client = daemon.connect();
    assert_eq!(
        client.request("HELLO bw"),
        "OK tenant=bw accepted=1,0,0,0,0"
    );
    assert_eq!(client.request("SHUTDOWN"), "OK shutting-down");
    assert!(daemon.wait_exit(15).success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn sigterm_drains_and_exits_zero() {
    let dir = temp_dir("sigterm");
    let daemon = Daemon::start(&dir, &[]);
    let mut client = daemon.connect();
    assert!(client
        .request("PUSH bw hwerr 0 2013-03-28 12:00:01|c0-0c0s0n2|MCE|CRIT|bank=4")
        .starts_with("OK"));

    let pid = daemon.child.id().to_string();
    let status = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("send SIGTERM");
    assert!(status.success(), "kill -TERM failed");

    let status = daemon.wait_exit(15);
    assert!(status.success(), "SIGTERM'd daemon exited {status:?}");

    let daemon = Daemon::start(&dir, &[]);
    let mut client = daemon.connect();
    assert_eq!(
        client.request("HELLO bw"),
        "OK tenant=bw accepted=0,1,0,0,0"
    );
    assert_eq!(client.request("SHUTDOWN"), "OK shutting-down");
    assert!(daemon.wait_exit(15).success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_client_is_evicted_with_a_reasoned_error() {
    let dir = temp_dir("slowloris");
    let daemon = Daemon::start(
        &dir,
        &["--io-timeout-ms", "100", "--line-deadline-ms", "300"],
    );

    // A well-behaved client on the same daemon, before and after.
    let mut good = daemon.connect();
    assert!(good
        .request("PUSH bw syslog 0 2013-03-28 09:59:00 nid1 ntpd: ok")
        .starts_with("OK"));

    // The slowloris: send half a line, then stall forever.
    let mut slow = daemon.connect();
    slow.stream
        .write_all(b"PUSH bw syslog 1 2013-03-28 ")
        .expect("partial write");
    let verdict = slow.read_line();
    assert!(
        verdict.starts_with("ERR code=slow-client deadline-ms=300"),
        "eviction notice: {verdict:?}"
    );
    // The connection is closed after the notice.
    let mut rest = String::new();
    let n = slow.reader.read_to_string(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "connection should be closed, got {rest:?}");

    // The eviction did not disturb the healthy connection.
    assert!(good
        .request("PUSH bw syslog 1 2013-03-28 10:00:00 nid1 ntpd: again")
        .starts_with("OK"));
    assert_eq!(good.request("SHUTDOWN"), "OK shutting-down");
    assert!(daemon.wait_exit(15).success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_frames_answer_err_and_keep_the_connection_usable() {
    let dir = temp_dir("malformed");
    let daemon = Daemon::start(&dir, &["--max-line", "128"]);
    let mut client = daemon.connect();

    // Truncated PUSH: missing the index and payload.
    let resp = client.request("PUSH bw");
    assert!(resp.starts_with("ERR code=missing-arg"), "{resp}");
    // Unknown source token.
    let resp = client.request("PUSH bw bogus 0 x");
    assert!(resp.starts_with("ERR code=bad-source"), "{resp}");
    // Non-numeric index.
    let resp = client.request("PUSH bw syslog twelve x");
    assert!(resp.starts_with("ERR code=bad-index"), "{resp}");
    // Oversized tenant name (past MAX_TENANT_NAME = 64).
    let resp = client.request(&format!("HELLO {}", "t".repeat(80)));
    assert!(resp.starts_with("ERR code=bad-tenant-name"), "{resp}");
    // Non-UTF-8 payload.
    client
        .stream
        .write_all(b"PUSH bw syslog 0 \xff\xfe broken\n")
        .expect("send");
    let resp = client.read_line();
    assert_eq!(resp, "ERR code=bad-utf8");
    // A line past --max-line, dribbled in two writes to prove the bound
    // applies to the reassembled line, not one read.
    let long = "x".repeat(200);
    client
        .stream
        .write_all(&long.as_bytes()[..100])
        .expect("send");
    client
        .stream
        .write_all(format!("{}\n", &long[100..]).as_bytes())
        .expect("send");
    let resp = client.read_line();
    assert_eq!(resp, "ERR code=line-too-long limit=128");

    // After all that abuse the same connection still serves.
    assert!(client
        .request("PUSH bw syslog 0 2013-03-28 09:59:00 nid1 ntpd: ok")
        .starts_with("OK"));
    assert_eq!(client.request("SHUTDOWN"), "OK shutting-down");
    assert!(daemon.wait_exit(15).success());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The rolling-restart runbook, end to end: a resilient client keeps
/// pushing while the daemon drains, exits 0, and a successor takes over
/// the same address and checkpoint dir. Delivery is exactly-once and the
/// final report matches the batch pipeline.
#[test]
fn rolling_restart_is_zero_loss_for_a_resilient_client() {
    let dir = temp_dir("rolling");
    let daemon = Daemon::start(&dir, &[]);
    let addr = daemon.addr.clone();

    // Pre-seed a little history so the tenant exists across the drain.
    let mut client = daemon.connect();
    let logs = corpus();
    for (i, line) in logs.syslog.iter().take(2).enumerate() {
        assert!(client
            .request(&format!("PUSH bw syslog {i} {line}"))
            .starts_with("OK"));
    }
    let resp = client.request("DRAIN");
    assert!(resp.starts_with("OK draining"), "{resp}");

    // Start the resilient client *while the daemon is draining*: it will
    // be shed with hints, lose the connection when the daemon exits, back
    // off through connection-refused, and finish against the successor.
    let push_thread = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let session = Session::new(
                corpus_plan("bw"),
                SessionConfig {
                    max_attempts: 40,
                    seed: 7,
                    ..SessionConfig::default()
                },
            );
            deliver(
                session,
                &NetConfig {
                    addr,
                    timeout_ms: 2_000,
                    max_wall_ms: 60_000,
                },
            )
        }
    });

    let status = daemon.wait_exit(15);
    assert!(status.success(), "drained daemon exited {status:?}");
    let daemon = Daemon::restart_at(&dir, &addr, &[]);

    let summary = push_thread.join().expect("push thread");
    assert!(summary.complete, "delivery incomplete: {summary:?}");
    // Exactly-once: every line accounted for, pre-seeded ones never
    // double-pushed (they are skipped via HELLO cursors or answer OK dup).
    assert_eq!(
        summary.pushed + summary.dups,
        summary.total_lines - 2,
        "{summary:?}"
    );
    assert!(
        summary.reconnects + summary.shed_draining + summary.backoffs > 0,
        "client never saw the restart: {summary:?}"
    );

    let mut client = daemon.connect();
    let resp = client.request("FLUSH bw");
    assert!(resp.starts_with("OK applied="), "{resp}");
    let served = client.report("bw");
    assert_eq!(
        served.trim_end(),
        batch_report(&logs).trim_end(),
        "drained-and-restarted REPORT != batch report"
    );
    assert_eq!(client.request("SHUTDOWN"), "OK shutting-down");
    assert!(daemon.wait_exit(15).success());
    let _ = std::fs::remove_dir_all(&dir);
}
