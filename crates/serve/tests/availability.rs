//! Availability drill over real TCP — the CI `availability-smoke` job in
//! test form: run the daemon with TWO checkpoint replica dirs, destroy
//! one mid-run, keep pushing (ingestion must not stall; `SNAPSHOT` must
//! say `degraded`), SIGKILL the daemon, restart it against the same pair
//! of dirs, and require it to resume every tenant from the surviving
//! replica — finishing with `REPORT` == the batch pipeline's report.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, ChildStdout, Command, Stdio};

use logdiver::{LogCollection, LogDiver};
use logdiver_stream::Source;

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(replicas: &[&Path]) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_logdiver-serve"));
        cmd.args(["--listen", "127.0.0.1:0", "--checkpoint-every", "0"]);
        for dir in replicas {
            cmd.args(["--tenants-dir", dir.to_str().expect("utf-8 temp path")]);
        }
        let mut child = cmd
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn logdiver-serve");
        let stdout: ChildStdout = child.stdout.take().expect("piped stdout");
        let mut first = String::new();
        BufReader::new(stdout)
            .read_line(&mut first)
            .expect("startup line");
        let addr = first
            .trim()
            .rsplit(' ')
            .next()
            .expect("listen address")
            .to_string();
        assert!(
            first.contains("listening on"),
            "unexpected startup line: {first:?}"
        );
        Daemon { child, addr }
    }

    fn connect(&self) -> Client {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone socket"));
        Client { stream, reader }
    }

    fn kill(mut self) {
        self.child.kill().expect("SIGKILL");
        self.child.wait().expect("reap");
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn request(&mut self, line: &str) -> String {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        self.read_line()
    }

    fn read_line(&mut self) -> String {
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("response");
        response.trim_end_matches('\n').to_string()
    }

    fn report(&mut self, tenant: &str) -> String {
        let head = self.request(&format!("REPORT {tenant}"));
        let n: usize = head
            .strip_prefix("OK lines=")
            .and_then(|rest| rest.split(' ').next())
            .unwrap_or_else(|| panic!("bad REPORT head: {head}"))
            .parse()
            .expect("line count");
        (0..n).map(|_| self.read_line() + "\n").collect()
    }
}

fn corpus() -> LogCollection {
    let mut logs = LogCollection::new();
    logs.torque.extend([
        "2013-03-28 10:00:00;S;1.bw;user=u0001 queue=normal nodes=4 walltime=86400".to_string(),
        "2013-03-28 10:00:00;S;2.bw;user=u0002 queue=small nodes=1 walltime=86400".to_string(),
    ]);
    logs.alps.extend([
        "2013-03-28 10:00:05 apsys PLACED apid=100 batch=1.bw user=u0001 cmd=namd2 type=XE width=4 nodelist=nid[0-3]".to_string(),
        "2013-03-28 10:00:06 apsys PLACED apid=200 batch=2.bw user=u0002 cmd=vasp type=XE width=1 nodelist=nid[100]".to_string(),
        "2013-03-28 12:00:05 apsys EXIT apid=100 code=137 signal=9 node_failed=yes runtime=7200".to_string(),
        "2013-03-28 13:00:06 apsys EXIT apid=200 code=0 signal=none node_failed=no runtime=10800".to_string(),
    ]);
    logs.syslog.extend([
        "2013-03-28 09:59:00 nid00050 ntpd: time slew +0.012s".to_string(),
        "2013-03-28 12:00:00 nid00002 kernel: Machine Check Exception: bank 4 status 0xb200"
            .to_string(),
        "2013-03-28 12:00:31 smw xtnmd: node heartbeat fault: no response in 60s, declaring node dead"
            .to_string(),
    ]);
    logs.hwerr.extend([
        "2013-03-28 12:00:01|c0-0c0s0n2|MCE|CRIT|bank=4".to_string(),
        "2013-03-28 12:00:31|c0-0c0s0n2|NODE_DEAD|FATAL|".to_string(),
    ]);
    logs
}

fn sources_of(logs: &LogCollection) -> [(Source, &Vec<String>); 5] {
    [
        (Source::Syslog, &logs.syslog),
        (Source::HwErr, &logs.hwerr),
        (Source::Alps, &logs.alps),
        (Source::Torque, &logs.torque),
        (Source::Netwatch, &logs.netwatch),
    ]
}

fn push_from(client: &mut Client, tenant: &str, logs: &LogCollection, from: &[u64; 5]) {
    for (source, lines) in sources_of(logs) {
        for (i, line) in lines.iter().enumerate().skip(from[source.index()] as usize) {
            let resp = client.request(&format!("PUSH {tenant} {} {i} {line}", source.name()));
            assert!(resp.starts_with("OK"), "push rejected: {resp}");
        }
    }
}

fn hello_cursors(client: &mut Client, tenant: &str) -> [u64; 5] {
    let resp = client.request(&format!("HELLO {tenant}"));
    let counts = resp
        .split("accepted=")
        .nth(1)
        .unwrap_or_else(|| panic!("bad HELLO response: {resp}"));
    let mut cursors = [0u64; 5];
    for (i, c) in counts.split(',').enumerate() {
        cursors[i] = c.parse().expect("cursor");
    }
    cursors
}

#[test]
fn replica_loss_degrades_then_survivor_resumes() {
    let base = std::env::temp_dir().join(format!("logdiver-serve-avail-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let replica_a = base.join("replica-a");
    let replica_b = base.join("replica-b");
    let logs = corpus();
    let tenants = ["blue", "green"];

    // Phase 1: both replicas healthy; checkpoint lands on both.
    let daemon = Daemon::start(&[&replica_a, &replica_b]);
    {
        let mut client = daemon.connect();
        for tenant in tenants {
            push_from(&mut client, tenant, &logs, &[0; 5]);
        }
        assert_eq!(client.request("CHECKPOINT"), "OK tenants=2 durability=full");
        for tenant in tenants {
            assert!(
                replica_a.join(format!("{tenant}.ckpt")).exists(),
                "replica A holds {tenant}"
            );
            assert!(
                replica_b.join(format!("{tenant}.ckpt")).exists(),
                "replica B holds {tenant}"
            );
        }

        // Disaster: replica A is wiped out mid-run. Ingestion must keep
        // going and durability must degrade, not vanish.
        std::fs::remove_dir_all(&replica_a).expect("wipe replica A");
        assert_eq!(
            client.request("PUSH blue netwatch 0 2013-03-28 12:01:00 link c0-0c0s0n2 degraded"),
            "OK",
            "ingestion survives the wipe"
        );
        let ckpt = client.request("CHECKPOINT");
        assert!(
            ckpt.contains("durability=degraded"),
            "checkpoint after wipe: {ckpt}"
        );
        let snap = client.request("SNAPSHOT");
        assert!(
            snap.contains("\"durability\":\"degraded\""),
            "fleet snapshot after wipe: {snap}"
        );
    }
    daemon.kill();

    // Phase 2: restart with the same two dirs — replica A is empty (it
    // gets recreated), so every tenant must resume from survivor B.
    let daemon = Daemon::start(&[&replica_a, &replica_b]);
    {
        let mut client = daemon.connect();
        for tenant in tenants {
            let cursors = hello_cursors(&mut client, tenant);
            assert!(
                cursors.iter().sum::<u64>() > 0,
                "{tenant} did not resume from the survivor"
            );
            push_from(&mut client, tenant, &logs, &cursors);
        }
        // blue replays its post-wipe netwatch line too (it was only
        // checkpointed on the survivor).
        let blue = hello_cursors(&mut client, "blue");
        if blue[Source::Netwatch.index()] == 0 {
            assert_eq!(
                client.request("PUSH blue netwatch 0 2013-03-28 12:01:00 link c0-0c0s0n2 degraded"),
                "OK"
            );
        }
        for tenant in tenants {
            let resp = client.request(&format!("FLUSH {tenant}"));
            assert!(resp.starts_with("OK applied="), "flush: {resp}");
        }
        // green saw exactly the corpus: its report must equal batch.
        let analysis = LogDiver::new().analyze(&logs);
        let batch = logdiver::report::full_report(&analysis.metrics, &analysis.stats);
        let served = client.report("green");
        assert_eq!(
            served.trim_end(),
            batch.trim_end(),
            "green: served REPORT != batch report after replica loss + kill + resume"
        );
        // Both replicas are writable again after the restart recreated A.
        assert_eq!(client.request("CHECKPOINT"), "OK tenants=2 durability=full");
        assert_eq!(client.request("SHUTDOWN"), "OK shutting-down");
    }
    let mut child = daemon.child;
    let status = child.wait().expect("daemon exit");
    assert!(status.success(), "daemon exited {status:?}");
    let _ = std::fs::remove_dir_all(&base);
}
