//! End-to-end smoke over real TCP: start the `logdiver-serve` binary,
//! push two tenants' logs over sockets, query `SNAPSHOT`, SIGKILL the
//! daemon, restart it against the same tenants dir, replay from the
//! `HELLO` cursors, and require each tenant's `REPORT` to match the batch
//! pipeline's report for that tenant's logs. This is the same drill the
//! CI `serve-smoke` job runs.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, ChildStdout, Command, Stdio};

use logdiver::{LogCollection, LogDiver};
use logdiver_stream::Source;

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(tenants_dir: &Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_logdiver-serve"))
            .args([
                "--listen",
                "127.0.0.1:0",
                "--tenants-dir",
                tenants_dir.to_str().expect("utf-8 temp path"),
                "--checkpoint-every",
                "0",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn logdiver-serve");
        let stdout: ChildStdout = child.stdout.take().expect("piped stdout");
        let mut first = String::new();
        BufReader::new(stdout)
            .read_line(&mut first)
            .expect("startup line");
        let addr = first
            .trim()
            .rsplit(' ')
            .next()
            .expect("listen address")
            .to_string();
        assert!(
            first.contains("listening on"),
            "unexpected startup line: {first:?}"
        );
        Daemon { child, addr }
    }

    fn connect(&self) -> Client {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone socket"));
        Client { stream, reader }
    }

    fn kill(mut self) {
        self.child.kill().expect("SIGKILL");
        self.child.wait().expect("reap");
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Sends one request line and reads one response line.
    fn request(&mut self, line: &str) -> String {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        self.read_line()
    }

    fn read_line(&mut self) -> String {
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("response");
        response.trim_end_matches('\n').to_string()
    }

    /// `REPORT <tenant>` — reads the `OK lines=<n> durability=<l> …`
    /// frame then the body.
    fn report(&mut self, tenant: &str) -> String {
        let head = self.request(&format!("REPORT {tenant}"));
        let n: usize = head
            .strip_prefix("OK lines=")
            .and_then(|rest| rest.split(' ').next())
            .unwrap_or_else(|| panic!("bad REPORT head: {head}"))
            .parse()
            .expect("line count");
        assert!(head.contains("durability="), "REPORT head: {head}");
        (0..n).map(|_| self.read_line() + "\n").collect()
    }
}

/// Tenant "blue": two jobs, one killed by a node failure.
fn blue_logs() -> LogCollection {
    let mut logs = LogCollection::new();
    logs.torque.extend([
        "2013-03-28 10:00:00;S;1.bw;user=u0001 queue=normal nodes=4 walltime=86400".to_string(),
        "2013-03-28 10:00:00;S;2.bw;user=u0002 queue=small nodes=1 walltime=86400".to_string(),
    ]);
    logs.alps.extend([
        "2013-03-28 10:00:05 apsys PLACED apid=100 batch=1.bw user=u0001 cmd=namd2 type=XE width=4 nodelist=nid[0-3]".to_string(),
        "2013-03-28 10:00:06 apsys PLACED apid=200 batch=2.bw user=u0002 cmd=vasp type=XE width=1 nodelist=nid[100]".to_string(),
        "2013-03-28 12:00:05 apsys EXIT apid=100 code=137 signal=9 node_failed=yes runtime=7200".to_string(),
        "2013-03-28 13:00:06 apsys EXIT apid=200 code=0 signal=none node_failed=no runtime=10800".to_string(),
    ]);
    logs.syslog.extend([
        "2013-03-28 09:59:00 nid00050 ntpd: time slew +0.012s".to_string(),
        "2013-03-28 12:00:00 nid00002 kernel: Machine Check Exception: bank 4 status 0xb200".to_string(),
        "2013-03-28 12:00:31 smw xtnmd: node heartbeat fault: no response in 60s, declaring node dead".to_string(),
    ]);
    logs.hwerr.extend([
        "2013-03-28 12:00:01|c0-0c0s0n2|MCE|CRIT|bank=4".to_string(),
        "2013-03-28 12:00:31|c0-0c0s0n2|NODE_DEAD|FATAL|".to_string(),
    ]);
    logs
}

/// Tenant "green": a clean success and a launch failure — a different
/// corpus, so a cross-tenant leak would change its report.
fn green_logs() -> LogCollection {
    let mut logs = LogCollection::new();
    logs.torque.extend([
        "2013-03-28 08:00:00;S;9.bw;user=u0009 queue=small nodes=1 walltime=3600".to_string(),
    ]);
    logs.alps.extend([
        "2013-03-28 08:00:02 apsys PLACED apid=900 batch=9.bw user=u0009 cmd=lmp type=XE width=1 nodelist=nid[40]".to_string(),
        "2013-03-28 09:00:02 apsys EXIT apid=900 code=0 signal=none node_failed=no runtime=3600".to_string(),
        "2013-03-28 09:30:00 apsys PLACED apid=901 batch=9.bw user=u0009 cmd=lmp type=XE width=1 nodelist=nid[41]".to_string(),
        "2013-03-28 09:30:03 apsys LAUNCHERR apid=901 reason=placement failed: node unavailable".to_string(),
    ]);
    logs.syslog
        .extend(["2013-03-28 08:30:00 nid00040 ntpd: time slew -0.004s".to_string()]);
    logs
}

fn sources_of(logs: &LogCollection) -> [(Source, &Vec<String>); 5] {
    [
        (Source::Syslog, &logs.syslog),
        (Source::HwErr, &logs.hwerr),
        (Source::Alps, &logs.alps),
        (Source::Torque, &logs.torque),
        (Source::Netwatch, &logs.netwatch),
    ]
}

/// Pushes `lines[from..]` for every source of one tenant; every response
/// must be `OK` or `OK dup`.
fn push_from(client: &mut Client, tenant: &str, logs: &LogCollection, from: &[u64; 5]) {
    for (source, lines) in sources_of(logs) {
        for (i, line) in lines.iter().enumerate().skip(from[source.index()] as usize) {
            let resp = client.request(&format!("PUSH {tenant} {} {i} {line}", source.name()));
            assert!(resp.starts_with("OK"), "push rejected: {resp}");
        }
    }
}

/// Parses `OK tenant=<t> accepted=a,b,c,d,e` into the five cursors.
fn hello_cursors(client: &mut Client, tenant: &str) -> [u64; 5] {
    let resp = client.request(&format!("HELLO {tenant}"));
    let counts = resp
        .split("accepted=")
        .nth(1)
        .unwrap_or_else(|| panic!("bad HELLO response: {resp}"));
    let mut cursors = [0u64; 5];
    for (i, c) in counts.split(',').enumerate() {
        cursors[i] = c.parse().expect("cursor");
    }
    cursors
}

fn batch_report(logs: &LogCollection) -> String {
    let analysis = LogDiver::new().analyze(logs);
    logdiver::report::full_report(&analysis.metrics, &analysis.stats)
}

#[test]
fn push_kill_resume_report_matches_batch() {
    let dir = std::env::temp_dir().join(format!("logdiver-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let tenants: [(&str, LogCollection); 2] = [("blue", blue_logs()), ("green", green_logs())];

    // Phase 1: push roughly half of each tenant's logs, checkpoint, and
    // SIGKILL the daemon (no clean shutdown).
    let daemon = Daemon::start(&dir);
    {
        let mut client = daemon.connect();
        for (tenant, logs) in &tenants {
            let halves: LogCollection = {
                let mut h = LogCollection::new();
                h.syslog = logs.syslog[..logs.syslog.len() / 2].to_vec();
                h.hwerr = logs.hwerr[..logs.hwerr.len() / 2].to_vec();
                h.alps = logs.alps[..logs.alps.len() / 2].to_vec();
                h.torque = logs.torque[..logs.torque.len() / 2].to_vec();
                h.netwatch = logs.netwatch[..logs.netwatch.len() / 2].to_vec();
                h
            };
            push_from(&mut client, tenant, &halves, &[0; 5]);
        }
        let resp = client.request("CHECKPOINT");
        assert_eq!(
            resp, "OK tenants=2 durability=full",
            "checkpoint all tenants"
        );
        // A fleet snapshot answers with JSON.
        let snap = client.request("SNAPSHOT");
        assert!(snap.starts_with("OK {"), "fleet snapshot: {snap}");
        assert!(snap.contains("\"tenants\":2"), "fleet snapshot: {snap}");
    }
    daemon.kill();

    // Phase 2: restart resumes both tenants from the checkpoint dir;
    // clients replay from the HELLO cursors and finish the corpus.
    let daemon = Daemon::start(&dir);
    {
        let mut client = daemon.connect();
        for (tenant, logs) in &tenants {
            let cursors = hello_cursors(&mut client, tenant);
            assert!(
                cursors.iter().sum::<u64>() > 0,
                "{tenant} resumed with empty cursors"
            );
            push_from(&mut client, tenant, logs, &cursors);
            let resp = client.request(&format!("FLUSH {tenant}"));
            assert!(resp.starts_with("OK applied="), "flush: {resp}");
        }
        for (tenant, logs) in &tenants {
            let served = client.report(tenant);
            let batch = batch_report(logs);
            assert_eq!(
                served.trim_end(),
                batch.trim_end(),
                "tenant {tenant}: served REPORT != batch report"
            );
            let snap = client.request(&format!("SNAPSHOT {tenant}"));
            assert!(
                snap.contains(&format!("\"tenant\":\"{tenant}\"")),
                "tenant snapshot: {snap}"
            );
        }
        let resp = client.request("SHUTDOWN");
        assert_eq!(resp, "OK shutting-down");
    }
    let mut child = daemon.child;
    let status = child.wait().expect("daemon exit");
    assert!(status.success(), "daemon exited {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn strict_flags_reject_unknown_options_with_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_logdiver-serve"))
        .arg("--bogus")
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--bogus"), "stderr: {stderr}");
    assert!(stderr.contains("usage"), "stderr: {stderr}");
}

#[test]
fn help_prints_usage_and_exits_0() {
    let out = Command::new(env!("CARGO_BIN_EXE_logdiver-serve"))
        .arg("--help")
        .output()
        .expect("run");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for flag in [
        "--listen",
        "--tenants-dir",
        "--checkpoint-every",
        "--evict-after",
        "--mem-budget",
        "--shards",
        "--tenant-config",
    ] {
        assert!(stdout.contains(flag), "usage missing {flag}");
    }
}
