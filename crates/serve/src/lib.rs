//! `logdiver-serve`: a multi-tenant streaming ingestion daemon.
//!
//! One daemon hosts N independent *tenants* — clusters pushing their five
//! raw logs over a newline-delimited TCP line protocol. Each tenant wraps
//! its own thread-free [`logdiver_stream::InlineEngine`] (private
//! topology, watermarks, circuit breakers, checkpoints); the fleet is
//! pumped across the batch pipeline's work-stealing executor instead of
//! thread-per-tenant, and a global memory budget with per-tenant quotas
//! sheds load with machine-readable reasons when intake outruns
//! processing. A killed daemon resumes every tenant from its last
//! checkpoint; the indexed push protocol makes replay idempotent, so
//! crash + resume + client replay equals an uninterrupted run — which in
//! turn equals the batch pipeline's `LogDiver::analyze` on the same
//! lines.
//!
//! Layering, outermost first:
//!
//! * [`daemon`] — sockets, threads, timers. The only module allowed to
//!   spawn threads or read the clock (declared in `logdiver-lint`'s
//!   module allowances).
//! * [`server`] — [`server::ServeCore`], the deterministic heart:
//!   bytes in, responses out, no sockets, no clock.
//! * [`store`] — [`store::CheckpointStore`], replicated checkpoint
//!   durability across N replica dirs with per-replica health machines
//!   and newest-valid restore.
//! * [`tenant`] / [`budget`] / [`proto`] — one tenant's engine + queue,
//!   admission control, and the wire grammar.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod budget;
pub mod daemon;
pub mod proto;
pub mod server;
pub mod store;
pub mod tenant;

pub use budget::{BudgetPolicy, OverloadPolicy};
pub use daemon::DaemonConfig;
pub use server::{ServeConfig, ServeCore, ServeStats, TenantOverrides};
pub use store::{CheckpointStore, Durability, StorePolicy};
