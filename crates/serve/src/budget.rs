//! The global memory budget and per-tenant quotas.
//!
//! Each [`crate::tenant::Tenant`] is charged for its *open state*: the
//! bytes queued but not yet applied (exact) plus a conservative estimate
//! of the engine's reorder buffer, open events/runs, and retained results
//! ([`logdiver_stream::InlineEngine::open_cost`]). Two limits apply, both
//! enforced at `PUSH` time with machine-readable rejections:
//!
//! * **quota** — no single tenant may hold more than
//!   [`BudgetPolicy::quota_bytes`]; over it, that tenant's pushes get
//!   `ERR code=over-quota` until it flushes or its watermarks advance.
//! * **global budget** — when the *fleet's* total charge exceeds
//!   [`BudgetPolicy::global_bytes`], pushes are shed (`ERR
//!   code=over-budget`), but only for tenants holding more than their
//!   fair share (`global / active tenants`). A small tenant keeps
//!   streaming while a hog is pressured, so one noisy cluster cannot
//!   starve the fleet.
//!
//! Rejected pushes are *not* accepted: the cursor does not advance, and
//! the client retries the same index after backoff — exactly-once intake
//! is preserved under shedding.

use serde::Serialize;

/// Memory-budget limits, in bytes of estimated open state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BudgetPolicy {
    /// Total open state allowed across every tenant.
    pub global_bytes: usize,
    /// Open state allowed for any single tenant.
    pub quota_bytes: usize,
}

impl Default for BudgetPolicy {
    fn default() -> Self {
        BudgetPolicy {
            global_bytes: 256 << 20,
            quota_bytes: 32 << 20,
        }
    }
}

impl BudgetPolicy {
    /// A policy sized from a `--mem-budget` value: the per-tenant quota is
    /// an eighth of the global budget (clamped to at least 64 KiB) so a
    /// single tenant can burst but not monopolize.
    pub fn from_global(global_bytes: usize) -> Self {
        BudgetPolicy {
            global_bytes,
            quota_bytes: (global_bytes / 8).max(64 << 10),
        }
    }

    /// Each tenant's fair share of the global budget.
    pub fn fair_share(&self, active_tenants: usize) -> usize {
        self.global_bytes / active_tenants.max(1)
    }
}

/// The verdict for one incoming push of `line_bytes` more state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Under both limits; accept.
    Admit,
    /// The tenant would exceed its own quota.
    OverQuota {
        /// The tenant's current charge.
        used: usize,
        /// The per-tenant limit it would break.
        quota: usize,
    },
    /// The fleet is over the global budget and this tenant is above its
    /// fair share, so its pushes are shed first.
    OverBudget {
        /// The fleet's current total charge.
        total: usize,
        /// The global limit.
        global: usize,
        /// This tenant's fair share right now.
        share: usize,
    },
}

impl Admission {
    /// Decides whether a push may be admitted.
    pub fn decide(
        policy: &BudgetPolicy,
        tenant_used: usize,
        fleet_used: usize,
        active_tenants: usize,
        line_bytes: usize,
    ) -> Admission {
        if tenant_used + line_bytes > policy.quota_bytes {
            return Admission::OverQuota {
                used: tenant_used,
                quota: policy.quota_bytes,
            };
        }
        let share = policy.fair_share(active_tenants);
        if fleet_used + line_bytes > policy.global_bytes && tenant_used + line_bytes > share {
            return Admission::OverBudget {
                total: fleet_used,
                global: policy.global_bytes,
                share,
            };
        }
        Admission::Admit
    }

    /// The `ERR …` response line for a rejection (`None` for
    /// [`Admission::Admit`]).
    pub fn rejection(&self, tenant: &str) -> Option<String> {
        match self {
            Admission::Admit => None,
            Admission::OverQuota { used, quota } => Some(format!(
                "ERR code=over-quota tenant={tenant} used={used} quota={quota}"
            )),
            Admission::OverBudget {
                total,
                global,
                share,
            } => Some(format!(
                "ERR code=over-budget tenant={tenant} total={total} global={global} share={share}"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BudgetPolicy {
        BudgetPolicy {
            global_bytes: 1000,
            quota_bytes: 400,
        }
    }

    #[test]
    fn under_both_limits_admits() {
        let a = Admission::decide(&policy(), 100, 500, 4, 50);
        assert_eq!(a, Admission::Admit);
        assert_eq!(a.rejection("t"), None);
    }

    #[test]
    fn quota_is_per_tenant() {
        let a = Admission::decide(&policy(), 390, 500, 4, 20);
        assert!(matches!(a, Admission::OverQuota { .. }));
        let msg = a.rejection("bw").unwrap();
        assert!(msg.starts_with("ERR code=over-quota tenant=bw "), "{msg}");
    }

    #[test]
    fn global_budget_sheds_only_above_fair_share() {
        // Fleet over budget; tenant above its 250-byte share → shed.
        let hog = Admission::decide(&policy(), 300, 1000, 4, 10);
        assert!(matches!(hog, Admission::OverBudget { .. }));
        // Same fleet state, tenant well under its share → still admitted.
        let small = Admission::decide(&policy(), 40, 1000, 4, 10);
        assert_eq!(small, Admission::Admit);
    }

    #[test]
    fn from_global_derives_quota() {
        let p = BudgetPolicy::from_global(8 << 20);
        assert_eq!(p.global_bytes, 8 << 20);
        assert_eq!(p.quota_bytes, 1 << 20);
        // Tiny budgets keep a usable floor.
        assert_eq!(BudgetPolicy::from_global(1024).quota_bytes, 64 << 10);
    }
}
