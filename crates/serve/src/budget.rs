//! The global memory budget and per-tenant quotas.
//!
//! Each [`crate::tenant::Tenant`] is charged for its *open state*: the
//! bytes queued but not yet applied (exact) plus a conservative estimate
//! of the engine's reorder buffer, open events/runs, and retained results
//! ([`logdiver_stream::InlineEngine::open_cost`]). Two limits apply, both
//! enforced at `PUSH` time with machine-readable rejections:
//!
//! * **quota** — no single tenant may hold more than
//!   [`BudgetPolicy::quota_bytes`]; over it, that tenant's pushes get
//!   `ERR code=over-quota` until it flushes or its watermarks advance.
//! * **global budget** — when the *fleet's* total charge exceeds
//!   [`BudgetPolicy::global_bytes`], pushes are shed (`ERR
//!   code=over-budget`), but only for tenants holding more than their
//!   fair share (`global / active tenants`). A small tenant keeps
//!   streaming while a hog is pressured, so one noisy cluster cannot
//!   starve the fleet.
//!
//! Rejected pushes are *not* accepted: the cursor does not advance, and
//! the client retries the same index after backoff — exactly-once intake
//! is preserved under shedding.
//!
//! A third, *time*-shaped limit lives in [`OverloadPolicy`]: the daemon
//! measures how long each pump sweep takes and reports it to the core as
//! "pressure". When pressure exceeds the configured deadline the core is
//! falling behind its latency target, and new pushes are shed with
//! `ERR code=overload retry-ms=N` — a machine-readable hint telling the
//! client exactly how long to back off. The hint is jittered with a
//! splitmix64 draw so a fleet of shed clients does not return in one
//! thundering herd. The same hint shape answers pushes during a drain
//! (`ERR code=draining retry-ms=N`).

use logdiver_types::protocol as codes;
use serde::Serialize;

/// Memory-budget limits, in bytes of estimated open state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BudgetPolicy {
    /// Total open state allowed across every tenant.
    pub global_bytes: usize,
    /// Open state allowed for any single tenant.
    pub quota_bytes: usize,
}

impl Default for BudgetPolicy {
    fn default() -> Self {
        BudgetPolicy {
            global_bytes: 256 << 20,
            quota_bytes: 32 << 20,
        }
    }
}

impl BudgetPolicy {
    /// A policy sized from a `--mem-budget` value: the per-tenant quota is
    /// an eighth of the global budget (clamped to at least 64 KiB) so a
    /// single tenant can burst but not monopolize.
    pub fn from_global(global_bytes: usize) -> Self {
        BudgetPolicy {
            global_bytes,
            quota_bytes: (global_bytes / 8).max(64 << 10),
        }
    }

    /// Each tenant's fair share of the global budget.
    pub fn fair_share(&self, active_tenants: usize) -> usize {
        self.global_bytes / active_tenants.max(1)
    }
}

/// Deadline-aware overload shedding: how much observed pump pressure the
/// daemon tolerates before new pushes are shed, and the shape of the
/// `retry-ms` hints handed to shed clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct OverloadPolicy {
    /// Shed new pushes while the reported pump pressure exceeds this
    /// many milliseconds (`--deadline-ms`; 0 disables shedding).
    pub deadline_ms: u64,
    /// Floor of the `retry-ms` hint.
    pub retry_min_ms: u64,
    /// Ceiling of the `retry-ms` hint.
    pub retry_max_ms: u64,
    /// Nominal `retry-ms` hint while draining — long enough for the
    /// replacement daemon to come up in a rolling restart.
    pub drain_retry_ms: u64,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        OverloadPolicy {
            deadline_ms: 1_000,
            retry_min_ms: 100,
            retry_max_ms: 5_000,
            drain_retry_ms: 500,
        }
    }
}

impl OverloadPolicy {
    /// Whether the given pump pressure calls for shedding new pushes.
    pub fn overloaded(&self, pressure_ms: u64) -> bool {
        self.deadline_ms > 0 && pressure_ms > self.deadline_ms
    }

    /// The `retry-ms` hint for a push shed under overload: the observed
    /// pressure, clamped to `[retry_min_ms, retry_max_ms]`, then jittered
    /// down into `[v/2, v]` so a fleet of shed clients desynchronizes.
    pub fn overload_retry_ms(&self, pressure_ms: u64, salt: u64) -> u64 {
        jittered(
            pressure_ms.clamp(self.retry_min_ms, self.retry_max_ms.max(self.retry_min_ms)),
            salt,
        )
    }

    /// The `retry-ms` hint for a push shed during a drain.
    pub fn drain_retry_ms(&self, salt: u64) -> u64 {
        jittered(self.drain_retry_ms.max(1), salt)
    }
}

/// Jitters `v` down into `[v/2, v]` with a splitmix64 draw on `salt`.
fn jittered(v: u64, salt: u64) -> u64 {
    let half = v / 2;
    half + splitmix64(salt) % (v - half + 1)
}

/// The splitmix64 finalizer: a cheap, well-mixed hash of `x`.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The verdict for one incoming push of `line_bytes` more state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Under both limits; accept.
    Admit,
    /// The tenant would exceed its own quota.
    OverQuota {
        /// The tenant's current charge.
        used: usize,
        /// The per-tenant limit it would break.
        quota: usize,
    },
    /// The fleet is over the global budget and this tenant is above its
    /// fair share, so its pushes are shed first.
    OverBudget {
        /// The fleet's current total charge.
        total: usize,
        /// The global limit.
        global: usize,
        /// This tenant's fair share right now.
        share: usize,
    },
}

impl Admission {
    /// Decides whether a push may be admitted.
    pub fn decide(
        policy: &BudgetPolicy,
        tenant_used: usize,
        fleet_used: usize,
        active_tenants: usize,
        line_bytes: usize,
    ) -> Admission {
        if tenant_used + line_bytes > policy.quota_bytes {
            return Admission::OverQuota {
                used: tenant_used,
                quota: policy.quota_bytes,
            };
        }
        let share = policy.fair_share(active_tenants);
        if fleet_used + line_bytes > policy.global_bytes && tenant_used + line_bytes > share {
            return Admission::OverBudget {
                total: fleet_used,
                global: policy.global_bytes,
                share,
            };
        }
        Admission::Admit
    }

    /// The `ERR …` response line for a rejection (`None` for
    /// [`Admission::Admit`]).
    pub fn rejection(&self, tenant: &str) -> Option<String> {
        match self {
            Admission::Admit => None,
            Admission::OverQuota { used, quota } => Some(format!(
                "ERR code={} tenant={tenant} used={used} quota={quota}",
                codes::OVER_QUOTA
            )),
            Admission::OverBudget {
                total,
                global,
                share,
            } => Some(format!(
                "ERR code={} tenant={tenant} total={total} global={global} share={share}",
                codes::OVER_BUDGET
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BudgetPolicy {
        BudgetPolicy {
            global_bytes: 1000,
            quota_bytes: 400,
        }
    }

    #[test]
    fn under_both_limits_admits() {
        let a = Admission::decide(&policy(), 100, 500, 4, 50);
        assert_eq!(a, Admission::Admit);
        assert_eq!(a.rejection("t"), None);
    }

    #[test]
    fn quota_is_per_tenant() {
        let a = Admission::decide(&policy(), 390, 500, 4, 20);
        assert!(matches!(a, Admission::OverQuota { .. }));
        let msg = a.rejection("bw").unwrap();
        assert!(msg.starts_with("ERR code=over-quota tenant=bw "), "{msg}");
    }

    #[test]
    fn global_budget_sheds_only_above_fair_share() {
        // Fleet over budget; tenant above its 250-byte share → shed.
        let hog = Admission::decide(&policy(), 300, 1000, 4, 10);
        assert!(matches!(hog, Admission::OverBudget { .. }));
        // Same fleet state, tenant well under its share → still admitted.
        let small = Admission::decide(&policy(), 40, 1000, 4, 10);
        assert_eq!(small, Admission::Admit);
    }

    #[test]
    fn overload_trips_only_past_the_deadline() {
        let p = OverloadPolicy::default();
        assert!(!p.overloaded(0));
        assert!(!p.overloaded(1_000));
        assert!(p.overloaded(1_001));
        let off = OverloadPolicy {
            deadline_ms: 0,
            ..p
        };
        assert!(!off.overloaded(u64::MAX), "0 disables shedding");
    }

    #[test]
    fn retry_hints_are_clamped_jittered_and_deterministic() {
        let p = OverloadPolicy::default();
        for salt in 0..200 {
            let hint = p.overload_retry_ms(2_000, salt);
            assert!((1_000..=2_000).contains(&hint), "{hint}");
            assert_eq!(hint, p.overload_retry_ms(2_000, salt), "deterministic");
            let floor = p.overload_retry_ms(1, salt);
            assert!((50..=100).contains(&floor), "{floor}");
            let ceil = p.overload_retry_ms(u64::MAX, salt);
            assert!((2_500..=5_000).contains(&ceil), "{ceil}");
            let drain = p.drain_retry_ms(salt);
            assert!((250..=500).contains(&drain), "{drain}");
        }
        // The jitter actually spreads: not every salt lands on one value.
        let spread: std::collections::BTreeSet<u64> =
            (0..200).map(|s| p.overload_retry_ms(2_000, s)).collect();
        assert!(spread.len() > 50, "only {} distinct hints", spread.len());
    }

    #[test]
    fn from_global_derives_quota() {
        let p = BudgetPolicy::from_global(8 << 20);
        assert_eq!(p.global_bytes, 8 << 20);
        assert_eq!(p.quota_bytes, 1 << 20);
        // Tiny budgets keep a usable floor.
        assert_eq!(BudgetPolicy::from_global(1024).quota_bytes, 64 << 10);
    }
}
