//! The newline-delimited line protocol.
//!
//! Every request is one line; every response is one `OK …` or
//! `ERR code=<kebab> …` line (except `REPORT`, which frames a multi-line
//! body behind `OK lines=<n>`). Error responses are machine-readable: the
//! first token after `ERR` is always `code=<reason>`, and the remaining
//! tokens are `key=value` detail pairs. The full grammar is in DESIGN.md
//! §15.
//!
//! ```text
//! HELLO <tenant> [key=value …]
//! PUSH <tenant> <source> <index> <line…>
//! FLUSH <tenant>
//! SNAPSHOT [<tenant>]
//! CHECKPOINT [<tenant>]
//! REPORT <tenant>
//! DROP <tenant>
//! DRAIN
//! SHUTDOWN
//! ```
//!
//! `PUSH` carries an explicit 0-based per-(tenant, source) line index so
//! the protocol is idempotent: after any disconnect the client replays
//! from the server's `HELLO` cursor, and the server answers `OK dup` for
//! anything it already accepted instead of double-counting it.
//!
//! `HELLO` may carry per-tenant `StreamConfig` overrides as `key=value`
//! options (`lateness=<secs>`, `quarantine-keep=<n>`); the server rejects
//! unknown keys, unparseable values, and options that conflict with an
//! existing tenant's configuration — each with a machine-readable `ERR`.
//! `DROP` destroys a tenant and tombstones its checkpoints so a restart
//! does not resurrect it.

use logdiver_stream::Source;
use logdiver_types::protocol as codes;

/// Longest accepted tenant name.
pub const MAX_TENANT_NAME: usize = 64;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request<'a> {
    /// Announce (and auto-create) a tenant; the reply carries the
    /// per-source accepted-line cursor the client should resume from.
    Hello {
        /// Tenant name.
        tenant: &'a str,
        /// Per-tenant `StreamConfig` override options, in wire order.
        /// Keys are validated by the server, not the parser.
        options: Vec<(&'a str, &'a str)>,
    },
    /// Append one raw log line to a tenant's source stream.
    Push {
        /// Tenant name.
        tenant: &'a str,
        /// Which of the five logs the line belongs to.
        source: Source,
        /// 0-based per-(tenant, source) line index.
        index: u64,
        /// The raw log line.
        line: &'a str,
    },
    /// Apply everything queued for a tenant and advance its watermarks.
    Flush {
        /// Tenant name.
        tenant: &'a str,
    },
    /// Live metrics as a single JSON line — one tenant, or the fleet
    /// aggregate when no tenant is named.
    Snapshot {
        /// Tenant name, or `None` for the fleet aggregate.
        tenant: Option<&'a str>,
    },
    /// Persist checkpoint(s) now.
    Checkpoint {
        /// Tenant name, or `None` for every tenant.
        tenant: Option<&'a str>,
    },
    /// The full batch-equivalent text report for one tenant, framed as
    /// `OK lines=<n> …` followed by `<n>` report lines.
    Report {
        /// Tenant name.
        tenant: &'a str,
    },
    /// Destroy a tenant: discard its live engine and tombstone its
    /// checkpoints on every replica so a restart does not resurrect it.
    Drop {
        /// Tenant name.
        tenant: &'a str,
    },
    /// Enter drain mode: flush and checkpoint every tenant, answer new
    /// pushes with `ERR code=draining retry-ms=N`, and let the daemon
    /// exit 0 shortly after — the zero-loss half of a rolling restart.
    /// Idempotent: a repeated `DRAIN` re-flushes and answers `OK` again.
    Drain,
    /// Checkpoint every tenant and stop the daemon.
    Shutdown,
}

/// A protocol-level parse failure, rendered as `ERR code=… …`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The first token is not a known verb.
    BadVerb(String),
    /// A required argument is missing.
    MissingArg(&'static str),
    /// The verb got more arguments than it takes.
    ExtraArg(&'static str),
    /// The `<source>` token is not one of the five log names.
    BadSource(String),
    /// The `<index>` token is not a non-negative integer.
    BadIndex(String),
    /// The tenant name is empty, too long, starts with `.`, or contains
    /// characters outside `[A-Za-z0-9._-]`.
    BadTenantName(String),
    /// A `HELLO` option token is not of the form `key=value`.
    BadOption(String),
}

impl ProtoError {
    /// The machine-readable `code=` value.
    pub fn code(&self) -> &'static str {
        match self {
            ProtoError::BadVerb(_) => codes::BAD_VERB,
            ProtoError::MissingArg(_) => codes::MISSING_ARG,
            ProtoError::ExtraArg(_) => codes::EXTRA_ARG,
            ProtoError::BadSource(_) => codes::BAD_SOURCE,
            ProtoError::BadIndex(_) => codes::BAD_INDEX,
            ProtoError::BadTenantName(_) => codes::BAD_TENANT_NAME,
            ProtoError::BadOption(_) => codes::BAD_OPTION,
        }
    }

    /// The full `ERR …` response line.
    pub fn response(&self) -> String {
        match self {
            ProtoError::BadVerb(verb) => {
                format!("ERR code={} verb={}", self.code(), sanitize(verb))
            }
            ProtoError::MissingArg(what) | ProtoError::ExtraArg(what) => {
                format!("ERR code={} arg={what}", self.code())
            }
            ProtoError::BadSource(tok) => {
                format!("ERR code={} source={}", self.code(), sanitize(tok))
            }
            ProtoError::BadIndex(tok) => {
                format!("ERR code={} index={}", self.code(), sanitize(tok))
            }
            ProtoError::BadTenantName(name) => {
                format!("ERR code={} tenant={}", self.code(), sanitize(name))
            }
            ProtoError::BadOption(tok) => {
                format!("ERR code={} option={}", self.code(), sanitize(tok))
            }
        }
    }
}

/// Echoed tokens come from the wire; cap them and strip anything that
/// would break the one-line response framing.
pub(crate) fn sanitize(token: &str) -> String {
    token
        .chars()
        .filter(|c| !c.is_control())
        .take(MAX_TENANT_NAME)
        .collect()
}

/// Whether `name` is an acceptable tenant name: 1–64 chars from
/// `[A-Za-z0-9._-]`, not starting with `.` (checkpoint files are named
/// `<tenant>.ckpt` inside the tenants dir, so names must be safe path
/// components).
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TENANT_NAME
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-')
}

fn check_tenant(name: &str) -> Result<&str, ProtoError> {
    if valid_tenant_name(name) {
        Ok(name)
    } else {
        Err(ProtoError::BadTenantName(name.to_string()))
    }
}

/// Resolves a `<source>` token (`syslog`, `hwerr`, `alps`, `torque`,
/// `netwatch`).
pub fn source_by_name(token: &str) -> Option<Source> {
    Source::ALL.into_iter().find(|s| s.name() == token)
}

/// Parses one request line. The line must not contain the trailing
/// newline.
pub fn parse(line: &str) -> Result<Request<'_>, ProtoError> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    let (verb, rest) = match line.split_once(' ') {
        Some((v, r)) => (v, r),
        None => (line, ""),
    };
    match verb {
        "HELLO" => {
            let mut tokens = rest.split(' ').filter(|t| !t.is_empty());
            let tenant = tokens.next().ok_or(ProtoError::MissingArg("tenant"))?;
            let tenant = check_tenant(tenant)?;
            let mut options = Vec::new();
            for token in tokens {
                let (key, value) = token
                    .split_once('=')
                    .ok_or_else(|| ProtoError::BadOption(token.to_string()))?;
                if key.is_empty() {
                    return Err(ProtoError::BadOption(token.to_string()));
                }
                options.push((key, value));
            }
            Ok(Request::Hello { tenant, options })
        }
        "PUSH" => {
            let (tenant, rest) = rest
                .split_once(' ')
                .ok_or(ProtoError::MissingArg("tenant"))?;
            let tenant = check_tenant(tenant)?;
            let (source_tok, rest) = rest
                .split_once(' ')
                .ok_or(ProtoError::MissingArg("source"))?;
            let source = source_by_name(source_tok)
                .ok_or_else(|| ProtoError::BadSource(source_tok.to_string()))?;
            // The line payload is everything after the index, verbatim —
            // including leading spaces and embedded separators.
            let (index_tok, payload) = match rest.split_once(' ') {
                Some((i, p)) => (i, p),
                None => (rest, ""),
            };
            if index_tok.is_empty() {
                return Err(ProtoError::MissingArg("index"));
            }
            let index: u64 = index_tok
                .parse()
                .map_err(|_| ProtoError::BadIndex(index_tok.to_string()))?;
            Ok(Request::Push {
                tenant,
                source,
                index,
                line: payload,
            })
        }
        "FLUSH" => {
            let tenant = one_arg(rest, "tenant")?;
            Ok(Request::Flush {
                tenant: check_tenant(tenant)?,
            })
        }
        "SNAPSHOT" => Ok(Request::Snapshot {
            tenant: optional_arg(rest)?,
        }),
        "CHECKPOINT" => Ok(Request::Checkpoint {
            tenant: optional_arg(rest)?,
        }),
        "REPORT" => {
            let tenant = one_arg(rest, "tenant")?;
            Ok(Request::Report {
                tenant: check_tenant(tenant)?,
            })
        }
        "DROP" => {
            let tenant = one_arg(rest, "tenant")?;
            Ok(Request::Drop {
                tenant: check_tenant(tenant)?,
            })
        }
        "DRAIN" => {
            if rest.is_empty() {
                Ok(Request::Drain)
            } else {
                Err(ProtoError::ExtraArg("none expected"))
            }
        }
        "SHUTDOWN" => {
            if rest.is_empty() {
                Ok(Request::Shutdown)
            } else {
                Err(ProtoError::ExtraArg("none expected"))
            }
        }
        other => Err(ProtoError::BadVerb(other.to_string())),
    }
}

fn one_arg<'a>(rest: &'a str, what: &'static str) -> Result<&'a str, ProtoError> {
    if rest.is_empty() {
        return Err(ProtoError::MissingArg(what));
    }
    if rest.contains(' ') {
        return Err(ProtoError::ExtraArg(what));
    }
    Ok(rest)
}

fn optional_arg(rest: &str) -> Result<Option<&str>, ProtoError> {
    if rest.is_empty() {
        return Ok(None);
    }
    if rest.contains(' ') {
        return Err(ProtoError::ExtraArg("tenant"));
    }
    Ok(Some(check_tenant(rest)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_payload_verbatim() {
        let req = parse("PUSH bw syslog 12 2013-03-28 12:00:00 nid0  double  spaces").unwrap();
        assert_eq!(
            req,
            Request::Push {
                tenant: "bw",
                source: Source::Syslog,
                index: 12,
                line: "2013-03-28 12:00:00 nid0  double  spaces",
            }
        );
    }

    #[test]
    fn push_payload_may_be_empty() {
        let req = parse("PUSH bw hwerr 0").unwrap();
        assert_eq!(
            req,
            Request::Push {
                tenant: "bw",
                source: Source::HwErr,
                index: 0,
                line: "",
            }
        );
    }

    #[test]
    fn verbs_parse() {
        assert_eq!(
            parse("HELLO a").unwrap(),
            Request::Hello {
                tenant: "a",
                options: vec![]
            }
        );
        assert_eq!(parse("DROP a").unwrap(), Request::Drop { tenant: "a" });
        assert_eq!(parse("FLUSH a").unwrap(), Request::Flush { tenant: "a" });
        assert_eq!(
            parse("SNAPSHOT").unwrap(),
            Request::Snapshot { tenant: None }
        );
        assert_eq!(
            parse("SNAPSHOT a").unwrap(),
            Request::Snapshot { tenant: Some("a") }
        );
        assert_eq!(
            parse("CHECKPOINT").unwrap(),
            Request::Checkpoint { tenant: None }
        );
        assert_eq!(parse("REPORT a").unwrap(), Request::Report { tenant: "a" });
        assert_eq!(parse("DRAIN").unwrap(), Request::Drain);
        assert_eq!(parse("DRAIN now").unwrap_err().code(), "extra-arg");
        assert_eq!(parse("SHUTDOWN").unwrap(), Request::Shutdown);
    }

    #[test]
    fn hello_options_parse_as_key_value_pairs() {
        assert_eq!(
            parse("HELLO bw lateness=120 quarantine-keep=8").unwrap(),
            Request::Hello {
                tenant: "bw",
                options: vec![("lateness", "120"), ("quarantine-keep", "8")],
            }
        );
        // The parser only enforces the key=value shape; key vocabulary is
        // the server's business.
        assert_eq!(
            parse("HELLO bw anything=goes").unwrap(),
            Request::Hello {
                tenant: "bw",
                options: vec![("anything", "goes")],
            }
        );
        assert_eq!(
            parse("HELLO bw lateness").unwrap_err().response(),
            "ERR code=bad-option option=lateness"
        );
        assert_eq!(parse("HELLO bw =5").unwrap_err().code(), "bad-option");
    }

    #[test]
    fn crlf_is_tolerated() {
        assert_eq!(parse("SHUTDOWN\r").unwrap(), Request::Shutdown);
    }

    #[test]
    fn errors_are_machine_readable() {
        assert_eq!(
            parse("NOPE x").unwrap_err().response(),
            "ERR code=bad-verb verb=NOPE"
        );
        assert_eq!(
            parse("PUSH bw bogus 0 x").unwrap_err().response(),
            "ERR code=bad-source source=bogus"
        );
        assert_eq!(
            parse("PUSH bw syslog twelve x").unwrap_err().response(),
            "ERR code=bad-index index=twelve"
        );
        assert_eq!(
            parse("HELLO ../etc").unwrap_err().response(),
            "ERR code=bad-tenant-name tenant=../etc"
        );
        assert_eq!(
            parse("HELLO .hidden").unwrap_err().code(),
            "bad-tenant-name"
        );
        assert_eq!(parse("HELLO").unwrap_err().code(), "missing-arg");
        assert_eq!(parse("SHUTDOWN now").unwrap_err().code(), "extra-arg");
    }

    #[test]
    fn tenant_names_validate() {
        assert!(valid_tenant_name("blue-waters.prod_1"));
        assert!(!valid_tenant_name(""));
        assert!(!valid_tenant_name(".dot"));
        assert!(!valid_tenant_name("has space"));
        assert!(!valid_tenant_name(&"x".repeat(65)));
    }
}
