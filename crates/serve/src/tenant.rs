//! One tenant: an [`InlineEngine`] plus an intake queue and an
//! idempotency cursor.
//!
//! The accept path is split in two so the daemon's connection handlers
//! stay cheap: [`Tenant::offer`] only validates the index and enqueues
//! the raw line; [`Tenant::pump`] later parses and applies the whole
//! queue inside the work-stealing executor, off the protocol hot path.
//!
//! Two cursors matter:
//!
//! * **accepted** — lines admitted into the queue, per source. This is
//!   the duplicate/gap boundary: a push below it is a duplicate, above
//!   it a gap, exactly at it is accepted. `HELLO` reports this cursor.
//! * **applied** — lines the engine has consumed
//!   ([`InlineEngine::pushed`]). Only applied lines are durable: a
//!   checkpoint stores this cursor, so after a crash `accepted` resets
//!   to `applied` and clients replay the (now lost) queued tail.

use std::collections::VecDeque;

use logdiver::pipeline::Analysis;
use logdiver_stream::inline::InlineEngine;
use logdiver_stream::{ResumeError, Source, StreamCheckpoint, StreamConfig};

/// Outcome of offering one indexed line to a tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// The line was queued; the accepted cursor advanced.
    Accepted,
    /// `index` is below the accepted cursor — already have it.
    Duplicate,
    /// `index` is above the accepted cursor — the client skipped ahead.
    Gap {
        /// The index the server expects next.
        expected: u64,
    },
}

/// A tenant's engine, queue, and counters.
#[derive(Debug)]
pub struct Tenant {
    /// The tenant's name (unique within the daemon).
    pub name: String,
    engine: InlineEngine,
    queue: VecDeque<(Source, String)>,
    queue_bytes: usize,
    accepted: [u64; 5],
    engine_cost: usize,
    /// Pushes rejected because the tenant was over quota.
    pub shed_quota: u64,
    /// Pushes shed because the fleet was over the global budget.
    pub shed_budget: u64,
    /// Duplicate pushes answered `OK dup`.
    pub dups: u64,
    /// Out-of-order pushes answered `ERR code=gap`.
    pub gaps: u64,
    /// Consecutive fleet pumps this tenant sat through with nothing
    /// queued and no protocol traffic. The core resets it on any touch
    /// and evicts the tenant to its checkpoint once it exceeds
    /// `evict_after`.
    pub idle_pumps: u64,
}

impl Tenant {
    /// A fresh tenant with an empty engine.
    pub fn new(name: String, config: StreamConfig) -> Self {
        let engine = InlineEngine::new(config);
        Self::wrap(name, engine)
    }

    /// Rebuilds a tenant from its checkpoint; the accepted cursor resets
    /// to the applied (durable) cursor.
    pub fn resume(
        name: String,
        config: StreamConfig,
        checkpoint: &StreamCheckpoint,
    ) -> Result<Self, ResumeError> {
        let engine = InlineEngine::resume(config, checkpoint)?;
        Ok(Self::wrap(name, engine))
    }

    fn wrap(name: String, mut engine: InlineEngine) -> Self {
        let accepted = engine.pushed_all();
        let engine_cost = engine.open_cost();
        Tenant {
            name,
            engine,
            queue: VecDeque::new(),
            queue_bytes: 0,
            accepted,
            engine_cost,
            shed_quota: 0,
            shed_budget: 0,
            dups: 0,
            gaps: 0,
            idle_pumps: 0,
        }
    }

    /// The accepted cursor, in [`Source::ALL`] order — what `HELLO`
    /// reports.
    pub fn accepted(&self) -> [u64; 5] {
        self.accepted
    }

    /// The applied (durable) cursor, in [`Source::ALL`] order.
    pub fn applied(&self) -> [u64; 5] {
        self.engine.pushed_all()
    }

    /// Lines queued but not yet applied.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Whether [`Tenant::pump`] has work to do.
    pub fn has_pending(&self) -> bool {
        !self.queue.is_empty()
    }

    /// This tenant's memory-budget charge: exact queue bytes plus the
    /// engine's estimated open state (as of the last pump).
    pub fn cost(&self) -> usize {
        self.queue_bytes + self.engine_cost
    }

    /// Validates the idempotency index and, when it is the next expected
    /// one, queues the line. Budget admission happens in the caller —
    /// duplicates are answered before any budget check so replay after
    /// reconnect is never shed.
    pub fn offer(&mut self, source: Source, index: u64, line: &str) -> Offer {
        self.idle_pumps = 0;
        let i = source.index();
        let expected = self.accepted[i];
        if index < expected {
            self.dups += 1;
            return Offer::Duplicate;
        }
        if index > expected {
            self.gaps += 1;
            return Offer::Gap { expected };
        }
        self.queue_bytes += line.len();
        self.queue.push_back((source, line.to_string()));
        self.accepted[i] = expected + 1;
        Offer::Accepted
    }

    /// Parses and applies every queued line, advances the watermarks, and
    /// refreshes the cached engine cost. Returns how many lines were
    /// applied. Runs inside the work-stealing executor.
    ///
    /// Consecutive same-source lines go through
    /// [`InlineEngine::push_chunk`] as one run, so a replaying client's
    /// burst pays one watermark advance per run instead of one per
    /// `ADVANCE_EVERY` lines.
    pub fn pump(&mut self) -> usize {
        let mut applied = 0;
        let mut run: Vec<String> = Vec::new();
        while let Some((source, line)) = self.queue.pop_front() {
            self.queue_bytes = self.queue_bytes.saturating_sub(line.len());
            run.clear();
            run.push(line);
            while self.queue.front().is_some_and(|(s, _)| *s == source) {
                let Some((_, next)) = self.queue.pop_front() else {
                    break;
                };
                self.queue_bytes = self.queue_bytes.saturating_sub(next.len());
                run.push(next);
            }
            let mut at = 0usize;
            while at < run.len() {
                let before = self.engine.pushed(source);
                match self
                    .engine
                    .push_chunk(source, run[at..].iter().map(String::as_str))
                {
                    Ok(n) => {
                        applied += n;
                        break;
                    }
                    Err(_) => {
                        // CircuitOpen: the breaker tripped mid-run (the
                        // applied prefix stays applied). Probe once
                        // (half-open) and retry the rejected line so a
                        // recovered source resumes; if still rejected, the
                        // rejection is counted by the engine and the line
                        // is dropped — the same contract the threaded
                        // engine gives its callers.
                        let done = (self.engine.pushed(source) - before) as usize;
                        applied += done;
                        at += done;
                        self.engine.probe(source);
                        if self.engine.push(source, &run[at]).is_ok() {
                            applied += 1;
                        }
                        at += 1;
                    }
                }
            }
        }
        self.engine.advance();
        self.engine_cost = self.engine.open_cost();
        applied
    }

    /// A live snapshot of the engine (pump first for current numbers).
    pub fn snapshot(&mut self) -> logdiver_stream::StreamSnapshot {
        self.engine.snapshot()
    }

    /// The full batch-equivalent analysis as of now, without consuming
    /// the engine.
    pub fn preview(&mut self) -> Analysis {
        self.engine.preview()
    }

    /// Captures a checkpoint. The caller must [`Tenant::pump`] first so
    /// the queue is empty; queued-but-unapplied lines are *not* part of
    /// the durable state.
    pub fn checkpoint(&mut self) -> StreamCheckpoint {
        let offsets = self.engine.pushed_all();
        self.engine.checkpoint(offsets)
    }

    /// Closes every source and produces the final analysis.
    pub fn drain(mut self) -> Analysis {
        self.pump();
        self.engine.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "2013-03-28 12:00:00 nid00002 kernel: Machine Check Exception: bank 4";

    #[test]
    fn offer_is_idempotent() {
        let mut t = Tenant::new("bw".into(), StreamConfig::default());
        assert_eq!(t.offer(Source::Syslog, 0, LINE), Offer::Accepted);
        assert_eq!(t.offer(Source::Syslog, 0, LINE), Offer::Duplicate);
        assert_eq!(t.offer(Source::Syslog, 2, LINE), Offer::Gap { expected: 1 });
        assert_eq!(t.offer(Source::Syslog, 1, LINE), Offer::Accepted);
        assert_eq!(t.accepted()[0], 2);
        assert_eq!(t.applied()[0], 0, "not yet pumped");
        assert_eq!(t.pump(), 2);
        assert_eq!(t.applied()[0], 2);
        assert_eq!(t.dups, 1);
        assert_eq!(t.gaps, 1);
    }

    #[test]
    fn cost_tracks_queue_then_engine() {
        let mut t = Tenant::new("bw".into(), StreamConfig::default());
        assert_eq!(t.cost(), 0);
        t.offer(Source::Syslog, 0, LINE);
        assert_eq!(t.cost(), LINE.len(), "queued bytes are exact");
        t.pump();
        assert!(t.cost() > 0, "engine open state is charged after pump");
        assert_eq!(t.queued(), 0);
    }

    #[test]
    fn checkpoint_resume_resets_accepted_to_applied() {
        let mut t = Tenant::new("bw".into(), StreamConfig::default());
        t.offer(Source::Syslog, 0, LINE);
        t.pump();
        t.offer(Source::Syslog, 1, LINE); // queued, never pumped
        let ckpt = t.checkpoint_unpumped_for_test();
        let r = Tenant::resume("bw".into(), StreamConfig::default(), &ckpt).unwrap();
        assert_eq!(r.applied()[0], 1);
        assert_eq!(r.accepted()[0], 1, "queued tail was lost; client replays");
    }

    impl Tenant {
        /// Checkpoint *without* pumping — models a crash with lines still
        /// queued.
        fn checkpoint_unpumped_for_test(&mut self) -> StreamCheckpoint {
            let offsets = self.engine.pushed_all();
            self.engine.checkpoint(offsets)
        }
    }
}
