//! The TCP shell around [`ServeCore`].
//!
//! Everything timing- or socket-shaped lives here, behind declared
//! `logdiver-lint` module allowances: an accept loop that spawns one
//! lockstep handler thread per connection, and a ticker thread that pumps
//! the fleet while connections are idle so watermarks keep advancing
//! between pushes. The core itself stays deterministic — handlers just
//! move bytes between their socket and [`ServeCore::feed`] under a
//! mutex.
//!
//! Slow-client defense: every socket gets read/write deadlines
//! (`--io-timeout-ms`), so a peer that stops reading its responses is
//! disconnected by the write timeout instead of growing an unbounded
//! response buffer — handlers are lockstep, one chunk of responses in
//! flight at a time. A peer that dribbles bytes without ever finishing a
//! line (slowloris) is evicted with `ERR code=slow-client` once its
//! partial line is older than `--line-deadline-ms`; per-connection
//! receive memory is bounded by the core's `--max-line` cap either way.
//!
//! Overload: the ticker measures each pump sweep and reports the
//! duration to the core as pressure ([`ServeCore::set_pressure`]); while
//! pressure exceeds `--deadline-ms` the core sheds new pushes with
//! `ERR code=overload retry-ms=N`.
//!
//! Shutdown paths, all ending in a final checkpoint and a clean `Ok(())`
//! from [`run`] (exit 0):
//!
//! * `SHUTDOWN` — checkpoint everything and exit now.
//! * `DRAIN` or SIGTERM — flush + checkpoint everything, answer
//!   straggler pushes with `ERR code=draining retry-ms=N` for a short
//!   grace, then exit. Zero-loss rolling restart: everything accepted is
//!   applied and persisted; anything un-acked is replayed by the client
//!   against the `HELLO` cursor of the replacement daemon.
//! * SIGKILL — loses only queued-but-unapplied lines, which clients
//!   replay from the `HELLO` cursor after restart.
//!
//! `SHUTDOWN` and `DRAIN` are idempotent: repeats answer the same `OK`
//! and the final checkpoint runs once, in [`run`]'s exit path.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use logdiver::exec;
use logdiver_types::protocol as codes;
use parking_lot::Mutex;

use crate::budget::BudgetPolicy;
use crate::server::{parse_tenant_config, ServeConfig, ServeCore, TenantOverrides};

/// How often the ticker pumps an otherwise-idle fleet.
const TICK: Duration = Duration::from_millis(250);

/// The daemon's flag surface (`logdiver serve` and the standalone
/// `logdiver-serve` binary parse the same flags into this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonConfig {
    /// `--listen`: bind address, e.g. `127.0.0.1:7044` (port `0` picks an
    /// ephemeral port; the chosen address is printed on startup).
    pub listen: String,
    /// `--tenants-dir` (repeatable): checkpoint replica directories.
    /// Every checkpoint is written to all of them; resume restores each
    /// tenant from the newest valid copy.
    pub tenants_dirs: Vec<PathBuf>,
    /// `--checkpoint-every`: auto-checkpoint cadence in applied records
    /// (0 disables the cadence; explicit `CHECKPOINT` still works).
    pub checkpoint_every: u64,
    /// `--evict-after`: evict a tenant to its checkpoint after this many
    /// idle pump sweeps (0 = never).
    pub evict_after: u64,
    /// `--mem-budget`: global open-state budget in bytes; the per-tenant
    /// quota is derived ([`BudgetPolicy::from_global`]).
    pub mem_budget: usize,
    /// `--shards`: worker threads for the tenant pump.
    pub shards: usize,
    /// `--tenant-config`: optional per-tenant `StreamConfig` override
    /// file (see [`parse_tenant_config`] for the format).
    pub tenant_config: Option<PathBuf>,
    /// `--max-line`: longest accepted protocol line in bytes; longer
    /// lines answer `ERR code=line-too-long` without disconnecting.
    pub max_line: usize,
    /// `--deadline-ms`: shed new pushes with `ERR code=overload` while a
    /// pump sweep takes longer than this (0 disables shedding).
    pub deadline_ms: u64,
    /// `--io-timeout-ms`: per-connection socket read/write deadline (0
    /// disables; an expired *write* drops the connection, an expired
    /// read just re-polls).
    pub io_timeout_ms: u64,
    /// `--line-deadline-ms`: evict a connection whose partial line has
    /// been dribbling for longer than this (0 disables the check).
    pub line_deadline_ms: u64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            listen: "127.0.0.1:7044".to_string(),
            tenants_dirs: vec![PathBuf::from("tenants")],
            checkpoint_every: 10_000,
            evict_after: 0,
            mem_budget: 256 << 20,
            shards: exec::default_threads(),
            tenant_config: None,
            max_line: 64 << 10,
            deadline_ms: 1_000,
            io_timeout_ms: 5_000,
            line_deadline_ms: 10_000,
        }
    }
}

/// Usage text shared by the binary and the CLI subcommand.
pub const USAGE: &str = "\
usage: logdiver-serve [--listen ADDR] [--tenants-dir DIR]...
                      [--checkpoint-every N] [--evict-after N]
                      [--mem-budget BYTES] [--shards N]
                      [--tenant-config FILE] [--max-line BYTES]
                      [--deadline-ms MS] [--io-timeout-ms MS]
                      [--line-deadline-ms MS]

  --listen ADDR         bind address (default 127.0.0.1:7044; port 0 = ephemeral)
  --tenants-dir DIR     checkpoint replica directory (default ./tenants);
                        repeat the flag to replicate checkpoints across
                        several directories and resume from the newest
                        valid copy
  --checkpoint-every N  auto-checkpoint every N applied records (default 10000)
  --evict-after N       evict tenants idle for N pump sweeps (default 0 = never)
  --mem-budget BYTES    global open-state budget (default 268435456)
  --shards N            pump worker threads (default: CPU count)
  --tenant-config FILE  per-tenant overrides: '<tenant> key=value ...' lines
  --max-line BYTES      longest accepted protocol line (default 65536);
                        longer lines answer ERR code=line-too-long
  --deadline-ms MS      shed pushes with ERR code=overload while a pump
                        sweep exceeds MS (default 1000; 0 = never shed)
  --io-timeout-ms MS    socket read/write deadline (default 5000; 0 = none)
  --line-deadline-ms MS evict a connection dribbling one line for longer
                        than MS (default 10000; 0 = never)";

/// Parses the daemon flags. Accepts `--name value` and `--name=value`;
/// any unknown, duplicate (except the repeatable `--tenants-dir`), or
/// valueless option is an error (the callers exit 2 with [`USAGE`]).
pub fn parse_flags(args: &[String]) -> Result<DaemonConfig, String> {
    let mut config = DaemonConfig::default();
    let mut seen: Vec<String> = Vec::new();
    let mut dirs_given = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let (name, inline_value) = match arg.split_once('=') {
            Some((n, v)) => (n, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        if !name.starts_with("--") {
            return Err(format!("unexpected argument '{arg}'"));
        }
        if name != "--tenants-dir" {
            if seen.iter().any(|s| s == name) {
                return Err(format!("duplicate option '{name}'"));
            }
            seen.push(name.to_string());
        }
        let mut value = || -> Result<String, String> {
            match inline_value.clone() {
                Some(v) => Ok(v),
                None => it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("option '{name}' needs a value")),
            }
        };
        match name {
            "--listen" => config.listen = value()?,
            "--tenants-dir" => {
                // The first occurrence replaces the default; later ones
                // add replicas.
                if !dirs_given {
                    config.tenants_dirs.clear();
                    dirs_given = true;
                }
                config.tenants_dirs.push(PathBuf::from(value()?));
            }
            "--checkpoint-every" => config.checkpoint_every = parse_num(name, &value()?)?,
            "--evict-after" => config.evict_after = parse_num(name, &value()?)?,
            "--tenant-config" => config.tenant_config = Some(PathBuf::from(value()?)),
            "--mem-budget" => config.mem_budget = parse_num(name, &value()?)? as usize,
            "--shards" => {
                let n = parse_num(name, &value()?)?;
                if n == 0 {
                    return Err("option '--shards' must be at least 1".to_string());
                }
                config.shards = n as usize;
            }
            "--max-line" => {
                let n = parse_num(name, &value()?)?;
                if n == 0 {
                    return Err("option '--max-line' must be at least 1".to_string());
                }
                config.max_line = n as usize;
            }
            "--deadline-ms" => config.deadline_ms = parse_num(name, &value()?)?,
            "--io-timeout-ms" => config.io_timeout_ms = parse_num(name, &value()?)?,
            "--line-deadline-ms" => config.line_deadline_ms = parse_num(name, &value()?)?,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(config)
}

fn parse_num(name: &str, raw: &str) -> Result<u64, String> {
    raw.parse()
        .map_err(|_| format!("option '{name}' expects a non-negative integer, got '{raw}'"))
}

impl DaemonConfig {
    /// The equivalent core configuration (overrides from
    /// `--tenant-config` are loaded separately by
    /// [`DaemonConfig::load_overrides`]).
    pub fn serve_config(&self) -> ServeConfig {
        let mut serve = ServeConfig {
            tenants_dirs: self.tenants_dirs.clone(),
            budget: BudgetPolicy::from_global(self.mem_budget),
            shards: self.shards,
            checkpoint_every: self.checkpoint_every,
            evict_after: self.evict_after,
            max_line_bytes: self.max_line,
            ..ServeConfig::default()
        };
        serve.overload.deadline_ms = self.deadline_ms;
        serve
    }

    /// Reads and parses the `--tenant-config` file, if one was given.
    pub fn load_overrides(
        &self,
    ) -> Result<std::collections::BTreeMap<String, TenantOverrides>, String> {
        let Some(path) = &self.tenant_config else {
            return Ok(std::collections::BTreeMap::new());
        };
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("--tenant-config {}: {e}", path.display()))?;
        parse_tenant_config(&text).map_err(|e| format!("--tenant-config {}: {e}", path.display()))
    }

    /// The socket-facing half of the flags, handed to each handler.
    fn conn_policy(&self) -> ConnPolicy {
        ConnPolicy {
            io_timeout: (self.io_timeout_ms > 0).then(|| Duration::from_millis(self.io_timeout_ms)),
            line_deadline: (self.line_deadline_ms > 0)
                .then(|| Duration::from_millis(self.line_deadline_ms)),
        }
    }
}

/// Per-connection socket policy derived from the flags.
#[derive(Debug, Clone, Copy)]
struct ConnPolicy {
    io_timeout: Option<Duration>,
    line_deadline: Option<Duration>,
}

/// Runs the daemon until `SHUTDOWN`, `DRAIN`, or SIGTERM, then
/// checkpoints every tenant a final time and returns `Ok(())` — the
/// binary's exit 0. Prints `logdiver-serve listening on <addr>` once
/// bound so drivers using an ephemeral port can discover it.
pub fn run(config: DaemonConfig) -> std::io::Result<()> {
    let mut serve = config.serve_config();
    serve.overrides = config
        .load_overrides()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    let core = ServeCore::new(serve)?;
    for warning in core.warnings() {
        eprintln!("logdiver-serve: warning: {warning}");
    }
    eprintln!(
        "logdiver-serve: {} checkpoint replica(s), durability={}",
        config.tenants_dirs.len(),
        core.durability().label()
    );
    let resumed = core.tenant_names();
    if !resumed.is_empty() {
        eprintln!(
            "logdiver-serve: resumed {} tenant(s): {}",
            resumed.len(),
            resumed.join(", ")
        );
    }
    let listener = TcpListener::bind(&config.listen)?;
    let addr = listener.local_addr()?;
    println!("logdiver-serve listening on {addr}");
    std::io::stdout().flush()?;

    sigterm::install();
    let core = Arc::new(Mutex::new(core));
    let exit = Arc::new(AtomicBool::new(false));

    // Idle ticker: advance watermarks, run the checkpoint cadence, feed
    // the measured sweep duration back as overload pressure, translate
    // SIGTERM into a DRAIN, and trip the exit path once the core says so.
    let ticker_core = Arc::clone(&core);
    let ticker_exit = Arc::clone(&exit);
    std::thread::spawn(move || loop {
        std::thread::sleep(TICK);
        if ticker_exit.load(Ordering::SeqCst) {
            break;
        }
        if sigterm::pending() {
            let mut core = ticker_core.lock();
            if !core.draining() {
                eprintln!("logdiver-serve: SIGTERM, draining");
                let resp = core.handle_line("DRAIN");
                eprintln!("logdiver-serve: {resp}");
            }
        }
        let t0 = Instant::now();
        let mut core = ticker_core.lock();
        core.pump();
        core.set_pressure(t0.elapsed().as_millis() as u64);
        let stop = core.should_exit();
        drop(core);
        if stop {
            request_exit(&ticker_exit, addr);
            break;
        }
    });

    for stream in listener.incoming() {
        if exit.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn_core = Arc::clone(&core);
        let conn_exit = Arc::clone(&exit);
        let policy = config.conn_policy();
        std::thread::spawn(move || handle_connection(stream, conn_core, conn_exit, addr, policy));
    }

    let mut core = core.lock();
    let n = core.checkpoint_all();
    eprintln!(
        "logdiver-serve: exiting, checkpointed {n} tenant(s), durability={}",
        core.durability().label()
    );
    Ok(())
}

/// Flags the accept loop down and pokes it awake with a throwaway
/// connection so the blocking `accept` returns. Idempotent.
fn request_exit(exit: &AtomicBool, addr: std::net::SocketAddr) {
    exit.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(addr);
}

/// Moves bytes between one socket and the core, lockstep: read a chunk,
/// feed it, write the responses, flush. The lockstep is itself the
/// response-buffer bound — at most one chunk's responses are ever in
/// flight, and the write deadline disconnects a peer that stops reading
/// them.
fn handle_connection(
    mut stream: TcpStream,
    core: Arc<Mutex<ServeCore>>,
    exit: Arc<AtomicBool>,
    addr: std::net::SocketAddr,
    policy: ConnPolicy,
) {
    let conn = core.lock().open_conn();
    if let Some(t) = policy.io_timeout {
        let _ = stream.set_read_timeout(Some(t));
        let _ = stream.set_write_timeout(Some(t));
    }
    let mut chunk = [0u8; 4096];
    // When the partial line now buffered for this connection started —
    // the slowloris clock. `None` between lines.
    let mut line_started: Option<Instant> = None;
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle is fine; a stalled partial line is not.
                if is_slow(line_started, policy) {
                    evict_slow(&mut stream, policy);
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        let (responses, fragment, stop) = {
            let mut core = core.lock();
            let responses = core.feed(conn, &chunk[..n]);
            (responses, core.pending_fragment(conn), core.should_exit())
        };
        line_started = if fragment > 0 {
            line_started.or_else(|| Some(Instant::now()))
        } else {
            None
        };
        if is_slow(line_started, policy) {
            evict_slow(&mut stream, policy);
            break;
        }
        let mut out = String::new();
        for response in &responses {
            out.push_str(response);
            out.push('\n');
        }
        if stream.write_all(out.as_bytes()).is_err() || stream.flush().is_err() {
            break;
        }
        if stop {
            request_exit(&exit, addr);
            break;
        }
    }
    core.lock().close_conn(conn);
}

/// Whether this connection's partial line has been dribbling past the
/// deadline.
fn is_slow(line_started: Option<Instant>, policy: ConnPolicy) -> bool {
    match (line_started, policy.line_deadline) {
        (Some(t0), Some(deadline)) => t0.elapsed() >= deadline,
        _ => false,
    }
}

/// Best-effort goodbye to a slowloris peer, then the caller disconnects.
fn evict_slow(stream: &mut TcpStream, policy: ConnPolicy) {
    let deadline_ms = policy.line_deadline.map_or(0, |d| d.as_millis() as u64);
    let msg = format!(
        "ERR code={} deadline-ms={deadline_ms}\n",
        codes::SLOW_CLIENT
    );
    let _ = stream.write_all(msg.as_bytes());
    let _ = stream.flush();
}

/// Graceful SIGTERM: the handler only flips a flag; the ticker notices
/// it between sweeps and runs the normal `DRAIN` path (flush, final
/// checkpoint, retry hints for stragglers, exit 0).
#[cfg(unix)]
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    static STOP: AtomicBool = AtomicBool::new(false);

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    extern "C" fn on_sigterm(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_sigterm);
        }
    }

    pub fn pending() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sigterm {
    pub fn install() {}
    pub fn pending() -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_and_overrides() {
        let d = parse_flags(&[]).unwrap();
        assert_eq!(d, DaemonConfig::default());
        let d = parse_flags(&argv(&[
            "--listen",
            "0.0.0.0:9000",
            "--tenants-dir=/tmp/t",
            "--checkpoint-every",
            "500",
            "--evict-after=64",
            "--mem-budget=1048576",
            "--shards",
            "4",
            "--tenant-config",
            "/tmp/overrides.conf",
            "--max-line=1024",
            "--deadline-ms",
            "250",
            "--io-timeout-ms=2000",
            "--line-deadline-ms",
            "3000",
        ]))
        .unwrap();
        assert_eq!(d.listen, "0.0.0.0:9000");
        assert_eq!(d.tenants_dirs, vec![PathBuf::from("/tmp/t")]);
        assert_eq!(d.checkpoint_every, 500);
        assert_eq!(d.evict_after, 64);
        assert_eq!(d.mem_budget, 1 << 20);
        assert_eq!(d.shards, 4);
        assert_eq!(d.tenant_config, Some(PathBuf::from("/tmp/overrides.conf")));
        assert_eq!(d.max_line, 1024);
        assert_eq!(d.deadline_ms, 250);
        assert_eq!(d.io_timeout_ms, 2000);
        assert_eq!(d.line_deadline_ms, 3000);
    }

    #[test]
    fn tenants_dir_is_repeatable_and_replaces_the_default() {
        let d = parse_flags(&argv(&["--tenants-dir", "/a", "--tenants-dir=/b"])).unwrap();
        assert_eq!(
            d.tenants_dirs,
            vec![PathBuf::from("/a"), PathBuf::from("/b")]
        );
        // No flag: the single default dir.
        let d = parse_flags(&[]).unwrap();
        assert_eq!(d.tenants_dirs, vec![PathBuf::from("tenants")]);
    }

    #[test]
    fn unknown_duplicate_and_malformed_flags_error() {
        assert!(parse_flags(&argv(&["--bogus"]))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_flags(&argv(&["--listen", "a", "--listen", "b"]))
            .unwrap_err()
            .contains("duplicate"));
        assert!(parse_flags(&argv(&["--shards"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_flags(&argv(&["--shards", "zero"]))
            .unwrap_err()
            .contains("non-negative integer"));
        assert!(parse_flags(&argv(&["--shards", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_flags(&argv(&["--max-line", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_flags(&argv(&["positional"]))
            .unwrap_err()
            .contains("unexpected"));
    }

    #[test]
    fn serve_config_derives_budget_and_hardening() {
        let d = parse_flags(&argv(&[
            "--mem-budget",
            "8388608",
            "--max-line=2048",
            "--deadline-ms=750",
        ]))
        .unwrap();
        let c = d.serve_config();
        assert_eq!(c.budget.global_bytes, 8 << 20);
        assert_eq!(c.budget.quota_bytes, 1 << 20);
        assert_eq!(c.tenants_dirs, vec![PathBuf::from("tenants")]);
        assert_eq!(c.evict_after, 0);
        assert_eq!(c.max_line_bytes, 2048);
        assert_eq!(c.overload.deadline_ms, 750);
    }

    #[test]
    fn conn_policy_zero_disables() {
        let mut d = DaemonConfig {
            io_timeout_ms: 0,
            line_deadline_ms: 0,
            ..DaemonConfig::default()
        };
        let p = d.conn_policy();
        assert!(p.io_timeout.is_none());
        assert!(p.line_deadline.is_none());
        d.io_timeout_ms = 100;
        d.line_deadline_ms = 200;
        let p = d.conn_policy();
        assert_eq!(p.io_timeout, Some(Duration::from_millis(100)));
        assert_eq!(p.line_deadline, Some(Duration::from_millis(200)));
    }
}
