//! The TCP shell around [`ServeCore`].
//!
//! Everything timing- or socket-shaped lives here, behind declared
//! `logdiver-lint` module allowances: an accept loop that spawns one
//! lockstep handler thread per connection, and a ticker thread that pumps
//! the fleet while connections are idle so watermarks keep advancing
//! between pushes. The core itself stays deterministic — handlers just
//! move bytes between their socket and [`ServeCore::feed`] under a
//! mutex.
//!
//! Shutdown: a `SHUTDOWN` request (or dropping the listener) checkpoints
//! every tenant and exits; a SIGKILL loses only queued-but-unapplied
//! lines, which clients replay from the `HELLO` cursor after restart.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use logdiver::exec;
use parking_lot::Mutex;

use crate::budget::BudgetPolicy;
use crate::server::{parse_tenant_config, ServeConfig, ServeCore, TenantOverrides};

/// How often the ticker pumps an otherwise-idle fleet.
const TICK: Duration = Duration::from_millis(250);

/// The daemon's flag surface (`logdiver serve` and the standalone
/// `logdiver-serve` binary parse the same flags into this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonConfig {
    /// `--listen`: bind address, e.g. `127.0.0.1:7044` (port `0` picks an
    /// ephemeral port; the chosen address is printed on startup).
    pub listen: String,
    /// `--tenants-dir` (repeatable): checkpoint replica directories.
    /// Every checkpoint is written to all of them; resume restores each
    /// tenant from the newest valid copy.
    pub tenants_dirs: Vec<PathBuf>,
    /// `--checkpoint-every`: auto-checkpoint cadence in applied records
    /// (0 disables the cadence; explicit `CHECKPOINT` still works).
    pub checkpoint_every: u64,
    /// `--evict-after`: evict a tenant to its checkpoint after this many
    /// idle pump sweeps (0 = never).
    pub evict_after: u64,
    /// `--mem-budget`: global open-state budget in bytes; the per-tenant
    /// quota is derived ([`BudgetPolicy::from_global`]).
    pub mem_budget: usize,
    /// `--shards`: worker threads for the tenant pump.
    pub shards: usize,
    /// `--tenant-config`: optional per-tenant `StreamConfig` override
    /// file (see [`parse_tenant_config`] for the format).
    pub tenant_config: Option<PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            listen: "127.0.0.1:7044".to_string(),
            tenants_dirs: vec![PathBuf::from("tenants")],
            checkpoint_every: 10_000,
            evict_after: 0,
            mem_budget: 256 << 20,
            shards: exec::default_threads(),
            tenant_config: None,
        }
    }
}

/// Usage text shared by the binary and the CLI subcommand.
pub const USAGE: &str = "\
usage: logdiver-serve [--listen ADDR] [--tenants-dir DIR]...
                      [--checkpoint-every N] [--evict-after N]
                      [--mem-budget BYTES] [--shards N]
                      [--tenant-config FILE]

  --listen ADDR         bind address (default 127.0.0.1:7044; port 0 = ephemeral)
  --tenants-dir DIR     checkpoint replica directory (default ./tenants);
                        repeat the flag to replicate checkpoints across
                        several directories and resume from the newest
                        valid copy
  --checkpoint-every N  auto-checkpoint every N applied records (default 10000)
  --evict-after N       evict tenants idle for N pump sweeps (default 0 = never)
  --mem-budget BYTES    global open-state budget (default 268435456)
  --shards N            pump worker threads (default: CPU count)
  --tenant-config FILE  per-tenant overrides: '<tenant> key=value ...' lines";

/// Parses the daemon flags. Accepts `--name value` and `--name=value`;
/// any unknown, duplicate (except the repeatable `--tenants-dir`), or
/// valueless option is an error (the callers exit 2 with [`USAGE`]).
pub fn parse_flags(args: &[String]) -> Result<DaemonConfig, String> {
    let mut config = DaemonConfig::default();
    let mut seen: Vec<String> = Vec::new();
    let mut dirs_given = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let (name, inline_value) = match arg.split_once('=') {
            Some((n, v)) => (n, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        if !name.starts_with("--") {
            return Err(format!("unexpected argument '{arg}'"));
        }
        if name != "--tenants-dir" {
            if seen.iter().any(|s| s == name) {
                return Err(format!("duplicate option '{name}'"));
            }
            seen.push(name.to_string());
        }
        let mut value = || -> Result<String, String> {
            match inline_value.clone() {
                Some(v) => Ok(v),
                None => it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("option '{name}' needs a value")),
            }
        };
        match name {
            "--listen" => config.listen = value()?,
            "--tenants-dir" => {
                // The first occurrence replaces the default; later ones
                // add replicas.
                if !dirs_given {
                    config.tenants_dirs.clear();
                    dirs_given = true;
                }
                config.tenants_dirs.push(PathBuf::from(value()?));
            }
            "--checkpoint-every" => config.checkpoint_every = parse_num(name, &value()?)?,
            "--evict-after" => config.evict_after = parse_num(name, &value()?)?,
            "--tenant-config" => config.tenant_config = Some(PathBuf::from(value()?)),
            "--mem-budget" => config.mem_budget = parse_num(name, &value()?)? as usize,
            "--shards" => {
                let n = parse_num(name, &value()?)?;
                if n == 0 {
                    return Err("option '--shards' must be at least 1".to_string());
                }
                config.shards = n as usize;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(config)
}

fn parse_num(name: &str, raw: &str) -> Result<u64, String> {
    raw.parse()
        .map_err(|_| format!("option '{name}' expects a non-negative integer, got '{raw}'"))
}

impl DaemonConfig {
    /// The equivalent core configuration (overrides from
    /// `--tenant-config` are loaded separately by
    /// [`DaemonConfig::load_overrides`]).
    pub fn serve_config(&self) -> ServeConfig {
        ServeConfig {
            tenants_dirs: self.tenants_dirs.clone(),
            budget: BudgetPolicy::from_global(self.mem_budget),
            shards: self.shards,
            checkpoint_every: self.checkpoint_every,
            evict_after: self.evict_after,
            ..ServeConfig::default()
        }
    }

    /// Reads and parses the `--tenant-config` file, if one was given.
    pub fn load_overrides(
        &self,
    ) -> Result<std::collections::BTreeMap<String, TenantOverrides>, String> {
        let Some(path) = &self.tenant_config else {
            return Ok(std::collections::BTreeMap::new());
        };
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("--tenant-config {}: {e}", path.display()))?;
        parse_tenant_config(&text).map_err(|e| format!("--tenant-config {}: {e}", path.display()))
    }
}

/// Runs the daemon until `SHUTDOWN` (never returns `Ok` in practice).
/// Prints `logdiver-serve listening on <addr>` once bound so drivers
/// using an ephemeral port can discover it.
pub fn run(config: DaemonConfig) -> std::io::Result<()> {
    let mut serve = config.serve_config();
    serve.overrides = config
        .load_overrides()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    let core = ServeCore::new(serve)?;
    for warning in core.warnings() {
        eprintln!("logdiver-serve: warning: {warning}");
    }
    eprintln!(
        "logdiver-serve: {} checkpoint replica(s), durability={}",
        config.tenants_dirs.len(),
        core.durability().label()
    );
    let resumed = core.tenant_names();
    if !resumed.is_empty() {
        eprintln!(
            "logdiver-serve: resumed {} tenant(s): {}",
            resumed.len(),
            resumed.join(", ")
        );
    }
    let listener = TcpListener::bind(&config.listen)?;
    println!("logdiver-serve listening on {}", listener.local_addr()?);
    std::io::stdout().flush()?;

    let core = Arc::new(Mutex::new(core));

    // Idle ticker: advance watermarks and run the checkpoint cadence even
    // when no pushes are arriving.
    let ticker_core = Arc::clone(&core);
    std::thread::spawn(move || loop {
        std::thread::sleep(TICK);
        ticker_core.lock().pump();
    });

    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn_core = Arc::clone(&core);
        std::thread::spawn(move || handle_connection(stream, conn_core));
    }
    Ok(())
}

/// Moves bytes between one socket and the core, lockstep: read a chunk,
/// feed it, write the responses, flush.
fn handle_connection(mut stream: TcpStream, core: Arc<Mutex<ServeCore>>) {
    let conn = core.lock().open_conn();
    let mut chunk = [0u8; 4096];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let (responses, shutdown) = {
            let mut core = core.lock();
            let responses = core.feed(conn, &chunk[..n]);
            (responses, core.shutdown_requested())
        };
        let mut out = String::new();
        for response in &responses {
            out.push_str(response);
            out.push('\n');
        }
        if stream.write_all(out.as_bytes()).is_err() || stream.flush().is_err() {
            break;
        }
        if shutdown {
            let mut core = core.lock();
            let n = core.checkpoint_all();
            eprintln!(
                "logdiver-serve: shutdown, checkpointed {n} tenant(s), durability={}",
                core.durability().label()
            );
            std::process::exit(0);
        }
    }
    core.lock().close_conn(conn);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_and_overrides() {
        let d = parse_flags(&[]).unwrap();
        assert_eq!(d, DaemonConfig::default());
        let d = parse_flags(&argv(&[
            "--listen",
            "0.0.0.0:9000",
            "--tenants-dir=/tmp/t",
            "--checkpoint-every",
            "500",
            "--evict-after=64",
            "--mem-budget=1048576",
            "--shards",
            "4",
            "--tenant-config",
            "/tmp/overrides.conf",
        ]))
        .unwrap();
        assert_eq!(d.listen, "0.0.0.0:9000");
        assert_eq!(d.tenants_dirs, vec![PathBuf::from("/tmp/t")]);
        assert_eq!(d.checkpoint_every, 500);
        assert_eq!(d.evict_after, 64);
        assert_eq!(d.mem_budget, 1 << 20);
        assert_eq!(d.shards, 4);
        assert_eq!(d.tenant_config, Some(PathBuf::from("/tmp/overrides.conf")));
    }

    #[test]
    fn tenants_dir_is_repeatable_and_replaces_the_default() {
        let d = parse_flags(&argv(&["--tenants-dir", "/a", "--tenants-dir=/b"])).unwrap();
        assert_eq!(
            d.tenants_dirs,
            vec![PathBuf::from("/a"), PathBuf::from("/b")]
        );
        // No flag: the single default dir.
        let d = parse_flags(&[]).unwrap();
        assert_eq!(d.tenants_dirs, vec![PathBuf::from("tenants")]);
    }

    #[test]
    fn unknown_duplicate_and_malformed_flags_error() {
        assert!(parse_flags(&argv(&["--bogus"]))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_flags(&argv(&["--listen", "a", "--listen", "b"]))
            .unwrap_err()
            .contains("duplicate"));
        assert!(parse_flags(&argv(&["--shards"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_flags(&argv(&["--shards", "zero"]))
            .unwrap_err()
            .contains("non-negative integer"));
        assert!(parse_flags(&argv(&["--shards", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_flags(&argv(&["positional"]))
            .unwrap_err()
            .contains("unexpected"));
    }

    #[test]
    fn serve_config_derives_budget() {
        let d = parse_flags(&argv(&["--mem-budget", "8388608"])).unwrap();
        let c = d.serve_config();
        assert_eq!(c.budget.global_bytes, 8 << 20);
        assert_eq!(c.budget.quota_bytes, 1 << 20);
        assert_eq!(c.tenants_dirs, vec![PathBuf::from("tenants")]);
        assert_eq!(c.evict_after, 0);
    }
}
