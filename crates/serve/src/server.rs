//! [`ServeCore`]: the daemon's deterministic heart.
//!
//! The core is socket-free and wall-clock-free: connections are opaque
//! ids, input arrives as byte chunks via [`ServeCore::feed`], and every
//! complete protocol line yields exactly one response string. The TCP
//! daemon ([`crate::daemon`]) is a thin shell that moves bytes between
//! sockets and this struct — which is what lets the equivalence and
//! crash/resume proptests drive the whole server in-process, byte
//! transcripts in, analyses out, with no timing dependence.
//!
//! Tenants are pumped in batches across the batch pipeline's
//! work-stealing executor ([`logdiver::exec::par_map`]): the protocol
//! path only validates and enqueues, and every `PUMP_EVERY` accepted
//! lines (or on any control verb) the queued work for *all* tenants is
//! sharded across `shards` workers. Five hundred tenants cost five
//! hundred engines but only `shards` threads.
//!
//! Durability goes through [`crate::store::CheckpointStore`]: every
//! checkpoint is replicated across the configured replica dirs, resume
//! restores each tenant from the newest valid copy, and a dead replica
//! degrades the reported durability level instead of stalling ingestion.
//! All filesystem traffic runs through the [`Fs`] seam, so the chaos
//! tests can inject torn writes, ENOSPC, and bit rot deterministically
//! via [`ServeCore::with_fs`].
//!
//! Tenants have a lifecycle: a tenant idle for more than `evict_after`
//! pump sweeps is checkpointed and dropped from memory, then
//! transparently resurrected from the store the next time any verb
//! references it; `DROP` destroys a tenant outright, leaving tombstones
//! so a restart does not bring it back.
//!
//! The core also carries the overload and drain machinery (DESIGN.md
//! §17): per-connection receive buffers are bounded by
//! [`ServeConfig::max_line_bytes`] (over-long lines answer
//! `ERR code=line-too-long` without disconnecting), the shell reports
//! each pump sweep's duration via [`ServeCore::set_pressure`] and pushes
//! are shed with `ERR code=overload retry-ms=N` while that pressure
//! exceeds the configured deadline, and the `DRAIN` verb flushes and
//! checkpoints every tenant, answers straggler pushes with
//! `ERR code=draining retry-ms=N`, and flips [`ServeCore::should_exit`]
//! after a short grace — the zero-loss half of a rolling restart.
//! Replayed duplicates answer `OK dup` through all of it, so a resilient
//! client can always settle its cursor.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::Arc;

use logdiver::exec;
use logdiver::pipeline::Analysis;
use logdiver_stream::{Source, StreamCheckpoint, StreamConfig};
use logdiver_types::fsio::{Fs, RealFs};
use logdiver_types::protocol as codes;
use logdiver_types::{SimDuration, Timestamp};
use serde::Serialize;

use crate::budget::{Admission, BudgetPolicy, OverloadPolicy};
use crate::proto::{self, Request};
use crate::store::{CheckpointStore, Durability, StorePolicy, StoreSnapshot};
use crate::tenant::{Offer, Tenant};

/// How many accepted pushes may queue fleet-wide before the core pumps
/// every tenant. Control verbs (`FLUSH`/`SNAPSHOT`/`CHECKPOINT`/`REPORT`)
/// always pump first, so this only bounds staleness and queue memory on
/// a pure push workload.
const PUMP_EVERY: u64 = 1024;

/// How many pump sweeps a draining core stays alive after the drain
/// completed, answering straggler requests with retry hints, before
/// [`ServeCore::should_exit`] turns true. At the daemon's tick cadence
/// this is roughly half a second of grace.
const DRAIN_GRACE_SWEEPS: u64 = 2;

/// Daemon-level configuration (the flag surface of `logdiver serve`).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Replica directories for tenant checkpoints (`--tenants-dir`,
    /// repeatable): every checkpoint is written to all of them, resume
    /// restores from the newest valid copy. Empty disables persistence
    /// (and `CHECKPOINT` returns an error).
    pub tenants_dirs: Vec<PathBuf>,
    /// Global/per-tenant memory limits.
    pub budget: BudgetPolicy,
    /// Worker threads for the tenant pump (the `--shards` flag).
    pub shards: usize,
    /// Auto-checkpoint every N applied records fleet-wide (0 = only on
    /// explicit `CHECKPOINT`/shutdown).
    pub checkpoint_every: u64,
    /// Evict a tenant to its checkpoint after this many consecutive pump
    /// sweeps with no traffic and nothing queued (0 = never evict).
    pub evict_after: u64,
    /// Fleet-default per-tenant engine configuration.
    pub stream: StreamConfig,
    /// Per-tenant `StreamConfig` overrides (from `--tenant-config`;
    /// `HELLO` options add to this at runtime).
    pub overrides: BTreeMap<String, TenantOverrides>,
    /// Replica health machine tuning.
    pub store: StorePolicy,
    /// Longest accepted protocol line in bytes (`--max-line`). A
    /// connection feeding a longer line has the excess discarded (its
    /// buffer stays bounded) and is answered `ERR code=line-too-long`
    /// once the line finally terminates; the connection stays usable.
    pub max_line_bytes: usize,
    /// Deadline-aware overload shedding and retry-hint shaping.
    pub overload: OverloadPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tenants_dirs: Vec::new(),
            budget: BudgetPolicy::default(),
            shards: exec::default_threads(),
            checkpoint_every: 10_000,
            evict_after: 0,
            stream: StreamConfig::default(),
            overrides: BTreeMap::new(),
            store: StorePolicy::default(),
            max_line_bytes: 64 << 10,
            overload: OverloadPolicy::default(),
        }
    }
}

/// Per-tenant overrides of the fleet-default [`StreamConfig`], settable
/// via `HELLO <tenant> key=value …` or a `--tenant-config` file. `None`
/// means "use the fleet default".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantOverrides {
    /// Allowed lateness in seconds (`lateness=<secs>`).
    pub lateness_secs: Option<i64>,
    /// Quarantined lines kept per source (`quarantine-keep=<n>`).
    pub quarantine_keep: Option<usize>,
}

impl TenantOverrides {
    /// Applies one `key=value` option. Unknown keys and unparseable
    /// values produce the full machine-readable `ERR` line.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        match key {
            "lateness" => match value.parse::<i64>() {
                Ok(secs) if secs >= 0 => {
                    self.lateness_secs = Some(secs);
                    Ok(())
                }
                _ => Err(bad_option(key, value)),
            },
            "quarantine-keep" => match value.parse::<usize>() {
                Ok(keep) => {
                    self.quarantine_keep = Some(keep);
                    Ok(())
                }
                Err(_) => Err(bad_option(key, value)),
            },
            _ => Err(format!(
                "ERR code={} key={}",
                codes::UNKNOWN_OPTION,
                proto::sanitize(key)
            )),
        }
    }
}

fn bad_option(key: &str, value: &str) -> String {
    format!(
        "ERR code={} key={} value={}",
        codes::BAD_OPTION,
        proto::sanitize(key),
        proto::sanitize(value)
    )
}

/// Parses a `--tenant-config` file: one tenant per line,
/// `<tenant> key=value [key=value …]`, `#` comments and blank lines
/// ignored. Unknown keys, bad values, bad tenant names, and duplicate
/// tenant lines are errors (reported with their line number).
pub fn parse_tenant_config(text: &str) -> Result<BTreeMap<String, TenantOverrides>, String> {
    let mut overrides = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let Some(tenant) = tokens.next() else {
            continue;
        };
        if !proto::valid_tenant_name(tenant) {
            return Err(format!("line {}: bad tenant name {tenant:?}", lineno + 1));
        }
        let mut ov = TenantOverrides::default();
        for token in tokens {
            let Some((key, value)) = token.split_once('=') else {
                return Err(format!(
                    "line {}: expected key=value, got {token:?}",
                    lineno + 1
                ));
            };
            if let Err(err) = ov.set(key, value) {
                return Err(format!("line {}: {err}", lineno + 1));
            }
        }
        if overrides.insert(tenant.to_string(), ov).is_some() {
            return Err(format!("line {}: duplicate tenant {tenant}", lineno + 1));
        }
    }
    Ok(overrides)
}

/// The effective engine config for one tenant: fleet default, overlaid
/// with the tenant's overrides. When resuming and no explicit lateness
/// override exists, the checkpoint's own recorded lateness is adopted —
/// the checkpoint is self-describing, and the released watermark already
/// baked that value in.
fn stream_for(
    config: &ServeConfig,
    overrides: &BTreeMap<String, TenantOverrides>,
    name: &str,
    ckpt: Option<&StreamCheckpoint>,
) -> StreamConfig {
    let ov = overrides.get(name).copied().unwrap_or_default();
    let mut stream = config.stream.clone();
    match (ov.lateness_secs, ckpt) {
        (Some(secs), _) => stream = stream.with_lateness(SimDuration::from_secs(secs)),
        (None, Some(c)) => stream = stream.with_lateness(SimDuration::from_secs(c.lateness_secs)),
        (None, None) => {}
    }
    if let Some(keep) = ov.quarantine_keep {
        stream = stream.with_quarantine_keep(keep);
    }
    stream
}

/// Fleet-wide counters, serialized by the aggregate `SNAPSHOT`.
#[derive(Debug, Default, Clone, Serialize)]
pub struct ServeStats {
    /// Pushes accepted (queued) in total.
    pub accepted: u64,
    /// Records applied to engines in total.
    pub applied: u64,
    /// Duplicate pushes answered `OK dup`.
    pub dups: u64,
    /// Out-of-order pushes answered `ERR code=gap`.
    pub gaps: u64,
    /// Pushes rejected over per-tenant quota.
    pub shed_quota: u64,
    /// Pushes shed over the global budget.
    pub shed_budget: u64,
    /// Checkpoint sweeps in which at least one tenant could not be
    /// persisted to any replica.
    pub checkpoint_errors: u64,
    /// Idle tenants evicted to their checkpoints.
    pub evicted: u64,
    /// Evicted tenants resurrected from the store on a later reference.
    pub resurrected: u64,
    /// `DROP` requests processed.
    pub dropped: u64,
    /// Pushes shed with `ERR code=overload` (pump pressure over the
    /// deadline).
    pub shed_overload: u64,
    /// Pushes shed with `ERR code=draining` while the core drains.
    pub shed_draining: u64,
    /// Over-long lines rejected with `ERR code=line-too-long`.
    pub line_too_long: u64,
    /// Lines rejected with `ERR code=bad-utf8`.
    pub bad_utf8: u64,
}

/// One connection's receive state: the partial line being assembled, and
/// whether the line under assembly already blew past `max_line_bytes`
/// (its bytes are being discarded until the terminating newline, at
/// which point one `ERR code=line-too-long` is answered).
#[derive(Debug, Default)]
struct ConnBuf {
    buf: Vec<u8>,
    discarding: bool,
}

/// The multi-tenant core. See the module docs.
#[derive(Debug)]
pub struct ServeCore {
    config: ServeConfig,
    store: Option<CheckpointStore>,
    overrides: BTreeMap<String, TenantOverrides>,
    tenants: BTreeMap<String, Tenant>,
    /// Tenants checkpointed out of memory, resurrectable from the store.
    evicted: BTreeSet<String>,
    conns: HashMap<u64, ConnBuf>,
    next_conn: u64,
    fleet_cost: usize,
    unpumped: u64,
    since_checkpoint: u64,
    stats: ServeStats,
    shutdown: bool,
    /// Drain mode: set by `DRAIN`, never cleared — the daemon restarts
    /// instead.
    draining: bool,
    /// Pump sweeps completed since drain mode began (the grace clock).
    drained_sweeps: u64,
    /// Last pump-sweep duration reported by the shell via
    /// [`ServeCore::set_pressure`] — the overload signal.
    pressure_ms: u64,
    /// Monotonic salt for retry-hint jitter.
    retry_salt: u64,
    warnings: Vec<String>,
}

impl ServeCore {
    /// Builds a core over the real filesystem, resuming every tenant
    /// that has a valid checkpoint on any replica. See
    /// [`ServeCore::with_fs`].
    pub fn new(config: ServeConfig) -> std::io::Result<Self> {
        Self::with_fs(config, Arc::new(RealFs))
    }

    /// Builds a core over an arbitrary [`Fs`] (the chaos tests inject
    /// faulty filesystems here). Each tenant with a checkpoint resumes
    /// from the *newest valid* replica copy; corrupt copies are moved
    /// aside and warned about ([`ServeCore::warnings`]), and a tenant
    /// with no valid copy anywhere is skipped rather than refusing to
    /// start the rest of the fleet. Replica dirs that cannot even be
    /// created start out Failed — durability degrades, startup proceeds.
    pub fn with_fs(config: ServeConfig, fs: Arc<dyn Fs>) -> std::io::Result<Self> {
        let mut warnings = Vec::new();
        let overrides = config.overrides.clone();
        let mut store = if config.tenants_dirs.is_empty() {
            None
        } else {
            Some(CheckpointStore::open(
                fs,
                &config.tenants_dirs,
                config.store,
            ))
        };
        let mut tenants = BTreeMap::new();
        let mut fleet_cost = 0;
        if let Some(store) = store.as_mut() {
            let names: Vec<String> = store
                .list_tenants(&mut warnings)
                .into_iter()
                .filter(|n| proto::valid_tenant_name(n))
                .collect();
            for name in names {
                match store.read_newest(&name, &mut warnings) {
                    Some(ckpt) => {
                        let stream = stream_for(&config, &overrides, &name, Some(&ckpt));
                        match Tenant::resume(name.clone(), stream, &ckpt) {
                            Ok(tenant) => {
                                fleet_cost += tenant.cost();
                                tenants.insert(name, tenant);
                            }
                            Err(e) => warnings.push(format!("tenant {name}: {e}")),
                        }
                    }
                    None => {
                        warnings.push(format!("tenant {name}: no valid checkpoint on any replica"))
                    }
                }
            }
        }
        Ok(ServeCore {
            config,
            store,
            overrides,
            tenants,
            evicted: BTreeSet::new(),
            conns: HashMap::new(),
            next_conn: 0,
            fleet_cost,
            unpumped: 0,
            since_checkpoint: 0,
            stats: ServeStats::default(),
            shutdown: false,
            draining: false,
            drained_sweeps: 0,
            pressure_ms: 0,
            retry_salt: 0,
            warnings,
        })
    }

    /// Problems encountered while resuming or resurrecting tenants.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Whether a `SHUTDOWN` request has been received.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Whether the core is in drain mode (a `DRAIN` request arrived).
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Whether the shell should stop accepting connections and exit 0:
    /// after `SHUTDOWN`, or once a drain has sat through its grace
    /// sweeps (straggler clients got their retry hints).
    pub fn should_exit(&self) -> bool {
        self.shutdown || (self.draining && self.drained_sweeps >= DRAIN_GRACE_SWEEPS)
    }

    /// Reports the latest observed pump-sweep duration. The shell is the
    /// only party with a wall clock; the core just compares this against
    /// [`OverloadPolicy::deadline_ms`] to decide when to shed.
    pub fn set_pressure(&mut self, pump_ms: u64) {
        self.pressure_ms = pump_ms;
    }

    /// The pressure last reported via [`ServeCore::set_pressure`].
    pub fn pressure_ms(&self) -> u64 {
        self.pressure_ms
    }

    /// Bytes of the partial line currently buffered for `conn` (0 when
    /// the connection is between lines). The shell uses this to tell a
    /// dribbling slowloris connection from an idle one.
    pub fn pending_fragment(&self, conn: u64) -> usize {
        self.conns.get(&conn).map_or(0, |c| c.buf.len())
    }

    /// Names of the tenants currently hot in memory, sorted. Evicted
    /// tenants ([`ServeCore::evicted_names`]) are not listed here.
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.keys().cloned().collect()
    }

    /// Names of tenants evicted to their checkpoints, sorted.
    pub fn evicted_names(&self) -> Vec<String> {
        self.evicted.iter().cloned().collect()
    }

    /// Fleet counters so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The current fleet durability level ([`Durability::None`] when no
    /// replica dirs are configured).
    pub fn durability(&self) -> Durability {
        self.store
            .as_ref()
            .map_or(Durability::None, CheckpointStore::durability)
    }

    /// The store's health/durability snapshot, when persistence is on.
    pub fn store_snapshot(&self) -> Option<StoreSnapshot> {
        self.store.as_ref().map(CheckpointStore::snapshot)
    }

    /// Registers a connection and returns its id.
    pub fn open_conn(&mut self) -> u64 {
        let id = self.next_conn;
        self.next_conn += 1;
        self.conns.insert(id, ConnBuf::default());
        id
    }

    /// Drops a connection. Any incomplete trailing line is discarded —
    /// a mid-line disconnect never half-applies a request; the client
    /// replays it (idempotently) on the next connection.
    pub fn close_conn(&mut self, conn: u64) {
        self.conns.remove(&conn);
    }

    /// Feeds raw bytes from a connection and returns one response per
    /// complete protocol line, in order. Bytes after the last newline
    /// stay buffered until the next feed.
    ///
    /// Per-connection memory is bounded by `max_line_bytes`: once a line
    /// under assembly exceeds the limit its buffer is released and the
    /// rest of the line is discarded as it arrives; the terminating
    /// newline yields one `ERR code=line-too-long` and the connection
    /// keeps working. Lines that are not valid UTF-8 answer
    /// `ERR code=bad-utf8` — a torn multi-byte sequence must not be
    /// half-applied as a mangled request.
    pub fn feed(&mut self, conn: u64, bytes: &[u8]) -> Vec<String> {
        let max = self.config.max_line_bytes.max(1);
        let mut state = self.conns.remove(&conn).unwrap_or_default();
        let mut responses = Vec::new();
        let mut rest = bytes;
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(nl);
            rest = &tail[1..];
            if state.discarding || state.buf.len() + head.len() > max {
                state.buf = Vec::new();
                state.discarding = false;
                self.stats.line_too_long += 1;
                responses.push(format!("ERR code={} limit={max}", codes::LINE_TOO_LONG));
                continue;
            }
            state.buf.extend_from_slice(head);
            let raw = std::mem::take(&mut state.buf);
            match String::from_utf8(raw) {
                Ok(line) => responses.push(self.handle_line(&line)),
                Err(_) => {
                    self.stats.bad_utf8 += 1;
                    responses.push(format!("ERR code={}", codes::BAD_UTF8));
                }
            }
        }
        if !state.discarding {
            if state.buf.len() + rest.len() > max {
                state.buf = Vec::new();
                state.discarding = true;
            } else {
                state.buf.extend_from_slice(rest);
            }
        }
        self.conns.insert(conn, state);
        responses
    }

    /// Handles one complete request line.
    pub fn handle_line(&mut self, line: &str) -> String {
        let request = match proto::parse(line) {
            Ok(r) => r,
            Err(e) => return e.response(),
        };
        match request {
            Request::Hello { tenant, options } => self.handle_hello(tenant, &options),
            Request::Push {
                tenant,
                source,
                index,
                line,
            } => self.handle_push(tenant, source, index, line),
            Request::Flush { tenant } => {
                if !self.is_known(tenant) {
                    return unknown_tenant(tenant);
                }
                self.tenant_entry(tenant);
                self.pump();
                // Pump is fleet-wide; the reply reports this tenant.
                match self.tenants.get(tenant) {
                    Some(t) => format!("OK applied={}", cursor(&t.applied())),
                    None => unknown_tenant(tenant),
                }
            }
            Request::Snapshot { tenant } => self.handle_snapshot(tenant),
            Request::Checkpoint { tenant } => self.handle_checkpoint(tenant),
            Request::Report { tenant } => {
                if !self.is_known(tenant) {
                    return unknown_tenant(tenant);
                }
                self.tenant_entry(tenant);
                self.pump();
                let body = match self.tenants.get_mut(tenant) {
                    Some(t) => {
                        let analysis = t.preview();
                        logdiver::report::full_report(&analysis.metrics, &analysis.stats)
                    }
                    None => return unknown_tenant(tenant),
                };
                let body = body.trim_end_matches('\n');
                let n = body.lines().count();
                let durability = self.durability().label();
                let corrupt = self
                    .store
                    .as_ref()
                    .map_or(0, CheckpointStore::corrupt_preserved);
                format!("OK lines={n} durability={durability} corrupt-preserved={corrupt}\n{body}")
            }
            Request::Drop { tenant } => self.handle_drop(tenant),
            Request::Drain => self.handle_drain(),
            Request::Shutdown => {
                self.shutdown = true;
                "OK shutting-down".to_string()
            }
        }
    }

    /// Enters drain mode: flush every queued record, checkpoint every
    /// tenant, and from now on answer new pushes with a retry hint so
    /// stragglers move on to the replacement daemon. Idempotent — a
    /// repeated `DRAIN` re-flushes (a no-op when nothing arrived) and
    /// answers the same `OK`. [`ServeCore::should_exit`] turns true a
    /// couple of sweeps later.
    fn handle_drain(&mut self) -> String {
        let first = !self.draining;
        self.draining = true;
        if first {
            self.drained_sweeps = 0;
        }
        self.pump();
        let n = if self.store.is_some() {
            self.checkpoint_all()
        } else {
            // No persistence configured: drained state lives only in
            // memory, but queues are flushed and cursors settled.
            self.tenants.len()
        };
        format!(
            "OK draining tenants={n} durability={}",
            self.durability().label()
        )
    }

    /// Whether `name` is a tenant this core knows — hot or evicted.
    fn is_known(&self, name: &str) -> bool {
        self.tenants.contains_key(name) || self.evicted.contains(name)
    }

    fn handle_hello(&mut self, tenant: &str, options: &[(&str, &str)]) -> String {
        // Validate all options before any side effect.
        let mut requested = TenantOverrides::default();
        for (key, value) in options {
            if let Err(err) = requested.set(key, value) {
                return err;
            }
        }
        if self.is_known(tenant) {
            // An existing tenant's engine already baked its config in:
            // options must agree with the effective values, else the
            // client gets a machine-readable conflict.
            let current = self.overrides.get(tenant).copied().unwrap_or_default();
            for (key, _) in options {
                let agrees = match *key {
                    "lateness" => {
                        let effective = current
                            .lateness_secs
                            .unwrap_or_else(|| self.config.stream.lateness.as_secs());
                        requested.lateness_secs == Some(effective)
                    }
                    "quarantine-keep" => {
                        let effective = current
                            .quarantine_keep
                            .unwrap_or(self.config.stream.quarantine_keep);
                        requested.quarantine_keep == Some(effective)
                    }
                    _ => true,
                };
                if !agrees {
                    return format!(
                        "ERR code={} tenant={tenant} key={}",
                        codes::CONFIG_CONFLICT,
                        proto::sanitize(key)
                    );
                }
            }
        } else if !options.is_empty() {
            self.overrides.insert(tenant.to_string(), requested);
        }
        let t = self.tenant_entry(tenant);
        format!("OK tenant={} accepted={}", t.name, cursor(&t.accepted()))
    }

    fn handle_drop(&mut self, tenant: &str) -> String {
        if let Some(t) = self.tenants.remove(tenant) {
            self.fleet_cost = self.fleet_cost.saturating_sub(t.cost());
        }
        self.evicted.remove(tenant);
        self.overrides.remove(tenant);
        let tombstones = match self.store.as_mut() {
            Some(store) => store.drop_tenant(tenant),
            None => 0,
        };
        self.stats.dropped += 1;
        format!("OK tenant={tenant} tombstones={tombstones}")
    }

    fn handle_push(&mut self, tenant: &str, source: Source, index: u64, line: &str) -> String {
        let fleet_cost = self.fleet_cost;
        let budget = self.config.budget;
        let draining = self.draining;
        let overloaded = self.config.overload.overloaded(self.pressure_ms);
        // A shed push of a tenant this core has never seen must not
        // materialize it — a drained or overloaded daemon does not grow
        // its fleet for work it is refusing.
        if (draining || overloaded) && !self.is_known(tenant) {
            return self.shed_hint(draining);
        }
        // Materialize the tenant first so a brand-new tenant's first push
        // sees itself in the fair-share denominator.
        self.tenant_entry(tenant);
        let active = self.tenants.len();

        enum Outcome {
            Dup,
            Gap(u64),
            Shed { msg: String, quota: bool },
            Hint,
            Accepted,
        }
        let outcome = {
            let Some(t) = self.tenants.get_mut(tenant) else {
                return unknown_tenant(tenant);
            };
            // Duplicates are resolved before admission: replays of
            // already-accepted lines must succeed even under shedding —
            // and even while draining, so recovering clients can settle.
            let expected = t.accepted()[source.index()];
            if index < expected {
                t.dups += 1;
                Outcome::Dup
            } else if index > expected {
                t.gaps += 1;
                Outcome::Gap(expected)
            } else if draining || overloaded {
                Outcome::Hint
            } else {
                let admission =
                    Admission::decide(&budget, t.cost(), fleet_cost, active, line.len());
                match admission.rejection(tenant) {
                    Some(msg) => {
                        let quota = matches!(admission, Admission::OverQuota { .. });
                        if quota {
                            t.shed_quota += 1;
                        } else {
                            t.shed_budget += 1;
                        }
                        Outcome::Shed { msg, quota }
                    }
                    None => match t.offer(source, index, line) {
                        Offer::Accepted => Outcome::Accepted,
                        // Unreachable — the cursor was checked above — but
                        // the protocol answer stays correct if the
                        // invariant ever moves.
                        Offer::Duplicate => Outcome::Dup,
                        Offer::Gap { expected } => Outcome::Gap(expected),
                    },
                }
            }
        };
        match outcome {
            Outcome::Dup => {
                self.stats.dups += 1;
                "OK dup".to_string()
            }
            Outcome::Gap(expected) => {
                self.stats.gaps += 1;
                format!(
                    "ERR code={} tenant={tenant} source={} expected={expected}",
                    codes::GAP,
                    source.name()
                )
            }
            Outcome::Shed { msg, quota } => {
                if quota {
                    self.stats.shed_quota += 1;
                } else {
                    self.stats.shed_budget += 1;
                }
                msg
            }
            Outcome::Hint => self.shed_hint(draining),
            Outcome::Accepted => {
                self.fleet_cost += line.len();
                self.stats.accepted += 1;
                self.unpumped += 1;
                if self.unpumped >= PUMP_EVERY {
                    self.pump();
                }
                "OK".to_string()
            }
        }
    }

    /// The retry-hint rejection for a push shed by drain mode (which
    /// wins: the daemon is leaving, pressure is moot) or overload.
    fn shed_hint(&mut self, draining: bool) -> String {
        self.retry_salt = self.retry_salt.wrapping_add(1);
        if draining {
            self.stats.shed_draining += 1;
            let ms = self.config.overload.drain_retry_ms(self.retry_salt);
            format!("ERR code={} retry-ms={ms}", codes::DRAINING)
        } else {
            self.stats.shed_overload += 1;
            let ms = self
                .config
                .overload
                .overload_retry_ms(self.pressure_ms, self.retry_salt);
            format!("ERR code={} retry-ms={ms}", codes::OVERLOAD)
        }
    }

    fn handle_snapshot(&mut self, tenant: Option<&str>) -> String {
        let quota = self.config.budget.quota_bytes;
        match tenant {
            Some(name) => {
                if !self.is_known(name) {
                    return unknown_tenant(name);
                }
                self.tenant_entry(name);
                self.pump();
                match self.tenants.get_mut(name) {
                    Some(t) => {
                        let json = tenant_snapshot_json(t, quota);
                        format!("OK {json}")
                    }
                    None => unknown_tenant(name),
                }
            }
            None => {
                self.pump();
                let fleet = FleetSnapshot {
                    tenants: self.tenants.len(),
                    evicted: self.evicted.len(),
                    queued: self.tenants.values().map(Tenant::queued).sum(),
                    cost: self.fleet_cost,
                    global: self.config.budget.global_bytes,
                    durability: self.durability().label(),
                    store: self.store_snapshot(),
                    stats: self.stats.clone(),
                };
                match serde_json::to_string(&fleet) {
                    Ok(json) => format!("OK {json}"),
                    Err(e) => format!("ERR code={} detail={e}", codes::SERIALIZE),
                }
            }
        }
    }

    fn handle_checkpoint(&mut self, tenant: Option<&str>) -> String {
        if self.store.is_none() {
            return format!("ERR code={}", codes::NO_CHECKPOINT_DIR);
        }
        match tenant {
            Some(name) => {
                if !self.is_known(name) {
                    return unknown_tenant(name);
                }
                self.tenant_entry(name);
                self.pump();
                let ckpt = match self.tenants.get_mut(name) {
                    Some(t) => t.checkpoint(),
                    None => return unknown_tenant(name),
                };
                let Some(store) = self.store.as_mut() else {
                    return format!("ERR code={}", codes::NO_CHECKPOINT_DIR);
                };
                let written = store.write_tenant(name, &ckpt);
                let total = store.replica_count();
                let durability = store.durability().label();
                if written == 0 {
                    format!(
                        "ERR code={} tenant={name} detail=no-replica-writable",
                        codes::IO
                    )
                } else {
                    format!("OK replicas={written}/{total} durability={durability}")
                }
            }
            None => {
                self.pump();
                let n = self.checkpoint_all();
                format!("OK tenants={n} durability={}", self.durability().label())
            }
        }
    }

    /// Applies every queued line across the fleet, sharded over the
    /// work-stealing executor, then refreshes the budget charge, runs the
    /// auto-checkpoint cadence, and evicts long-idle tenants. One call is
    /// one "sweep" — the store's logical clock for replica backoff.
    pub fn pump(&mut self) {
        self.unpumped = 0;
        if self.draining {
            self.drained_sweeps += 1;
        }
        if let Some(store) = self.store.as_mut() {
            store.begin_sweep();
        }
        let shards = self.config.shards.max(1);
        let work: Vec<&mut Tenant> = self
            .tenants
            .values_mut()
            .filter(|t| t.has_pending())
            .collect();
        if !work.is_empty() {
            let applied: usize = exec::par_map(shards, work, |t| t.pump()).into_iter().sum();
            self.stats.applied += applied as u64;
            self.since_checkpoint += applied as u64;
        }
        self.fleet_cost = self.tenants.values().map(Tenant::cost).sum();
        if self.config.checkpoint_every > 0
            && self.since_checkpoint >= self.config.checkpoint_every
            && self.store.is_some()
        {
            self.checkpoint_all();
        }
        self.evict_idle();
    }

    /// Ages idle tenants and evicts the ones past `evict_after`: each is
    /// checkpointed to the store and removed from memory (resurrectable
    /// on the next reference). A tenant whose checkpoint lands on zero
    /// replicas is kept hot — losing memory *and* durability at once is
    /// the one trade this daemon refuses.
    fn evict_idle(&mut self) {
        if self.config.evict_after == 0 || self.store.is_none() {
            return;
        }
        let mut victims = Vec::new();
        for (name, t) in self.tenants.iter_mut() {
            if t.has_pending() {
                t.idle_pumps = 0;
                continue;
            }
            t.idle_pumps += 1;
            if t.idle_pumps > self.config.evict_after {
                victims.push(name.clone());
            }
        }
        for name in victims {
            let Some(mut tenant) = self.tenants.remove(&name) else {
                continue;
            };
            let cost = tenant.cost();
            let ckpt = tenant.checkpoint();
            let written = match self.store.as_mut() {
                Some(store) => store.write_tenant(&name, &ckpt),
                None => 0,
            };
            if written == 0 {
                self.tenants.insert(name, tenant);
                continue;
            }
            self.fleet_cost = self.fleet_cost.saturating_sub(cost);
            self.evicted.insert(name);
            self.stats.evicted += 1;
        }
    }

    /// Checkpoints every hot tenant to all writable replicas (draining
    /// queues first). Returns how many tenants were persisted to at
    /// least one replica; a sweep in which any tenant landed on zero
    /// replicas counts one `checkpoint_errors`. Never blocks or fails
    /// outright — replica trouble degrades durability instead.
    pub fn checkpoint_all(&mut self) -> usize {
        if self.store.is_none() {
            return 0;
        }
        // Drain queues outside the auto-cadence to avoid recursion.
        let shards = self.config.shards.max(1);
        let work: Vec<&mut Tenant> = self
            .tenants
            .values_mut()
            .filter(|t| t.has_pending())
            .collect();
        if !work.is_empty() {
            let applied: usize = exec::par_map(shards, work, |t| t.pump()).into_iter().sum();
            self.stats.applied += applied as u64;
        }
        self.fleet_cost = self.tenants.values().map(Tenant::cost).sum();
        let Some(store) = self.store.as_mut() else {
            return 0;
        };
        let mut persisted = 0;
        let mut failed = false;
        for (name, tenant) in self.tenants.iter_mut() {
            let ckpt = tenant.checkpoint();
            if store.write_tenant(name, &ckpt) > 0 {
                persisted += 1;
            } else {
                failed = true;
            }
        }
        if failed {
            self.stats.checkpoint_errors += 1;
        }
        self.since_checkpoint = 0;
        persisted
    }

    /// Removes a tenant and produces its final batch-equivalent analysis
    /// (test/tooling hook; the wire protocol exposes `REPORT` instead).
    /// Resurrects the tenant first if it was evicted.
    pub fn drain_tenant(&mut self, name: &str) -> Option<Analysis> {
        if self.evicted.contains(name) {
            self.tenant_entry(name);
        }
        let tenant = self.tenants.remove(name)?;
        self.fleet_cost = self.fleet_cost.saturating_sub(tenant.cost());
        Some(tenant.drain())
    }

    /// Returns the hot tenant for `name`, creating or resurrecting it as
    /// needed, and marks it touched (idle counter reset).
    fn tenant_entry(&mut self, name: &str) -> &mut Tenant {
        if !self.tenants.contains_key(name) {
            let tenant = self.restore_or_create(name);
            self.fleet_cost += tenant.cost();
            self.tenants.insert(name.to_string(), tenant);
        }
        let stream = self.config.stream.clone();
        let t = self
            .tenants
            .entry(name.to_string())
            .or_insert_with(|| Tenant::new(name.to_string(), stream)); // unreachable: inserted above
        t.idle_pumps = 0;
        t
    }

    /// Builds the tenant that should answer for `name`: resurrected from
    /// the store if it was evicted (falling back to fresh, with a
    /// warning, if every replica copy is gone or corrupt), or fresh —
    /// clearing any tombstone left by an earlier `DROP`.
    fn restore_or_create(&mut self, name: &str) -> Tenant {
        let was_evicted = self.evicted.remove(name);
        if let Some(store) = self.store.as_mut() {
            if was_evicted {
                if let Some(ckpt) = store.read_newest(name, &mut self.warnings) {
                    let stream = stream_for(&self.config, &self.overrides, name, Some(&ckpt));
                    match Tenant::resume(name.to_string(), stream, &ckpt) {
                        Ok(t) => {
                            self.stats.resurrected += 1;
                            return t;
                        }
                        Err(e) => self.warnings.push(format!(
                            "tenant {name}: resurrect failed: {e}; starting fresh"
                        )),
                    }
                } else {
                    self.warnings.push(format!(
                        "tenant {name}: no valid checkpoint to resurrect; starting fresh"
                    ));
                }
            } else if store.tombstoned(name) {
                store.clear_tombstone(name);
            }
        }
        let stream = stream_for(&self.config, &self.overrides, name, None);
        Tenant::new(name.to_string(), stream)
    }
}

fn unknown_tenant(name: &str) -> String {
    format!("ERR code={} tenant={name}", codes::UNKNOWN_TENANT)
}

fn cursor(counts: &[u64; 5]) -> String {
    format!(
        "{},{},{},{},{}",
        counts[0], counts[1], counts[2], counts[3], counts[4]
    )
}

/// Per-tenant `SNAPSHOT` payload.
#[derive(Debug, Serialize)]
struct TenantSnapshot {
    tenant: String,
    accepted: [u64; 5],
    applied: [u64; 5],
    queued: usize,
    cost: usize,
    quota: usize,
    shed_quota: u64,
    shed_budget: u64,
    dups: u64,
    gaps: u64,
    watermark: Option<Timestamp>,
    buffered_entries: usize,
    open_events: usize,
    closed_events: usize,
    lethal_events: u64,
    open_runs: usize,
    classified_runs: usize,
    late_dropped: u64,
    spill_dropped: u64,
    health: [&'static str; 5],
    metrics: logdiver::metrics::MetricSet,
}

/// Fleet-aggregate `SNAPSHOT` payload.
#[derive(Debug, Serialize)]
struct FleetSnapshot {
    tenants: usize,
    evicted: usize,
    queued: usize,
    cost: usize,
    global: usize,
    durability: &'static str,
    store: Option<StoreSnapshot>,
    stats: ServeStats,
}

fn tenant_snapshot_json(t: &mut Tenant, quota: usize) -> String {
    let snap = t.snapshot();
    let mut health = [""; 5];
    for (slot, report) in health.iter_mut().zip(snap.health.iter()) {
        *slot = report.state.label();
    }
    let dto = TenantSnapshot {
        tenant: t.name.clone(),
        accepted: t.accepted(),
        applied: t.applied(),
        queued: t.queued(),
        cost: t.cost(),
        quota,
        shed_quota: t.shed_quota,
        shed_budget: t.shed_budget,
        dups: t.dups,
        gaps: t.gaps,
        watermark: snap.watermark,
        buffered_entries: snap.buffered_entries,
        open_events: snap.open_events,
        closed_events: snap.closed_events,
        lethal_events: snap.lethal_events,
        open_runs: snap.open_runs,
        classified_runs: snap.classified_runs,
        late_dropped: snap.late_dropped,
        spill_dropped: snap.spill_dropped,
        health,
        metrics: snap.metrics,
    };
    match serde_json::to_string(&dto) {
        Ok(json) => json,
        Err(e) => format!("{{\"error\":\"{e}\"}}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bw_faults::{ChaosFs, ChaosFsConfig};
    use logdiver::{LogCollection, LogDiver};

    fn scenario() -> LogCollection {
        let mut logs = LogCollection::new();
        logs.torque.extend([
            "2013-03-28 10:00:00;S;1.bw;user=u0001 queue=normal nodes=4 walltime=86400".to_string(),
        ]);
        logs.alps.extend([
            "2013-03-28 10:00:05 apsys PLACED apid=100 batch=1.bw user=u0001 cmd=namd2 type=XE width=4 nodelist=nid[0-3]".to_string(),
            "2013-03-28 12:00:05 apsys EXIT apid=100 code=137 signal=9 node_failed=yes runtime=7200".to_string(),
        ]);
        logs.syslog.extend([
            "2013-03-28 12:00:00 nid00002 kernel: Machine Check Exception: bank 4 status 0xb200"
                .to_string(),
            "2013-03-28 12:00:31 smw xtnmd: node heartbeat fault: no response in 60s, declaring node dead"
                .to_string(),
        ]);
        logs.hwerr.extend([
            "2013-03-28 12:00:01|c0-0c0s0n2|MCE|CRIT|bank=4".to_string(),
            "2013-03-28 12:00:31|c0-0c0s0n2|NODE_DEAD|FATAL|".to_string(),
        ]);
        logs
    }

    fn push_lines(core: &mut ServeCore, tenant: &str, logs: &LogCollection) {
        for (source, lines) in [
            (Source::Syslog, &logs.syslog),
            (Source::HwErr, &logs.hwerr),
            (Source::Alps, &logs.alps),
            (Source::Torque, &logs.torque),
            (Source::Netwatch, &logs.netwatch),
        ] {
            for (i, line) in lines.iter().enumerate() {
                let resp = core.handle_line(&format!("PUSH {tenant} {} {i} {line}", source.name()));
                assert_eq!(resp, "OK", "push rejected: {resp}");
            }
        }
    }

    fn replicated_config(dirs: &[PathBuf]) -> ServeConfig {
        ServeConfig {
            tenants_dirs: dirs.to_vec(),
            ..ServeConfig::default()
        }
    }

    fn chaos_dirs(n: usize) -> Vec<PathBuf> {
        (0..n).map(|i| PathBuf::from(format!("/r{i}"))).collect()
    }

    #[test]
    fn two_tenants_drain_to_their_own_batch_analyses() {
        let logs = scenario();
        let batch = LogDiver::new().analyze(&logs);
        let mut core = ServeCore::new(ServeConfig::default()).unwrap();
        push_lines(&mut core, "alpha", &logs);
        push_lines(&mut core, "beta", &logs);
        // An unrelated third tenant with no lines must not interfere.
        assert!(core
            .handle_line("HELLO gamma")
            .starts_with("OK tenant=gamma"));
        for name in ["alpha", "beta"] {
            let analysis = core.drain_tenant(name).unwrap();
            assert_eq!(analysis.runs, batch.runs, "{name}");
            assert_eq!(analysis.events, batch.events, "{name}");
            assert_eq!(analysis.metrics, batch.metrics, "{name}");
        }
        assert!(core.drain_tenant("alpha").is_none(), "already drained");
    }

    #[test]
    fn feed_reassembles_partial_lines() {
        let mut core = ServeCore::new(ServeConfig::default()).unwrap();
        let conn = core.open_conn();
        assert!(core.feed(conn, b"HELLO al").is_empty(), "no newline yet");
        let responses = core.feed(conn, b"pha\nHELLO beta\nHELLO ga");
        assert_eq!(responses.len(), 2);
        assert!(responses[0].starts_with("OK tenant=alpha"));
        assert!(responses[1].starts_with("OK tenant=beta"));
        // Dropping the connection discards the incomplete "HELLO ga".
        core.close_conn(conn);
        assert_eq!(core.tenant_names(), vec!["alpha", "beta"]);
    }

    #[test]
    fn push_is_idempotent_over_the_wire() {
        let mut core = ServeCore::new(ServeConfig::default()).unwrap();
        let line = "PUSH bw syslog 0 2013-03-28 12:00:00 nid00002 kernel: Machine Check Exception";
        assert_eq!(core.handle_line(line), "OK");
        assert_eq!(core.handle_line(line), "OK dup");
        assert_eq!(
            core.handle_line("PUSH bw syslog 5 whatever"),
            "ERR code=gap tenant=bw source=syslog expected=1"
        );
    }

    #[test]
    fn snapshot_and_flush_report_cursors() {
        let logs = scenario();
        let mut core = ServeCore::new(ServeConfig::default()).unwrap();
        push_lines(&mut core, "bw", &logs);
        let flush = core.handle_line("FLUSH bw");
        assert_eq!(flush, "OK applied=2,2,2,1,0");
        let field = |v: &serde_json::Value, key: &str| {
            v.as_object()
                .unwrap()
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        let snap = core.handle_line("SNAPSHOT bw");
        let json = serde_json::parse(snap.strip_prefix("OK ").unwrap()).unwrap();
        assert_eq!(field(&json, "tenant").as_str(), Some("bw"));
        assert_eq!(field(&json, "queued").as_u64(), Some(0));
        // Sources are still open, so the run awaits the watermark: it is
        // open (or classified if the watermark passed), never lost.
        let open = field(&json, "open_runs").as_u64().unwrap_or(0);
        let classified = field(&json, "classified_runs").as_u64().unwrap_or(0);
        assert_eq!(open + classified, 1, "the PLACED/EXIT run is tracked");
        let fleet = core.handle_line("SNAPSHOT");
        let json = serde_json::parse(fleet.strip_prefix("OK ").unwrap()).unwrap();
        assert_eq!(field(&json, "tenants").as_u64(), Some(1));
        assert_eq!(field(&json, "durability").as_str(), Some("none"));
        assert_eq!(
            core.handle_line("SNAPSHOT nope"),
            "ERR code=unknown-tenant tenant=nope"
        );
    }

    #[test]
    fn report_frames_the_batch_report() {
        let logs = scenario();
        let batch = LogDiver::new().analyze(&logs);
        let expected = logdiver::report::full_report(&batch.metrics, &batch.stats);
        let mut core = ServeCore::new(ServeConfig::default()).unwrap();
        push_lines(&mut core, "bw", &logs);
        let resp = core.handle_line("REPORT bw");
        let (header, body) = resp.split_once('\n').unwrap();
        let n: usize = header
            .strip_prefix("OK lines=")
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(header.contains("durability=none"), "{header}");
        assert!(header.contains("corrupt-preserved=0"), "{header}");
        assert_eq!(body.lines().count(), n);
        assert_eq!(body, expected.trim_end_matches('\n'));
    }

    #[test]
    fn checkpoint_resume_round_trips_every_tenant() {
        let dir = std::env::temp_dir().join(format!("logdiver-serve-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let logs = scenario();
        let batch = LogDiver::new().analyze(&logs);
        let config = replicated_config(std::slice::from_ref(&dir));
        let mut core = ServeCore::new(config.clone()).unwrap();
        push_lines(&mut core, "alpha", &logs);
        push_lines(&mut core, "beta", &logs);
        assert_eq!(
            core.handle_line("CHECKPOINT"),
            "OK tenants=2 durability=full"
        );
        drop(core);

        let mut resumed = ServeCore::new(config).unwrap();
        assert!(resumed.warnings().is_empty());
        assert_eq!(resumed.tenant_names(), vec!["alpha", "beta"]);
        let hello = resumed.handle_line("HELLO alpha");
        assert_eq!(hello, "OK tenant=alpha accepted=2,2,2,1,0");
        for name in ["alpha", "beta"] {
            let analysis = resumed.drain_tenant(name).unwrap();
            assert_eq!(analysis.runs, batch.runs, "{name}");
            assert_eq!(analysis.events, batch.events, "{name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_uses_newest_valid_replica_and_preserves_corrupt_copies() {
        let fs = ChaosFs::clean();
        let dirs = chaos_dirs(2);
        let logs = scenario();
        let config = replicated_config(&dirs);
        let mut core = ServeCore::with_fs(config.clone(), Arc::new(fs.clone())).unwrap();
        push_lines(&mut core, "bw", &logs);
        assert_eq!(
            core.handle_line("CHECKPOINT"),
            "OK tenants=1 durability=full"
        );
        drop(core);
        // Rot the copy on replica 0; replica 1 stays valid.
        assert!(fs.corrupt(&dirs[0].join("bw.ckpt")));

        let mut resumed = ServeCore::with_fs(config, Arc::new(fs.clone())).unwrap();
        assert_eq!(resumed.tenant_names(), vec!["bw"]);
        assert_eq!(resumed.warnings().len(), 1, "{:?}", resumed.warnings());
        assert_eq!(
            resumed.handle_line("HELLO bw"),
            "OK tenant=bw accepted=2,2,2,1,0"
        );
        // The corrupt copy was moved aside, not destroyed, and REPORT
        // counts it.
        assert!(fs.contents(&dirs[0].join("bw.ckpt.corrupt-0")).is_some());
        let report = resumed.handle_line("REPORT bw");
        let header = report.lines().next().unwrap();
        assert!(header.contains("corrupt-preserved=1"), "{header}");
    }

    #[test]
    fn dead_replica_degrades_durability_without_stopping_ingestion() {
        let fs = ChaosFs::clean();
        let dirs = chaos_dirs(2);
        let logs = scenario();
        let mut core = ServeCore::with_fs(replicated_config(&dirs), Arc::new(fs.clone())).unwrap();
        fs.set_down(&dirs[1], true);
        push_lines(&mut core, "bw", &logs);
        let resp = core.handle_line("CHECKPOINT");
        assert_eq!(resp, "OK tenants=1 durability=degraded", "{resp}");
        // Pushes keep landing while one replica is dark.
        assert_eq!(
            core.handle_line("PUSH bw netwatch 0 2013-03-28 12:01:00 link c0-0c0s0n2 degraded"),
            "OK"
        );
        let fleet = core.handle_line("SNAPSHOT");
        assert!(fleet.contains("\"durability\":\"degraded\""), "{fleet}");
        // Survivor still holds a restorable checkpoint.
        drop(core);
        let resumed = ServeCore::with_fs(replicated_config(&dirs), Arc::new(fs.clone())).unwrap();
        assert_eq!(resumed.tenant_names(), vec!["bw"]);
    }

    #[test]
    fn idle_tenant_evicts_and_resurrects_transparently() {
        let fs = ChaosFs::clean();
        let dirs = chaos_dirs(2);
        let logs = scenario();
        let config = ServeConfig {
            evict_after: 2,
            ..replicated_config(&dirs)
        };
        let mut core = ServeCore::with_fs(config, Arc::new(fs.clone())).unwrap();
        push_lines(&mut core, "bw", &logs);
        for _ in 0..4 {
            core.pump();
        }
        assert_eq!(core.tenant_names(), Vec::<String>::new(), "evicted");
        assert_eq!(core.evicted_names(), vec!["bw"]);
        assert_eq!(core.stats().evicted, 1);
        // The next push resurrects it with its cursors intact.
        assert_eq!(
            core.handle_line("PUSH bw netwatch 0 2013-03-28 12:01:00 link c0-0c0s0n2 degraded"),
            "OK"
        );
        assert_eq!(core.stats().resurrected, 1);
        assert_eq!(
            core.handle_line("HELLO bw"),
            "OK tenant=bw accepted=2,2,2,1,1"
        );
        let analysis = core.drain_tenant("bw").unwrap();
        let mut full = scenario();
        full.netwatch
            .push("2013-03-28 12:01:00 link c0-0c0s0n2 degraded".to_string());
        let batch = LogDiver::new().analyze(&full);
        assert_eq!(analysis.runs, batch.runs);
        assert_eq!(analysis.events, batch.events);
    }

    #[test]
    fn drop_tombstones_across_restart_until_recreated() {
        let fs = ChaosFs::clean();
        let dirs = chaos_dirs(2);
        let logs = scenario();
        let config = replicated_config(&dirs);
        let mut core = ServeCore::with_fs(config.clone(), Arc::new(fs.clone())).unwrap();
        push_lines(&mut core, "bw", &logs);
        push_lines(&mut core, "keep", &logs);
        assert_eq!(
            core.handle_line("CHECKPOINT"),
            "OK tenants=2 durability=full"
        );
        assert_eq!(core.handle_line("DROP bw"), "OK tenant=bw tombstones=2");
        assert_eq!(core.tenant_names(), vec!["keep"]);
        assert_eq!(core.stats().dropped, 1);
        drop(core);
        // Restart: the tombstone keeps bw dead, keep survives.
        let mut resumed = ServeCore::with_fs(config, Arc::new(fs.clone())).unwrap();
        assert_eq!(resumed.tenant_names(), vec!["keep"]);
        // Re-creating bw clears the tombstone and starts from scratch.
        assert_eq!(
            resumed.handle_line("HELLO bw"),
            "OK tenant=bw accepted=0,0,0,0,0"
        );
    }

    #[test]
    fn hello_options_set_overrides_and_conflicts_are_rejected() {
        let mut core = ServeCore::new(ServeConfig::default()).unwrap();
        assert!(core
            .handle_line("HELLO tuned lateness=120 quarantine-keep=8")
            .starts_with("OK tenant=tuned"));
        // Reconnecting with the same options is idempotent.
        assert!(core
            .handle_line("HELLO tuned lateness=120")
            .starts_with("OK tenant=tuned"));
        // A different value for a live tenant is a conflict.
        assert_eq!(
            core.handle_line("HELLO tuned lateness=999"),
            "ERR code=config-conflict tenant=tuned key=lateness"
        );
        // Unknown keys and bad values are machine-readable errors, and
        // reject before creating the tenant.
        assert_eq!(
            core.handle_line("HELLO fresh turbo=on"),
            "ERR code=unknown-option key=turbo"
        );
        assert_eq!(
            core.handle_line("HELLO fresh lateness=-5"),
            "ERR code=bad-option key=lateness value=-5"
        );
        assert!(!core.tenant_names().contains(&"fresh".to_string()));
    }

    #[test]
    fn tenant_config_file_parses_and_rejects_bad_lines() {
        let text = "\
# fleet overrides
alpha lateness=120 quarantine-keep=4
beta quarantine-keep=16   # trailing comment
";
        let overrides = parse_tenant_config(text).unwrap();
        assert_eq!(
            overrides["alpha"],
            TenantOverrides {
                lateness_secs: Some(120),
                quarantine_keep: Some(4),
            }
        );
        assert_eq!(overrides["beta"].quarantine_keep, Some(16));
        assert!(parse_tenant_config("alpha turbo=on").is_err());
        assert!(parse_tenant_config("alpha lateness").is_err());
        assert!(parse_tenant_config(".bad lateness=1").is_err());
        assert!(parse_tenant_config("a lateness=1\na lateness=2\n")
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    fn chaos_fs_checkpoints_degrade_but_never_stall() {
        // A flaky (not dead) filesystem: writes fail sometimes, yet every
        // CHECKPOINT returns and ingestion continues.
        let fs = ChaosFs::new(23, ChaosFsConfig::default());
        let dirs = chaos_dirs(3);
        let logs = scenario();
        let mut core = ServeCore::with_fs(replicated_config(&dirs), Arc::new(fs.clone())).unwrap();
        push_lines(&mut core, "bw", &logs);
        for _ in 0..20 {
            let resp = core.handle_line("CHECKPOINT");
            assert!(
                resp.starts_with("OK tenants=") || resp.starts_with("ERR code=io"),
                "{resp}"
            );
        }
        assert_eq!(core.handle_line("FLUSH bw"), "OK applied=2,2,2,1,0");
    }

    #[test]
    fn quota_rejections_are_machine_readable() {
        let config = ServeConfig {
            budget: BudgetPolicy {
                global_bytes: 10_000,
                quota_bytes: 64,
            },
            ..ServeConfig::default()
        };
        let mut core = ServeCore::new(config).unwrap();
        let long = "x".repeat(100);
        let resp = core.handle_line(&format!("PUSH bw syslog 0 {long}"));
        assert!(resp.starts_with("ERR code=over-quota tenant=bw "), "{resp}");
        assert_eq!(core.stats().shed_quota, 1);
        // The cursor did not advance: the same index is retried, not lost.
        assert_eq!(core.handle_line("PUSH bw syslog 0 short"), "OK");
    }

    #[test]
    fn checkpoint_without_dir_errors() {
        let mut core = ServeCore::new(ServeConfig::default()).unwrap();
        assert_eq!(core.handle_line("CHECKPOINT"), "ERR code=no-checkpoint-dir");
    }

    fn retry_ms_of(resp: &str) -> u64 {
        resp.split(' ')
            .find_map(|tok| tok.strip_prefix("retry-ms="))
            .unwrap_or_else(|| panic!("no retry-ms in {resp}"))
            .parse()
            .unwrap()
    }

    #[test]
    fn drain_flushes_checkpoints_and_sheds_with_hints() {
        let fs = ChaosFs::clean();
        let dirs = chaos_dirs(2);
        let logs = scenario();
        let config = replicated_config(&dirs);
        let mut core = ServeCore::with_fs(config.clone(), Arc::new(fs.clone())).unwrap();
        push_lines(&mut core, "bw", &logs);

        let resp = core.handle_line("DRAIN");
        assert_eq!(resp, "OK draining tenants=1 durability=full");
        assert!(core.draining());
        assert!(!core.should_exit(), "grace sweeps first");

        // New work is refused with a machine-readable retry hint…
        let shed = core.handle_line("PUSH bw netwatch 0 2013-03-28 12:01:00 link up");
        assert!(shed.starts_with("ERR code=draining retry-ms="), "{shed}");
        let ms = retry_ms_of(&shed);
        assert!((250..=500).contains(&ms), "{ms}");
        // …and so is a push for a tenant the core has never seen, without
        // materializing it.
        let other = core.handle_line("PUSH newguy syslog 0 x");
        assert!(other.starts_with("ERR code=draining"), "{other}");
        assert!(!core.tenant_names().contains(&"newguy".to_string()));
        // Replayed duplicates still settle.
        assert_eq!(
            core.handle_line("PUSH bw torque 0 2013-03-28 10:00:00;S;1.bw;user=u0001 queue=normal nodes=4 walltime=86400"),
            "OK dup"
        );
        assert_eq!(core.stats().shed_draining, 2);

        // A second DRAIN is idempotent.
        assert_eq!(
            core.handle_line("DRAIN"),
            "OK draining tenants=1 durability=full"
        );
        // After the grace sweeps the shell may exit…
        core.pump();
        core.pump();
        assert!(core.should_exit());
        // …and the checkpoint is restartable with nothing lost.
        drop(core);
        let resumed = ServeCore::with_fs(config, Arc::new(fs.clone())).unwrap();
        assert_eq!(resumed.tenant_names(), vec!["bw"]);
    }

    #[test]
    fn overload_sheds_with_pressure_shaped_hints_until_pressure_drops() {
        let mut core = ServeCore::new(ServeConfig::default()).unwrap();
        assert_eq!(core.handle_line("PUSH bw syslog 0 line zero"), "OK");
        core.set_pressure(2_000);
        let shed = core.handle_line("PUSH bw syslog 1 line one");
        assert!(shed.starts_with("ERR code=overload retry-ms="), "{shed}");
        let ms = retry_ms_of(&shed);
        assert!((1_000..=2_000).contains(&ms), "{ms}");
        // Hints are jittered per rejection, not one constant.
        let hints: std::collections::BTreeSet<u64> = (0..50)
            .map(|_| retry_ms_of(&core.handle_line("PUSH bw syslog 1 line one")))
            .collect();
        assert!(hints.len() > 5, "hints did not spread: {hints:?}");
        // Replays of accepted work still answer OK dup under overload.
        assert_eq!(core.handle_line("PUSH bw syslog 0 line zero"), "OK dup");
        // The cursor never advanced, so nothing was lost…
        core.set_pressure(0);
        assert_eq!(core.handle_line("PUSH bw syslog 1 line one"), "OK");
        assert!(core.stats().shed_overload >= 51);
        assert_eq!(core.stats().accepted, 2);
    }

    #[test]
    fn oversized_lines_are_rejected_without_disconnecting() {
        let config = ServeConfig {
            max_line_bytes: 64,
            ..ServeConfig::default()
        };
        let mut core = ServeCore::new(config).unwrap();
        let conn = core.open_conn();
        // A single complete over-long line.
        let long = format!("PUSH bw syslog 0 {}\n", "x".repeat(200));
        let responses = core.feed(conn, long.as_bytes());
        assert_eq!(responses, vec!["ERR code=line-too-long limit=64"]);
        // Dribbled in fragments, the buffer stays bounded and the answer
        // arrives when the line finally terminates.
        for _ in 0..50 {
            assert!(core.feed(conn, b"yyyyyyyyyy").is_empty());
            assert!(core.pending_fragment(conn) <= 64);
        }
        let responses = core.feed(conn, b"\nHELLO bw\n");
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0], "ERR code=line-too-long limit=64");
        assert!(responses[1].starts_with("OK tenant=bw"), "{}", responses[1]);
        assert_eq!(core.stats().line_too_long, 2);
    }

    #[test]
    fn invalid_utf8_lines_answer_bad_utf8_and_keep_the_connection() {
        let mut core = ServeCore::new(ServeConfig::default()).unwrap();
        let conn = core.open_conn();
        let mut bytes = b"PUSH bw syslog 0 ".to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe, 0x80]);
        bytes.extend_from_slice(b"\nHELLO bw\n");
        let responses = core.feed(conn, &bytes);
        assert_eq!(responses[0], "ERR code=bad-utf8");
        assert!(responses[1].starts_with("OK tenant=bw"));
        assert_eq!(core.stats().bad_utf8, 1);
        // The rejected push did not advance the cursor.
        assert_eq!(core.handle_line("PUSH bw syslog 0 clean line"), "OK");
    }
}
