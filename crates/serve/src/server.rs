//! [`ServeCore`]: the daemon's deterministic heart.
//!
//! The core is socket-free and wall-clock-free: connections are opaque
//! ids, input arrives as byte chunks via [`ServeCore::feed`], and every
//! complete protocol line yields exactly one response string. The TCP
//! daemon ([`crate::daemon`]) is a thin shell that moves bytes between
//! sockets and this struct — which is what lets the equivalence and
//! crash/resume proptests drive the whole server in-process, byte
//! transcripts in, analyses out, with no timing dependence.
//!
//! Tenants are pumped in batches across the batch pipeline's
//! work-stealing executor ([`logdiver::exec::par_map`]): the protocol
//! path only validates and enqueues, and every `PUMP_EVERY` accepted
//! lines (or on any control verb) the queued work for *all* tenants is
//! sharded across `shards` workers. Five hundred tenants cost five
//! hundred engines but only `shards` threads.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};

use logdiver::exec;
use logdiver::pipeline::Analysis;
use logdiver_stream::{Source, StreamCheckpoint, StreamConfig};
use logdiver_types::Timestamp;
use serde::Serialize;

use crate::budget::{Admission, BudgetPolicy};
use crate::proto::{self, Request};
use crate::tenant::{Offer, Tenant};

/// How many accepted pushes may queue fleet-wide before the core pumps
/// every tenant. Control verbs (`FLUSH`/`SNAPSHOT`/`CHECKPOINT`/`REPORT`)
/// always pump first, so this only bounds staleness and queue memory on
/// a pure push workload.
const PUMP_EVERY: u64 = 1024;

/// Daemon-level configuration (the flag surface of `logdiver serve`).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Where tenant checkpoints live (`<dir>/<tenant>.ckpt`); `None`
    /// disables persistence (and `CHECKPOINT` returns an error).
    pub tenants_dir: Option<PathBuf>,
    /// Global/per-tenant memory limits.
    pub budget: BudgetPolicy,
    /// Worker threads for the tenant pump (the `--shards` flag).
    pub shards: usize,
    /// Auto-checkpoint every N applied records fleet-wide (0 = only on
    /// explicit `CHECKPOINT`/shutdown).
    pub checkpoint_every: u64,
    /// Per-tenant engine configuration.
    pub stream: StreamConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tenants_dir: None,
            budget: BudgetPolicy::default(),
            shards: exec::default_threads(),
            checkpoint_every: 10_000,
            stream: StreamConfig::default(),
        }
    }
}

/// Fleet-wide counters, serialized by the aggregate `SNAPSHOT`.
#[derive(Debug, Default, Clone, Serialize)]
pub struct ServeStats {
    /// Pushes accepted (queued) in total.
    pub accepted: u64,
    /// Records applied to engines in total.
    pub applied: u64,
    /// Duplicate pushes answered `OK dup`.
    pub dups: u64,
    /// Out-of-order pushes answered `ERR code=gap`.
    pub gaps: u64,
    /// Pushes rejected over per-tenant quota.
    pub shed_quota: u64,
    /// Pushes shed over the global budget.
    pub shed_budget: u64,
    /// Auto-checkpoint sweeps that failed with an I/O error.
    pub checkpoint_errors: u64,
}

/// The multi-tenant core. See the module docs.
#[derive(Debug)]
pub struct ServeCore {
    config: ServeConfig,
    tenants: BTreeMap<String, Tenant>,
    conns: HashMap<u64, Vec<u8>>,
    next_conn: u64,
    fleet_cost: usize,
    unpumped: u64,
    since_checkpoint: u64,
    stats: ServeStats,
    shutdown: bool,
    warnings: Vec<String>,
}

impl ServeCore {
    /// Builds a core, resuming every tenant that has a checkpoint in
    /// `tenants_dir`. A missing dir is created; an unreadable or
    /// mismatched checkpoint skips that tenant and records a warning
    /// (fetchable via [`ServeCore::warnings`]) rather than refusing to
    /// start the rest of the fleet.
    pub fn new(config: ServeConfig) -> std::io::Result<Self> {
        let mut core = ServeCore {
            config,
            tenants: BTreeMap::new(),
            conns: HashMap::new(),
            next_conn: 0,
            fleet_cost: 0,
            unpumped: 0,
            since_checkpoint: 0,
            stats: ServeStats::default(),
            shutdown: false,
            warnings: Vec::new(),
        };
        if let Some(dir) = core.config.tenants_dir.clone() {
            std::fs::create_dir_all(&dir)?;
            let mut names: Vec<String> = Vec::new();
            for entry in std::fs::read_dir(&dir)? {
                let path = entry?.path();
                let (Some(stem), Some(ext)) = (path.file_stem(), path.extension()) else {
                    continue;
                };
                if ext != "ckpt" {
                    continue;
                }
                let name = stem.to_string_lossy().into_owned();
                if proto::valid_tenant_name(&name) {
                    names.push(name);
                }
            }
            names.sort();
            for name in names {
                let path = checkpoint_path(&dir, &name);
                match StreamCheckpoint::read(&path) {
                    Ok(ckpt) => {
                        match Tenant::resume(name.clone(), core.config.stream.clone(), &ckpt) {
                            Ok(tenant) => {
                                core.fleet_cost += tenant.cost();
                                core.tenants.insert(name, tenant);
                            }
                            Err(e) => core.warnings.push(format!("tenant {name}: {e}")),
                        }
                    }
                    Err(e) => core.warnings.push(format!("tenant {name}: {e}")),
                }
            }
        }
        Ok(core)
    }

    /// Problems encountered while resuming tenants at startup.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Whether a `SHUTDOWN` request has been received.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Names of the tenants currently hosted, sorted.
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.keys().cloned().collect()
    }

    /// Fleet counters so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Registers a connection and returns its id.
    pub fn open_conn(&mut self) -> u64 {
        let id = self.next_conn;
        self.next_conn += 1;
        self.conns.insert(id, Vec::new());
        id
    }

    /// Drops a connection. Any incomplete trailing line is discarded —
    /// a mid-line disconnect never half-applies a request; the client
    /// replays it (idempotently) on the next connection.
    pub fn close_conn(&mut self, conn: u64) {
        self.conns.remove(&conn);
    }

    /// Feeds raw bytes from a connection and returns one response per
    /// complete protocol line, in order. Bytes after the last newline
    /// stay buffered until the next feed.
    pub fn feed(&mut self, conn: u64, bytes: &[u8]) -> Vec<String> {
        let buf = self.conns.entry(conn).or_default();
        buf.extend_from_slice(bytes);
        let Some(last_newline) = buf.iter().rposition(|&b| b == b'\n') else {
            return Vec::new();
        };
        let complete: Vec<u8> = buf.drain(..=last_newline).collect();
        let mut lines: Vec<String> = complete
            .split(|&b| b == b'\n')
            .map(|raw| String::from_utf8_lossy(raw).into_owned())
            .collect();
        lines.pop(); // the empty tail after the final newline
        lines.iter().map(|line| self.handle_line(line)).collect()
    }

    /// Handles one complete request line.
    pub fn handle_line(&mut self, line: &str) -> String {
        let request = match proto::parse(line) {
            Ok(r) => r,
            Err(e) => return e.response(),
        };
        match request {
            Request::Hello { tenant } => {
                let t = self.tenant_entry(tenant);
                format!("OK tenant={} accepted={}", t.name, cursor(&t.accepted()))
            }
            Request::Push {
                tenant,
                source,
                index,
                line,
            } => self.handle_push(tenant, source, index, line),
            Request::Flush { tenant } => {
                if !self.tenants.contains_key(tenant) {
                    return unknown_tenant(tenant);
                }
                self.pump();
                // Pump is fleet-wide; the reply reports this tenant.
                match self.tenants.get(tenant) {
                    Some(t) => format!("OK applied={}", cursor(&t.applied())),
                    None => unknown_tenant(tenant),
                }
            }
            Request::Snapshot { tenant } => self.handle_snapshot(tenant),
            Request::Checkpoint { tenant } => self.handle_checkpoint(tenant),
            Request::Report { tenant } => {
                if !self.tenants.contains_key(tenant) {
                    return unknown_tenant(tenant);
                }
                self.pump();
                match self.tenants.get_mut(tenant) {
                    Some(t) => {
                        let analysis = t.preview();
                        let text =
                            logdiver::report::full_report(&analysis.metrics, &analysis.stats);
                        let body = text.trim_end_matches('\n');
                        let n = body.lines().count();
                        format!("OK lines={n}\n{body}")
                    }
                    None => unknown_tenant(tenant),
                }
            }
            Request::Shutdown => {
                self.shutdown = true;
                "OK shutting-down".to_string()
            }
        }
    }

    fn handle_push(&mut self, tenant: &str, source: Source, index: u64, line: &str) -> String {
        let fleet_cost = self.fleet_cost;
        let budget = self.config.budget;
        // Materialize the tenant first so a brand-new tenant's first push
        // sees itself in the fair-share denominator.
        self.tenant_entry(tenant);
        let active = self.tenants.len();

        enum Outcome {
            Dup,
            Gap(u64),
            Shed { msg: String, quota: bool },
            Accepted,
        }
        let outcome = {
            let Some(t) = self.tenants.get_mut(tenant) else {
                return unknown_tenant(tenant);
            };
            // Duplicates are resolved before admission: replays of
            // already-accepted lines must succeed even under shedding.
            let expected = t.accepted()[source.index()];
            if index < expected {
                t.dups += 1;
                Outcome::Dup
            } else if index > expected {
                t.gaps += 1;
                Outcome::Gap(expected)
            } else {
                let admission =
                    Admission::decide(&budget, t.cost(), fleet_cost, active, line.len());
                match admission.rejection(tenant) {
                    Some(msg) => {
                        let quota = matches!(admission, Admission::OverQuota { .. });
                        if quota {
                            t.shed_quota += 1;
                        } else {
                            t.shed_budget += 1;
                        }
                        Outcome::Shed { msg, quota }
                    }
                    None => match t.offer(source, index, line) {
                        Offer::Accepted => Outcome::Accepted,
                        // Unreachable — the cursor was checked above — but
                        // the protocol answer stays correct if the
                        // invariant ever moves.
                        Offer::Duplicate => Outcome::Dup,
                        Offer::Gap { expected } => Outcome::Gap(expected),
                    },
                }
            }
        };
        match outcome {
            Outcome::Dup => {
                self.stats.dups += 1;
                "OK dup".to_string()
            }
            Outcome::Gap(expected) => {
                self.stats.gaps += 1;
                format!(
                    "ERR code=gap tenant={tenant} source={} expected={expected}",
                    source.name()
                )
            }
            Outcome::Shed { msg, quota } => {
                if quota {
                    self.stats.shed_quota += 1;
                } else {
                    self.stats.shed_budget += 1;
                }
                msg
            }
            Outcome::Accepted => {
                self.fleet_cost += line.len();
                self.stats.accepted += 1;
                self.unpumped += 1;
                if self.unpumped >= PUMP_EVERY {
                    self.pump();
                }
                "OK".to_string()
            }
        }
    }

    fn handle_snapshot(&mut self, tenant: Option<&str>) -> String {
        self.pump();
        let quota = self.config.budget.quota_bytes;
        match tenant {
            Some(name) => match self.tenants.get_mut(name) {
                Some(t) => {
                    let json = tenant_snapshot_json(t, quota);
                    format!("OK {json}")
                }
                None => unknown_tenant(name),
            },
            None => {
                let fleet = FleetSnapshot {
                    tenants: self.tenants.len(),
                    queued: self.tenants.values().map(Tenant::queued).sum(),
                    cost: self.fleet_cost,
                    global: self.config.budget.global_bytes,
                    stats: self.stats.clone(),
                };
                match serde_json::to_string(&fleet) {
                    Ok(json) => format!("OK {json}"),
                    Err(e) => format!("ERR code=serialize detail={e}"),
                }
            }
        }
    }

    fn handle_checkpoint(&mut self, tenant: Option<&str>) -> String {
        let Some(dir) = self.config.tenants_dir.clone() else {
            return "ERR code=no-checkpoint-dir".to_string();
        };
        self.pump();
        match tenant {
            Some(name) => match self.tenants.get_mut(name) {
                Some(t) => {
                    let path = checkpoint_path(&dir, name);
                    match t.checkpoint().write_atomic(&path) {
                        Ok(()) => format!("OK path={}", path.display()),
                        Err(e) => format!("ERR code=io detail={e}"),
                    }
                }
                None => unknown_tenant(name),
            },
            None => match self.checkpoint_all() {
                Ok(n) => format!("OK tenants={n}"),
                Err(e) => format!("ERR code=io detail={e}"),
            },
        }
    }

    /// Applies every queued line across the fleet, sharded over the
    /// work-stealing executor, then refreshes the budget charge and runs
    /// the auto-checkpoint cadence.
    pub fn pump(&mut self) {
        self.unpumped = 0;
        let shards = self.config.shards.max(1);
        let work: Vec<&mut Tenant> = self
            .tenants
            .values_mut()
            .filter(|t| t.has_pending())
            .collect();
        if !work.is_empty() {
            let applied: usize = exec::par_map(shards, work, |t| t.pump()).into_iter().sum();
            self.stats.applied += applied as u64;
            self.since_checkpoint += applied as u64;
        }
        self.fleet_cost = self.tenants.values().map(Tenant::cost).sum();
        if self.config.checkpoint_every > 0
            && self.since_checkpoint >= self.config.checkpoint_every
            && self.config.tenants_dir.is_some()
            && self.checkpoint_all().is_err()
        {
            self.stats.checkpoint_errors += 1;
        }
    }

    /// Checkpoints every tenant (pump first). Returns how many were
    /// written.
    pub fn checkpoint_all(&mut self) -> std::io::Result<usize> {
        let Some(dir) = self.config.tenants_dir.clone() else {
            return Ok(0);
        };
        // Drain queues outside the auto-cadence to avoid recursion.
        let shards = self.config.shards.max(1);
        let work: Vec<&mut Tenant> = self
            .tenants
            .values_mut()
            .filter(|t| t.has_pending())
            .collect();
        if !work.is_empty() {
            let applied: usize = exec::par_map(shards, work, |t| t.pump()).into_iter().sum();
            self.stats.applied += applied as u64;
        }
        self.fleet_cost = self.tenants.values().map(Tenant::cost).sum();
        let mut written = 0;
        for (name, tenant) in self.tenants.iter_mut() {
            tenant
                .checkpoint()
                .write_atomic(&checkpoint_path(&dir, name))?;
            written += 1;
        }
        self.since_checkpoint = 0;
        Ok(written)
    }

    /// Removes a tenant and produces its final batch-equivalent analysis
    /// (test/tooling hook; the wire protocol exposes `REPORT` instead).
    pub fn drain_tenant(&mut self, name: &str) -> Option<Analysis> {
        let tenant = self.tenants.remove(name)?;
        self.fleet_cost = self.fleet_cost.saturating_sub(tenant.cost());
        Some(tenant.drain())
    }

    fn tenant_entry(&mut self, name: &str) -> &mut Tenant {
        let stream = self.config.stream.clone();
        self.tenants
            .entry(name.to_string())
            .or_insert_with(|| Tenant::new(name.to_string(), stream))
    }
}

fn checkpoint_path(dir: &Path, tenant: &str) -> PathBuf {
    dir.join(format!("{tenant}.ckpt"))
}

fn unknown_tenant(name: &str) -> String {
    format!("ERR code=unknown-tenant tenant={name}")
}

fn cursor(counts: &[u64; 5]) -> String {
    format!(
        "{},{},{},{},{}",
        counts[0], counts[1], counts[2], counts[3], counts[4]
    )
}

/// Per-tenant `SNAPSHOT` payload.
#[derive(Debug, Serialize)]
struct TenantSnapshot {
    tenant: String,
    accepted: [u64; 5],
    applied: [u64; 5],
    queued: usize,
    cost: usize,
    quota: usize,
    shed_quota: u64,
    shed_budget: u64,
    dups: u64,
    gaps: u64,
    watermark: Option<Timestamp>,
    buffered_entries: usize,
    open_events: usize,
    closed_events: usize,
    lethal_events: u64,
    open_runs: usize,
    classified_runs: usize,
    late_dropped: u64,
    spill_dropped: u64,
    health: [&'static str; 5],
    metrics: logdiver::metrics::MetricSet,
}

/// Fleet-aggregate `SNAPSHOT` payload.
#[derive(Debug, Serialize)]
struct FleetSnapshot {
    tenants: usize,
    queued: usize,
    cost: usize,
    global: usize,
    stats: ServeStats,
}

fn tenant_snapshot_json(t: &mut Tenant, quota: usize) -> String {
    let snap = t.snapshot();
    let mut health = [""; 5];
    for (slot, report) in health.iter_mut().zip(snap.health.iter()) {
        *slot = report.state.label();
    }
    let dto = TenantSnapshot {
        tenant: t.name.clone(),
        accepted: t.accepted(),
        applied: t.applied(),
        queued: t.queued(),
        cost: t.cost(),
        quota,
        shed_quota: t.shed_quota,
        shed_budget: t.shed_budget,
        dups: t.dups,
        gaps: t.gaps,
        watermark: snap.watermark,
        buffered_entries: snap.buffered_entries,
        open_events: snap.open_events,
        closed_events: snap.closed_events,
        lethal_events: snap.lethal_events,
        open_runs: snap.open_runs,
        classified_runs: snap.classified_runs,
        late_dropped: snap.late_dropped,
        spill_dropped: snap.spill_dropped,
        health,
        metrics: snap.metrics,
    };
    match serde_json::to_string(&dto) {
        Ok(json) => json,
        Err(e) => format!("{{\"error\":\"{e}\"}}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdiver::{LogCollection, LogDiver};

    fn scenario() -> LogCollection {
        let mut logs = LogCollection::new();
        logs.torque.extend([
            "2013-03-28 10:00:00;S;1.bw;user=u0001 queue=normal nodes=4 walltime=86400".to_string(),
        ]);
        logs.alps.extend([
            "2013-03-28 10:00:05 apsys PLACED apid=100 batch=1.bw user=u0001 cmd=namd2 type=XE width=4 nodelist=nid[0-3]".to_string(),
            "2013-03-28 12:00:05 apsys EXIT apid=100 code=137 signal=9 node_failed=yes runtime=7200".to_string(),
        ]);
        logs.syslog.extend([
            "2013-03-28 12:00:00 nid00002 kernel: Machine Check Exception: bank 4 status 0xb200"
                .to_string(),
            "2013-03-28 12:00:31 smw xtnmd: node heartbeat fault: no response in 60s, declaring node dead"
                .to_string(),
        ]);
        logs.hwerr.extend([
            "2013-03-28 12:00:01|c0-0c0s0n2|MCE|CRIT|bank=4".to_string(),
            "2013-03-28 12:00:31|c0-0c0s0n2|NODE_DEAD|FATAL|".to_string(),
        ]);
        logs
    }

    fn push_lines(core: &mut ServeCore, tenant: &str, logs: &LogCollection) {
        for (source, lines) in [
            (Source::Syslog, &logs.syslog),
            (Source::HwErr, &logs.hwerr),
            (Source::Alps, &logs.alps),
            (Source::Torque, &logs.torque),
            (Source::Netwatch, &logs.netwatch),
        ] {
            for (i, line) in lines.iter().enumerate() {
                let resp = core.handle_line(&format!("PUSH {tenant} {} {i} {line}", source.name()));
                assert_eq!(resp, "OK", "push rejected: {resp}");
            }
        }
    }

    #[test]
    fn two_tenants_drain_to_their_own_batch_analyses() {
        let logs = scenario();
        let batch = LogDiver::new().analyze(&logs);
        let mut core = ServeCore::new(ServeConfig::default()).unwrap();
        push_lines(&mut core, "alpha", &logs);
        push_lines(&mut core, "beta", &logs);
        // An unrelated third tenant with no lines must not interfere.
        assert!(core
            .handle_line("HELLO gamma")
            .starts_with("OK tenant=gamma"));
        for name in ["alpha", "beta"] {
            let analysis = core.drain_tenant(name).unwrap();
            assert_eq!(analysis.runs, batch.runs, "{name}");
            assert_eq!(analysis.events, batch.events, "{name}");
            assert_eq!(analysis.metrics, batch.metrics, "{name}");
        }
        assert!(core.drain_tenant("alpha").is_none(), "already drained");
    }

    #[test]
    fn feed_reassembles_partial_lines() {
        let mut core = ServeCore::new(ServeConfig::default()).unwrap();
        let conn = core.open_conn();
        assert!(core.feed(conn, b"HELLO al").is_empty(), "no newline yet");
        let responses = core.feed(conn, b"pha\nHELLO beta\nHELLO ga");
        assert_eq!(responses.len(), 2);
        assert!(responses[0].starts_with("OK tenant=alpha"));
        assert!(responses[1].starts_with("OK tenant=beta"));
        // Dropping the connection discards the incomplete "HELLO ga".
        core.close_conn(conn);
        assert_eq!(core.tenant_names(), vec!["alpha", "beta"]);
    }

    #[test]
    fn push_is_idempotent_over_the_wire() {
        let mut core = ServeCore::new(ServeConfig::default()).unwrap();
        let line = "PUSH bw syslog 0 2013-03-28 12:00:00 nid00002 kernel: Machine Check Exception";
        assert_eq!(core.handle_line(line), "OK");
        assert_eq!(core.handle_line(line), "OK dup");
        assert_eq!(
            core.handle_line("PUSH bw syslog 5 whatever"),
            "ERR code=gap tenant=bw source=syslog expected=1"
        );
    }

    #[test]
    fn snapshot_and_flush_report_cursors() {
        let logs = scenario();
        let mut core = ServeCore::new(ServeConfig::default()).unwrap();
        push_lines(&mut core, "bw", &logs);
        let flush = core.handle_line("FLUSH bw");
        assert_eq!(flush, "OK applied=2,2,2,1,0");
        let field = |v: &serde_json::Value, key: &str| {
            v.as_object()
                .unwrap()
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        let snap = core.handle_line("SNAPSHOT bw");
        let json = serde_json::parse(snap.strip_prefix("OK ").unwrap()).unwrap();
        assert_eq!(field(&json, "tenant").as_str(), Some("bw"));
        assert_eq!(field(&json, "queued").as_u64(), Some(0));
        // Sources are still open, so the run awaits the watermark: it is
        // open (or classified if the watermark passed), never lost.
        let open = field(&json, "open_runs").as_u64().unwrap_or(0);
        let classified = field(&json, "classified_runs").as_u64().unwrap_or(0);
        assert_eq!(open + classified, 1, "the PLACED/EXIT run is tracked");
        let fleet = core.handle_line("SNAPSHOT");
        let json = serde_json::parse(fleet.strip_prefix("OK ").unwrap()).unwrap();
        assert_eq!(field(&json, "tenants").as_u64(), Some(1));
        assert_eq!(
            core.handle_line("SNAPSHOT nope"),
            "ERR code=unknown-tenant tenant=nope"
        );
    }

    #[test]
    fn report_frames_the_batch_report() {
        let logs = scenario();
        let batch = LogDiver::new().analyze(&logs);
        let expected = logdiver::report::full_report(&batch.metrics, &batch.stats);
        let mut core = ServeCore::new(ServeConfig::default()).unwrap();
        push_lines(&mut core, "bw", &logs);
        // Close every source so preview == final batch analysis... the
        // serve protocol never closes sources, so instead compare against
        // the batch analysis of the same lines: preview finalizes open
        // state the same way drain does.
        let resp = core.handle_line("REPORT bw");
        let (header, body) = resp.split_once('\n').unwrap();
        let n: usize = header.strip_prefix("OK lines=").unwrap().parse().unwrap();
        assert_eq!(body.lines().count(), n);
        assert_eq!(body, expected.trim_end_matches('\n'));
    }

    #[test]
    fn checkpoint_resume_round_trips_every_tenant() {
        let dir = std::env::temp_dir().join(format!("logdiver-serve-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let logs = scenario();
        let batch = LogDiver::new().analyze(&logs);
        let config = ServeConfig {
            tenants_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let mut core = ServeCore::new(config.clone()).unwrap();
        push_lines(&mut core, "alpha", &logs);
        push_lines(&mut core, "beta", &logs);
        assert_eq!(core.handle_line("CHECKPOINT"), "OK tenants=2");
        drop(core);

        let mut resumed = ServeCore::new(config).unwrap();
        assert!(resumed.warnings().is_empty());
        assert_eq!(resumed.tenant_names(), vec!["alpha", "beta"]);
        let hello = resumed.handle_line("HELLO alpha");
        assert_eq!(hello, "OK tenant=alpha accepted=2,2,2,1,0");
        for name in ["alpha", "beta"] {
            let analysis = resumed.drain_tenant(name).unwrap();
            assert_eq!(analysis.runs, batch.runs, "{name}");
            assert_eq!(analysis.events, batch.events, "{name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quota_rejections_are_machine_readable() {
        let config = ServeConfig {
            budget: BudgetPolicy {
                global_bytes: 10_000,
                quota_bytes: 64,
            },
            ..ServeConfig::default()
        };
        let mut core = ServeCore::new(config).unwrap();
        let long = "x".repeat(100);
        let resp = core.handle_line(&format!("PUSH bw syslog 0 {long}"));
        assert!(resp.starts_with("ERR code=over-quota tenant=bw "), "{resp}");
        assert_eq!(core.stats().shed_quota, 1);
        // The cursor did not advance: the same index is retried, not lost.
        assert_eq!(core.handle_line("PUSH bw syslog 0 short"), "OK");
    }

    #[test]
    fn checkpoint_without_dir_errors() {
        let mut core = ServeCore::new(ServeConfig::default()).unwrap();
        assert_eq!(core.handle_line("CHECKPOINT"), "ERR code=no-checkpoint-dir");
    }
}
