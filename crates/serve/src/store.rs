//! [`CheckpointStore`]: replicated, health-tracked checkpoint durability.
//!
//! The paper's field data says storage faults are the common case at
//! scale, so the daemon's recovery state cannot live in one directory.
//! The store replicates every tenant's checkpoint across N replica dirs
//! (`--tenants-dir`, repeatable) through the narrow
//! [`Fs`](logdiver_types::fsio::Fs) seam, and restores from the *newest
//! valid* copy — newest by [`StreamCheckpoint::records_applied`], the
//! logical progress counter, because checkpointable state is
//! wall-clock-free by lint decree; valid by the checkpoint format's
//! length/CRC32 integrity footer, which catches torn writes and at-rest
//! bit rot.
//!
//! ## Replica health
//!
//! Each replica runs a Healthy→Degraded→Failed machine, the `health.rs`
//! idiom transplanted from sources to storage: consecutive write failures
//! degrade then fail a replica; a Failed replica is skipped for a
//! deterministic exponential backoff (measured in checkpoint *sweeps*,
//! the store's logical clock) with seeded splitmix64 jitter, then
//! reprobed with a real write. A dead replica dir therefore costs
//! durability — surfaced as a machine-readable [`Durability`] level in
//! `SNAPSHOT`/`REPORT` — never ingestion: writes to the survivors
//! continue and the daemon keeps answering pushes.
//!
//! ## Forensics
//!
//! A corrupt checkpoint is never overwritten in place: the reader moves
//! it aside as `<tenant>.ckpt.corrupt-<n>` (first free `n`) and counts
//! it, so the evidence of *what* rotted survives the next clean write.
//!
//! ## Tombstones
//!
//! `DROP <tenant>` writes a `<tenant>.tomb` file to every replica and
//! removes the checkpoints, so a restart does not resurrect a tenant the
//! operator deliberately destroyed. Re-creating the tenant clears the
//! tombstone.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use logdiver_stream::{ResumeError, StreamCheckpoint};
use logdiver_types::fsio::{tmp_sibling, Fs};
use serde::Serialize;

/// Health of one replica directory (the `health.rs` idiom applied to
/// storage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ReplicaState {
    /// Recent writes succeeded.
    Healthy,
    /// Writes are failing but the replica is still being tried.
    Degraded,
    /// Enough consecutive failures that writes are skipped until the
    /// backoff expires and a reprobe write succeeds.
    Failed,
}

impl ReplicaState {
    /// Lowercase label for machine-readable output.
    pub fn label(&self) -> &'static str {
        match self {
            ReplicaState::Healthy => "healthy",
            ReplicaState::Degraded => "degraded",
            ReplicaState::Failed => "failed",
        }
    }
}

/// Fleet durability level, the headline of `SNAPSHOT`/`REPORT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Durability {
    /// Every configured replica is Healthy.
    Full,
    /// At least one replica accepts writes, but not all are Healthy.
    Degraded,
    /// No replica accepts writes (or none are configured).
    None,
}

impl Durability {
    /// Lowercase label for machine-readable output.
    pub fn label(&self) -> &'static str {
        match self {
            Durability::Full => "full",
            Durability::Degraded => "degraded",
            Durability::None => "none",
        }
    }
}

/// Tuning for the per-replica health machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorePolicy {
    /// Consecutive write failures before Healthy → Degraded.
    pub degrade_after: u32,
    /// Consecutive write failures before → Failed (skip + backoff).
    pub fail_after: u32,
    /// Base backoff, in checkpoint sweeps, after a replica fails.
    pub backoff_base: u64,
    /// Backoff ceiling, in sweeps.
    pub backoff_max: u64,
}

impl Default for StorePolicy {
    fn default() -> Self {
        StorePolicy {
            degrade_after: 1,
            fail_after: 3,
            backoff_base: 4,
            backoff_max: 256,
        }
    }
}

impl StorePolicy {
    /// Sweeps to skip a Failed replica before reprobe attempt `attempt`
    /// (0-based): `base · 2^attempt` capped, plus deterministic
    /// splitmix64 jitter keyed on (replica, attempt) so replicas that die
    /// together do not reprobe in lockstep — the same shape as
    /// `HealthPolicy::backoff_ms`.
    pub fn backoff_sweeps(&self, replica_index: usize, attempt: u32) -> u64 {
        let exp = self
            .backoff_base
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.backoff_max);
        let jitter_span = (self.backoff_base / 2).max(1);
        let mut x = (replica_index as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(attempt));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        exp + x % jitter_span
    }
}

/// One replica directory plus its health machine and counters.
#[derive(Debug)]
struct Replica {
    dir: PathBuf,
    state: ReplicaState,
    consecutive_failures: u32,
    /// Reprobe attempt counter; widens the backoff on repeated failure.
    attempt: u32,
    /// Sweeps left before a Failed replica is retried.
    cooldown: u64,
    writes_ok: u64,
    writes_err: u64,
    /// Most recent write error, for `SNAPSHOT` diagnostics.
    last_error: Option<String>,
}

impl Replica {
    fn accepts_writes(&self) -> bool {
        self.state != ReplicaState::Failed || self.cooldown == 0
    }
}

/// Serializable view of one replica for `SNAPSHOT`.
#[derive(Debug, Clone, Serialize)]
pub struct ReplicaSnapshot {
    /// The replica directory.
    pub dir: String,
    /// Health state label (`healthy` / `degraded` / `failed`).
    pub state: &'static str,
    /// Checkpoint files written successfully.
    pub writes_ok: u64,
    /// Write attempts that failed.
    pub writes_err: u64,
    /// Most recent write error, if any.
    pub last_error: Option<String>,
}

/// Serializable view of the whole store for `SNAPSHOT`.
#[derive(Debug, Clone, Serialize)]
pub struct StoreSnapshot {
    /// Machine-readable durability level (`full` / `degraded` / `none`).
    pub durability: &'static str,
    /// Per-replica health and counters.
    pub replicas: Vec<ReplicaSnapshot>,
    /// Corrupt checkpoints moved aside as `*.ckpt.corrupt-<n>`.
    pub corrupt_preserved: u64,
}

/// The replicated checkpoint store. See the module docs.
#[derive(Debug)]
pub struct CheckpointStore {
    fs: Arc<dyn Fs>,
    replicas: Vec<Replica>,
    policy: StorePolicy,
    corrupt_preserved: u64,
}

impl CheckpointStore {
    /// Opens a store over `dirs`, creating each directory. A directory
    /// that cannot be created starts life Failed (with its error
    /// recorded) rather than refusing to open the store: availability
    /// first, durability surfaced.
    pub fn open(fs: Arc<dyn Fs>, dirs: &[PathBuf], policy: StorePolicy) -> Self {
        let mut store = CheckpointStore {
            fs,
            replicas: Vec::new(),
            policy,
            corrupt_preserved: 0,
        };
        for (i, dir) in dirs.iter().enumerate() {
            let mut replica = Replica {
                dir: dir.clone(),
                state: ReplicaState::Healthy,
                consecutive_failures: 0,
                attempt: 0,
                cooldown: 0,
                writes_ok: 0,
                writes_err: 0,
                last_error: None,
            };
            if let Err(e) = store.fs.create_dir_all(dir) {
                replica.state = ReplicaState::Failed;
                replica.consecutive_failures = policy.fail_after;
                replica.cooldown = policy.backoff_sweeps(i, 0);
                replica.attempt = 1;
                replica.writes_err = 1;
                replica.last_error = Some(e.to_string());
            }
            store.replicas.push(replica);
        }
        store
    }

    /// How many replica directories are configured.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The configured replica directories, in order.
    pub fn replica_dirs(&self) -> Vec<PathBuf> {
        self.replicas.iter().map(|r| r.dir.clone()).collect()
    }

    /// The current fleet durability level.
    pub fn durability(&self) -> Durability {
        if self.replicas.is_empty() {
            return Durability::None;
        }
        let healthy = self
            .replicas
            .iter()
            .filter(|r| r.state == ReplicaState::Healthy)
            .count();
        let failed = self
            .replicas
            .iter()
            .filter(|r| r.state == ReplicaState::Failed)
            .count();
        if healthy == self.replicas.len() {
            Durability::Full
        } else if failed == self.replicas.len() {
            Durability::None
        } else {
            Durability::Degraded
        }
    }

    /// Corrupt checkpoints moved aside so far.
    pub fn corrupt_preserved(&self) -> u64 {
        self.corrupt_preserved
    }

    /// Starts a checkpoint sweep: the store's logical clock tick. Failed
    /// replicas count their backoff down here, one tick per sweep
    /// regardless of tenant count.
    pub fn begin_sweep(&mut self) {
        for r in &mut self.replicas {
            if r.state == ReplicaState::Failed && r.cooldown > 0 {
                r.cooldown -= 1;
            }
        }
    }

    /// Writes `ckpt` for `tenant` to every replica that accepts writes
    /// right now (Failed replicas whose backoff has expired get their
    /// reprobe). Returns how many replicas hold the new checkpoint.
    /// Never blocks ingestion: a replica failure is counted, degrades the
    /// health machine, and moves on.
    pub fn write_tenant(&mut self, tenant: &str, ckpt: &StreamCheckpoint) -> usize {
        let bytes = ckpt.to_bytes();
        let mut written = 0;
        for i in 0..self.replicas.len() {
            if !self.replicas[i].accepts_writes() {
                continue;
            }
            let path = ckpt_path(&self.replicas[i].dir, tenant);
            let tmp = tmp_sibling(&path);
            let result = self
                .fs
                .write(&tmp, &bytes)
                .and_then(|()| self.fs.rename(&tmp, &path));
            match result {
                Ok(()) => {
                    self.note_success(i);
                    written += 1;
                }
                Err(e) => self.note_failure(i, e.to_string()),
            }
        }
        written
    }

    /// Scans every replica for `tenant`'s checkpoint and returns the
    /// newest valid one (by [`StreamCheckpoint::records_applied`]),
    /// skipping missing, torn, bit-rotted, or wrong-version copies.
    /// Every invalid copy found is moved aside as
    /// `<tenant>.ckpt.corrupt-<n>` so the forensic evidence survives the
    /// next clean write. Unreadable copies produce warnings appended to
    /// `warnings`.
    pub fn read_newest(
        &mut self,
        tenant: &str,
        warnings: &mut Vec<String>,
    ) -> Option<StreamCheckpoint> {
        let mut best: Option<StreamCheckpoint> = None;
        for i in 0..self.replicas.len() {
            let path = ckpt_path(&self.replicas[i].dir, tenant);
            if !self.fs.exists(&path) {
                continue;
            }
            match StreamCheckpoint::read_fs(self.fs.as_ref(), &path) {
                Ok(ckpt) => {
                    let newer = match &best {
                        Some(b) => ckpt.records_applied() > b.records_applied(),
                        None => true,
                    };
                    if newer {
                        best = Some(ckpt);
                    }
                }
                Err(ResumeError::Io(msg)) => {
                    warnings.push(format!("tenant {tenant}: replica {i}: {msg}"));
                }
                Err(e) => {
                    warnings.push(format!("tenant {tenant}: replica {i}: {e}"));
                    self.preserve_corrupt(i, tenant);
                }
            }
        }
        best
    }

    /// Moves a corrupt checkpoint aside as `<tenant>.ckpt.corrupt-<n>`
    /// (first free `n`) instead of leaving it to be overwritten by the
    /// next cadence.
    fn preserve_corrupt(&mut self, replica: usize, tenant: &str) {
        let dir = self.replicas[replica].dir.clone();
        let from = ckpt_path(&dir, tenant);
        for n in 0..u32::MAX {
            let to = dir.join(format!("{tenant}.ckpt.corrupt-{n}"));
            if self.fs.exists(&to) {
                continue;
            }
            if self.fs.rename(&from, &to).is_ok() {
                self.corrupt_preserved += 1;
            }
            return;
        }
    }

    /// The union of tenant names that have a checkpoint on any replica,
    /// sorted, excluding tombstoned tenants. Replica listing errors are
    /// appended to `warnings`.
    pub fn list_tenants(&self, warnings: &mut Vec<String>) -> Vec<String> {
        let mut names = std::collections::BTreeSet::new();
        for (i, r) in self.replicas.iter().enumerate() {
            match self.fs.list(&r.dir) {
                Ok(files) => {
                    for file in files {
                        if let Some(stem) = file.strip_suffix(".ckpt") {
                            names.insert(stem.to_string());
                        }
                    }
                }
                Err(e) => warnings.push(format!("replica {i} ({}): {e}", r.dir.display())),
            }
        }
        names.into_iter().filter(|n| !self.tombstoned(n)).collect()
    }

    /// Whether any replica carries a tombstone for `tenant`.
    pub fn tombstoned(&self, tenant: &str) -> bool {
        self.replicas
            .iter()
            .any(|r| self.fs.exists(&tomb_path(&r.dir, tenant)))
    }

    /// Drops `tenant`: writes a tombstone to every replica and removes
    /// its checkpoints (corrupt-preserved evidence is kept). Returns how
    /// many replicas recorded the tombstone.
    pub fn drop_tenant(&mut self, tenant: &str) -> usize {
        let mut recorded = 0;
        for i in 0..self.replicas.len() {
            let dir = self.replicas[i].dir.clone();
            let _ = self.fs.remove_file(&ckpt_path(&dir, tenant));
            match self.fs.write(&tomb_path(&dir, tenant), b"dropped\n") {
                Ok(()) => recorded += 1,
                Err(e) => self.note_failure(i, e.to_string()),
            }
        }
        recorded
    }

    /// Clears `tenant`'s tombstones (the operator re-created it). Any
    /// stale checkpoint is removed too, so the fresh tenant cannot
    /// resurrect pre-drop state after a restart.
    pub fn clear_tombstone(&mut self, tenant: &str) {
        for r in &self.replicas {
            let _ = self.fs.remove_file(&tomb_path(&r.dir, tenant));
            let _ = self.fs.remove_file(&ckpt_path(&r.dir, tenant));
        }
    }

    /// Serializable health/durability view for `SNAPSHOT`.
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            durability: self.durability().label(),
            replicas: self
                .replicas
                .iter()
                .map(|r| ReplicaSnapshot {
                    dir: r.dir.display().to_string(),
                    state: r.state.label(),
                    writes_ok: r.writes_ok,
                    writes_err: r.writes_err,
                    last_error: r.last_error.clone(),
                })
                .collect(),
            corrupt_preserved: self.corrupt_preserved,
        }
    }

    /// Total write errors across replicas (feeds fleet stats).
    pub fn write_errors(&self) -> u64 {
        self.replicas.iter().map(|r| r.writes_err).sum()
    }

    fn note_success(&mut self, i: usize) {
        let r = &mut self.replicas[i];
        r.writes_ok += 1;
        r.consecutive_failures = 0;
        r.attempt = 0;
        r.cooldown = 0;
        r.state = ReplicaState::Healthy;
        r.last_error = None;
    }

    fn note_failure(&mut self, i: usize, error: String) {
        let attempt;
        {
            let r = &mut self.replicas[i];
            r.writes_err += 1;
            r.consecutive_failures = r.consecutive_failures.saturating_add(1);
            r.last_error = Some(error);
            if r.consecutive_failures >= self.policy.fail_after {
                r.state = ReplicaState::Failed;
                attempt = r.attempt;
                r.attempt = r.attempt.saturating_add(1);
            } else {
                if r.consecutive_failures >= self.policy.degrade_after {
                    r.state = ReplicaState::Degraded;
                }
                return;
            }
        }
        self.replicas[i].cooldown = self.policy.backoff_sweeps(i, attempt);
    }
}

/// `<dir>/<tenant>.ckpt`.
pub fn ckpt_path(dir: &Path, tenant: &str) -> PathBuf {
    dir.join(format!("{tenant}.ckpt"))
}

/// `<dir>/<tenant>.tomb`.
fn tomb_path(dir: &Path, tenant: &str) -> PathBuf {
    dir.join(format!("{tenant}.tomb"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdiver_stream::{InlineEngine, Source, StreamConfig};
    use logdiver_types::fsio::RealFs;

    fn ckpt_with(lines: usize) -> StreamCheckpoint {
        let mut engine = InlineEngine::new(StreamConfig::default());
        for i in 0..lines {
            engine
                .push(
                    Source::Syslog,
                    &format!("2013-03-28 12:00:{:02} nid00002 ntpd: tick {i}", i % 60),
                )
                .unwrap();
        }
        let offsets = engine.pushed_all();
        engine.checkpoint(offsets)
    }

    fn temp_store(tag: &str, n: usize) -> (CheckpointStore, Vec<PathBuf>) {
        let base =
            std::env::temp_dir().join(format!("logdiver-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let dirs: Vec<PathBuf> = (0..n).map(|i| base.join(format!("r{i}"))).collect();
        let store = CheckpointStore::open(Arc::new(RealFs), &dirs, StorePolicy::default());
        (store, dirs)
    }

    fn cleanup(dirs: &[PathBuf]) {
        if let Some(base) = dirs.first().and_then(|d| d.parent()) {
            let _ = std::fs::remove_dir_all(base);
        }
    }

    #[test]
    fn writes_land_on_every_replica_and_restore_newest_valid() {
        let (mut store, dirs) = temp_store("basic", 3);
        assert_eq!(store.durability(), Durability::Full);
        store.begin_sweep();
        assert_eq!(store.write_tenant("alpha", &ckpt_with(3)), 3);
        for dir in &dirs {
            assert!(ckpt_path(dir, "alpha").exists());
        }
        // A second, newer checkpoint lands on only the first replica —
        // restore must still pick it.
        let newer = ckpt_with(7);
        newer.write_atomic(&ckpt_path(&dirs[0], "alpha")).unwrap();
        let mut warnings = Vec::new();
        let got = store.read_newest("alpha", &mut warnings).unwrap();
        assert_eq!(got.records_applied(), 7);
        assert!(warnings.is_empty());
        cleanup(&dirs);
    }

    #[test]
    fn corrupt_replica_is_skipped_and_preserved() {
        let (mut store, dirs) = temp_store("corrupt", 2);
        store.begin_sweep();
        assert_eq!(store.write_tenant("t", &ckpt_with(5)), 2);
        // Rot the *newer-looking* copy on replica 0.
        let victim = ckpt_path(&dirs[0], "t");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&victim, &bytes).unwrap();

        let mut warnings = Vec::new();
        let got = store.read_newest("t", &mut warnings).unwrap();
        assert_eq!(got.records_applied(), 5, "restored from the valid replica");
        assert_eq!(warnings.len(), 1);
        assert_eq!(store.corrupt_preserved(), 1);
        assert!(
            dirs[0].join("t.ckpt.corrupt-0").exists(),
            "forensic evidence moved aside"
        );
        assert!(!victim.exists(), "corrupt original no longer in the way");
        cleanup(&dirs);
    }

    #[test]
    fn dead_replica_degrades_then_fails_with_backoff() {
        let (mut store, dirs) = temp_store("dead", 2);
        std::fs::remove_dir_all(&dirs[1]).unwrap();
        let ckpt = ckpt_with(2);
        store.begin_sweep();
        assert_eq!(store.write_tenant("a", &ckpt), 1);
        assert_eq!(store.durability(), Durability::Degraded);
        // Drive it to Failed (fail_after = 3 consecutive failures).
        for _ in 0..2 {
            store.begin_sweep();
            store.write_tenant("a", &ckpt);
        }
        let snap = store.snapshot();
        assert_eq!(snap.replicas[1].state, "failed");
        assert_eq!(snap.durability, "degraded");
        // While cooling down, the dead replica is skipped entirely.
        let errs_before = store.write_errors();
        store.begin_sweep();
        store.write_tenant("a", &ckpt);
        assert_eq!(store.write_errors(), errs_before, "skipped during backoff");
        // Recreate the dir and burn through the cooldown: the reprobe
        // write succeeds and the replica heals.
        std::fs::create_dir_all(&dirs[1]).unwrap();
        for _ in 0..600 {
            store.begin_sweep();
            store.write_tenant("a", &ckpt);
            if store.durability() == Durability::Full {
                break;
            }
        }
        assert_eq!(store.durability(), Durability::Full, "reprobe healed it");
        cleanup(&dirs);
    }

    #[test]
    fn all_replicas_dead_is_durability_none_not_a_stall() {
        let (mut store, dirs) = temp_store("alldead", 2);
        for dir in &dirs {
            std::fs::remove_dir_all(dir).unwrap();
        }
        let ckpt = ckpt_with(1);
        for _ in 0..4 {
            store.begin_sweep();
            store.write_tenant("a", &ckpt);
        }
        assert_eq!(store.durability(), Durability::None);
        assert_eq!(store.write_tenant("a", &ckpt), 0, "returns, never blocks");
        cleanup(&dirs);
    }

    #[test]
    fn tombstone_blocks_resurrection_until_cleared() {
        let (mut store, dirs) = temp_store("tomb", 2);
        store.begin_sweep();
        store.write_tenant("ghost", &ckpt_with(4));
        let mut warnings = Vec::new();
        assert_eq!(store.list_tenants(&mut warnings), vec!["ghost"]);
        assert_eq!(store.drop_tenant("ghost"), 2);
        assert!(store.tombstoned("ghost"));
        assert!(store.list_tenants(&mut warnings).is_empty());
        assert!(store.read_newest("ghost", &mut warnings).is_none());
        store.clear_tombstone("ghost");
        assert!(!store.tombstoned("ghost"));
        cleanup(&dirs);
    }

    #[test]
    fn backoff_is_deterministic_and_widens() {
        let p = StorePolicy::default();
        assert_eq!(p.backoff_sweeps(0, 0), p.backoff_sweeps(0, 0));
        assert!(p.backoff_sweeps(0, 3) > p.backoff_sweeps(0, 0));
        assert!(p.backoff_sweeps(1, 5) <= p.backoff_max + p.backoff_base / 2);
    }
}
