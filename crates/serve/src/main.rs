//! The standalone `logdiver-serve` binary. `logdiver serve` dispatches to
//! the same [`logdiver_serve::daemon::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        println!("{}", logdiver_serve::daemon::USAGE);
        return ExitCode::SUCCESS;
    }
    let config = match logdiver_serve::daemon::parse_flags(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("logdiver-serve: {message}");
            eprintln!("{}", logdiver_serve::daemon::USAGE);
            return ExitCode::from(2);
        }
    };
    match logdiver_serve::daemon::run(config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("logdiver-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
