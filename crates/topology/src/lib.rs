//! # bw-topology
//!
//! Structural model of a Cray XE6/XK7 hybrid machine in the image of Blue
//! Waters: cabinets of chassis of blades of nodes, a Gemini 3-D torus
//! interconnect, a Lustre parallel filesystem, and a node allocator used by
//! the batch-scheduler simulation.
//!
//! The geometry here feeds two consumers:
//!
//! 1. the **simulator** (`bw-sim`), which uses it to place applications and
//!    to propagate faults spatially (a blade failure kills 4 nodes, a
//!    cabinet event kills 96, a torus link failure triggers a system-wide
//!    reroute), and
//! 2. **LogDiver** (`logdiver`), whose coalescing stage groups error-log
//!    entries by blade/cabinet proximity — exactly what the real tool does
//!    with Cray location codes.
//!
//! ## Geometry (documented simplification)
//!
//! A cabinet holds 3 chassis × 8 blades × 4 nodes = 96 nodes. Each blade
//! carries 2 Gemini ASICs (one per node pair), and the ASICs form a
//! 24×24×24 3-D torus — 13,824 ASICs serving 27,648 node slots across 288
//! cabinets (24 floor columns × 12 rows). Blue Waters' published composition
//! (22,640 XE + 4,224 XK compute nodes) fills most slots; the remainder act
//! as service nodes. Real Cray floor layouts interleave service blades; we
//! place node classes in contiguous blade ranges, which preserves everything
//! the study measures (class sizes, spatial correlation scopes, torus
//! distances) while keeping nid arithmetic transparent.
//!
//! ## Example
//!
//! ```
//! use bw_topology::Machine;
//! use logdiver_types::NodeType;
//!
//! let m = Machine::blue_waters();
//! assert_eq!(m.count_of(NodeType::Xe), 22_640);
//! assert_eq!(m.count_of(NodeType::Xk), 4_224);
//! let nid = m.nodes_of_type(NodeType::Xk).next().unwrap();
//! assert_eq!(m.node_type(nid), Some(NodeType::Xk));
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod allocation;
pub mod location;
pub mod lustre;
pub mod machine;
pub mod torus;

pub use allocation::{NodeAllocator, PlacementPolicy};
pub use location::Location;
pub use lustre::{LustreSystem, MdsId, OssId, OstId};
pub use machine::{Machine, MachineBuilder};
pub use torus::{Torus, TorusCoord};
