//! The Gemini 3-D torus interconnect.
//!
//! Each blade carries two Gemini ASICs; each ASIC serves two nodes and is a
//! vertex of a 3-D torus. Link failures on this fabric trigger a
//! machine-wide *route reconfiguration* during which traffic quiesces — the
//! mechanism behind the paper's finding that wide applications suffer
//! disproportionately from interconnect events.

use logdiver_types::NodeId;
use serde::{Deserialize, Serialize};

/// Coordinates of a Gemini ASIC in the torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TorusCoord {
    /// X coordinate.
    pub x: u16,
    /// Y coordinate.
    pub y: u16,
    /// Z coordinate.
    pub z: u16,
}

impl std::fmt::Display for TorusCoord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

/// A torus dimension, used to identify the direction of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Dim {
    /// X dimension.
    X,
    /// Y dimension.
    Y,
    /// Z dimension.
    Z,
}

/// A (directed-normalized) torus link: from `coord` toward +`dim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Link {
    /// Source vertex.
    pub coord: TorusCoord,
    /// Positive direction of travel.
    pub dim: Dim,
}

/// A 3-D torus of Gemini ASICs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus {
    dims: (u16, u16, u16),
}

/// Nodes served by one Gemini ASIC.
pub const NODES_PER_GEMINI: u32 = 2;

impl Torus {
    /// Creates a torus with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero.
    pub fn new(x: u16, y: u16, z: u16) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "torus dimensions must be positive");
        Torus { dims: (x, y, z) }
    }

    /// The Blue Waters-scale torus: 24 × 24 × 24.
    pub fn blue_waters() -> Self {
        Torus::new(24, 24, 24)
    }

    /// Dimensions `(x, y, z)`.
    pub fn dims(&self) -> (u16, u16, u16) {
        self.dims
    }

    /// Number of vertices (Gemini ASICs).
    pub fn vertex_count(&self) -> u32 {
        self.dims.0 as u32 * self.dims.1 as u32 * self.dims.2 as u32
    }

    /// Number of (undirected) links: 3 per vertex on a full torus.
    pub fn link_count(&self) -> u32 {
        self.vertex_count() * 3
    }

    /// Number of node slots the fabric serves.
    pub fn node_slots(&self) -> u32 {
        self.vertex_count() * NODES_PER_GEMINI
    }

    /// The Gemini ordinal serving a nid (two nids per ASIC).
    pub fn gemini_of_nid(&self, nid: NodeId) -> u32 {
        nid.value() / NODES_PER_GEMINI
    }

    /// Torus coordinates of a Gemini ordinal.
    ///
    /// # Panics
    ///
    /// Panics when the ordinal is out of range.
    pub fn coord_of_gemini(&self, gemini: u32) -> TorusCoord {
        assert!(gemini < self.vertex_count(), "gemini ordinal out of range");
        let (dx, dy, _dz) = self.dims;
        let plane = dx as u32 * dy as u32;
        TorusCoord {
            z: (gemini / plane) as u16,
            y: ((gemini % plane) / dx as u32) as u16,
            x: (gemini % dx as u32) as u16,
        }
    }

    /// Torus coordinates serving a nid.
    ///
    /// # Panics
    ///
    /// Panics when the nid is outside the fabric.
    pub fn coord_of_nid(&self, nid: NodeId) -> TorusCoord {
        self.coord_of_gemini(self.gemini_of_nid(nid))
    }

    /// Gemini ordinal at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics when the coordinate is out of range.
    pub fn gemini_at(&self, c: TorusCoord) -> u32 {
        let (dx, dy, dz) = self.dims;
        assert!(c.x < dx && c.y < dy && c.z < dz, "coordinate out of range");
        c.z as u32 * dx as u32 * dy as u32 + c.y as u32 * dx as u32 + c.x as u32
    }

    /// The two nids served by the Gemini at a coordinate.
    pub fn nids_at(&self, c: TorusCoord) -> [NodeId; 2] {
        let g = self.gemini_at(c);
        [
            NodeId::new(g * NODES_PER_GEMINI),
            NodeId::new(g * NODES_PER_GEMINI + 1),
        ]
    }

    /// Shortest-path hop distance between two coordinates with wraparound.
    pub fn distance(&self, a: TorusCoord, b: TorusCoord) -> u32 {
        fn axis(a: u16, b: u16, dim: u16) -> u32 {
            let d = (a as i32 - b as i32).unsigned_abs();
            d.min(dim as u32 - d)
        }
        axis(a.x, b.x, self.dims.0) + axis(a.y, b.y, self.dims.1) + axis(a.z, b.z, self.dims.2)
    }

    /// The six neighbors of a coordinate.
    pub fn neighbors(&self, c: TorusCoord) -> [TorusCoord; 6] {
        let (dx, dy, dz) = self.dims;
        let wrap = |v: i32, d: u16| ((v + d as i32) % d as i32) as u16;
        [
            TorusCoord {
                x: wrap(c.x as i32 + 1, dx),
                ..c
            },
            TorusCoord {
                x: wrap(c.x as i32 - 1, dx),
                ..c
            },
            TorusCoord {
                y: wrap(c.y as i32 + 1, dy),
                ..c
            },
            TorusCoord {
                y: wrap(c.y as i32 - 1, dy),
                ..c
            },
            TorusCoord {
                z: wrap(c.z as i32 + 1, dz),
                ..c
            },
            TorusCoord {
                z: wrap(c.z as i32 - 1, dz),
                ..c
            },
        ]
    }

    /// The link leaving Gemini ordinal `gemini` in direction `dim`
    /// (normalized: every undirected link is named by its lower endpoint in
    /// the positive direction).
    pub fn link(&self, gemini: u32, dim: Dim) -> Link {
        Link {
            coord: self.coord_of_gemini(gemini),
            dim,
        }
    }

    /// Picks the link with the given flat index in `0..link_count()` —
    /// handy for uniform random link selection in fault injection.
    pub fn link_by_index(&self, index: u32) -> Link {
        let v = self.vertex_count();
        assert!(index < self.link_count(), "link index out of range");
        let dim = match index / v {
            0 => Dim::X,
            1 => Dim::Y,
            _ => Dim::Z,
        };
        Link {
            coord: self.coord_of_gemini(index % v),
            dim,
        }
    }

    /// Shortest signed step along one axis with wraparound: the per-hop
    /// delta (−1, 0 or +1) dimension-ordered routing takes.
    fn axis_step(from: u16, to: u16, dim: u16) -> i32 {
        if from == to {
            return 0;
        }
        let forward = (to as i32 - from as i32).rem_euclid(dim as i32);
        let backward = dim as i32 - forward;
        if forward <= backward {
            1
        } else {
            -1
        }
    }

    /// Dimension-ordered (X, then Y, then Z) shortest route between two
    /// coordinates, inclusive of both endpoints.
    ///
    /// This is the deterministic routing Gemini-class toruses use as their
    /// baseline; the path length always equals [`Torus::distance`] + 1.
    pub fn route(&self, a: TorusCoord, b: TorusCoord) -> Vec<TorusCoord> {
        let (dx, dy, dz) = self.dims;
        let mut path = vec![a];
        let mut cur = a;
        let wrap = |v: i32, d: u16| v.rem_euclid(d as i32) as u16;
        while cur.x != b.x {
            cur.x = wrap(cur.x as i32 + Self::axis_step(cur.x, b.x, dx), dx);
            path.push(cur);
        }
        while cur.y != b.y {
            cur.y = wrap(cur.y as i32 + Self::axis_step(cur.y, b.y, dy), dy);
            path.push(cur);
        }
        while cur.z != b.z {
            cur.z = wrap(cur.z as i32 + Self::axis_step(cur.z, b.z, dz), dz);
            path.push(cur);
        }
        path
    }

    /// True when dimension-ordered traffic between `a` and `b` crosses the
    /// given link (in either direction).
    pub fn route_uses_link(&self, a: TorusCoord, b: TorusCoord, link: &Link) -> bool {
        let path = self.route(a, b);
        path.windows(2).any(|w| {
            let (lo, hi) = (w[0], w[1]);
            let step = match link.dim {
                Dim::X => TorusCoord {
                    x: (link.coord.x + 1) % self.dims.0,
                    ..link.coord
                },
                Dim::Y => TorusCoord {
                    y: (link.coord.y + 1) % self.dims.1,
                    ..link.coord
                },
                Dim::Z => TorusCoord {
                    z: (link.coord.z + 1) % self.dims.2,
                    ..link.coord
                },
            };
            (lo == link.coord && hi == step) || (lo == step && hi == link.coord)
        })
    }

    /// Span (maximum pairwise distance) of a set of nids — a measure of how
    /// much of the fabric an application allocation stretches across.
    ///
    /// Cost is O(n²) in the number of *distinct Gemini*; callers pass
    /// allocations, which are contiguous-ish, so deduplication keeps this
    /// tractable for reporting.
    pub fn span_of<I: IntoIterator<Item = NodeId>>(&self, nids: I) -> u32 {
        let mut coords: Vec<TorusCoord> = Vec::new();
        let mut last_gemini = u32::MAX;
        for nid in nids {
            let g = self.gemini_of_nid(nid);
            if g != last_gemini {
                coords.push(self.coord_of_gemini(g));
                last_gemini = g;
            }
        }
        coords.sort_unstable();
        coords.dedup();
        let mut span = 0;
        for i in 0..coords.len() {
            for j in (i + 1)..coords.len() {
                span = span.max(self.distance(coords[i], coords[j]));
            }
        }
        span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn blue_waters_dimensions() {
        let t = Torus::blue_waters();
        assert_eq!(t.vertex_count(), 13_824);
        assert_eq!(t.node_slots(), 27_648);
        assert_eq!(t.link_count(), 41_472);
    }

    #[test]
    fn coord_round_trip() {
        let t = Torus::blue_waters();
        for g in [0u32, 1, 23, 24, 575, 576, 13_823] {
            assert_eq!(t.gemini_at(t.coord_of_gemini(g)), g);
        }
    }

    #[test]
    fn nids_share_gemini_in_pairs() {
        let t = Torus::blue_waters();
        assert_eq!(
            t.gemini_of_nid(NodeId::new(0)),
            t.gemini_of_nid(NodeId::new(1))
        );
        assert_ne!(
            t.gemini_of_nid(NodeId::new(1)),
            t.gemini_of_nid(NodeId::new(2))
        );
        let c = t.coord_of_nid(NodeId::new(100));
        assert!(t.nids_at(c).contains(&NodeId::new(100)));
    }

    #[test]
    fn distance_with_wraparound() {
        let t = Torus::new(10, 10, 10);
        let a = TorusCoord { x: 0, y: 0, z: 0 };
        let b = TorusCoord { x: 9, y: 0, z: 0 };
        assert_eq!(t.distance(a, b), 1); // wraps
        let c = TorusCoord { x: 5, y: 5, z: 5 };
        assert_eq!(t.distance(a, c), 15);
        assert_eq!(t.distance(a, a), 0);
    }

    #[test]
    fn neighbors_are_at_distance_one() {
        let t = Torus::new(5, 7, 3);
        let c = TorusCoord { x: 4, y: 0, z: 2 };
        for n in t.neighbors(c) {
            assert_eq!(t.distance(c, n), 1, "neighbor {n} not adjacent to {c}");
        }
    }

    #[test]
    fn link_by_index_covers_all_dims() {
        let t = Torus::new(2, 2, 2);
        let mut dims = std::collections::HashSet::new();
        for i in 0..t.link_count() {
            dims.insert(t.link_by_index(i).dim);
        }
        assert_eq!(dims.len(), 3);
    }

    #[test]
    #[should_panic(expected = "link index out of range")]
    fn link_by_index_panics_out_of_range() {
        let t = Torus::new(2, 2, 2);
        let _ = t.link_by_index(t.link_count());
    }

    #[test]
    fn span_of_contiguous_allocation_is_small() {
        let t = Torus::blue_waters();
        // 96 contiguous nids = 48 contiguous Gemini = at most 2 rows of X.
        let nids: Vec<NodeId> = (0..96).map(NodeId::new).collect();
        let span_small = t.span_of(nids);
        let nids_wide: Vec<NodeId> = (0..27_648).step_by(1_000).map(NodeId::new).collect();
        let span_wide = t.span_of(nids_wide);
        assert!(span_small < span_wide, "{span_small} vs {span_wide}");
    }

    #[test]
    fn route_follows_dimension_order() {
        let t = Torus::new(8, 8, 8);
        let a = TorusCoord { x: 1, y: 2, z: 3 };
        let b = TorusCoord { x: 6, y: 0, z: 3 };
        let path = t.route(a, b);
        // X first (wraps backward: 1→0→7→6 is 3 hops), then Y (2→1→0).
        assert_eq!(path.first(), Some(&a));
        assert_eq!(path.last(), Some(&b));
        assert_eq!(path.len() as u32, t.distance(a, b) + 1);
        // After the X phase, x is fixed at the target.
        let x_done = path.iter().position(|c| c.x == b.x).unwrap();
        assert!(path[x_done..].iter().all(|c| c.x == b.x));
    }

    #[test]
    fn route_to_self_is_trivial() {
        let t = Torus::new(4, 4, 4);
        let a = TorusCoord { x: 2, y: 2, z: 2 };
        assert_eq!(t.route(a, a), vec![a]);
    }

    #[test]
    fn route_uses_link_detects_crossing() {
        let t = Torus::new(8, 8, 8);
        let a = TorusCoord { x: 0, y: 0, z: 0 };
        let b = TorusCoord { x: 2, y: 0, z: 0 };
        let on_path = Link {
            coord: TorusCoord { x: 1, y: 0, z: 0 },
            dim: Dim::X,
        };
        let off_path = Link {
            coord: TorusCoord { x: 1, y: 1, z: 0 },
            dim: Dim::X,
        };
        assert!(t.route_uses_link(a, b, &on_path));
        assert!(!t.route_uses_link(a, b, &off_path));
        // Reverse direction crosses the same undirected link.
        assert!(t.route_uses_link(b, a, &on_path));
    }

    proptest! {
        #[test]
        fn route_length_equals_distance(ax in 0u16..10, ay in 0u16..10, az in 0u16..10,
                                        bx in 0u16..10, by in 0u16..10, bz in 0u16..10) {
            let t = Torus::new(10, 10, 10);
            let a = TorusCoord { x: ax, y: ay, z: az };
            let b = TorusCoord { x: bx, y: by, z: bz };
            let path = t.route(a, b);
            prop_assert_eq!(path.len() as u32, t.distance(a, b) + 1);
            // Each hop is a unit move.
            for w in path.windows(2) {
                prop_assert_eq!(t.distance(w[0], w[1]), 1);
            }
        }

        #[test]
        fn distance_is_a_metric(ax in 0u16..24, ay in 0u16..24, az in 0u16..24,
                                bx in 0u16..24, by in 0u16..24, bz in 0u16..24,
                                cx in 0u16..24, cy in 0u16..24, cz in 0u16..24) {
            let t = Torus::blue_waters();
            let a = TorusCoord { x: ax, y: ay, z: az };
            let b = TorusCoord { x: bx, y: by, z: bz };
            let c = TorusCoord { x: cx, y: cy, z: cz };
            prop_assert_eq!(t.distance(a, b), t.distance(b, a));
            prop_assert_eq!(t.distance(a, a), 0);
            prop_assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
            // Diameter of a 24-cube torus is 36.
            prop_assert!(t.distance(a, b) <= 36);
        }

        #[test]
        fn gemini_round_trip(g in 0u32..13_824) {
            let t = Torus::blue_waters();
            prop_assert_eq!(t.gemini_at(t.coord_of_gemini(g)), g);
        }
    }
}
