//! Node allocation state for the batch-scheduler simulation.
//!
//! Tracks which compute nodes are free, allocated to an application, or out
//! of service, per node class. Allocation takes the lowest free nids, which
//! approximates the contiguous placement real schedulers aim for and gives
//! wide applications realistically large torus spans.

use std::collections::BTreeSet;

use logdiver_types::{NodeId, NodeSet, NodeType};
use serde::{Deserialize, Serialize};

use crate::location::NODES_PER_BLADE;
use crate::machine::Machine;

/// How allocations are laid out on the machine.
///
/// Placement interacts with correlated failures: a blade failure takes out
/// four nodes at once, so *packing* an application onto few blades exposes
/// fewer applications per blade event, while *scattering* spreads every
/// application across many blades and lets one blade failure hit many
/// applications. The a3 ablation bench measures exactly this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Lowest free nids first: contiguous-ish, few blades per application.
    #[default]
    Packed,
    /// Round-robin across blades: maximal blade spread per application.
    Scattered,
}

/// Allocation state over a machine's compute nodes.
#[derive(Debug, Clone)]
pub struct NodeAllocator {
    /// Free nids per class, ordered.
    free_xe: BTreeSet<u32>,
    free_xk: BTreeSet<u32>,
    /// Currently allocated nodes.
    allocated: NodeSet,
    /// Nodes out of service (down), whether or not also allocated.
    down: NodeSet,
    /// Node class lookup (indexed by nid).
    types: Vec<NodeType>,
    /// Layout policy.
    policy: PlacementPolicy,
}

impl NodeAllocator {
    /// Creates an allocator with every compute node of `machine` free and
    /// the default packed placement.
    pub fn new(machine: &Machine) -> Self {
        Self::with_policy(machine, PlacementPolicy::Packed)
    }

    /// Creates an allocator with an explicit placement policy.
    pub fn with_policy(machine: &Machine, policy: PlacementPolicy) -> Self {
        let types: Vec<NodeType> = (0..machine.total_nodes())
            .map(|n| machine.node_type(NodeId::new(n)).expect("nid in range"))
            .collect();
        let free_xe = machine
            .nodes_of_type(NodeType::Xe)
            .map(|n| n.value())
            .collect();
        let free_xk = machine
            .nodes_of_type(NodeType::Xk)
            .map(|n| n.value())
            .collect();
        NodeAllocator {
            free_xe,
            free_xk,
            allocated: NodeSet::with_capacity(machine.total_nodes()),
            down: NodeSet::with_capacity(machine.total_nodes()),
            types,
            policy,
        }
    }

    /// The placement policy in effect.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    fn pool(&mut self, ty: NodeType) -> &mut BTreeSet<u32> {
        match ty {
            NodeType::Xe => &mut self.free_xe,
            NodeType::Xk => &mut self.free_xk,
            NodeType::Service => panic!("service nodes are not allocatable"),
        }
    }

    /// Free nodes currently available in a class.
    pub fn free_count(&self, ty: NodeType) -> u32 {
        match ty {
            NodeType::Xe => self.free_xe.len() as u32,
            NodeType::Xk => self.free_xk.len() as u32,
            NodeType::Service => 0,
        }
    }

    /// Nodes currently allocated (any class).
    pub fn allocated_count(&self) -> u32 {
        self.allocated.len() as u32
    }

    /// Nodes currently out of service (any class).
    pub fn down_count(&self) -> u32 {
        self.down.len() as u32
    }

    /// True when `nid` is currently allocated to an application.
    pub fn is_allocated(&self, nid: NodeId) -> bool {
        self.allocated.contains(nid)
    }

    /// True when `nid` is currently out of service.
    pub fn is_down(&self, nid: NodeId) -> bool {
        self.down.contains(nid)
    }

    /// Allocates `n` nodes of class `ty`, lowest nids first.
    ///
    /// Returns `None` (allocating nothing) when fewer than `n` are free.
    ///
    /// # Panics
    ///
    /// Panics when asked for service nodes or `n == 0`.
    pub fn allocate(&mut self, ty: NodeType, n: u32) -> Option<NodeSet> {
        assert!(n > 0, "cannot allocate zero nodes");
        let policy = self.policy;
        let pool = self.pool(ty);
        if (pool.len() as u32) < n {
            return None;
        }
        let picked: Vec<u32> = match policy {
            PlacementPolicy::Packed => pool.iter().take(n as usize).copied().collect(),
            PlacementPolicy::Scattered => {
                // Round-robin over blades: the first free node of each
                // distinct blade, then the second of each, and so on —
                // maximal blade spread for the allocation. One pass groups
                // the pool by blade; rounds then interleave the groups.
                let mut by_blade: Vec<Vec<u32>> = Vec::new();
                let mut prev_blade = u32::MAX;
                for &nid in pool.iter() {
                    let blade = nid / NODES_PER_BLADE;
                    if blade != prev_blade {
                        prev_blade = blade;
                        by_blade.push(Vec::with_capacity(NODES_PER_BLADE as usize));
                    }
                    by_blade.last_mut().expect("group exists").push(nid);
                }
                let mut picked = Vec::with_capacity(n as usize);
                let mut round = 0usize;
                'outer: while picked.len() < n as usize {
                    let mut advanced = false;
                    for group in &by_blade {
                        if let Some(&nid) = group.get(round) {
                            picked.push(nid);
                            advanced = true;
                            if picked.len() == n as usize {
                                break 'outer;
                            }
                        }
                    }
                    if !advanced {
                        break;
                    }
                    round += 1;
                }
                picked
            }
        };
        for &nid in &picked {
            pool.remove(&nid);
        }
        let set: NodeSet = picked.into_iter().map(NodeId::new).collect();
        self.allocated.union_with(&set);
        Some(set)
    }

    /// Releases an allocation. Nodes that went down while allocated stay
    /// out of the free pool until [`NodeAllocator::mark_up`].
    ///
    /// # Panics
    ///
    /// Panics when a node of `set` was not allocated (double release).
    pub fn release(&mut self, set: &NodeSet) {
        for nid in set {
            assert!(
                self.allocated.remove(nid),
                "release of unallocated node {nid}"
            );
            if !self.down.contains(nid) {
                let ty = self.types[nid.value() as usize];
                if ty.is_compute() {
                    self.pool(ty).insert(nid.value());
                }
            }
        }
    }

    /// Takes a node out of service. If it was free it leaves the pool; if it
    /// was allocated it is flagged and will not return to the pool on
    /// release. Returns true when the node was *newly* marked down.
    pub fn mark_down(&mut self, nid: NodeId) -> bool {
        if !self.down.insert(nid) {
            return false;
        }
        let ty = self.types.get(nid.value() as usize).copied();
        if let Some(ty) = ty {
            if ty.is_compute() {
                self.pool(ty).remove(&nid.value());
            }
        }
        true
    }

    /// Returns a repaired node to service (and to the free pool unless it is
    /// still allocated). Returns true when the node was down.
    pub fn mark_up(&mut self, nid: NodeId) -> bool {
        if !self.down.remove(nid) {
            return false;
        }
        if !self.allocated.contains(nid) {
            let ty = self.types[nid.value() as usize];
            if ty.is_compute() {
                self.pool(ty).insert(nid.value());
            }
        }
        true
    }

    /// Consistency check: pools, allocated and down sets are disjoint where
    /// they must be. Used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (&pool, ty) in [(&self.free_xe, NodeType::Xe), (&self.free_xk, NodeType::Xk)]
            .iter()
            .map(|(p, t)| (p, t))
        {
            for &nid in pool.iter() {
                let id = NodeId::new(nid);
                if self.allocated.contains(id) {
                    return Err(format!("node {id} both free and allocated"));
                }
                if self.down.contains(id) {
                    return Err(format!("node {id} both free and down"));
                }
                if self.types[nid as usize] != *ty {
                    return Err(format!("node {id} in wrong pool"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineBuilder;
    use proptest::prelude::*;

    fn small_machine() -> Machine {
        MachineBuilder::new("alloc-test")
            .xe_nodes(32)
            .xk_nodes(8)
            .service_nodes(8)
            .build()
    }

    #[test]
    fn allocate_takes_lowest_nids() {
        let m = small_machine();
        let mut a = NodeAllocator::new(&m);
        let s = a.allocate(NodeType::Xe, 4).unwrap();
        let nids: Vec<u32> = s.iter().map(|n| n.value()).collect();
        assert_eq!(nids, vec![0, 1, 2, 3]);
        assert_eq!(a.free_count(NodeType::Xe), 28);
        assert_eq!(a.allocated_count(), 4);
        a.check_invariants().unwrap();
    }

    #[test]
    fn xk_pool_is_separate() {
        let m = small_machine();
        let mut a = NodeAllocator::new(&m);
        let s = a.allocate(NodeType::Xk, 2).unwrap();
        // XK nids start after the 32 XE nodes.
        assert!(s.iter().all(|n| n.value() >= 32));
        assert_eq!(a.free_count(NodeType::Xe), 32);
        assert_eq!(a.free_count(NodeType::Xk), 6);
    }

    #[test]
    fn oversized_request_is_refused_without_side_effects() {
        let m = small_machine();
        let mut a = NodeAllocator::new(&m);
        assert!(a.allocate(NodeType::Xk, 9).is_none());
        assert_eq!(a.free_count(NodeType::Xk), 8);
        assert_eq!(a.allocated_count(), 0);
    }

    #[test]
    fn release_returns_nodes() {
        let m = small_machine();
        let mut a = NodeAllocator::new(&m);
        let s = a.allocate(NodeType::Xe, 10).unwrap();
        a.release(&s);
        assert_eq!(a.free_count(NodeType::Xe), 32);
        assert_eq!(a.allocated_count(), 0);
        a.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "release of unallocated node")]
    fn double_release_panics() {
        let m = small_machine();
        let mut a = NodeAllocator::new(&m);
        let s = a.allocate(NodeType::Xe, 2).unwrap();
        a.release(&s);
        a.release(&s);
    }

    #[test]
    fn down_node_skips_pool_until_repaired() {
        let m = small_machine();
        let mut a = NodeAllocator::new(&m);
        let s = a.allocate(NodeType::Xe, 2).unwrap();
        let victim = s.first().unwrap();
        assert!(a.mark_down(victim));
        assert!(!a.mark_down(victim), "second mark_down is a no-op");
        a.release(&s);
        // Victim stays out; the other node returns.
        assert_eq!(a.free_count(NodeType::Xe), 31);
        assert!(a.is_down(victim));
        assert!(a.mark_up(victim));
        assert_eq!(a.free_count(NodeType::Xe), 32);
        a.check_invariants().unwrap();
    }

    #[test]
    fn down_free_node_leaves_pool_immediately() {
        let m = small_machine();
        let mut a = NodeAllocator::new(&m);
        assert!(a.mark_down(NodeId::new(0)));
        let s = a.allocate(NodeType::Xe, 1).unwrap();
        assert_eq!(
            s.first().unwrap().value(),
            1,
            "downed node must not be allocated"
        );
        a.check_invariants().unwrap();
    }

    #[test]
    fn scattered_spreads_across_blades() {
        let m = MachineBuilder::new("spread")
            .xe_nodes(64)
            .xk_nodes(4)
            .service_nodes(4)
            .build();
        let mut packed = NodeAllocator::new(&m);
        let mut scattered = NodeAllocator::with_policy(&m, PlacementPolicy::Scattered);
        assert_eq!(scattered.policy(), PlacementPolicy::Scattered);
        let blades = |s: &NodeSet| -> std::collections::HashSet<u32> {
            s.iter().map(|n| n.value() / 4).collect()
        };
        let a = packed.allocate(NodeType::Xe, 8).unwrap();
        let b = scattered.allocate(NodeType::Xe, 8).unwrap();
        assert_eq!(blades(&a).len(), 2, "packed: 8 nodes = 2 blades");
        assert_eq!(blades(&b).len(), 8, "scattered: one node per blade");
        packed.check_invariants().unwrap();
        scattered.check_invariants().unwrap();
    }

    #[test]
    fn scattered_allocations_are_exact_and_disjoint() {
        let m = MachineBuilder::new("spread2")
            .xe_nodes(32)
            .xk_nodes(4)
            .service_nodes(4)
            .build();
        let mut a = NodeAllocator::with_policy(&m, PlacementPolicy::Scattered);
        let s1 = a.allocate(NodeType::Xe, 10).unwrap();
        let s2 = a.allocate(NodeType::Xe, 10).unwrap();
        assert_eq!(s1.len(), 10);
        assert_eq!(s2.len(), 10);
        assert!(!s1.intersects(&s2));
        assert_eq!(a.free_count(NodeType::Xe), 12);
        // Release and reallocate everything: the pool is whole again.
        a.release(&s1);
        a.release(&s2);
        let s3 = a.allocate(NodeType::Xe, 32).unwrap();
        assert_eq!(s3.len(), 32);
        a.check_invariants().unwrap();
    }

    proptest! {
        #[test]
        fn never_double_allocates(ops in proptest::collection::vec(0u8..4, 1..60)) {
            let m = small_machine();
            let mut a = NodeAllocator::new(&m);
            let mut live: Vec<NodeSet> = Vec::new();
            for op in ops {
                match op {
                    0 => {
                        if let Some(s) = a.allocate(NodeType::Xe, 3) {
                            for existing in &live {
                                prop_assert!(!s.intersects(existing), "double allocation");
                            }
                            live.push(s);
                        }
                    }
                    1 => {
                        if let Some(s) = live.pop() {
                            a.release(&s);
                        }
                    }
                    2 => { a.mark_down(NodeId::new(5)); }
                    _ => { a.mark_up(NodeId::new(5)); }
                }
                prop_assert!(a.check_invariants().is_ok());
            }
        }
    }
}
