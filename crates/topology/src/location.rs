//! Physical location of a node: cabinet / chassis / blade slot / node.
//!
//! Rendered in the Cray convention `cX-Y c C s S n N` (e.g. `c12-3c1s5n2`)
//! — the location codes that appear in hardware error logs and that
//! LogDiver's spatial coalescing keys on.

use std::fmt;

use logdiver_types::{CabinetId, NodeId};
use serde::{Deserialize, Serialize};

/// Nodes per blade (Cray XE/XK blades carry four nodes).
pub const NODES_PER_BLADE: u32 = 4;
/// Blades per chassis.
pub const BLADES_PER_CHASSIS: u32 = 8;
/// Chassis per cabinet.
pub const CHASSIS_PER_CABINET: u32 = 3;
/// Nodes per cabinet (3 × 8 × 4).
pub const NODES_PER_CABINET: u32 = NODES_PER_BLADE * BLADES_PER_CHASSIS * CHASSIS_PER_CABINET;
/// Cabinet columns on the floor.
pub const CABINET_COLUMNS: u16 = 24;

/// Physical location of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Cabinet on the machine-room floor.
    pub cabinet: CabinetId,
    /// Chassis (cage) within the cabinet, 0–2.
    pub chassis: u8,
    /// Blade slot within the chassis, 0–7.
    pub slot: u8,
    /// Node within the blade, 0–3.
    pub node: u8,
}

impl Location {
    /// Computes the location of a nid under the canonical dense layout.
    pub fn of_nid(nid: NodeId) -> Self {
        let n = nid.value();
        let blade = n / NODES_PER_BLADE;
        let node = (n % NODES_PER_BLADE) as u8;
        let chassis_idx = blade / BLADES_PER_CHASSIS;
        let slot = (blade % BLADES_PER_CHASSIS) as u8;
        let cabinet_idx = chassis_idx / CHASSIS_PER_CABINET;
        let chassis = (chassis_idx % CHASSIS_PER_CABINET) as u8;
        let column = (cabinet_idx % CABINET_COLUMNS as u32) as u16;
        let row = (cabinet_idx / CABINET_COLUMNS as u32) as u16;
        Location {
            cabinet: CabinetId::new(column, row),
            chassis,
            slot,
            node,
        }
    }

    /// The nid occupying this location under the canonical dense layout.
    pub fn to_nid(self) -> NodeId {
        let cabinet_idx =
            self.cabinet.row as u32 * CABINET_COLUMNS as u32 + self.cabinet.column as u32;
        let chassis_idx = cabinet_idx * CHASSIS_PER_CABINET + self.chassis as u32;
        let blade = chassis_idx * BLADES_PER_CHASSIS + self.slot as u32;
        NodeId::new(blade * NODES_PER_BLADE + self.node as u32)
    }

    /// Global blade ordinal (shared by the 4 nodes of a blade).
    pub fn blade_ordinal(self) -> u32 {
        self.to_nid().value() / NODES_PER_BLADE
    }

    /// Global cabinet ordinal (shared by the 96 nodes of a cabinet).
    pub fn cabinet_ordinal(self) -> u32 {
        self.to_nid().value() / NODES_PER_CABINET
    }

    /// All four nids on the same blade as this location.
    pub fn blade_nids(self) -> [NodeId; NODES_PER_BLADE as usize] {
        let base = self.blade_ordinal() * NODES_PER_BLADE;
        [
            NodeId::new(base),
            NodeId::new(base + 1),
            NodeId::new(base + 2),
            NodeId::new(base + 3),
        ]
    }

    /// Range of nids `(first, last)` inclusive covering this cabinet.
    pub fn cabinet_nid_range(self) -> (NodeId, NodeId) {
        let base = self.cabinet_ordinal() * NODES_PER_CABINET;
        (NodeId::new(base), NodeId::new(base + NODES_PER_CABINET - 1))
    }

    /// Parses the Cray rendering produced by the `Display` implementation,
    /// e.g. `c12-3c1s5n2`.
    pub fn parse(s: &str) -> Option<Self> {
        let rest = s.strip_prefix('c')?;
        let dash = rest.find('-')?;
        let column: u16 = rest[..dash].parse().ok()?;
        let rest = &rest[dash + 1..];
        let c_pos = rest.find('c')?;
        let row: u16 = rest[..c_pos].parse().ok()?;
        let rest = &rest[c_pos + 1..];
        let s_pos = rest.find('s')?;
        let chassis: u8 = rest[..s_pos].parse().ok()?;
        let rest = &rest[s_pos + 1..];
        let n_pos = rest.find('n')?;
        let slot: u8 = rest[..n_pos].parse().ok()?;
        let node: u8 = rest[n_pos + 1..].parse().ok()?;
        if chassis >= CHASSIS_PER_CABINET as u8
            || slot >= BLADES_PER_CHASSIS as u8
            || node >= NODES_PER_BLADE as u8
        {
            return None;
        }
        Some(Location {
            cabinet: CabinetId::new(column, row),
            chassis,
            slot,
            node,
        })
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c{}-{}c{}s{}n{}",
            self.cabinet.column, self.cabinet.row, self.chassis, self.slot, self.node
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nid_zero_is_origin() {
        let loc = Location::of_nid(NodeId::new(0));
        assert_eq!(loc.cabinet, CabinetId::new(0, 0));
        assert_eq!((loc.chassis, loc.slot, loc.node), (0, 0, 0));
        assert_eq!(loc.to_string(), "c0-0c0s0n0");
    }

    #[test]
    fn cabinet_boundaries() {
        // nid 95 is the last node of cabinet 0; nid 96 starts cabinet 1.
        let last = Location::of_nid(NodeId::new(95));
        assert_eq!(last.cabinet, CabinetId::new(0, 0));
        assert_eq!((last.chassis, last.slot, last.node), (2, 7, 3));
        let first = Location::of_nid(NodeId::new(96));
        assert_eq!(first.cabinet, CabinetId::new(1, 0));
        assert_eq!((first.chassis, first.slot, first.node), (0, 0, 0));
    }

    #[test]
    fn row_wraps_after_24_columns() {
        let nid = NodeId::new(24 * NODES_PER_CABINET); // first node of cabinet 24
        let loc = Location::of_nid(nid);
        assert_eq!(loc.cabinet, CabinetId::new(0, 1));
    }

    #[test]
    fn display_parse_round_trip() {
        for nid in [0u32, 1, 95, 96, 4_008, 26_863, 27_647] {
            let loc = Location::of_nid(NodeId::new(nid));
            let parsed = Location::parse(&loc.to_string()).unwrap();
            assert_eq!(parsed, loc);
        }
    }

    #[test]
    fn parse_rejects_out_of_range_fields() {
        assert!(Location::parse("c0-0c3s0n0").is_none()); // chassis 3
        assert!(Location::parse("c0-0c0s8n0").is_none()); // slot 8
        assert!(Location::parse("c0-0c0s0n4").is_none()); // node 4
        assert!(Location::parse("garbage").is_none());
        assert!(Location::parse("c0-0c0s0").is_none());
    }

    #[test]
    fn blade_nids_share_a_blade() {
        let loc = Location::of_nid(NodeId::new(4_010));
        let nids = loc.blade_nids();
        let ords: Vec<u32> = nids
            .iter()
            .map(|&n| Location::of_nid(n).blade_ordinal())
            .collect();
        assert!(ords.windows(2).all(|w| w[0] == w[1]));
        assert!(nids.contains(&NodeId::new(4_010)));
    }

    #[test]
    fn cabinet_range_covers_96_nodes() {
        let loc = Location::of_nid(NodeId::new(200));
        let (first, last) = loc.cabinet_nid_range();
        assert_eq!(last.value() - first.value() + 1, NODES_PER_CABINET);
        assert!(first.value() <= 200 && 200 <= last.value());
    }

    proptest! {
        #[test]
        fn of_nid_to_nid_round_trip(nid in 0u32..27_648) {
            let loc = Location::of_nid(NodeId::new(nid));
            prop_assert_eq!(loc.to_nid(), NodeId::new(nid));
        }

        #[test]
        fn neighbors_on_blade_share_location_prefix(nid in 0u32..27_644) {
            let a = Location::of_nid(NodeId::new(nid));
            let b = Location::of_nid(NodeId::new(nid + 1));
            if nid % NODES_PER_BLADE != NODES_PER_BLADE - 1 {
                prop_assert_eq!(a.blade_ordinal(), b.blade_ordinal());
            } else {
                prop_assert_eq!(a.blade_ordinal() + 1, b.blade_ordinal());
            }
        }
    }
}
