//! Structural model of the Lustre parallel filesystem.
//!
//! Blue Waters' storage ("Sonexion") exposes object storage targets (OSTs)
//! grouped under object storage servers (OSSes), plus metadata servers
//! (MDSes). The field study cares about *which* component failed (an OST
//! failure affects every client touching its stripes; an MDS failover stalls
//! the whole namespace), so the model is structural: ids and group
//! membership, no data path.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of an object storage target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OstId(u32);

impl OstId {
    /// Creates an OST id.
    pub const fn new(id: u32) -> Self {
        OstId(id)
    }

    /// Raw index.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for OstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Lustre convention: fsname-OSTxxxx in hex.
        write!(f, "snx-OST{:04x}", self.0)
    }
}

/// Identifier of an object storage server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OssId(u32);

impl OssId {
    /// Creates an OSS id.
    pub const fn new(id: u32) -> Self {
        OssId(id)
    }

    /// Raw index.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for OssId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oss{:03}", self.0)
    }
}

/// Identifier of a metadata server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MdsId(u32);

impl MdsId {
    /// Creates an MDS id.
    pub const fn new(id: u32) -> Self {
        MdsId(id)
    }

    /// Raw index.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for MdsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mds{:02}", self.0)
    }
}

/// The filesystem layout: `ost_count` OSTs spread evenly over `oss_count`
/// OSSes, plus `mds_count` metadata servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LustreSystem {
    oss_count: u32,
    osts_per_oss: u32,
    mds_count: u32,
}

impl LustreSystem {
    /// Creates a filesystem layout.
    ///
    /// # Panics
    ///
    /// Panics when any count is zero.
    pub fn new(oss_count: u32, osts_per_oss: u32, mds_count: u32) -> Self {
        assert!(
            oss_count > 0 && osts_per_oss > 0 && mds_count > 0,
            "lustre layout counts must be positive"
        );
        LustreSystem {
            oss_count,
            osts_per_oss,
            mds_count,
        }
    }

    /// The Blue Waters-scale layout: 180 OSSes × 8 OSTs (1,440 OSTs) and
    /// 3 metadata servers (home/project/scratch).
    pub fn blue_waters() -> Self {
        LustreSystem::new(180, 8, 3)
    }

    /// A layout scaled down by `divisor` (at least 1 OSS / 1 MDS).
    pub fn scaled(divisor: u32) -> Self {
        let full = Self::blue_waters();
        LustreSystem::new(
            (full.oss_count / divisor.max(1)).max(1),
            full.osts_per_oss,
            ((full.mds_count) / divisor.max(1)).max(1),
        )
    }

    /// Number of OSSes.
    pub fn oss_count(&self) -> u32 {
        self.oss_count
    }

    /// Number of OSTs.
    pub fn ost_count(&self) -> u32 {
        self.oss_count * self.osts_per_oss
    }

    /// Number of metadata servers.
    pub fn mds_count(&self) -> u32 {
        self.mds_count
    }

    /// The OSS serving an OST.
    ///
    /// # Panics
    ///
    /// Panics when the OST is out of range.
    pub fn oss_of(&self, ost: OstId) -> OssId {
        assert!(ost.value() < self.ost_count(), "ost out of range");
        OssId::new(ost.value() / self.osts_per_oss)
    }

    /// The OSTs served by an OSS.
    ///
    /// # Panics
    ///
    /// Panics when the OSS is out of range.
    pub fn osts_of(&self, oss: OssId) -> impl Iterator<Item = OstId> {
        assert!(oss.value() < self.oss_count, "oss out of range");
        let base = oss.value() * self.osts_per_oss;
        (base..base + self.osts_per_oss).map(OstId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blue_waters_layout() {
        let l = LustreSystem::blue_waters();
        assert_eq!(l.ost_count(), 1_440);
        assert_eq!(l.oss_count(), 180);
        assert_eq!(l.mds_count(), 3);
    }

    #[test]
    fn oss_ost_mapping_round_trips() {
        let l = LustreSystem::new(10, 4, 1);
        for oss in 0..10 {
            for ost in l.osts_of(OssId::new(oss)) {
                assert_eq!(l.oss_of(ost), OssId::new(oss));
            }
        }
        assert_eq!(l.osts_of(OssId::new(3)).count(), 4);
    }

    #[test]
    fn display_formats() {
        assert_eq!(OstId::new(255).to_string(), "snx-OST00ff");
        assert_eq!(OssId::new(7).to_string(), "oss007");
        assert_eq!(MdsId::new(1).to_string(), "mds01");
    }

    #[test]
    fn scaled_never_reaches_zero() {
        let l = LustreSystem::scaled(10_000);
        assert!(l.oss_count() >= 1);
        assert!(l.mds_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "ost out of range")]
    fn oss_of_checks_range() {
        let l = LustreSystem::new(2, 2, 1);
        let _ = l.oss_of(OstId::new(4));
    }
}
