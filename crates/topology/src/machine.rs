//! The whole machine: node inventory, class layout, torus fabric, Lustre.

use logdiver_types::{NodeId, NodeSet, NodeType};
use serde::{Deserialize, Serialize};

use crate::location::{Location, NODES_PER_BLADE, NODES_PER_CABINET};
use crate::lustre::LustreSystem;
use crate::torus::Torus;

/// A fully specified machine.
///
/// The node inventory is stored as one `NodeType` per nid; locations and
/// torus coordinates are pure functions of the nid (see [`Location`] and
/// [`Torus`]), so even the full 27,648-slot machine costs a few tens of KiB.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    name: String,
    node_types: Vec<NodeType>,
    torus: Torus,
    lustre: LustreSystem,
    xe_count: u32,
    xk_count: u32,
}

impl Machine {
    /// The full Blue Waters configuration: 22,640 XE + 4,224 XK compute
    /// nodes and 784 service nodes on a 24×24×24 Gemini torus.
    pub fn blue_waters() -> Self {
        MachineBuilder::new("blue-waters")
            .xe_nodes(22_640)
            .xk_nodes(4_224)
            .torus(Torus::blue_waters())
            .lustre(LustreSystem::blue_waters())
            .build()
    }

    /// A geometry-preserving scale-down of Blue Waters by `divisor`
    /// (node counts divided, rounded to whole blades; torus shrunk to fit).
    ///
    /// Used by tests, examples and CI-speed benches. `divisor = 1` is the
    /// full machine.
    ///
    /// # Panics
    ///
    /// Panics when `divisor == 0`.
    pub fn blue_waters_scaled(divisor: u32) -> Self {
        assert!(divisor > 0, "divisor must be positive");
        if divisor == 1 {
            return Self::blue_waters();
        }
        let round_blades = |n: u32| ((n / divisor).div_ceil(NODES_PER_BLADE)) * NODES_PER_BLADE;
        let xe = round_blades(22_640).max(NODES_PER_BLADE);
        let xk = round_blades(4_224).max(NODES_PER_BLADE);
        let svc = round_blades(784).max(NODES_PER_BLADE);
        // Smallest cube torus that serves all the slots.
        let total = xe + xk + svc;
        let mut dim = 2u16;
        while 2 * (dim as u32).pow(3) < total {
            dim += 1;
        }
        MachineBuilder::new(format!("blue-waters/{divisor}"))
            .xe_nodes(xe)
            .xk_nodes(xk)
            .service_nodes(svc)
            .torus(Torus::new(dim, dim, dim))
            .lustre(LustreSystem::scaled(divisor))
            .build()
    }

    /// Machine name (appears in log headers).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total node slots (compute + service).
    pub fn total_nodes(&self) -> u32 {
        self.node_types.len() as u32
    }

    /// Number of nodes of a class.
    pub fn count_of(&self, ty: NodeType) -> u32 {
        match ty {
            NodeType::Xe => self.xe_count,
            NodeType::Xk => self.xk_count,
            NodeType::Service => self.total_nodes() - self.xe_count - self.xk_count,
        }
    }

    /// Number of compute nodes (XE + XK).
    pub fn compute_nodes(&self) -> u32 {
        self.xe_count + self.xk_count
    }

    /// The class of a nid, or `None` outside the machine.
    pub fn node_type(&self, nid: NodeId) -> Option<NodeType> {
        self.node_types.get(nid.value() as usize).copied()
    }

    /// True when the nid exists and runs applications.
    pub fn is_compute(&self, nid: NodeId) -> bool {
        self.node_type(nid).is_some_and(NodeType::is_compute)
    }

    /// Iterates all nids of a class in ascending order.
    pub fn nodes_of_type(&self, ty: NodeType) -> impl Iterator<Item = NodeId> + '_ {
        self.node_types
            .iter()
            .enumerate()
            .filter(move |(_, &t)| t == ty)
            .map(|(i, _)| NodeId::new(i as u32))
    }

    /// All nids of a class as a [`NodeSet`].
    pub fn node_set_of_type(&self, ty: NodeType) -> NodeSet {
        self.nodes_of_type(ty).collect()
    }

    /// Physical location of a nid.
    ///
    /// # Panics
    ///
    /// Panics when the nid is outside the machine.
    pub fn location(&self, nid: NodeId) -> Location {
        assert!(
            (nid.value() as usize) < self.node_types.len(),
            "nid {nid} outside machine"
        );
        Location::of_nid(nid)
    }

    /// The interconnect fabric.
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// The filesystem.
    pub fn lustre(&self) -> &LustreSystem {
        &self.lustre
    }

    /// Number of whole cabinets (including a possibly partial last one).
    pub fn cabinet_count(&self) -> u32 {
        (self.total_nodes()).div_ceil(NODES_PER_CABINET)
    }

    /// The nids sharing a blade with `nid` that exist on this machine.
    pub fn blade_peers(&self, nid: NodeId) -> Vec<NodeId> {
        Location::of_nid(nid)
            .blade_nids()
            .into_iter()
            .filter(|n| (n.value() as usize) < self.node_types.len())
            .collect()
    }
}

/// Builder for custom machines (C-BUILDER).
///
/// ```
/// use bw_topology::{MachineBuilder, Torus};
/// let m = MachineBuilder::new("test-rig")
///     .xe_nodes(96)
///     .xk_nodes(32)
///     .torus(Torus::new(4, 4, 4))
///     .build();
/// assert_eq!(m.compute_nodes(), 128);
/// ```
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    name: String,
    xe: u32,
    xk: u32,
    service: u32,
    torus: Option<Torus>,
    lustre: Option<LustreSystem>,
}

impl MachineBuilder {
    /// Starts a builder for a machine with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        MachineBuilder {
            name: name.into(),
            xe: 0,
            xk: 0,
            service: 0,
            torus: None,
            lustre: None,
        }
    }

    /// Sets the XE (CPU) node count.
    pub fn xe_nodes(mut self, n: u32) -> Self {
        self.xe = n;
        self
    }

    /// Sets the XK (hybrid) node count.
    pub fn xk_nodes(mut self, n: u32) -> Self {
        self.xk = n;
        self
    }

    /// Sets the service node count (default: whatever fills the torus, or
    /// 16 when no torus is specified).
    pub fn service_nodes(mut self, n: u32) -> Self {
        self.service = n;
        self
    }

    /// Sets the torus fabric (default: smallest cube that fits the nodes).
    pub fn torus(mut self, torus: Torus) -> Self {
        self.torus = Some(torus);
        self
    }

    /// Sets the Lustre configuration (default: scaled preset).
    pub fn lustre(mut self, lustre: LustreSystem) -> Self {
        self.lustre = Some(lustre);
        self
    }

    /// Finalizes the machine.
    ///
    /// Node classes are laid out in contiguous nid ranges:
    /// XE first, then XK, then service (see crate docs for why this
    /// simplification is safe).
    ///
    /// # Panics
    ///
    /// Panics when a supplied torus is too small for the requested nodes,
    /// or when no compute nodes were requested.
    pub fn build(self) -> Machine {
        assert!(
            self.xe + self.xk > 0,
            "machine needs at least one compute node"
        );
        let service = if self.service > 0 {
            self.service
        } else if let Some(t) = &self.torus {
            t.node_slots().saturating_sub(self.xe + self.xk)
        } else {
            16
        };
        let total = self.xe + self.xk + service;
        let torus = self.torus.unwrap_or_else(|| {
            let mut dim = 2u16;
            while 2 * (dim as u32).pow(3) < total {
                dim += 1;
            }
            Torus::new(dim, dim, dim)
        });
        assert!(
            torus.node_slots() >= total,
            "torus serves {} slots but {} nodes requested",
            torus.node_slots(),
            total
        );
        let mut node_types = Vec::with_capacity(total as usize);
        node_types.extend(std::iter::repeat_n(NodeType::Xe, self.xe as usize));
        node_types.extend(std::iter::repeat_n(NodeType::Xk, self.xk as usize));
        node_types.extend(std::iter::repeat_n(NodeType::Service, service as usize));
        Machine {
            name: self.name,
            node_types,
            torus,
            lustre: self.lustre.unwrap_or_else(|| LustreSystem::scaled(16)),
            xe_count: self.xe,
            xk_count: self.xk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blue_waters_inventory() {
        let m = Machine::blue_waters();
        assert_eq!(m.count_of(NodeType::Xe), 22_640);
        assert_eq!(m.count_of(NodeType::Xk), 4_224);
        assert_eq!(m.count_of(NodeType::Service), 784);
        assert_eq!(m.total_nodes(), 27_648);
        assert_eq!(m.compute_nodes(), 26_864);
        assert_eq!(m.cabinet_count(), 288);
        assert_eq!(m.torus().node_slots(), 27_648);
    }

    #[test]
    fn class_layout_is_contiguous() {
        let m = Machine::blue_waters();
        assert_eq!(m.node_type(NodeId::new(0)), Some(NodeType::Xe));
        assert_eq!(m.node_type(NodeId::new(22_639)), Some(NodeType::Xe));
        assert_eq!(m.node_type(NodeId::new(22_640)), Some(NodeType::Xk));
        assert_eq!(m.node_type(NodeId::new(26_863)), Some(NodeType::Xk));
        assert_eq!(m.node_type(NodeId::new(26_864)), Some(NodeType::Service));
        assert_eq!(m.node_type(NodeId::new(27_647)), Some(NodeType::Service));
        assert_eq!(m.node_type(NodeId::new(27_648)), None);
    }

    #[test]
    fn scaled_machine_preserves_ratio_roughly() {
        let m = Machine::blue_waters_scaled(16);
        let xe = m.count_of(NodeType::Xe) as f64;
        let xk = m.count_of(NodeType::Xk) as f64;
        let ratio = xe / xk;
        let full_ratio = 22_640.0 / 4_224.0;
        assert!(
            (ratio - full_ratio).abs() / full_ratio < 0.1,
            "ratio {ratio}"
        );
        assert!(m.torus().node_slots() >= m.total_nodes());
        // Node counts land on blade boundaries.
        assert_eq!(m.count_of(NodeType::Xe) % NODES_PER_BLADE, 0);
        assert_eq!(m.count_of(NodeType::Xk) % NODES_PER_BLADE, 0);
    }

    #[test]
    fn scaled_by_one_is_full_machine() {
        assert_eq!(Machine::blue_waters_scaled(1), Machine::blue_waters());
    }

    #[test]
    fn nodes_of_type_matches_counts() {
        let m = Machine::blue_waters_scaled(32);
        for ty in NodeType::ALL {
            assert_eq!(m.nodes_of_type(ty).count() as u32, m.count_of(ty), "{ty}");
            assert_eq!(m.node_set_of_type(ty).len() as u32, m.count_of(ty));
        }
    }

    #[test]
    fn builder_defaults_pick_fitting_torus() {
        let m = MachineBuilder::new("tiny").xe_nodes(100).build();
        assert!(m.torus().node_slots() >= m.total_nodes());
        assert_eq!(m.count_of(NodeType::Xe), 100);
    }

    #[test]
    #[should_panic(expected = "torus serves")]
    fn builder_rejects_undersized_torus() {
        let _ = MachineBuilder::new("broken")
            .xe_nodes(1_000)
            .torus(Torus::new(2, 2, 2))
            .build();
    }

    #[test]
    #[should_panic(expected = "at least one compute node")]
    fn builder_rejects_empty_machine() {
        let _ = MachineBuilder::new("empty").build();
    }

    #[test]
    fn blade_peers_stay_in_machine() {
        let m = MachineBuilder::new("t")
            .xe_nodes(6)
            .service_nodes(0)
            .build();
        // Machine has 6 XE + default-fill service; peers of nid 4 exist.
        let peers = m.blade_peers(NodeId::new(4));
        assert!(peers.contains(&NodeId::new(4)));
        assert!(peers.iter().all(|n| m.node_type(*n).is_some()));
    }

    #[test]
    fn is_compute_distinguishes_service() {
        let m = Machine::blue_waters_scaled(64);
        let svc = m.nodes_of_type(NodeType::Service).next().unwrap();
        let xe = m.nodes_of_type(NodeType::Xe).next().unwrap();
        assert!(!m.is_compute(svc));
        assert!(m.is_compute(xe));
        assert!(!m.is_compute(NodeId::new(u32::MAX)));
    }
}
